"""Plain-text bar charts for figure reproduction in a terminal.

No plotting stack is assumed; Figure 1's efficiency/balance scatter is
rendered as paired horizontal bars, which preserves exactly the comparison
the figure makes (balance bounds efficiency, both vary widely by matrix).
"""

from __future__ import annotations

from typing import Mapping, Sequence


def bar_chart(
    labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    vmax: float | None = None,
    fills: str = "#o*+x",
) -> str:
    """Render grouped horizontal bars.

    ``series`` maps a series name to one value per label; values are scaled
    to ``vmax`` (default: the max over all series) across ``width`` columns.
    """
    names = list(series)
    if not names:
        raise ValueError("at least one series required")
    for name in names:
        if len(series[name]) != len(labels):
            raise ValueError(f"series {name!r} length != labels length")
    flat = [v for name in names for v in series[name]]
    top = vmax if vmax is not None else (max(flat) if flat else 1.0)
    if top <= 0:
        top = 1.0
    label_w = max((len(str(l)) for l in labels), default=0)
    name_w = max(len(n) for n in names)

    lines = []
    for i, label in enumerate(labels):
        for j, name in enumerate(names):
            v = float(series[name][i])
            nchar = max(0, min(width, round(width * v / top)))
            bar = fills[j % len(fills)] * nchar
            prefix = str(label) if j == 0 else ""
            lines.append(
                f"{prefix:>{label_w}s} {name:>{name_w}s} |{bar:<{width}s}| "
                f"{v:.3f}"
            )
        lines.append("")
    legend = "  ".join(
        f"{fills[j % len(fills)]} = {name}" for j, name in enumerate(names)
    )
    return "\n".join([legend, ""] + lines[:-1])
