"""Small integer-array utilities used across the symbolic and mapping layers.

Everything here operates on ``numpy.int64`` index arrays; the symbolic layer
passes sorted row-index arrays around constantly, so these helpers are kept
allocation-light (views where possible, single merged output otherwise).
"""

from __future__ import annotations

import numpy as np

INDEX_DTYPE = np.int64


def as_index_array(values) -> np.ndarray:
    """Return ``values`` as a contiguous int64 index array."""
    arr = np.ascontiguousarray(values, dtype=INDEX_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D index array, got shape {arr.shape}")
    return arr


def is_permutation(perm) -> bool:
    """True if ``perm`` is a permutation of ``0..len(perm)-1``."""
    perm = np.asarray(perm)
    if perm.ndim != 1:
        return False
    n = perm.shape[0]
    seen = np.zeros(n, dtype=bool)
    valid = (perm >= 0) & (perm < n)
    if not valid.all():
        return False
    seen[perm] = True
    return bool(seen.all())


def invert_permutation(perm) -> np.ndarray:
    """Return the inverse of permutation ``perm`` (perm[i] = new position of i).

    ``inv[perm[i]] = i``; raises ``ValueError`` when ``perm`` is not a
    permutation.
    """
    perm = as_index_array(perm)
    n = perm.shape[0]
    inv = np.full(n, -1, dtype=INDEX_DTYPE)
    inv[perm] = np.arange(n, dtype=INDEX_DTYPE)
    if (inv < 0).any():
        raise ValueError("not a permutation")
    return inv


def union_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Union of two *sorted unique* int arrays, returned sorted unique.

    This is the hot path of supernodal symbolic factorization; ``np.union1d``
    re-sorts its inputs, so use a merge that exploits pre-sortedness.
    """
    if a.size == 0:
        return b
    if b.size == 0:
        return a
    merged = np.concatenate([a, b])
    merged.sort(kind="mergesort")
    keep = np.empty(merged.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(merged[1:], merged[:-1], out=keep[1:])
    return merged[keep]
