"""Shared utilities: integer array helpers, table formatting, validation."""

from repro.util.arrays import (
    as_index_array,
    invert_permutation,
    is_permutation,
    union_sorted,
)
from repro.util.formatting import format_table

__all__ = [
    "as_index_array",
    "invert_permutation",
    "is_permutation",
    "union_sorted",
    "format_table",
]
