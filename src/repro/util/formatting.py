"""Plain-text table formatting for the experiment harness.

The paper reports its results as tables; every experiment module renders its
output through :func:`format_table` so that benchmark logs read like the
paper's tables.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    floatfmt: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
