"""Numeric sparse Cholesky factorization.

The block kernels (BFAC/BDIV/BMOD) operate on the dense blocks of the
supernodal structure; :class:`BlockCholesky` performs the full sequential
block factorization and can also replay a schedule produced by the parallel
simulator, proving that the simulated dependency structure is the true one.
A simplicial reference factorization and triangular solves complete the
layer; everything is verified against scipy in the test suite.
"""

from repro.numeric.dense_kernels import bfac_kernel, bdiv_kernel, bmod_kernel
from repro.numeric.blockfact import BlockCholesky
from repro.numeric.multifrontal import MultifrontalCholesky
from repro.numeric.parallel import parallel_block_cholesky
from repro.numeric.schedules import leftlooking_schedule, rightlooking_schedule
from repro.numeric.simplicial import simplicial_cholesky
from repro.numeric.solve import solve_with_factor

__all__ = [
    "bfac_kernel",
    "bdiv_kernel",
    "bmod_kernel",
    "BlockCholesky",
    "MultifrontalCholesky",
    "parallel_block_cholesky",
    "leftlooking_schedule",
    "rightlooking_schedule",
    "simplicial_cholesky",
    "solve_with_factor",
]
