"""Dense block kernels.

These are the Level-3 BLAS operations of §3.1 — the paper uses hand-tuned
DPOTRF/DTRSM/DGEMM; we call the same LAPACK/BLAS routines through scipy,
with ``overwrite_*=True`` / ``check_finite=False`` so no kernel allocates
or scans a scratch copy of its operands. Each kernel returns its flop
count so callers can cross-check the work model.

All call sites (the sequential :class:`~repro.numeric.blockfact.BlockCholesky`
and every runtime worker, on either transport) share these kernels, so a
given task order produces bitwise-identical blocks everywhere.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla
from scipy.linalg.blas import dgemm

from repro.blocks.workmodel import chol_flops


def bfac_kernel(D: np.ndarray) -> tuple[np.ndarray, int]:
    """BFAC: dense Cholesky of a diagonal block. Returns (L, flops).

    ``D`` must be symmetric positive definite (full square storage) and is
    consumed: LAPACK ``dpotrf`` factors it in place (the returned array
    shares ``D``'s buffer, strictly-upper triangle zeroed).
    """
    L = sla.cholesky(D, lower=True, overwrite_a=True, check_finite=False)
    return L, chol_flops(L.shape[0])


def bdiv_kernel(B: np.ndarray, L_KK: np.ndarray) -> tuple[np.ndarray, int]:
    """BDIV: ``B <- B * L_KK^{-T}`` (triangular solve from the right).

    ``B`` is the r x w subdiagonal block, ``L_KK`` the factored w x w
    diagonal. ``B`` is consumed: ``B.T`` of a C-contiguous block is
    F-contiguous, so the solve happens in place and the result shares
    ``B``'s buffer. flops = r * w^2.

    ``L_KK`` is forced C-contiguous first, like the solve kernels: scipy
    routes a C-ordered triangle through a transposed ``trtrs`` and an
    F-ordered one through the plain call, and the two round differently.
    A diagonal block is F-ordered where it was factored (dpotrf output)
    but C-ordered where it arrived over a link or out of an arena slot,
    so without one canonical layout the same BDIV computes different
    bits on different ranks.
    """
    out = sla.solve_triangular(
        np.ascontiguousarray(L_KK), B.T, lower=True, trans="N",
        overwrite_b=True, check_finite=False,
    ).T
    r, w = out.shape
    return np.ascontiguousarray(out), r * w * w


def bmod_kernel(L_IK: np.ndarray, L_JK: np.ndarray) -> tuple[np.ndarray, int]:
    """BMOD update term ``L_IK @ L_JK^T``. Returns (U, flops).

    The caller subtracts U from the destination block at the right row and
    column positions (the scatter path — when the destination rows are not
    contiguous, see :func:`bmod_kernel_into`). flops = 2 * r_I * r_J * w.
    """
    U = L_IK @ L_JK.T
    rI, w = L_IK.shape
    rJ = L_JK.shape[0]
    return U, 2 * rI * rJ * w


def bmod_kernel_into(
    L_IK: np.ndarray, L_JK: np.ndarray, out: np.ndarray
) -> int:
    """BMOD applied in place: ``out -= L_IK @ L_JK^T``. Returns flops.

    Single fused ``dgemm`` (alpha=-1, beta=1) accumulating straight into
    the destination — no update-term temporary, no scatter. ``out`` must be
    a C-contiguous writable slice of the destination block covering exactly
    the update's rows and columns; ``out.T`` is then F-contiguous, and
    BLAS computes ``out.T -= L_JK @ L_IK^T`` without copying ``c``.
    """
    res = dgemm(
        alpha=-1.0, a=L_JK, b=L_IK, trans_b=1,
        beta=1.0, c=out.T, overwrite_c=1,
    )
    if not np.shares_memory(res, out):  # pragma: no cover - layout guard
        out[:] = res.T
    rI, w = L_IK.shape
    rJ = L_JK.shape[0]
    return 2 * rI * rJ * w
