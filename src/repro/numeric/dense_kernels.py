"""Dense block kernels.

These are the Level-3 BLAS operations of §3.1 — the paper uses hand-tuned
DPOTRF/DTRSM/DGEMM; we use numpy's BLAS bindings. Each kernel returns its
flop count so callers can cross-check the work model.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.blocks.workmodel import chol_flops


def bfac_kernel(D: np.ndarray) -> tuple[np.ndarray, int]:
    """BFAC: dense Cholesky of a diagonal block. Returns (L, flops).

    ``D`` must be symmetric positive definite (full square storage); the
    result is lower triangular.
    """
    L = np.linalg.cholesky(D)
    return L, chol_flops(D.shape[0])


def bdiv_kernel(B: np.ndarray, L_KK: np.ndarray) -> tuple[np.ndarray, int]:
    """BDIV: ``B <- B * L_KK^{-T}`` (triangular solve from the right).

    ``B`` is the r x w subdiagonal block, ``L_KK`` the factored w x w
    diagonal. flops = r * w^2.
    """
    out = sla.solve_triangular(L_KK, B.T, lower=True, trans="N").T
    r, w = B.shape
    return np.ascontiguousarray(out), r * w * w


def bmod_kernel(L_IK: np.ndarray, L_JK: np.ndarray) -> tuple[np.ndarray, int]:
    """BMOD update term ``L_IK @ L_JK^T``. Returns (U, flops).

    The caller subtracts U from the destination block at the right row and
    column positions. flops = 2 * r_I * r_J * w.
    """
    U = L_IK @ L_JK.T
    rI, w = L_IK.shape
    rJ = L_JK.shape[0]
    return U, 2 * rI * rJ * w
