"""Real shared-memory parallel block Cholesky (thread pool).

The simulator answers "what would the Paragon do"; this module actually
runs the same task DAG in parallel on the host: a dependency-driven
executor dispatches BFAC/BDIV/BMOD tasks to a thread pool as their inputs
complete. numpy's BLAS kernels release the GIL, so genuine multicore
speedups are achievable for matrices with enough block-level concurrency —
the shared-memory analogue of the paper's message-passing method, with the
same dependency structure the tests already proved correct.

Per-destination-block locks serialize BMODs into the same block (the role
the owning processor plays in the distributed method).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.blocks.structure import BlockStructure
from repro.fanout.tasks import BDIV, BFAC, BMOD, TaskGraph
from repro.numeric.blockfact import BlockCholesky


@dataclass
class ParallelFactorResult:
    factor: BlockCholesky
    nthreads: int
    tasks_executed: int

    def to_csc(self) -> sparse.csc_matrix:
        return self.factor.to_csc()


def parallel_block_cholesky(
    structure: BlockStructure,
    A: sparse.spmatrix,
    tg: TaskGraph,
    nthreads: int = 4,
) -> ParallelFactorResult:
    """Factor ``A`` with ``nthreads`` worker threads over the task DAG.

    The dependency protocol is the fan-out method's: a BMOD becomes ready
    when both source blocks are factored; BFAC/BDIV when their destination
    has absorbed every BMOD (BDIV additionally after its diagonal's BFAC).
    """
    if nthreads < 1:
        raise ValueError("nthreads must be positive")
    chol = BlockCholesky(structure, A)

    mods_remaining = tg.nmod.copy()
    missing = tg.task_missing_init.copy()
    completed_blocks = np.zeros(tg.nblocks, dtype=bool)
    diag_done = np.zeros(tg.npanels, dtype=bool)

    state_lock = threading.Lock()
    block_locks = [threading.Lock() for _ in range(tg.nblocks)]
    done = threading.Event()
    error: list[BaseException] = []
    remaining = [tg.ntasks]
    executed = [0]

    pool = ThreadPoolExecutor(max_workers=nthreads)

    def submit(tid: int) -> None:
        pool.submit(run_task, tid)

    def run_task(tid: int) -> None:
        if error:
            _finish_one()
            return
        try:
            b = int(tg.task_block[tid])
            with block_locks[b]:
                chol.apply_task(tg, tid)
            after_completion(tid, b)
        except BaseException as exc:  # noqa: BLE001 - propagated to caller
            error.append(exc)
            done.set()
            return
        _finish_one()

    def _finish_one() -> None:
        with state_lock:
            remaining[0] -= 1
            executed[0] += 1
            if remaining[0] == 0:
                done.set()

    def after_completion(tid: int, b: int) -> None:
        ready: list[int] = []
        kind = int(tg.task_kind[tid])
        with state_lock:
            if kind == BMOD:
                mods_remaining[b] -= 1
                if mods_remaining[b] == 0:
                    ready.extend(_block_mods_done(b))
            elif kind == BFAC:
                completed_blocks[b] = True
                k = int(tg.block_J[b])
                diag_done[k] = True
                sub = tg.subdiag_blocks[
                    tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]
                ]
                for b2 in sub:
                    if mods_remaining[b2] == 0:
                        ready.append(int(tg.bdiv_task[b2]))
            else:  # BDIV
                completed_blocks[b] = True
                for t in tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]:
                    missing[t] -= 1
                    if missing[t] == 0:
                        ready.append(int(t))
        for t in ready:
            submit(t)

    def _block_mods_done(b: int) -> list[int]:
        # caller holds state_lock
        if tg.block_I[b] == tg.block_J[b]:
            return [int(tg.bfac_task[b])]
        k = int(tg.block_J[b])
        if diag_done[k]:
            return [int(tg.bdiv_task[b])]
        return []

    diag = tg.block_I == tg.block_J
    seeds = [int(tg.bfac_task[int(b)]) for b in np.flatnonzero(diag & (tg.nmod == 0))]
    for tid in seeds:
        submit(tid)

    done.wait()
    pool.shutdown(wait=True)
    if error:
        raise error[0]
    if remaining[0] != 0:
        raise RuntimeError("parallel factorization deadlocked")
    return ParallelFactorResult(
        factor=chol, nthreads=nthreads, tasks_executed=executed[0]
    )
