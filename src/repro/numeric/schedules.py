"""Sequential task schedules: left-looking and right-looking orders.

The paper's §2.1 pseudo-code is right-looking (fan-out): when panel K
finishes, it immediately pushes its updates outward. The left-looking
(fan-in) formulation delays every update into panel J until just before J is
factored. Both are linear extensions of the same task DAG, so they execute
the identical set of BFAC/BDIV/BMOD operations — a fact the authors'
companion work (Rothberg & Gupta's left/right/multifrontal comparison) is
built on, and which the test suite verifies by replaying both schedules
through the numeric engine.
"""

from __future__ import annotations

import numpy as np

from repro.fanout.tasks import BDIV, BFAC, BMOD, TaskGraph


def rightlooking_schedule(tg: TaskGraph) -> np.ndarray:
    """Task order of the right-looking (fan-out) sequential factorization.

    For each source panel K ascending: BFAC(K), the BDIVs of its column,
    then every BMOD sourced from column K.
    """
    kinds = tg.task_kind
    src_panel = np.where(
        kinds == BMOD,
        tg.block_J[np.maximum(tg.task_src1, 0)],
        tg.block_J[tg.task_block],
    )
    kind_rank = np.choose(kinds, [0, 1, 2])  # BFAC, BDIV, BMOD
    dest_key = tg.block_I[tg.task_block]
    order = np.lexsort((dest_key, kind_rank, src_panel))
    return order.astype(np.int64)


def leftlooking_schedule(tg: TaskGraph) -> np.ndarray:
    """Task order of the left-looking (fan-in) sequential factorization.

    For each destination panel J ascending: all BMODs into column J first,
    then BFAC(J), then the BDIVs of column J.
    """
    kinds = tg.task_kind
    dest_panel = tg.block_J[tg.task_block]
    # BMOD before BFAC before BDIV within a destination column.
    kind_rank = np.choose(kinds, [1, 2, 0])
    dest_row = tg.block_I[tg.task_block]
    order = np.lexsort((dest_row, kind_rank, dest_panel))
    return order.astype(np.int64)
