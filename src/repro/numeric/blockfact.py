"""Numeric block Cholesky factorization over the supernodal block structure.

Storage: the diagonal block of panel K is a full w x w array (lower triangle
significant after factorization); each subdiagonal block (I, K) is a dense
r x w array whose rows correspond to ``BlockStructure.block_row_span(K, t)``.

The sequential driver is the right-looking block fan-out order of the
pseudo-code in §2.1. ``apply_task``/``run_schedule`` replay an arbitrary
task order (e.g. one recorded by the parallel simulator); dependency
correctness of that order is exactly what the integration tests verify.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.blocks.structure import BlockStructure
from repro.fanout.tasks import BDIV, BFAC, BMOD, TaskGraph
from repro.numeric.dense_kernels import (
    bdiv_kernel,
    bfac_kernel,
    bmod_kernel,
    bmod_kernel_into,
)


def _span(idx: np.ndarray) -> tuple[int, int] | None:
    """``(lo, hi)`` when sorted ``idx`` is the contiguous run
    ``lo..hi-1``, else None."""
    lo = int(idx[0])
    hi = int(idx[-1]) + 1
    if hi - lo == idx.shape[0]:
        return lo, hi
    return None


class BlockCholesky:
    """Numeric factorization state over a :class:`BlockStructure`."""

    def __init__(self, structure: BlockStructure, A: sparse.spmatrix):
        self.structure = structure
        part = structure.partition
        self.partition = part
        N = part.npanels
        A = A.tocsc()
        if A.shape[0] != part.symbolic.n:
            raise ValueError("matrix size disagrees with the block structure")

        # Allocate blocks and scatter A into them.
        self.diag: list[np.ndarray] = []
        self.below: list[dict[int, np.ndarray]] = []
        self.flops = 0
        ptr = part.panel_ptr
        for k in range(N):
            c0, c1 = int(ptr[k]), int(ptr[k + 1])
            w = c1 - c0
            D = np.zeros((w, w))
            rows = structure.rows_below[k]
            blocks: dict[int, np.ndarray] = {}
            splits = structure.row_splits[k]
            brows = structure.block_rows[k]
            for t, bi in enumerate(brows):
                blocks[int(bi)] = np.zeros((int(splits[t + 1] - splits[t]), w))
            for j in range(c0, c1):
                col_rows = A.indices[A.indptr[j] : A.indptr[j + 1]]
                col_vals = A.data[A.indptr[j] : A.indptr[j + 1]]
                sel = col_rows >= c0
                col_rows, col_vals = col_rows[sel], col_vals[sel]
                in_diag = col_rows < c1
                D[col_rows[in_diag] - c0, j - c0] = col_vals[in_diag]
                lower_rows = col_rows[~in_diag]
                lower_vals = col_vals[~in_diag]
                if lower_rows.size:
                    pos = np.searchsorted(rows, lower_rows)
                    if not np.array_equal(rows[pos], lower_rows):
                        raise ValueError(
                            "matrix entry outside the symbolic structure"
                        )
                    for p_, v in zip(pos, lower_vals):
                        t = int(np.searchsorted(splits, p_, side="right")) - 1
                        blocks[int(brows[t])][p_ - splits[t], j - c0] = v
            # Symmetrize the diagonal block (only the lower triangle of A
            # within the block is guaranteed scattered above when A stores
            # both triangles; with full A both triangles land, so this is a
            # no-op kept for lower-triangle inputs).
            D = np.tril(D) + np.tril(D, -1).T
            self.diag.append(D)
            self.below.append(blocks)
        self._factored = np.zeros(N, dtype=bool)

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def bfac(self, k: int) -> None:
        L, f = bfac_kernel(self.diag[k])
        self.diag[k] = L
        self.flops += f
        self._factored[k] = True

    def bdiv(self, i: int, k: int) -> None:
        if not self._factored[k]:
            raise RuntimeError(f"BDIV({i},{k}) before BFAC({k})")
        B, f = bdiv_kernel(self.below[k][i], self.diag[k])
        self.below[k][i] = B
        self.flops += f

    def bmod(self, i: int, j: int, k: int) -> None:
        """Apply ``L_IJ -= L_IK L_JK^T`` with row/column scattering."""
        L_IK = self.below[k][i]
        L_JK = self.below[k][j]
        part = self.partition
        st = self.structure
        rows_I = self._block_rows(i, k)
        rows_J = self._block_rows(j, k)
        c0_j = int(part.panel_ptr[j])
        cols = rows_J - c0_j  # destination columns within panel j
        if i == j:
            dest = self.diag[j]
            ridx = rows_I - c0_j
        else:
            dest_rows = st.rows_below[j]
            pos = np.searchsorted(dest_rows, rows_I)
            if not np.array_equal(dest_rows[pos], rows_I):
                raise RuntimeError("BMOD rows missing from destination block")
            splits = st.row_splits[j]
            t = int(np.searchsorted(st.block_rows[j], i))
            lo = int(splits[t])
            dest = self.below[j][i]
            ridx = pos - lo
        rs, cs = _span(ridx), _span(cols)
        if rs is not None and cs is not None:
            out = dest[rs[0] : rs[1], cs[0] : cs[1]]
            if out.flags.c_contiguous and out.flags.writeable:
                # Contiguous destination window (the common dense case):
                # one fused dgemm, no update temporary, no scatter.
                self.flops += bmod_kernel_into(L_IK, L_JK, out)
                return
        U, f = bmod_kernel(L_IK, L_JK)
        self.flops += f
        dest[np.ix_(ridx, cols)] -= U

    def _block_rows(self, i: int, k: int) -> np.ndarray:
        st = self.structure
        t = int(np.searchsorted(st.block_rows[k], i))
        return st.block_row_span(k, t)

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def factor(self) -> "BlockCholesky":
        """Sequential right-looking block fan-out factorization (§2.1)."""
        st = self.structure
        for k in range(self.partition.npanels):
            self.bfac(k)
            brows = st.block_rows[k]
            for i in brows:
                self.bdiv(int(i), k)
            for a in range(brows.shape[0]):
                for b in range(a + 1):
                    self.bmod(int(brows[a]), int(brows[b]), k)
        return self

    def apply_task(self, tg: TaskGraph, tid: int) -> None:
        """Execute one task from a :class:`TaskGraph` by id."""
        b = int(tg.task_block[tid])
        kind = int(tg.task_kind[tid])
        I, J = int(tg.block_I[b]), int(tg.block_J[b])
        if kind == BFAC:
            self.bfac(J)
        elif kind == BDIV:
            self.bdiv(I, J)
        else:
            k = int(tg.block_J[int(tg.task_src1[tid])])
            self.bmod(I, J, k)

    def run_schedule(self, tg: TaskGraph, schedule: list[int]) -> "BlockCholesky":
        """Replay a completion order recorded by the parallel simulator."""
        if len(schedule) != tg.ntasks:
            raise ValueError("schedule does not cover every task")
        for tid in schedule:
            self.apply_task(tg, int(tid))
        return self

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def to_csc(self) -> sparse.csc_matrix:
        """Assemble the factor L as a sparse matrix (explicit zeros kept)."""
        part = self.partition
        st = self.structure
        n = part.symbolic.n
        rows_l, cols_l, vals_l = [], [], []
        ptr = part.panel_ptr
        for k in range(part.npanels):
            c0, c1 = int(ptr[k]), int(ptr[k + 1])
            w = c1 - c0
            tri = np.tril_indices(w)
            rows_l.append(tri[0] + c0)
            cols_l.append(tri[1] + c0)
            vals_l.append(self.diag[k][tri])
            rows = st.rows_below[k]
            if rows.size:
                cols = np.arange(c0, c1)
                rr, cc = np.meshgrid(rows, cols, indexing="ij")
                full = np.concatenate(
                    [self.below[k][int(bi)] for bi in st.block_rows[k]], axis=0
                )
                rows_l.append(rr.ravel())
                cols_l.append(cc.ravel())
                vals_l.append(full.ravel())
        L = sparse.coo_matrix(
            (np.concatenate(vals_l), (np.concatenate(rows_l), np.concatenate(cols_l))),
            shape=(n, n),
        )
        return L.tocsc()
