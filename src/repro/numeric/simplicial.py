"""Simplicial (column-at-a-time) sparse Cholesky — the reference method.

An up-looking row factorization driven by the elimination tree (the CSparse
``cs_chol`` scheme). It is the algorithm the paper's "best known sequential"
operation counts refer to; the test suite uses it to cross-validate the
symbolic column counts and the block factorization numerics.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.symbolic.etree import elimination_tree


def simplicial_cholesky(A: sparse.spmatrix) -> sparse.csc_matrix:
    """Factor SPD ``A`` (already permuted) into lower-triangular L.

    Row i's nonzero pattern is the row subtree of the elimination tree: the
    nodes reached walking from each ``k`` with ``A[i,k] != 0`` (k < i) up
    toward i. The triangular solve for row i then scatters through the
    already-computed columns. O(nnz(L)) space, O(flops) time — meant for
    the moderate sizes of the test and example suite, not peak speed.
    """
    A = A.tocsc()
    n = A.shape[0]
    parent = elimination_tree(A)

    col_rows: list[list[int]] = [[] for _ in range(n)]
    col_vals: list[list[float]] = [[] for _ in range(n)]
    diag = np.zeros(n)
    x = np.zeros(n)
    mark = np.full(n, -1, dtype=np.int64)
    indptr, indices, data = A.indptr, A.indices, A.data

    for i in range(n):
        # --- pattern of row i via etree walks, collected then sorted -----
        pattern: list[int] = []
        d = 0.0
        mark[i] = i
        for p in range(indptr[i], indptr[i + 1]):
            k = int(indices[p])
            if k > i:
                continue
            if k == i:
                d = float(data[p])
                continue
            x[k] = float(data[p])
            j = k
            while mark[j] != i:
                mark[j] = i
                pattern.append(j)
                j = int(parent[j])
        pattern.sort()

        # --- sparse forward solve for L[i, pattern] ----------------------
        for j in pattern:
            xj = x[j] / diag[j]
            x[j] = 0.0
            rows_j = col_rows[j]
            vals_j = col_vals[j]
            for t in range(len(rows_j)):
                x[rows_j[t]] -= vals_j[t] * xj
            d -= xj * xj
            col_rows[j].append(i)
            col_vals[j].append(xj)
        if d <= 0.0:
            raise np.linalg.LinAlgError(
                f"matrix is not positive definite (pivot {i})"
            )
        diag[i] = float(np.sqrt(d))

    rows_out = []
    cols_out = []
    vals_out = []
    for j in range(n):
        rows_out.append(np.array([j] + col_rows[j], dtype=np.int64))
        cols_out.append(np.full(1 + len(col_rows[j]), j, dtype=np.int64))
        vals_out.append(np.array([diag[j]] + col_vals[j]))
    L = sparse.coo_matrix(
        (
            np.concatenate(vals_out),
            (np.concatenate(rows_out), np.concatenate(cols_out)),
        ),
        shape=(n, n),
    )
    return L.tocsc()
