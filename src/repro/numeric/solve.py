"""Triangular solves with a computed factor: the end-to-end user path.

``solve_with_factor`` takes the original (unpermuted) right-hand side,
applies the factorization permutation, runs forward/backward substitution,
and un-permutes — i.e. it solves ``A x = b`` given ``P A P^T = L L^T``.

Two factor representations are accepted:

* a sparse ``L`` (``scipy`` triangular solves — the historical path);
* a :class:`~repro.numeric.blockfact.BlockCholesky` — block-level
  substitution over the same dense panels the factorization produced.

The block path is the **bitwise reference** for the distributed solve in
:mod:`repro.runtime`: both sides run the exact same four kernels
(:func:`fsolve_kernel` / :func:`fupd_kernel` / :func:`bsolve_kernel` /
:func:`bupd_kernel`) in the same per-panel update order, with every
operand normalized to C order first, so a distributed solve is
reproducible float for float against this sequential loop regardless of
transport, schedule, or worker count.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.linalg import solve_triangular
from scipy.sparse.linalg import spsolve_triangular

from repro.numeric.blockfact import BlockCholesky
from repro.ordering.base import Ordering

__all__ = [
    "solve_with_factor",
    "block_solve_permuted",
    "block_forward",
    "block_backward",
    "fsolve_kernel",
    "fupd_kernel",
    "bsolve_kernel",
    "bupd_kernel",
    "solve_flops",
]


# ----------------------------------------------------------------------
# Solve kernels
#
# Every operand is forced C-contiguous before the BLAS call: a diagonal
# block may be F-ordered where it was factored (dpotrf output) but
# C-ordered where it arrived over a link or out of an arena slot, and
# LAPACK rounds differently per layout. Normalizing here is what makes
# the distributed solve bitwise-identical to this sequential reference.
# ----------------------------------------------------------------------

def fsolve_kernel(Lkk: np.ndarray, B: np.ndarray) -> np.ndarray:
    """``Y_K = L_KK^{-1} B`` (forward solve against a diagonal block)."""
    return np.ascontiguousarray(
        solve_triangular(
            np.ascontiguousarray(Lkk), np.ascontiguousarray(B), lower=True
        )
    )


def fupd_kernel(Lik: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """``U = L_IK Y_K`` — the forward update a subdiagonal block emits."""
    return np.ascontiguousarray(Lik) @ np.ascontiguousarray(Y)


def bsolve_kernel(Lkk: np.ndarray, B: np.ndarray) -> np.ndarray:
    """``X_K = L_KK^{-T} B`` (backward solve against a diagonal block)."""
    return np.ascontiguousarray(
        solve_triangular(
            np.ascontiguousarray(Lkk), np.ascontiguousarray(B),
            lower=True, trans=1,
        )
    )


def bupd_kernel(Lik: np.ndarray, X: np.ndarray) -> np.ndarray:
    """``U = L_IK^T X_I`` — the backward update a subdiagonal block emits."""
    return np.ascontiguousarray(Lik).T @ np.ascontiguousarray(X)


def solve_flops(rows: int, cols: int, nrhs: int, diag: bool) -> int:
    """Work charged for one solve task over an ``rows x cols`` block.

    Diagonal blocks charge one triangular solve (``w^2`` multiply-adds per
    right-hand side); subdiagonal blocks charge the dense multiply
    (``2 r w`` per right-hand side). Exact integers — the trace replay
    reconciles these against worker metrics with equality, not tolerance.
    """
    if diag:
        return rows * cols * nrhs
    return 2 * rows * cols * nrhs


# ----------------------------------------------------------------------
# Sequential block substitution (the distributed solve's reference)
# ----------------------------------------------------------------------

def block_forward(chol: BlockCholesky, Y: np.ndarray) -> np.ndarray:
    """In-place forward substitution ``L Y = B`` over block panels.

    ``Y`` is the permuted right-hand side as an ``n x nrhs`` C-ordered
    array; panels are solved in ascending order and each panel's updates
    are applied in ascending source-panel order — the canonical order the
    distributed solve reproduces by parking early arrivals.
    """
    st = chol.structure
    ptr = chol.partition.panel_ptr
    for k in range(chol.partition.npanels):
        c0, c1 = int(ptr[k]), int(ptr[k + 1])
        Yk = fsolve_kernel(chol.diag[k], Y[c0:c1])
        Y[c0:c1] = Yk
        brows = st.block_rows[k]
        for t in range(brows.shape[0]):
            i = int(brows[t])
            rows = st.block_row_span(k, t)
            Y[rows] -= fupd_kernel(chol.below[k][i], Yk)
    return Y


def block_backward(chol: BlockCholesky, X: np.ndarray) -> np.ndarray:
    """In-place backward substitution ``L^T X = Y`` over block panels.

    Panels complete in descending order; the updates into panel ``K`` are
    gathered in ascending source-row order before the triangular solve —
    again exactly the order the distributed solve enforces.
    """
    st = chol.structure
    ptr = chol.partition.panel_ptr
    for k in range(chol.partition.npanels - 1, -1, -1):
        c0, c1 = int(ptr[k]), int(ptr[k + 1])
        B = np.ascontiguousarray(X[c0:c1])
        brows = st.block_rows[k]
        for t in range(brows.shape[0]):
            i = int(brows[t])
            rows = st.block_row_span(k, t)
            B -= bupd_kernel(chol.below[k][i], X[rows])
        X[c0:c1] = bsolve_kernel(chol.diag[k], B)
    return X


def block_solve_permuted(chol: BlockCholesky, pb: np.ndarray) -> np.ndarray:
    """Forward + backward substitution on an already-permuted RHS.

    Returns a fresh ``n x nrhs`` C-ordered solution in permuted
    coordinates (the caller un-permutes).
    """
    Y = np.array(pb, dtype=np.float64, order="C", copy=True)
    if Y.ndim == 1:
        Y = Y.reshape(-1, 1)
    block_forward(chol, Y)
    block_backward(chol, Y)
    return Y


def _resolve_perm(ordering) -> np.ndarray | None:
    if ordering is None:
        return None
    return (
        ordering.perm if isinstance(ordering, Ordering)
        else np.asarray(ordering)
    )


def solve_with_factor(
    L: sparse.spmatrix | BlockCholesky,
    b: np.ndarray,
    ordering: Ordering | np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``A x = b`` where ``P A P^T = L L^T``.

    ``ordering`` is the permutation used during factorization (``None`` for
    identity). Accepts a single vector or a matrix of right-hand sides.
    ``L`` may be the assembled sparse factor or the
    :class:`~repro.numeric.blockfact.BlockCholesky` itself; the latter
    runs the block substitution path that the distributed solve is pinned
    against bit for bit.
    """
    b = np.asarray(b, dtype=np.float64)
    perm = _resolve_perm(ordering)

    if isinstance(L, BlockCholesky):
        one_d = b.ndim == 1
        pb = b[perm] if perm is not None else b
        z = block_solve_permuted(L, pb)
        if one_d:
            z = z[:, 0]
        if perm is None:
            return z
        x = np.empty_like(z)
        x[perm] = z
        return x

    L = L.tocsr()
    pb = b[perm] if perm is not None else b
    y = spsolve_triangular(L, pb, lower=True)
    z = spsolve_triangular(L.T.tocsr(), y, lower=False)
    if perm is None:
        return z
    x = np.empty_like(z)
    x[perm] = z
    return x
