"""Triangular solves with a computed factor: the end-to-end user path.

``solve_with_factor`` takes the original (unpermuted) right-hand side,
applies the factorization permutation, runs forward/backward substitution,
and un-permutes — i.e. it solves ``A x = b`` given ``P A P^T = L L^T``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve_triangular

from repro.ordering.base import Ordering


def solve_with_factor(
    L: sparse.spmatrix,
    b: np.ndarray,
    ordering: Ordering | np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``A x = b`` where ``P A P^T = L L^T``.

    ``ordering`` is the permutation used during factorization (``None`` for
    identity). Accepts a single vector or a matrix of right-hand sides.
    """
    L = L.tocsr()
    b = np.asarray(b, dtype=np.float64)
    if ordering is None:
        perm = None
    else:
        perm = ordering.perm if isinstance(ordering, Ordering) else np.asarray(ordering)

    pb = b[perm] if perm is not None else b
    y = spsolve_triangular(L, pb, lower=True)
    z = spsolve_triangular(L.T.tocsr(), y, lower=False)
    if perm is None:
        return z
    x = np.empty_like(z)
    x[perm] = z
    return x
