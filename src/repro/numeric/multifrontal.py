"""Supernodal multifrontal Cholesky factorization.

The third classical organization of sparse Cholesky (after left-looking and
right-looking/fan-out), included because the paper's lineage explicitly
compares the three (Rothberg & Gupta [13]; Ashcraft-Grimes amalgamation [1]
was developed for the multifrontal method). Each supernode assembles a dense
*frontal matrix* from the original entries plus its children's *update
matrices*, factors its pivot block, and passes the Schur complement up the
supernode tree.

The result is numerically identical (up to rounding) to
:class:`~repro.numeric.blockfact.BlockCholesky`, which the test suite
verifies — three independent drivers over one symbolic structure.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla
from scipy import sparse

from repro.symbolic.structure import SymbolicFactor
from repro.symbolic.supernodes import supernode_parents


class MultifrontalCholesky:
    """Multifrontal factorization over a :class:`SymbolicFactor`.

    After :meth:`factor`, supernode s's columns are stored as ``diag[s]``
    (dense lower-triangular w x w) and ``below[s]`` (dense |R_s| x w with
    rows ``sf.snode_rows[s]``).
    """

    def __init__(self, sf: SymbolicFactor):
        self.symbolic = sf
        self.diag: list[np.ndarray | None] = [None] * sf.nsupernodes
        self.below: list[np.ndarray | None] = [None] * sf.nsupernodes
        self.flops = 0
        self.peak_front = 0
        self._factored = False

    def factor(self) -> "MultifrontalCholesky":
        sf = self.symbolic
        A = sf.A.tocsc()
        ptr = sf.snode_ptr
        sparent = supernode_parents(ptr, sf.parent)
        # Pending update matrices per parent supernode: (index_set, U).
        pending: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(sf.nsupernodes)
        ]

        for s in range(sf.nsupernodes):
            a, b = int(ptr[s]), int(ptr[s + 1])
            w = b - a
            rows = sf.snode_rows[s]
            index_set = np.concatenate(
                [np.arange(a, b, dtype=rows.dtype), rows]
            )
            m = index_set.shape[0]
            self.peak_front = max(self.peak_front, m)
            F = np.zeros((m, m))

            # Original entries of columns a..b (lower part only).
            for j in range(a, b):
                col_rows = A.indices[A.indptr[j] : A.indptr[j + 1]]
                col_vals = A.data[A.indptr[j] : A.indptr[j + 1]]
                sel = col_rows >= j
                pos = np.searchsorted(index_set, col_rows[sel])
                F[pos, j - a] = col_vals[sel]

            # Extend-add the children's update matrices.
            for child_idx, U in pending[s]:
                pos = np.searchsorted(index_set, child_idx)
                F[np.ix_(pos, pos)] += U
            pending[s] = []

            # Partial dense factorization of the w x w pivot block.
            F11 = F[:w, :w]
            F11 = np.tril(F11) + np.tril(F11, -1).T
            L11 = np.linalg.cholesky(F11)
            self.flops += w**3 // 3
            self.diag[s] = L11
            if m > w:
                L21 = sla.solve_triangular(
                    L11, F[w:, :w].T, lower=True
                ).T
                self.below[s] = np.ascontiguousarray(L21)
                self.flops += (m - w) * w * w
                # Schur complement: only the lower triangle matters; keep it
                # full-symmetric so the parent's extend-add stays simple.
                U = np.tril(F[w:, w:]) + np.tril(F[w:, w:], -1).T
                U -= L21 @ L21.T
                self.flops += (m - w) * (m - w + 1) * w
                p = int(sparent[s])
                if p != -1:
                    pending[p].append((rows, U))
            else:
                self.below[s] = np.zeros((0, w))
        self._factored = True
        return self

    def to_csc(self) -> sparse.csc_matrix:
        """Assemble L as a sparse matrix (explicit supernodal zeros kept)."""
        if not self._factored:
            raise RuntimeError("call factor() first")
        sf = self.symbolic
        ptr = sf.snode_ptr
        rows_l, cols_l, vals_l = [], [], []
        for s in range(sf.nsupernodes):
            a, b = int(ptr[s]), int(ptr[s + 1])
            w = b - a
            tri = np.tril_indices(w)
            rows_l.append(tri[0] + a)
            cols_l.append(tri[1] + a)
            vals_l.append(self.diag[s][tri])
            rows = sf.snode_rows[s]
            if rows.size:
                rr, cc = np.meshgrid(rows, np.arange(a, b), indexing="ij")
                rows_l.append(rr.ravel())
                cols_l.append(cc.ravel())
                vals_l.append(self.below[s].ravel())
        n = sf.n
        return sparse.coo_matrix(
            (
                np.concatenate(vals_l),
                (np.concatenate(rows_l), np.concatenate(cols_l)),
            ),
            shape=(n, n),
        ).tocsc()
