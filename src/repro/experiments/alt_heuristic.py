"""§4.2(a): the processor-aware alternative row heuristic.

Paper finding: 10-15% better overall balance than the basic heuristic, but
no realized performance improvement — confirming that after the basic
remapping, load balance is no longer the binding bottleneck.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult, pct
from repro.fanout import assign_domains, run_fanout
from repro.machine.params import PARAGON
from repro.mapping import (
    balance_metrics,
    heuristic_map,
    processor_aware_row_map,
    square_grid,
)
from repro.matrices.registry import problem_names

HEADERS = (
    "Matrix",
    "Basic balance",
    "Alt balance",
    "Bal. improv %",
    "Basic Mflops",
    "Alt Mflops",
    "Perf improv %",
)


def run(scale: str = "medium", P: int = 64, machine=PARAGON) -> ExperimentResult:
    grid = square_grid(P)
    rows = []
    bal_improvs, perf_improvs = [], []
    for name in problem_names("table1"):
        prep = prepare_problem(name, scale)
        domains = assign_domains(prep.workmodel, P)
        basic = heuristic_map(prep.workmodel, grid, "DW", "CY")
        alt = processor_aware_row_map(prep.workmodel, grid, "CY", "DW")
        bal_b = balance_metrics(prep.workmodel, basic).overall
        bal_a = balance_metrics(prep.workmodel, alt).overall
        perf_b = run_fanout(
            prep.taskgraph, basic, machine=machine, domains=domains,
            factor_ops=prep.factor_ops,
        ).mflops
        perf_a = run_fanout(
            prep.taskgraph, alt, machine=machine, domains=domains,
            factor_ops=prep.factor_ops,
        ).mflops
        bal_improvs.append(pct(bal_a, bal_b))
        perf_improvs.append(pct(perf_a, perf_b))
        rows.append(
            (name, bal_b, bal_a, bal_improvs[-1], perf_b, perf_a, perf_improvs[-1])
        )
    return ExperimentResult(
        experiment=f"Sec. 4.2(a): processor-aware row heuristic (P={P}, scale={scale})",
        headers=HEADERS,
        rows=rows,
        data={
            "mean_balance_improvement": float(np.mean(bal_improvs)),
            "mean_performance_improvement": float(np.mean(perf_improvs)),
        },
        notes=(
            "Paper: balance improves a further 10-15%, performance does not."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render())
