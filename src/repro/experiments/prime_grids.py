"""§4.2(b): relatively-prime processor grids.

Running the cyclic mapping on a ``gcd(Pr, Pc) = 1`` grid (one fewer
processor: 63 = 7x9, 99 = 9x11) scatters the block diagonal over all
processors and removes the diagonal imbalance with no remapping at all.
Paper finding: 17%/18% mean improvement on 63/99 processors versus the
64/100-processor cyclic baseline — most, but not all, of the heuristics'
20%/24%.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult, pct
from repro.fanout import assign_domains, run_fanout
from repro.machine.params import PARAGON
from repro.mapping import best_grid, cyclic_map, heuristic_map, square_grid
from repro.matrices.registry import problem_names

HEADERS = (
    "Matrix",
    "P",
    "Cyclic Mflops",
    "P-1 prime Mflops",
    "Prime improv %",
    "Heuristic Mflops",
    "Heur improv %",
)


def run(
    scale: str = "medium",
    Ps: tuple[int, ...] = (64, 100),
    machine=PARAGON,
) -> ExperimentResult:
    rows = []
    prime_means: dict[int, list[float]] = {P: [] for P in Ps}
    heur_means: dict[int, list[float]] = {P: [] for P in Ps}
    for name in problem_names("table1"):
        prep = prepare_problem(name, scale)
        for P in Ps:
            sq = square_grid(P)
            pg = best_grid(P - 1)
            domains_sq = assign_domains(prep.workmodel, P)
            domains_pg = assign_domains(prep.workmodel, P - 1)
            base = run_fanout(
                prep.taskgraph,
                cyclic_map(prep.partition.npanels, sq),
                machine=machine, domains=domains_sq, factor_ops=prep.factor_ops,
            ).mflops
            prime = run_fanout(
                prep.taskgraph,
                cyclic_map(prep.partition.npanels, pg),
                machine=machine, domains=domains_pg, factor_ops=prep.factor_ops,
            ).mflops
            heur = run_fanout(
                prep.taskgraph,
                heuristic_map(prep.workmodel, sq, "ID", "CY"),
                machine=machine, domains=domains_sq, factor_ops=prep.factor_ops,
            ).mflops
            prime_means[P].append(pct(prime, base))
            heur_means[P].append(pct(heur, base))
            rows.append(
                (name, P, base, prime, prime_means[P][-1], heur, heur_means[P][-1])
            )
    data = {
        "mean_prime_improvement": {
            P: float(np.mean(v)) for P, v in prime_means.items()
        },
        "mean_heuristic_improvement": {
            P: float(np.mean(v)) for P, v in heur_means.items()
        },
    }
    return ExperimentResult(
        experiment=f"Sec. 4.2(b): relatively-prime grids (scale={scale})",
        headers=HEADERS,
        rows=rows,
        data=data,
        notes=(
            "Paper: prime grids gain 17-18% mean; heuristics gain 20-24%."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render("{:.0f}"))
