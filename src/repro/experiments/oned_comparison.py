"""§1 baseline comparison: 1-D column mapping vs 2-D block mapping.

Regenerates the two quantitative claims the paper's introduction makes
against 1-D methods:

1. **communication volume** grows linearly in P for the 1-D column mapping
   but as sqrt(P) for a 2-D CP mapping;
2. **critical path** of the column task decomposition is O(k^2) for a
   k x k grid versus O(k) for the block decomposition.

Plus the bottom line: simulated factorization performance of the same block
fan-out engine under 1-D block-column vs 2-D heuristic ownership.
"""

from __future__ import annotations

from repro.analysis import communication_volume, critical_path
from repro.baselines import (
    oned_block_owners,
    oned_column_comm_volume,
    oned_column_critical_path,
)
from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult
from repro.fanout import block_owners, simulate_fanout
from repro.machine.params import PARAGON
from repro.mapping import heuristic_map, square_grid
from repro.matrices import grid2d_matrix
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor


def run_volume_scaling(
    scale: str = "medium",
    matrix: str = "CUBE30",
    Ps: tuple[int, ...] = (16, 36, 64, 100),
    machine=PARAGON,
) -> ExperimentResult:
    """Communication volume of the 1-D *column* method (analytic) versus the
    2-D block mapping (static accounting) as P grows."""
    prep = prepare_problem(matrix, scale)
    tg, wm, sf = prep.taskgraph, prep.workmodel, prep.symbolic
    rows = []
    data = {}
    for P in Ps:
        grid = square_grid(P)
        owners_2d = block_owners(tg, heuristic_map(wm, grid, "ID", "CY"))
        v2 = communication_volume(tg, owners_2d, machine).bytes
        v1 = oned_column_comm_volume(sf, P, machine)
        data[P] = {"oned_mb": v1 / 1e6, "twod_mb": v2 / 1e6,
                   "ratio": v1 / max(1, v2)}
        rows.append((matrix, P, v1 / 1e6, v2 / 1e6, v1 / max(1, v2)))
    return ExperimentResult(
        experiment=f"Sec. 1: comm volume, 1-D vs 2-D ({matrix}, scale={scale})",
        headers=("Matrix", "P", "1-D MB", "2-D MB", "ratio"),
        rows=rows,
        data=data,
        notes=(
            "Expected: the 1-D/2-D volume ratio grows with P "
            "(linear vs sqrt(P) scaling)."
        ),
    )


def run_critical_path_scaling(
    ks: tuple[int, ...] = (16, 24, 32, 48),
    machine=PARAGON,
) -> ExperimentResult:
    """Critical path of column vs block decompositions on k x k grids."""
    rows = []
    data = {}
    for k in ks:
        p = grid2d_matrix(k)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        from repro.blocks import BlockPartition, BlockStructure, WorkModel
        from repro.fanout import TaskGraph

        tg = TaskGraph(WorkModel(BlockStructure(BlockPartition(sf, 16))))
        cp1 = oned_column_critical_path(sf, machine)
        cp2 = critical_path(tg, machine)
        ratio = cp1.length_seconds / cp2.length_seconds
        data[k] = {"oned_ms": cp1.length_seconds * 1e3,
                   "twod_ms": cp2.length_seconds * 1e3, "ratio": ratio}
        rows.append((k, cp1.length_seconds * 1e3, cp2.length_seconds * 1e3,
                     ratio))
    return ExperimentResult(
        experiment="Sec. 1: critical path, column (1-D) vs block (2-D) tasks",
        headers=("k", "1-D path (ms)", "2-D path (ms)", "ratio"),
        rows=rows,
        data=data,
        notes=(
            "Expected: the ratio grows roughly linearly in k "
            "(O(k^2) vs O(k))."
        ),
    )


def run_performance(
    scale: str = "medium",
    P: int = 64,
    machine=PARAGON,
) -> ExperimentResult:
    """Simulated Mflops: 1-D block-column vs 2-D heuristic ownership."""
    from repro.matrices.registry import problem_names

    grid = square_grid(P)
    rows = []
    data = {}
    for name in problem_names("table1"):
        prep = prepare_problem(name, scale)
        tg, wm = prep.taskgraph, prep.workmodel
        r1 = simulate_fanout(tg, oned_block_owners(tg, P), P,
                             machine=machine, factor_ops=prep.factor_ops)
        owners_2d = block_owners(tg, heuristic_map(wm, grid, "ID", "CY"))
        r2 = simulate_fanout(tg, owners_2d, P, machine=machine,
                             factor_ops=prep.factor_ops)
        data[name] = {"oned": r1.mflops, "twod": r2.mflops,
                      "oned_mb": r1.comm_bytes / 1e6,
                      "twod_mb": r2.comm_bytes / 1e6}
        rows.append((name, r1.mflops, r2.mflops,
                     r1.comm_bytes / 1e6, r2.comm_bytes / 1e6))
    return ExperimentResult(
        experiment=f"Sec. 1: 1-D vs 2-D simulated performance (P={P}, scale={scale})",
        headers=("Matrix", "1-D Mflops", "2-D Mflops", "1-D MB", "2-D MB"),
        rows=rows,
        data=data,
        notes="Expected: 2-D wins broadly; 1-D moves far more data.",
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    scale = sys.argv[1] if len(sys.argv) > 1 else "medium"
    print(run_volume_scaling(scale).render())
    print()
    print(run_critical_path_scaling().render())
    print()
    print(run_performance(scale).render("{:.1f}"))
