"""Shared problem-preparation pipeline with caching.

Symbolic analysis and task-graph construction are mapping-independent, so
experiments that sweep mappings (Tables 4, 5) reuse one prepared problem per
(matrix, scale, block size, blocking policy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocks import BlockPartition, BlockStructure, WorkModel, make_partition
from repro.fanout import TaskGraph
from repro.matrices import get_problem
from repro.matrices.problem import ProblemMatrix
from repro.ordering import order_problem
from repro.symbolic import SymbolicFactor, symbolic_factor

#: The paper's block size (§3.2) — used by every experiment unless swept.
PAPER_BLOCK_SIZE = 48


@dataclass
class PreparedProblem:
    """Everything mapping experiments need, computed once per problem."""

    problem: ProblemMatrix
    symbolic: SymbolicFactor
    partition: BlockPartition
    structure: BlockStructure
    workmodel: WorkModel
    taskgraph: TaskGraph

    @property
    def name(self) -> str:
        return self.problem.name

    @property
    def factor_ops(self) -> int:
        return self.symbolic.factor_ops


_CACHE: dict[tuple, PreparedProblem] = {}


def prepare_problem(
    name: str,
    scale: str = "medium",
    block_size: int = PAPER_BLOCK_SIZE,
    use_cache: bool = True,
    block_policy: str = "uniform",
    min_width: int | None = None,
    max_width: int | None = None,
) -> PreparedProblem:
    """Generate, order, analyze and block-partition benchmark problem ``name``."""
    key = (name, scale, block_size, block_policy, min_width, max_width)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    problem = get_problem(name, scale)
    ordering = order_problem(problem)
    sf = symbolic_factor(problem.A, ordering)
    partition = make_partition(
        sf,
        block_policy=block_policy,
        block_size=block_size,
        min_width=min_width,
        max_width=max_width,
    )
    structure = BlockStructure(partition)
    workmodel = WorkModel(structure)
    taskgraph = TaskGraph(workmodel)
    prepared = PreparedProblem(
        problem=problem,
        symbolic=sf,
        partition=partition,
        structure=structure,
        workmodel=workmodel,
        taskgraph=taskgraph,
    )
    if use_cache:
        _CACHE[key] = prepared
    return prepared


def clear_cache() -> None:
    _CACHE.clear()
