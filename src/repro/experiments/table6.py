"""Table 6: statistics of the larger benchmark problems."""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult
from repro.experiments.table1 import run as _run_table1


def run(scale: str = "medium") -> ExperimentResult:
    res = _run_table1(scale=scale, suite="table6")
    res.experiment = f"Table 6: large benchmark matrices (scale={scale})"
    return res


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render("{:.1f}"))
