"""Table 3: balance per remapping heuristic on BCSSTK31 (P = 64, B = 48).

Each heuristic is applied to both the row and the column mapping. The
paper's findings: every heuristic removes the diagonal imbalance; DW and ID
give the best row/column balances; IN is the weakest but still far better
than cyclic.
"""

from __future__ import annotations

from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult
from repro.mapping import balance_metrics, cyclic_map, heuristic_map, square_grid

#: Published Table 3: row, col, diag, overall balance.
PAPER_TABLE3 = {
    "CY": (0.75, 0.95, 0.73, 0.54),
    "DW": (0.99, 0.99, 0.92, 0.76),
    "IN": (0.83, 0.96, 0.90, 0.72),
    "DN": (0.99, 0.98, 0.93, 0.81),
    "ID": (0.99, 0.99, 0.96, 0.81),
}

HEADERS = ("Heuristic", "Row", "Col", "Diag", "Overall",
           "Paper row", "Paper col", "Paper diag", "Paper overall")


def run(
    scale: str = "medium", P: int = 64, matrix: str = "BCSSTK31"
) -> ExperimentResult:
    grid = square_grid(P)
    prep = prepare_problem(matrix, scale)
    rows = []
    data = {}
    for h in ("CY", "DW", "IN", "DN", "ID"):
        if h == "CY":
            cmap = cyclic_map(prep.partition.npanels, grid)
        else:
            cmap = heuristic_map(prep.workmodel, grid, h, h)
        bal = balance_metrics(prep.workmodel, cmap)
        data[h] = bal
        rows.append((h, *bal.as_row(), *PAPER_TABLE3[h]))
    return ExperimentResult(
        experiment=(
            f"Table 3: balance by heuristic, {matrix} (P={P}, B=48, scale={scale})"
        ),
        headers=HEADERS,
        rows=rows,
        data=data,
        paper_reference=PAPER_TABLE3,
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render())
