"""Ablations of design choices called out in DESIGN.md.

* **block size** — B trades single-node efficiency against concurrency
  (§3.2 chose 48; §5 reports that stage-varying B does not help balance);
* **domains** — how much communication the domain portion saves (§2.3);
* **communication-free machine** — isolates load imbalance from
  communication, verifying the balance statistic bounds efficiency tightly.
"""

from __future__ import annotations

from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult, pct
from repro.fanout import assign_domains, run_fanout
from repro.machine.params import PARAGON, ZERO_COMM, MachineParams
from repro.mapping import balance_metrics, heuristic_map, square_grid
from repro.mapping.balance import overall_balance_from_owners
from repro.fanout.ownership import block_owners


def run_block_size(
    scale: str = "medium",
    P: int = 64,
    matrix: str = "BCSSTK31",
    sizes: tuple[int, ...] = (16, 24, 48, 96),
    machine=PARAGON,
) -> ExperimentResult:
    grid = square_grid(P)
    rows = []
    data = {}
    for B in sizes:
        prep = prepare_problem(matrix, scale, block_size=B)
        cmap = heuristic_map(prep.workmodel, grid, "ID", "CY")
        res = run_fanout(
            prep.taskgraph, cmap, machine=machine,
            domains=assign_domains(prep.workmodel, P),
            factor_ops=prep.factor_ops,
        )
        bal = balance_metrics(prep.workmodel, cmap).overall
        data[B] = {"mflops": res.mflops, "balance": bal,
                   "npanels": prep.partition.npanels}
        rows.append((B, prep.partition.npanels, bal, res.mflops))
    return ExperimentResult(
        experiment=f"Ablation: block size sweep, {matrix} (P={P}, scale={scale})",
        headers=("B", "Panels", "Overall balance", "Mflops"),
        rows=rows,
        data=data,
        notes="B trades per-op overhead against concurrency; 48 was the paper's pick.",
    )


def run_domains_ablation(
    scale: str = "medium", P: int = 64, machine=PARAGON
) -> ExperimentResult:
    from repro.matrices.registry import problem_names

    grid = square_grid(P)
    rows = []
    data = {}
    for name in problem_names("table1"):
        prep = prepare_problem(name, scale)
        cmap = heuristic_map(prep.workmodel, grid, "ID", "CY")
        with_dom = run_fanout(
            prep.taskgraph, cmap, machine=machine,
            domains=assign_domains(prep.workmodel, P),
            factor_ops=prep.factor_ops,
        )
        without = run_fanout(
            prep.taskgraph, cmap, machine=machine, domains=None,
            factor_ops=prep.factor_ops,
        )
        saved = pct(without.comm_bytes, max(1, with_dom.comm_bytes))
        data[name] = {
            "bytes_with": with_dom.comm_bytes,
            "bytes_without": without.comm_bytes,
            "mflops_with": with_dom.mflops,
            "mflops_without": without.mflops,
        }
        rows.append(
            (name, with_dom.comm_bytes / 1e6, without.comm_bytes / 1e6,
             saved, with_dom.mflops, without.mflops)
        )
    return ExperimentResult(
        experiment=f"Ablation: domain decomposition (P={P}, scale={scale})",
        headers=("Matrix", "MB w/ domains", "MB w/o", "Extra vol %",
                 "Mflops w/", "Mflops w/o"),
        rows=rows,
        data=data,
        notes="Domains exist to cut communication volume (Sec. 2.3).",
    )


def run_zero_comm(
    scale: str = "medium", P: int = 64
) -> ExperimentResult:
    """On a zero-communication machine, efficiency should approach the
    overall-balance bound (remaining gap = critical path + scheduling)."""
    from repro.matrices.registry import problem_names

    grid = square_grid(P)
    rows = []
    data = {}
    for name in problem_names("table1"):
        prep = prepare_problem(name, scale)
        cmap = heuristic_map(prep.workmodel, grid, "ID", "CY")
        domains = assign_domains(prep.workmodel, P)
        owners = block_owners(prep.taskgraph, cmap, domains)
        bound = overall_balance_from_owners(prep.workmodel, owners, P)
        res = run_fanout(
            prep.taskgraph, cmap, machine=ZERO_COMM, domains=domains,
            factor_ops=prep.factor_ops,
        )
        data[name] = {"efficiency": res.efficiency, "bound": bound}
        rows.append((name, res.efficiency, bound, bound - res.efficiency))
    return ExperimentResult(
        experiment=f"Ablation: zero-communication machine (P={P}, scale={scale})",
        headers=("Matrix", "Efficiency", "Balance bound", "Gap"),
        rows=rows,
        data=data,
        notes="efficiency <= bound always; the gap is scheduling/critical path.",
    )


def run_contention(
    scale: str = "medium", P: int = 64
) -> ExperimentResult:
    """Receive-side NIC contention: how robust is the heuristic's win when
    column broadcasts congest the receivers? (A model knob the Paragon's
    contention-free abstraction hides.)"""
    from repro.matrices.registry import problem_names

    grid = square_grid(P)
    congested = MachineParams(rx_bandwidth=PARAGON.bandwidth)
    rows = []
    data = {}
    for name in problem_names("table1"):
        prep = prepare_problem(name, scale)
        domains = assign_domains(prep.workmodel, P)
        cyc_map = heuristic_map(prep.workmodel, grid, "CY", "CY")
        heu_map = heuristic_map(prep.workmodel, grid, "ID", "CY")
        cyc = run_fanout(prep.taskgraph, cyc_map, machine=congested,
                         domains=domains, factor_ops=prep.factor_ops)
        heu = run_fanout(prep.taskgraph, heu_map, machine=congested,
                         domains=domains, factor_ops=prep.factor_ops)
        free = run_fanout(prep.taskgraph, heu_map, machine=PARAGON,
                          domains=domains, factor_ops=prep.factor_ops)
        gain = pct(heu.mflops, cyc.mflops)
        slowdown = pct(free.mflops, heu.mflops)
        data[name] = {"gain_under_contention": gain,
                      "contention_cost_pct": slowdown}
        rows.append((name, cyc.mflops, heu.mflops, gain, slowdown))
    return ExperimentResult(
        experiment=f"Ablation: receiver contention (P={P}, scale={scale})",
        headers=("Matrix", "Cyclic Mflops", "Heur Mflops",
                 "Heur gain %", "Contention cost %"),
        rows=rows,
        data=data,
        notes="The remapping win should survive receiver congestion.",
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    scale = sys.argv[1] if len(sys.argv) > 1 else "medium"
    print(run_block_size(scale).render())
    print()
    print(run_domains_ablation(scale).render())
    print()
    print(run_zero_comm(scale).render("{:.3f}"))
    print()
    print(run_contention(scale).render())
