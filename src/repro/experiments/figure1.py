"""Figure 1: parallel efficiency and overall balance of the block fan-out
method with the cyclic mapping, per benchmark matrix, P = 64 and 100.

The figure's message: overall balance is an upper bound on efficiency,
efficiencies are generally low (16-58% in the paper), and the bound is a
meaningful but imperfect predictor.
"""

from __future__ import annotations

from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult
from repro.fanout import assign_domains, block_owners, run_fanout
from repro.machine.params import PARAGON
from repro.mapping import cyclic_map, square_grid
from repro.mapping.balance import overall_balance_from_owners
from repro.matrices.registry import problem_names
from repro.util.ascii_chart import bar_chart

HEADERS = ("Matrix", "P", "Efficiency", "Overall balance")


def run(
    scale: str = "medium",
    Ps: tuple[int, ...] = (64, 100),
    machine=PARAGON,
) -> ExperimentResult:
    rows = []
    series: dict[int, list[tuple[str, float, float]]] = {P: [] for P in Ps}
    for name in problem_names("table1"):
        prep = prepare_problem(name, scale)
        for P in Ps:
            grid = square_grid(P)
            cmap = cyclic_map(prep.partition.npanels, grid)
            domains = assign_domains(prep.workmodel, P)
            owners = block_owners(prep.taskgraph, cmap, domains)
            bal = overall_balance_from_owners(prep.workmodel, owners, P)
            res = run_fanout(
                prep.taskgraph,
                cmap,
                machine=machine,
                domains=domains,
                factor_ops=prep.factor_ops,
            )
            rows.append((name, P, res.efficiency, bal))
            series[P].append((name, res.efficiency, bal))
    result = ExperimentResult(
        experiment=f"Figure 1: efficiency and overall balance, cyclic (scale={scale})",
        headers=HEADERS,
        rows=rows,
        data=series,
        notes="Invariant: efficiency <= overall balance for every point.",
    )
    charts = []
    for P, pts in series.items():
        chart = bar_chart(
            [name for name, _, _ in pts],
            {
                "efficiency": [e for _, e, _ in pts],
                "balance": [b for _, _, b in pts],
            },
            width=40,
            vmax=1.0,
        )
        charts.append(f"P = {P}\n{chart}")
    result.notes += "\n\n" + "\n\n".join(charts)
    return result


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render("{:.3f}"))
