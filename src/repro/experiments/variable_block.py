"""§5: variable block size study.

The paper's (initially counterintuitive) finding: varying the block size
between the early and late stages of the factorization does **not** improve
load imbalance, and it **reduces** the parallelism available — the fixed-B
partition with a remapping heuristic wins.

This experiment compares, per matrix:

* fixed B = 48 (the paper's choice),
* stage-varying B (large early / small late),

under the same ID/CY heuristic mapping, reporting overall balance, the
critical-path bound on parallelism, and simulated Mflops.
"""

from __future__ import annotations

from repro.analysis import critical_path
from repro.blocks import BlockStructure, WorkModel
from repro.blocks.variable import VariableBlockPartition, stage_varying_policy
from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult
from repro.fanout import TaskGraph, assign_domains, run_fanout
from repro.machine.params import PARAGON
from repro.mapping import balance_metrics, heuristic_map, square_grid
from repro.matrices.registry import problem_names

HEADERS = (
    "Matrix",
    "Fixed bal",
    "Varying bal",
    "Fixed CP-eff",
    "Varying CP-eff",
    "Fixed Mflops",
    "Varying Mflops",
)


def run(
    scale: str = "medium",
    P: int = 64,
    machine=PARAGON,
    matrices: tuple[str, ...] | None = None,
) -> ExperimentResult:
    grid = square_grid(P)
    rows = []
    data = {}
    for name in matrices or problem_names("table1"):
        prep = prepare_problem(name, scale)
        sf = prep.symbolic

        var_part = VariableBlockPartition(sf, stage_varying_policy())
        var_wm = WorkModel(BlockStructure(var_part))
        var_tg = TaskGraph(var_wm)

        fixed = _evaluate(prep.workmodel, prep.taskgraph, grid, machine,
                          prep.factor_ops, P)
        varying = _evaluate(var_wm, var_tg, grid, machine, prep.factor_ops, P)
        data[name] = {"fixed": fixed, "varying": varying}
        rows.append(
            (
                name,
                fixed["balance"], varying["balance"],
                fixed["cp_eff"], varying["cp_eff"],
                fixed["mflops"], varying["mflops"],
            )
        )
    return ExperimentResult(
        experiment=f"Sec. 5: stage-varying block size (P={P}, scale={scale})",
        headers=HEADERS,
        rows=rows,
        data=data,
        notes=(
            "Paper: stage-varying B does not improve balance and reduces "
            "parallelism (lower CP-bound efficiency)."
        ),
    )


def _evaluate(wm, tg, grid, machine, factor_ops, P):
    cmap = heuristic_map(wm, grid, "ID", "CY")
    bal = balance_metrics(wm, cmap).overall
    cp = critical_path(tg, machine)
    res = run_fanout(
        tg, cmap, machine=machine, domains=assign_domains(wm, P),
        factor_ops=factor_ops,
    )
    return {
        "balance": bal,
        "cp_eff": cp.max_efficiency(P),
        "mflops": res.mflops,
    }


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render())
