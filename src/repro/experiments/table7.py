"""Table 7: performance (Mflops) on 144 and 196 nodes — cyclic vs the
increasing-depth-rows / cyclic-columns heuristic mapping.

The paper's headline result: the heuristic wins by roughly 20% on the large
problems; absolute Paragon Mflops are included for shape comparison.
"""

from __future__ import annotations

from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult, pct
from repro.fanout import assign_domains, run_fanout
from repro.machine.params import PARAGON
from repro.mapping import cyclic_map, heuristic_map, square_grid
from repro.matrices.registry import problem_names

#: Published Table 7: {P: {matrix: (cyclic Mflops, heuristic Mflops, %)}}.
PAPER_TABLE7 = {
    144: {
        "CUBE35": (1788, 2207, 23),
        "CUBE40": (2093, 2384, 14),
        "DENSE4096": (3587, 4156, 16),
        "BCSSTK31": (1161, 1322, 14),
        "COPTER2": (1693, 1779, 5),
        "10FLEET": (2027, 2246, 11),
    },
    196: {
        "CUBE35": (2019, 2456, 22),
        "CUBE40": (2515, 3187, 27),
        "DENSE4096": (4489, 5237, 17),
        "BCSSTK31": (1361, 1709, 26),
        "COPTER2": (1959, 2312, 18),
        "10FLEET": (2488, 2722, 9),
    },
}

HEADERS = (
    "P",
    "Matrix",
    "Cyclic Mflops",
    "Heuristic Mflops",
    "Improv %",
    "Paper cyc",
    "Paper heur",
    "Paper %",
)


def run(
    scale: str = "medium",
    Ps: tuple[int, ...] = (144, 196),
    machine=PARAGON,
) -> ExperimentResult:
    rows = []
    data = {}
    for P in Ps:
        grid = square_grid(P)
        for name in problem_names("table7"):
            prep = prepare_problem(name, scale)
            domains = assign_domains(prep.workmodel, P)
            base = run_fanout(
                prep.taskgraph,
                cyclic_map(prep.partition.npanels, grid),
                machine=machine,
                domains=domains,
                factor_ops=prep.factor_ops,
            )
            heur = run_fanout(
                prep.taskgraph,
                heuristic_map(prep.workmodel, grid, "ID", "CY"),
                machine=machine,
                domains=domains,
                factor_ops=prep.factor_ops,
            )
            improv = pct(heur.mflops, base.mflops)
            paper = PAPER_TABLE7.get(P, {}).get(name, ("-", "-", "-"))
            data[(P, name)] = (base.mflops, heur.mflops, improv)
            rows.append(
                (P, name, base.mflops, heur.mflops, improv, *paper)
            )
    return ExperimentResult(
        experiment=f"Table 7: large problems, cyclic vs ID/CY heuristic (scale={scale})",
        headers=HEADERS,
        rows=rows,
        data=data,
        paper_reference=PAPER_TABLE7,
        notes="Expected shape: heuristic wins on every problem, ~10-25%.",
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render("{:.0f}"))
