"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(scale=..., ...) -> ExperimentResult``; the
benchmark suite under ``benchmarks/`` wraps these, and the modules are
runnable directly (``python -m repro.experiments.table2``).
"""

from repro.experiments.pipeline import PreparedProblem, prepare_problem, clear_cache
from repro.experiments.runner import ExperimentResult

__all__ = ["PreparedProblem", "prepare_problem", "clear_cache", "ExperimentResult"]
