"""Table 4: mean improvement in overall balance, all 25 row x column
heuristic combinations, over the ten benchmark matrices (P = 64 and 100).

Improvement is relative to the cyclic/cyclic baseline, averaged over the
matrices, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult, pct
from repro.mapping import balance_metrics, cyclic_map, heuristic_map, square_grid
from repro.mapping.heuristics import HEURISTICS
from repro.matrices.registry import problem_names

#: Published Table 4 mean improvements (%), rows = row heuristic, cols =
#: column heuristic in order CY, DW, IN, DN, ID.
PAPER_TABLE4 = {
    64: {
        "CY": (0, 18, 17, 21, 17),
        "DW": (37, 34, 41, 47, 42),
        "IN": (19, 18, 21, 20, 24),
        "DN": (39, 37, 43, 43, 47),
        "ID": (39, 34, 45, 47, 43),
    },
    100: {
        "CY": (0, 19, 23, 22, 21),
        "DW": (39, 38, 56, 52, 50),
        "IN": (20, 24, 24, 31, 21),
        "DN": (41, 36, 50, 50, 49),
        "ID": (40, 37, 53, 54, 49),
    },
}


def overall_balance_grid(
    scale: str, P: int, matrices: tuple[str, ...]
) -> dict[tuple[str, str], float]:
    """Mean % improvement in overall balance for every (row, col) pair."""
    grid = square_grid(P)
    improvements: dict[tuple[str, str], list[float]] = {
        (rh, ch): [] for rh in HEURISTICS for ch in HEURISTICS
    }
    for name in matrices:
        prep = prepare_problem(name, scale)
        base = balance_metrics(
            prep.workmodel, cyclic_map(prep.partition.npanels, grid)
        ).overall
        for rh in HEURISTICS:
            for ch in HEURISTICS:
                cmap = heuristic_map(prep.workmodel, grid, rh, ch)
                bal = balance_metrics(prep.workmodel, cmap).overall
                improvements[(rh, ch)].append(pct(bal, base))
    return {k: float(np.mean(v)) for k, v in improvements.items()}


def run(scale: str = "medium", Ps: tuple[int, ...] = (64, 100)) -> ExperimentResult:
    matrices = problem_names("table1")
    headers = ["P", "Row heur."] + [f"col {c}" for c in HEURISTICS]
    rows = []
    data = {}
    for P in Ps:
        means = overall_balance_grid(scale, P, matrices)
        data[P] = means
        for rh in HEURISTICS:
            rows.append(
                [P, rh] + [means[(rh, ch)] for ch in HEURISTICS]
            )
    return ExperimentResult(
        experiment=f"Table 4: mean overall-balance improvement %, scale={scale}",
        headers=headers,
        rows=rows,
        data=data,
        paper_reference=PAPER_TABLE4,
        notes="Reference (paper): all remapped rows improve 34-56%.",
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render("{:.0f}"))
