"""Table 5: mean improvement in simulated parallel performance, all 25
row x column heuristic combinations, P = 64 and 100.

The paper's key observation: performance gains (~15-25%) are much smaller
than the balance gains (~35-55%) — once remapped, load balance stops being
the binding bottleneck. Each cell runs the full fan-out simulation with
domains on the Paragon-calibrated machine.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult, pct
from repro.fanout import assign_domains, run_fanout
from repro.machine.params import PARAGON
from repro.mapping import cyclic_map, heuristic_map, square_grid
from repro.mapping.heuristics import HEURISTICS
from repro.matrices.registry import problem_names

#: Published Table 5 mean improvements (%), same layout as Table 4.
PAPER_TABLE5 = {
    64: {
        "CY": (0, 13, 14, 15, 17),
        "DW": (21, 14, 18, 21, 19),
        "IN": (16, 13, 13, 15, 15),
        "DN": (18, 14, 18, 16, 18),
        "ID": (20, 14, 19, 19, 18),
    },
    100: {
        "CY": (0, 12, 19, 19, 20),
        "DW": (20, 16, 21, 19, 20),
        "IN": (20, 17, 11, 19, 19),
        "DN": (23, 15, 19, 15, 20),
        "ID": (24, 16, 20, 21, 18),
    },
}


def performance_grid(
    scale: str,
    P: int,
    matrices: tuple[str, ...],
    machine=PARAGON,
    use_domains: bool = True,
) -> dict[tuple[str, str], float]:
    """Mean % Mflops improvement over cyclic for every heuristic pair."""
    grid = square_grid(P)
    improvements: dict[tuple[str, str], list[float]] = {
        (rh, ch): [] for rh in HEURISTICS for ch in HEURISTICS
    }
    for name in matrices:
        prep = prepare_problem(name, scale)
        domains = assign_domains(prep.workmodel, P) if use_domains else None
        base = run_fanout(
            prep.taskgraph,
            cyclic_map(prep.partition.npanels, grid),
            machine=machine,
            domains=domains,
            factor_ops=prep.factor_ops,
        ).mflops
        for rh in HEURISTICS:
            for ch in HEURISTICS:
                cmap = heuristic_map(prep.workmodel, grid, rh, ch)
                res = run_fanout(
                    prep.taskgraph,
                    cmap,
                    machine=machine,
                    domains=domains,
                    factor_ops=prep.factor_ops,
                )
                improvements[(rh, ch)].append(pct(res.mflops, base))
    return {k: float(np.mean(v)) for k, v in improvements.items()}


def run(
    scale: str = "medium",
    Ps: tuple[int, ...] = (64, 100),
    matrices: tuple[str, ...] | None = None,
) -> ExperimentResult:
    matrices = matrices or problem_names("table1")
    headers = ["P", "Row heur."] + [f"col {c}" for c in HEURISTICS]
    rows = []
    data = {}
    for P in Ps:
        means = performance_grid(scale, P, matrices)
        data[P] = means
        for rh in HEURISTICS:
            rows.append([P, rh] + [means[(rh, ch)] for ch in HEURISTICS])
    return ExperimentResult(
        experiment=f"Table 5: mean parallel-performance improvement %, scale={scale}",
        headers=headers,
        rows=rows,
        data=data,
        paper_reference=PAPER_TABLE5,
        notes=(
            "Expected shape: remapped rows gain ~15-25%, far less than the "
            "balance gains of Table 4."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render("{:.0f}"))
