"""§5 (final question): could this sparse block approach beat specialized
dense solvers that use cyclic mappings?

Specialized distributed dense Cholesky (the LINPACK-style codes of [15])
uses a 2-D cyclic mapping — exactly the configuration the paper shows is
load-imbalanced. This experiment runs our fan-out engine on the dense
benchmark matrices under (a) the cyclic mapping (the "specialized dense
code" configuration), (b) cyclic on a relatively-prime grid, and (c) the
remapping heuristic, quantifying how much the heuristic's answer to the
paper's closing question is worth on dense problems.
"""

from __future__ import annotations

from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult, pct
from repro.fanout import run_fanout
from repro.machine.params import PARAGON
from repro.mapping import best_grid, cyclic_map, heuristic_map, square_grid

DENSE_PROBLEMS = ("DENSE1024", "DENSE2048", "DENSE4096")


def run(
    scale: str = "medium",
    P: int = 64,
    machine=PARAGON,
) -> ExperimentResult:
    sq = square_grid(P)
    pg = best_grid(P - 1)
    rows = []
    data = {}
    for name in DENSE_PROBLEMS:
        prep = prepare_problem(name, scale)
        tg, wm = prep.taskgraph, prep.workmodel
        # Dense matrices have no domain portion (one giant supernode).
        cyc = run_fanout(tg, cyclic_map(tg.npanels, sq), machine=machine,
                         factor_ops=prep.factor_ops)
        prime = run_fanout(tg, cyclic_map(tg.npanels, pg), machine=machine,
                           factor_ops=prep.factor_ops)
        heur = run_fanout(tg, heuristic_map(wm, sq, "ID", "CY"),
                          machine=machine, factor_ops=prep.factor_ops)
        gain = pct(heur.mflops, cyc.mflops)
        data[name] = {
            "cyclic": cyc.mflops,
            "prime": prime.mflops,
            "heuristic": heur.mflops,
            "gain_pct": gain,
        }
        rows.append((name, cyc.mflops, prime.mflops, heur.mflops, gain))
    return ExperimentResult(
        experiment=f"Sec. 5: dense problems, cyclic vs remapped (P={P}, scale={scale})",
        headers=("Matrix", "Cyclic Mflops", "Prime-grid", "Heuristic",
                 "Heur gain %"),
        rows=rows,
        data=data,
        notes=(
            "The paper asks whether heuristically-remapped block sparse "
            "codes could outrun cyclic-mapped dense codes; the gain column "
            "is the answer within this model."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render("{:.0f}"))
