"""Table 2: row/column/diagonal/overall balance of the 2-D cyclic mapping.

The paper's finding: diagonal imbalance is the most severe, then row
imbalance, then column imbalance; all three depress the overall bound.
"""

from __future__ import annotations

from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult
from repro.mapping import balance_metrics, cyclic_map, square_grid
from repro.matrices.registry import problem_names

#: Published Table 2 (P = 64, B = 48): row, col, diag, overall balance.
PAPER_TABLE2 = {
    "DENSE1024": (0.65, 0.95, 0.69, 0.46),
    "DENSE2048": (0.80, 0.99, 0.82, 0.67),
    "GRID150": (0.78, 0.86, 0.62, 0.48),
    "GRID300": (0.85, 0.89, 0.71, 0.54),
    "CUBE30": (0.87, 0.94, 0.77, 0.68),
    "CUBE35": (0.86, 0.94, 0.80, 0.66),
    "BCSSTK15": (0.70, 0.69, 0.58, 0.38),
    "BCSSTK29": (0.68, 0.75, 0.63, 0.39),
    "BCSSTK31": (0.75, 0.95, 0.73, 0.54),
    "BCSSTK33": (0.76, 0.89, 0.71, 0.53),
}

HEADERS = ("Matrix", "Row", "Col", "Diag", "Overall",
           "Paper row", "Paper col", "Paper diag", "Paper overall")


def run(scale: str = "medium", P: int = 64) -> ExperimentResult:
    grid = square_grid(P)
    rows = []
    data = {}
    for name in problem_names("table1"):
        prep = prepare_problem(name, scale)
        cmap = cyclic_map(prep.partition.npanels, grid)
        bal = balance_metrics(prep.workmodel, cmap)
        data[name] = bal
        paper = PAPER_TABLE2.get(name, (float("nan"),) * 4)
        rows.append((name, *bal.as_row(), *paper))
    return ExperimentResult(
        experiment=f"Table 2: cyclic-mapping balance (P={P}, B=48, scale={scale})",
        headers=HEADERS,
        rows=rows,
        data=data,
        paper_reference=PAPER_TABLE2,
        notes=(
            "Balance order expected: diagonal worst, then row, then column; "
            "overall below all three."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render())
