"""Table 1: benchmark matrix statistics (equations, nnz(L), ops to factor).

Ours are computed on the reproduction's (possibly rescaled, possibly
synthetic) instances; the paper's published values are shown alongside.
"""

from __future__ import annotations

from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult
from repro.matrices.registry import problem_names

HEADERS = (
    "Name",
    "Equations",
    "NZ in L",
    "Ops (M)",
    "Paper eqs",
    "Paper NZ",
    "Paper ops (M)",
)


def run(scale: str = "medium", suite: str = "table1") -> ExperimentResult:
    rows = []
    for name in problem_names(suite):
        prep = prepare_problem(name, scale)
        stats = prep.problem.meta["paper_stats"]
        rows.append(
            (
                name,
                prep.problem.n,
                prep.symbolic.factor_nnz,
                prep.factor_ops / 1e6,
                stats.equations,
                stats.nnz_factor,
                stats.factor_ops_millions,
            )
        )
    return ExperimentResult(
        experiment=f"Table 1: benchmark matrices (scale={scale})",
        headers=HEADERS,
        rows=rows,
        notes="Paper columns are the published full-size statistics.",
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(run(*(sys.argv[1:] or ["medium"])).render("{:.1f}"))
