"""§5 discussion experiments: critical paths, subtree-to-subcube mapping,
and the dynamic-scheduling refinement.

Three studies:

* **critical path** — after remapping, how much performance headroom does
  the task DAG still allow? (Paper: ~50% for BCSSTK15 and ~30% for BCSSTK31
  at P = 100.)
* **subtree-to-subcube** — the communication-optimized column mapping cuts
  volume up to ~30% but balances worse; on a high-bandwidth machine it loses.
* **priority scheduling** — the paper proposes priority-sensitive dynamic
  scheduling as future work; the simulator's priority mode implements it
  (earliest destination column first).
"""

from __future__ import annotations

from repro.analysis import communication_volume, critical_path
from repro.experiments.pipeline import prepare_problem
from repro.experiments.runner import ExperimentResult, pct
from repro.fanout import assign_domains, block_owners, run_fanout
from repro.machine.params import PARAGON
from repro.mapping import (
    balance_metrics,
    heuristic_map,
    square_grid,
    subtree_to_subcube_column_map,
)
from repro.matrices.registry import problem_names


def run_critical_path(
    scale: str = "medium",
    P: int = 100,
    matrices: tuple[str, ...] = ("BCSSTK15", "BCSSTK31"),
    machine=PARAGON,
) -> ExperimentResult:
    grid = square_grid(P)
    rows = []
    data = {}
    for name in matrices:
        prep = prepare_problem(name, scale)
        cp = critical_path(prep.taskgraph, machine)
        res = run_fanout(
            prep.taskgraph,
            heuristic_map(prep.workmodel, grid, "ID", "CY"),
            machine=machine,
            domains=assign_domains(prep.workmodel, P),
            factor_ops=prep.factor_ops,
        )
        headroom = pct(cp.max_efficiency(P), res.efficiency)
        data[name] = {
            "achieved_efficiency": res.efficiency,
            "cp_max_efficiency": cp.max_efficiency(P),
            "headroom_pct": headroom,
        }
        rows.append(
            (name, P, res.efficiency, cp.max_efficiency(P), headroom)
        )
    return ExperimentResult(
        experiment=f"Sec. 5: critical-path headroom (scale={scale})",
        headers=("Matrix", "P", "Achieved eff.", "CP-bound eff.", "Headroom %"),
        rows=rows,
        data=data,
        notes="Paper: ~50% headroom for BCSSTK15, ~30% for BCSSTK31 at P=100.",
    )


def run_subcube(
    scale: str = "medium", P: int = 64, machine=PARAGON
) -> ExperimentResult:
    grid = square_grid(P)
    rows = []
    data = {}
    for name in problem_names("table1"):
        prep = prepare_problem(name, scale)
        heur = heuristic_map(prep.workmodel, grid, "ID", "CY")
        sub = subtree_to_subcube_column_map(prep.workmodel, grid, "ID")
        own_h = block_owners(prep.taskgraph, heur)
        own_s = block_owners(prep.taskgraph, sub)
        comm_h = communication_volume(prep.taskgraph, own_h, machine)
        comm_s = communication_volume(prep.taskgraph, own_s, machine)
        bal_h = balance_metrics(prep.workmodel, heur).overall
        bal_s = balance_metrics(prep.workmodel, sub).overall
        perf_h = run_fanout(
            prep.taskgraph, heur, machine=machine, factor_ops=prep.factor_ops
        ).mflops
        perf_s = run_fanout(
            prep.taskgraph, sub, machine=machine, factor_ops=prep.factor_ops
        ).mflops
        vol_delta = pct(comm_s.bytes, comm_h.bytes)
        data[name] = {
            "volume_change_pct": vol_delta,
            "balance_heuristic": bal_h,
            "balance_subcube": bal_s,
            "perf_change_pct": pct(perf_s, perf_h),
        }
        rows.append(
            (name, comm_h.bytes / 1e6, comm_s.bytes / 1e6, vol_delta,
             bal_h, bal_s, pct(perf_s, perf_h))
        )
    return ExperimentResult(
        experiment=f"Sec. 5: subtree-to-subcube columns (P={P}, scale={scale})",
        headers=("Matrix", "Heur MB", "Subcube MB", "Vol change %",
                 "Heur bal", "Subcube bal", "Perf change %"),
        rows=rows,
        data=data,
        notes=(
            "Paper: volume drops (up to 30%), balance degrades to cyclic "
            "levels, net performance is lower on the Paragon."
        ),
    )


def run_priority_scheduling(
    scale: str = "medium",
    P: int = 64,
    machine=PARAGON,
    policies: tuple[str, ...] = ("fifo", "column", "depth", "bottom_level"),
) -> ExperimentResult:
    """Answer the paper's open question within the model: does priority-
    sensitive dynamic scheduling beat the purely data-driven (FIFO) order?

    Policies: FIFO (the paper's code), earliest-destination-column,
    deepest-destination, and bottom-level (critical-path/HLF) scheduling.
    """
    from repro.fanout.priorities import task_priorities
    from repro.fanout import block_owners, simulate_fanout

    grid = square_grid(P)
    rows = []
    data = {}
    for name in problem_names("table1"):
        prep = prepare_problem(name, scale)
        domains = assign_domains(prep.workmodel, P)
        cmap = heuristic_map(prep.workmodel, grid, "ID", "CY")
        owners = block_owners(prep.taskgraph, cmap, domains)
        depth = prep.partition.panel_depths()
        mflops = {}
        for policy in policies:
            prio = task_priorities(prep.taskgraph, policy, depth=depth,
                                   machine=machine)
            res = simulate_fanout(
                prep.taskgraph, owners, grid.P, machine=machine,
                priorities=prio, factor_ops=prep.factor_ops,
            )
            mflops[policy] = res.mflops
        base = mflops["fifo"]
        data[name] = {pol: pct(v, base) for pol, v in mflops.items()}
        rows.append((name, *[mflops[pol] for pol in policies]))
    return ExperimentResult(
        experiment=f"Sec. 5 (future work): scheduling policies (P={P}, scale={scale})",
        headers=("Matrix", *[f"{p} Mflops" for p in policies]),
        rows=rows,
        data=data,
        notes=(
            "The paper proposed priority-sensitive scheduling as future "
            "work; bottom_level is classic critical-path (HLF) scheduling."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    scale = sys.argv[1] if len(sys.argv) > 1 else "medium"
    print(run_critical_path(scale).render("{:.3f}"))
    print()
    print(run_subcube(scale).render())
    print()
    print(run_priority_scheduling(scale).render("{:.1f}"))
