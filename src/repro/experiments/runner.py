"""Experiment result container and rendering helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.util.formatting import format_table


@dataclass
class ExperimentResult:
    """A reproduced table/figure: headers + rows + free-form data.

    ``paper_reference`` optionally carries the numbers published in the
    paper for side-by-side comparison in rendered output and EXPERIMENTS.md.
    """

    experiment: str
    headers: Sequence[str]
    rows: list[Sequence[Any]]
    data: dict = field(default_factory=dict)
    paper_reference: dict = field(default_factory=dict)
    notes: str = ""

    def render(self, floatfmt: str = "{:.2f}") -> str:
        out = format_table(self.headers, self.rows, title=self.experiment,
                           floatfmt=floatfmt)
        if self.notes:
            out += "\n" + self.notes
        return out

    def to_json(self) -> str:
        """Machine-readable form (rows + paper reference; data omitted when
        not JSON-serializable)."""
        import json

        def default(obj):
            try:
                import numpy as np

                if isinstance(obj, np.integer):
                    return int(obj)
                if isinstance(obj, np.floating):
                    return float(obj)
                if isinstance(obj, np.ndarray):
                    return obj.tolist()
            except ImportError:  # pragma: no cover
                pass
            return str(obj)

        payload = {
            "experiment": self.experiment,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "paper_reference": self.paper_reference,
            "notes": self.notes,
        }
        return json.dumps(payload, default=default, indent=2)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def pct(new: float, base: float) -> float:
    """Percent improvement of ``new`` over ``base``."""
    if base == 0:
        return 0.0
    return 100.0 * (new - base) / base
