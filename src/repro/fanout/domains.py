"""Domain decomposition: disjoint elimination-tree subtrees per processor.

The block fan-out method does not 2-D-map the whole matrix (§2.3): columns in
disjoint subtrees of the elimination tree — the *domain* portion — are each
assigned wholly to one processor (1-D block-column mapping); only the *root*
portion is 2-D mapped. Domains drastically reduce communication because all
updates inside a subtree are local.

Domain selection: descend from the supernode-tree roots splitting any subtree
whose work exceeds ``total_work / (split_factor * P)``; greedily number-
partition the resulting subtrees over the P processors by decreasing work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocks.workmodel import WorkModel
from repro.symbolic.supernodes import supernode_parents
from repro.util.arrays import INDEX_DTYPE


@dataclass
class DomainAssignment:
    """``panel_owner[K]`` = processor rank owning domain panel K, or -1 when
    panel K belongs to the 2-D-mapped root portion."""

    panel_owner: np.ndarray

    @property
    def is_root_panel(self) -> np.ndarray:
        return self.panel_owner < 0

    @property
    def domain_fraction(self) -> float:
        n = self.panel_owner.shape[0]
        return float((self.panel_owner >= 0).sum()) / max(1, n)


def no_domains(npanels: int) -> DomainAssignment:
    """Everything in the root portion (pure 2-D mapping)."""
    return DomainAssignment(np.full(npanels, -1, dtype=INDEX_DTYPE))


def assign_domains(
    wm: WorkModel,
    P: int,
    split_factor: float = 2.0,
) -> DomainAssignment:
    """Choose domains and pack them onto ``P`` processors."""
    if P < 1:
        raise ValueError("P must be positive")
    part = wm.structure.partition
    sf = part.symbolic
    nsup = sf.nsupernodes
    N = part.npanels
    if nsup == 0:
        return no_domains(N)

    sparent = supernode_parents(sf.snode_ptr, sf.parent)
    snode_work = np.zeros(nsup, dtype=np.float64)
    np.add.at(snode_work, part.panel_snode, wm.workJ)
    subtree = snode_work.copy()
    for s in range(nsup):
        p = sparent[s]
        if p != -1:
            subtree[int(p)] += subtree[s]

    children: list[list[int]] = [[] for _ in range(nsup)]
    roots: list[int] = []
    for s in range(nsup):
        p = int(sparent[s])
        (roots if p == -1 else children[p]).append(s)

    threshold = wm.total_work / (split_factor * P)
    domain_roots: list[int] = []
    stack = list(roots)
    while stack:
        s = stack.pop()
        if subtree[s] <= threshold:
            domain_roots.append(s)
        elif children[s]:
            stack.extend(children[s])
        # else: an oversized leaf supernode (e.g. the single supernode of a
        # dense matrix) stays in the 2-D-mapped root portion.

    # Greedy number partitioning of domain subtrees over processors.
    domain_roots.sort(key=lambda s: -subtree[s])
    loads = np.zeros(P, dtype=np.float64)
    snode_owner = np.full(nsup, -1, dtype=INDEX_DTYPE)
    for s in domain_roots:
        p = int(np.argmin(loads))
        loads[p] += subtree[s]
        # Assign the whole subtree of s to p (descendants of s only).
        sub_stack = [s]
        while sub_stack:
            t = sub_stack.pop()
            snode_owner[t] = p
            sub_stack.extend(children[t])

    panel_owner = snode_owner[part.panel_snode]
    return DomainAssignment(panel_owner.astype(INDEX_DTYPE))
