"""Task priority policies for the simulator's dynamic-scheduling mode.

§5 leaves open whether scheduling "more sensitive to some measures of
priority of tasks than the purely data-driven approach" would close the gap
between achieved efficiency and the critical-path bound. The simulator's
priority mode takes a per-task priority array (lower value = run first);
this module provides the candidate policies:

``column``
    earliest destination block column first (eliminate early columns
    eagerly — the simulator's built-in default priority);
``depth``
    deepest destination first (drain the elimination-tree leaves, keeping
    domains busy);
``bottom_level``
    classic HLF/critical-path scheduling: tasks with the longest remaining
    dependence chain first. Computed by a reverse sweep over the task DAG.
"""

from __future__ import annotations

import numpy as np

from repro.fanout.tasks import BDIV, BFAC, BMOD, TaskGraph
from repro.machine.params import PARAGON, MachineParams

POLICIES = ("fifo", "column", "depth", "bottom_level")


def column_priorities(tg: TaskGraph) -> np.ndarray:
    """Earliest destination column first (ties: earliest row)."""
    dest = tg.task_block
    return (tg.block_J[dest] * tg.npanels + tg.block_I[dest]).astype(
        np.float64
    )


def depth_priorities(tg: TaskGraph, depth: np.ndarray) -> np.ndarray:
    """Deepest destination panel first. ``depth`` is per-panel."""
    dest_panel = tg.block_J[tg.task_block]
    return -depth[dest_panel].astype(np.float64)


def bottom_level_priorities(
    tg: TaskGraph, machine: MachineParams = PARAGON
) -> np.ndarray:
    """Negative bottom level (longest remaining chain first).

    The bottom level of a task is its own duration plus the longest bottom
    level among its successors. Successor structure of the fan-out DAG:

    * ``BMOD`` into block b  ->  the BFAC/BDIV task of block b;
    * ``BDIV`` of block b    ->  every BMOD consuming b (``dep_tasks``);
    * ``BFAC`` of panel K    ->  the BDIV tasks of panel K's blocks.

    Every successor lives in the same or a later panel, and within a panel
    the stage order is BDIVs' consumers (later panels) -> BDIV -> BFAC, so
    one reverse sweep over panels computes exact levels.
    """
    dur = (tg.task_flops + machine.op_fixed_flops) / machine.flop_rate
    level = np.zeros(tg.ntasks)
    N = tg.npanels

    # Group BMOD tasks by source panel (panel of src1).
    mod_ids = np.flatnonzero(tg.task_kind == BMOD)
    mod_src_panel = tg.block_J[tg.task_src1[mod_ids]]
    order = np.argsort(mod_src_panel, kind="stable")
    mod_ids = mod_ids[order]
    mod_src_panel = mod_src_panel[order]
    panel_start = np.searchsorted(mod_src_panel, np.arange(N + 1))

    # Per-block: its factor task (BFAC for diagonal, BDIV for subdiagonal).
    factor_task = np.where(tg.bfac_task >= 0, tg.bfac_task, tg.bdiv_task)
    # Per-panel BFAC task id.
    fac_ids = np.flatnonzero(tg.task_kind == BFAC)
    bfac_of_panel = np.full(N, -1, dtype=np.int64)
    bfac_of_panel[tg.block_J[tg.task_block[fac_ids]]] = fac_ids

    for k in range(N - 1, -1, -1):
        # 1. BMODs sourced from panel k: successor = dest block's factor task
        #    (in panel > k, already leveled).
        mods = mod_ids[panel_start[k] : panel_start[k + 1]]
        if mods.size:
            succ = factor_task[tg.task_block[mods]]
            level[mods] = dur[mods] + level[succ]
        # 2. BDIVs of panel k: successors = BMODs consuming the block.
        sub = tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]]
        best_bdiv = 0.0
        for b in sub:
            deps = tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]
            t = int(tg.bdiv_task[b])
            succ_level = level[deps].max() if deps.size else 0.0
            level[t] = dur[t] + succ_level
            if level[t] > best_bdiv:
                best_bdiv = float(level[t])
        # 3. BFAC of panel k: successors = the panel's BDIVs.
        t = int(bfac_of_panel[k])
        level[t] = dur[t] + best_bdiv
    return -level


def task_priorities(
    tg: TaskGraph,
    policy: str,
    depth: np.ndarray | None = None,
    machine: MachineParams = PARAGON,
) -> np.ndarray | None:
    """Priority array for ``policy`` (None for pure FIFO)."""
    if policy == "fifo":
        return None
    if policy == "column":
        return column_priorities(tg)
    if policy == "depth":
        if depth is None:
            raise ValueError("depth policy requires per-panel depths")
        return depth_priorities(tg, depth)
    if policy == "bottom_level":
        return bottom_level_priorities(tg, machine)
    raise KeyError(f"unknown policy {policy!r}; expected one of {POLICIES}")
