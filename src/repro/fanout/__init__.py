"""The parallel block fan-out method (§2.3) on the simulated machine.

``TaskGraph`` turns a block structure into the BFAC/BDIV/BMOD task DAG with
fan-out dependency counters; ``simulate_fanout`` runs the data-driven
algorithm — block completions trigger messages, message arrivals enable
tasks — on the discrete-event machine and reports runtime, efficiency,
Mflops, and communication statistics. ``assign_domains`` implements the
domain (subtree-to-processor) portion of the method.
"""

from repro.fanout.tasks import TaskGraph
from repro.fanout.domains import DomainAssignment, assign_domains
from repro.fanout.ownership import block_owners
from repro.fanout.priorities import task_priorities
from repro.fanout.simulator import FanoutResult, simulate_fanout, run_fanout

__all__ = [
    "TaskGraph",
    "DomainAssignment",
    "assign_domains",
    "block_owners",
    "task_priorities",
    "FanoutResult",
    "simulate_fanout",
    "run_fanout",
]
