"""Block ownership: 2-D mapping for the root portion, 1-D for domains.

The owner of block (I, J) performs every block operation whose destination
is (I, J) (§2.3). Domain panels are column-owned by their domain processor;
root-portion blocks follow the :class:`BlockMap`.
"""

from __future__ import annotations

import numpy as np

from repro.fanout.domains import DomainAssignment
from repro.fanout.tasks import TaskGraph
from repro.mapping.base import BlockMap


def block_owners(
    tg: TaskGraph,
    cmap: BlockMap,
    domains: DomainAssignment | None = None,
) -> np.ndarray:
    """Linear processor rank of every block in the task graph.

    A block in a domain column belongs to the domain's processor (1-D
    block-column mapping of the domain portion); all other blocks follow the
    2-D block mapping.
    """
    if cmap.npanels != tg.npanels:
        raise ValueError("mapping and task graph disagree on panel count")
    owners = cmap.owner_array(tg.block_I, tg.block_J)
    if domains is not None:
        dom = domains.panel_owner[tg.block_J]
        owners = np.where(dom >= 0, dom, owners)
    return owners.astype(np.int64)
