"""Discrete-event simulation of the data-driven block fan-out method.

The simulation mirrors §2.3 exactly:

* every block operation executes at the owner of its destination block;
* a processor works through ready operations serially (FIFO arrival order —
  "data-driven" — or smallest-destination-first with ``priority_mode``);
* when a diagonal block finishes BFAC it is sent to every processor owning a
  subdiagonal block of that panel (they need it for BDIV);
* when a subdiagonal block L_IK completes its BDIV it is sent to every
  processor owning a destination of one of its BMODs — under a CP mapping
  that is one processor row plus one processor column;
* a BMOD becomes ready when both its source blocks have arrived; BDIV/BFAC
  become ready when the destination has absorbed all its BMODs (and, for
  BDIV, the diagonal block has arrived).

Messages cost ``latency + bytes/bandwidth`` on the wire plus
``send_overhead`` of sender CPU each; tasks cost
``(flops + 1000)/flop_rate``, the work model's own measure, so simulated
efficiency is bounded by the overall-balance statistic exactly as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fanout.domains import DomainAssignment
from repro.fanout.ownership import block_owners
from repro.fanout.tasks import BDIV, BFAC, BMOD, TaskGraph
from repro.machine.event_sim import DiscreteEventSimulator
from repro.machine.params import PARAGON, MachineParams
from repro.machine.processor import SimProcessor
from repro.mapping.base import BlockMap


@dataclass
class FanoutResult:
    """Outcome of one simulated parallel factorization."""

    P: int
    t_parallel: float
    t_sequential: float
    busy_times: np.ndarray
    comm_bytes: int
    comm_messages: int
    ntasks: int
    events: int
    factor_ops: int | None = None
    schedule: list | None = None
    trace: list | None = None  # (rank, start, end, kind, block) per task
    meta: dict = field(default_factory=dict)

    @property
    def efficiency(self) -> float:
        """``t_seq / (P * t_par)`` — the paper's efficiency measure (§3.2)."""
        return self.t_sequential / (self.P * self.t_parallel)

    @property
    def mflops(self) -> float:
        """Parallel Mflops: best-sequential op count over parallel runtime."""
        if self.factor_ops is None:
            raise ValueError("factor_ops not supplied")
        return self.factor_ops / self.t_parallel / 1e6

    @property
    def idle_fraction(self) -> float:
        return 1.0 - float(self.busy_times.sum()) / (self.P * self.t_parallel)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FanoutResult(P={self.P}, t_par={self.t_parallel:.4f}s, "
            f"eff={self.efficiency:.3f})"
        )


def simulate_fanout(
    tg: TaskGraph,
    owners: np.ndarray,
    P: int,
    machine: MachineParams = PARAGON,
    priority_mode: bool = False,
    record_schedule: bool = False,
    record_trace: bool = False,
    factor_ops: int | None = None,
    topology=None,
    priorities: np.ndarray | None = None,
) -> FanoutResult:
    """Run the block fan-out factorization on the simulated machine.

    ``owners[b]`` is the processor rank of block b (see
    :func:`repro.fanout.ownership.block_owners`). ``topology`` is an
    optional :class:`~repro.machine.network.MeshTopology`; combined with a
    nonzero ``machine.hop_latency`` it charges per-hop distance.
    ``priorities`` (one value per task, lower runs first) switches ready
    queues from FIFO to priority order — see
    :mod:`repro.fanout.priorities` for the candidate policies.
    """
    if priorities is not None:
        priority_mode = True
    owners = np.asarray(owners)
    if owners.shape[0] != tg.nblocks:
        raise ValueError("owners must have one entry per block")
    if owners.size and (owners.min() < 0 or owners.max() >= P):
        raise ValueError("block owner out of range")

    sim = DiscreteEventSimulator()
    procs = [SimProcessor(r, priority_mode) for r in range(P)]

    task_owner = owners[tg.task_block]
    task_flops = tg.task_flops
    task_kind = tg.task_kind
    task_block = tg.task_block
    mods_remaining = tg.nmod.copy()
    missing = tg.task_missing_init.copy()
    diag_ready = np.zeros(tg.nblocks, dtype=bool)
    completed = np.zeros(tg.nblocks, dtype=bool)
    # Default priority: earlier block columns first, then earlier rows.
    if priorities is not None:
        if priorities.shape[0] != tg.ntasks:
            raise ValueError("priorities must have one entry per task")
        prio = np.asarray(priorities, dtype=np.float64)
    else:
        prio = (
            tg.block_J[task_block] * tg.npanels + tg.block_I[task_block]
        ).astype(np.float64)

    stats = {"bytes": 0, "messages": 0}
    schedule: list | None = [] if record_schedule else None
    trace: list | None = [] if record_trace else None
    # Receive-side NIC availability per processor (contention model).
    rx_free = np.zeros(P) if machine.has_rx_contention else None

    def enqueue(tid: int) -> None:
        p = procs[task_owner[tid]]
        p.push(tid, prio[tid])
        if not p.running:
            start_next(p)

    def start_next(p: SimProcessor) -> None:
        if not p.has_work():
            p.running = False
            return
        tid = p.pop()
        p.running = True
        dur = machine.task_time(float(task_flops[tid]))
        sim.schedule_after(dur, lambda: complete(p, int(tid), dur))

    def block_mods_done(b: int) -> None:
        if tg.block_I[b] == tg.block_J[b]:
            enqueue(int(tg.bfac_task[b]))
        elif diag_ready[b]:
            enqueue(int(tg.bdiv_task[b]))

    def diag_arrived(b: int) -> None:
        diag_ready[b] = True
        if mods_remaining[b] == 0:
            enqueue(int(tg.bdiv_task[b]))

    def source_arrived(tid: int) -> None:
        missing[tid] -= 1
        if missing[tid] == 0:
            enqueue(tid)

    def complete(p: SimProcessor, tid: int, dur: float) -> None:
        kind = task_kind[tid]
        b = int(task_block[tid])
        if schedule is not None:
            schedule.append(tid)
        if trace is not None:
            trace.append((p.rank, sim.now - dur, sim.now, int(kind), b))
        p.tasks_done += 1

        send_cost = 0.0
        if kind == BMOD:
            mods_remaining[b] -= 1
            if mods_remaining[b] == 0:
                block_mods_done(b)
        elif kind == BFAC:
            completed[b] = True
            k = int(tg.block_J[b])
            sub = tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]]
            send_cost = _deliver(
                p, b, sub, owners[sub], diag_arrived
            )
        else:  # BDIV
            completed[b] = True
            deps = tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]
            send_cost = _deliver(
                p, b, deps, task_owner[deps], source_arrived
            )

        p.busy_time += dur + send_cost
        if send_cost > 0:
            sim.schedule_after(send_cost, lambda: start_next(p))
        else:
            start_next(p)

    def _deliver(p, src_block, targets, target_owners, callback):
        """Send block ``src_block`` where needed; fire ``callback(target)``
        at each target's arrival time. Returns the sender CPU cost."""
        if len(targets) == 0:
            return 0.0
        remote = np.unique(target_owners[target_owners != p.rank])
        nmsg = remote.shape[0]
        send_cost = nmsg * machine.send_overhead
        words = float(tg.block_words[src_block])
        if nmsg:
            nbytes = machine.message_bytes(words)
            stats["bytes"] += nbytes * nmsg
            stats["messages"] += nmsg
            p.bytes_sent += nbytes * nmsg
            p.messages_sent += nmsg
        wire_arrival = sim.now + send_cost + machine.transfer_time(words)
        if topology is not None and machine.hop_latency > 0.0:
            hop = {
                int(o): machine.hop_latency * topology.hops(p.rank, int(o))
                for o in remote
            }
        else:
            hop = None
        if rx_free is None:
            arrival = {
                int(o): wire_arrival + (hop[int(o)] if hop else 0.0)
                for o in remote
            }
        else:
            # Serialize deliveries through each receiver's NIC; messages from
            # this send depart together, so each receiver pays one rx slot.
            arrival = {}
            rx = machine.rx_time(words)
            for o in remote:
                o = int(o)
                wa = wire_arrival + (hop[o] if hop else 0.0)
                delivered = max(float(rx_free[o]), wa) + rx
                rx_free[o] = delivered
                arrival[o] = delivered
        for t, o in zip(targets, target_owners):
            t = int(t)
            if o == p.rank:
                callback(t)
            else:
                sim.schedule_at(
                    arrival[int(o)], (lambda tt: lambda: callback(tt))(t)
                )
        return send_cost

    # Seed: diagonal blocks with no incoming BMODs can factor immediately.
    diag = tg.block_I == tg.block_J
    for b in np.flatnonzero(diag & (tg.nmod == 0)):
        enqueue(int(tg.bfac_task[int(b)]))

    sim.run()

    if not completed[diag].all():
        raise RuntimeError(
            "fan-out simulation deadlocked: "
            f"{int((~completed[diag]).sum())} diagonal blocks incomplete"
        )

    t_seq = float(
        np.sum(task_flops + machine.op_fixed_flops) / machine.flop_rate
    )
    busy = np.array([q.busy_time for q in procs])
    return FanoutResult(
        P=P,
        t_parallel=sim.now,
        t_sequential=t_seq,
        busy_times=busy,
        comm_bytes=int(stats["bytes"]),
        comm_messages=int(stats["messages"]),
        ntasks=tg.ntasks,
        events=sim.events_processed,
        factor_ops=factor_ops,
        schedule=schedule,
        trace=trace,
    )


def run_fanout(
    tg: TaskGraph,
    cmap: BlockMap,
    machine: MachineParams = PARAGON,
    domains: DomainAssignment | None = None,
    priority_mode: bool = False,
    factor_ops: int | None = None,
    topology=None,
) -> FanoutResult:
    """Convenience wrapper: derive block ownership from a mapping (plus an
    optional domain assignment) and simulate."""
    owners = block_owners(tg, cmap, domains)
    result = simulate_fanout(
        tg,
        owners,
        cmap.grid.P,
        machine=machine,
        priority_mode=priority_mode,
        factor_ops=factor_ops,
        topology=topology,
    )
    result.meta["mapping"] = cmap.name
    result.meta["domains"] = domains is not None
    return result
