"""The block fan-out task graph.

Tasks (§2.1): ``BFAC(K,K)`` factors a diagonal block, ``BDIV(I,K)`` solves a
subdiagonal block against the factored diagonal, ``BMOD(I,J,K)`` applies an
outer-product update. Every task runs at the *owner of its destination
block*; a task graph is therefore independent of the block mapping, and one
graph is reused across all mapping experiments.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.workmodel import WorkModel, chol_flops
from repro.util.arrays import INDEX_DTYPE

BFAC, BDIV, BMOD = 0, 1, 2


class TaskGraph:
    """Tasks, dependency counters, and source-to-task linkage.

    Attributes
    ----------
    task_kind, task_block, task_flops:
        Per task: kind code, destination block index (into the WorkModel's
        block arrays), flop count.
    task_src1, task_src2:
        BMOD source block indices (``src2 == -1`` for the single-source
        diagonal update BMOD(I,I,K)); -1 for BFAC/BDIV.
    dep_ptr, dep_tasks:
        CSR linkage: completing block b feeds tasks
        ``dep_tasks[dep_ptr[b]:dep_ptr[b+1]]``.
    bfac_task, bdiv_task:
        Per block: its BFAC task (diagonal blocks) or BDIV task (subdiagonal
        blocks), -1 otherwise.
    block_words:
        Dense words a block occupies (message payload when sent).
    subdiag_ptr, subdiag_blocks:
        CSR over panels: the subdiagonal block indices of panel K, i.e. the
        recipients of ``L_KK`` after BFAC(K).
    """

    def __init__(self, wm: WorkModel):
        self.workmodel = wm
        structure = wm.structure
        part = structure.partition
        N = part.npanels
        widths = part.widths.astype(np.int64)
        self.npanels = N
        self.nblocks = wm.dest_I.shape[0]
        key_lookup = wm._key_lookup

        kinds: list[np.ndarray] = []
        blocks: list[np.ndarray] = []
        flops: list[np.ndarray] = []
        src1: list[np.ndarray] = []
        src2: list[np.ndarray] = []

        # Per-block message size.
        self.block_words = np.zeros(self.nblocks, dtype=np.int64)
        diag_mask = wm.dest_I == wm.dest_J
        w_of = widths[wm.dest_J]
        self.block_words[diag_mask] = (
            w_of[diag_mask] * (w_of[diag_mask] + 1) // 2
        )

        subdiag_ptr = np.zeros(N + 1, dtype=INDEX_DTYPE)
        subdiag_chunks: list[np.ndarray] = []

        for k in range(N):
            w = int(widths[k])
            brows = structure.block_rows[k]
            counts = structure.block_counts[k].astype(np.int64)
            m = brows.shape[0]
            bid = np.fromiter(
                (key_lookup[int(i) * N + k] for i in brows),
                count=m,
                dtype=np.int64,
            )
            diag_bid = key_lookup[k * N + k]
            self.block_words[bid] = counts * w

            # BFAC(K, K)
            kinds.append(np.array([BFAC], dtype=np.int8))
            blocks.append(np.array([diag_bid], dtype=np.int64))
            flops.append(np.array([chol_flops(w)], dtype=np.int64))
            src1.append(np.array([-1], dtype=np.int64))
            src2.append(np.array([-1], dtype=np.int64))

            subdiag_ptr[k + 1] = subdiag_ptr[k] + m
            subdiag_chunks.append(bid)
            if m == 0:
                continue
            # BDIV(I, K)
            kinds.append(np.full(m, BDIV, dtype=np.int8))
            blocks.append(bid)
            flops.append(counts * w * w)
            src1.append(np.full(m, -1, dtype=np.int64))
            src2.append(np.full(m, -1, dtype=np.int64))
            # BMOD(I, J, K) for i >= j
            ii, jj = np.tril_indices(m)
            dest = np.fromiter(
                (
                    key_lookup[int(brows[a]) * N + int(brows[b])]
                    for a, b in zip(ii, jj)
                ),
                count=ii.shape[0],
                dtype=np.int64,
            )
            kinds.append(np.full(ii.shape[0], BMOD, dtype=np.int8))
            blocks.append(dest)
            flops.append(
                np.where(
                    ii == jj,
                    counts[ii] * (counts[ii] + 1) * w,
                    2 * counts[ii] * counts[jj] * w,
                )
            )
            s1 = bid[ii]
            s2 = np.where(ii == jj, -1, bid[jj])
            src1.append(s1)
            src2.append(s2)

        self.task_kind = np.concatenate(kinds)
        self.task_block = np.concatenate(blocks)
        self.task_flops = np.concatenate(flops)
        self.task_src1 = np.concatenate(src1)
        self.task_src2 = np.concatenate(src2)
        self.ntasks = self.task_kind.shape[0]
        self.subdiag_ptr = subdiag_ptr
        self.subdiag_blocks = (
            np.concatenate(subdiag_chunks)
            if subdiag_chunks
            else np.empty(0, dtype=np.int64)
        )

        # Per-block special task ids.
        self.bfac_task = np.full(self.nblocks, -1, dtype=np.int64)
        self.bdiv_task = np.full(self.nblocks, -1, dtype=np.int64)
        tids = np.arange(self.ntasks, dtype=np.int64)
        fac = self.task_kind == BFAC
        self.bfac_task[self.task_block[fac]] = tids[fac]
        div = self.task_kind == BDIV
        self.bdiv_task[self.task_block[div]] = tids[div]

        # Source-block -> dependent-BMOD-task CSR.
        mod = self.task_kind == BMOD
        mod_ids = tids[mod]
        pairs_src = np.concatenate([self.task_src1[mod], self.task_src2[mod]])
        pairs_tid = np.concatenate([mod_ids, mod_ids])
        keep = pairs_src >= 0
        pairs_src, pairs_tid = pairs_src[keep], pairs_tid[keep]
        order = np.argsort(pairs_src, kind="stable")
        pairs_src, pairs_tid = pairs_src[order], pairs_tid[order]
        self.dep_ptr = np.searchsorted(
            pairs_src, np.arange(self.nblocks + 1)
        ).astype(INDEX_DTYPE)
        self.dep_tasks = pairs_tid

        # Initial missing-source count per task: BMOD needs its sources
        # (1 when diagonal-destination, else 2); BFAC/BDIV have none here
        # (BDIV's diagonal dependency is handled by the simulator).
        self.task_missing_init = np.zeros(self.ntasks, dtype=np.int32)
        self.task_missing_init[mod] = np.where(self.task_src2[mod] >= 0, 2, 1)

        # Per-block panel coordinates, handy for the simulator.
        self.block_I = wm.dest_I
        self.block_J = wm.dest_J
        self.nmod = wm.nmod

    def validate(self) -> None:
        """Internal consistency checks (used by the test suite)."""
        mod_counts = np.bincount(
            self.task_block[self.task_kind == BMOD], minlength=self.nblocks
        )
        if not np.array_equal(mod_counts, self.nmod):
            raise AssertionError("BMOD task count disagrees with WorkModel.nmod")
        diag = self.block_I == self.block_J
        if not (self.bfac_task[diag] >= 0).all():
            raise AssertionError("missing BFAC task for a diagonal block")
        if not (self.bdiv_task[~diag] >= 0).all():
            raise AssertionError("missing BDIV task for a subdiagonal block")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskGraph(N={self.npanels}, blocks={self.nblocks}, tasks={self.ntasks})"
