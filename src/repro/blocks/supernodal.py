"""Structure-aware variable blocking: panels that follow the supernodes.

The uniform policy (:class:`~repro.blocks.partition.BlockPartition`) splits
every supernode into near-even panels of a fixed target width B. That keeps
dgemm tile shapes predictable but wastes the structure: a 200-column
separator supernode becomes five thin 40-column panels when one or two wide
panels would feed much larger dense updates, and a 50-column supernode gets
chopped at 48 + 2, leaving a sliver panel whose BMODs are all overhead.

:class:`SupernodalPartition` instead lets panel widths track the supernode
widths directly, clamped to ``[min_width, max_width]``:

* a supernode no wider than ``max_width`` becomes a single panel — the panel
  IS the supernode, the §3.2 invariant ("column subsets are subsets of
  supernodes") trivially holds;
* a wider supernode is cut greedily into ``max_width`` panels; if that would
  leave a trailing sliver thinner than ``min_width``, the sliver is merged
  with the last full panel and the combined span re-split evenly into two
  panels (both land in ``[min_width, max_width]`` because the constructor
  enforces ``max_width >= 2 * min_width``).

Supernodes thinner than ``min_width`` are *not* merged across supernode
boundaries here — that would break the subset invariant every downstream
layer (block structure, task graph, arena layout) relies on. Absorbing thin
supernodes is the symbolic layer's job: relaxed amalgamation
(:mod:`repro.symbolic.amalgamation`) merges a child supernode into its
parent when the extra fill is cheap, which is exactly the structure-aware
coarsening this partitioner then follows. Run with ``amalgamate=True``
(the default) for the intended pairing.

:func:`make_partition` is the single factory every layer above uses to turn
a ``block_policy`` knob into a partition, so the driver, the workers, and
the service derive identical layouts from the same (policy, knobs) tuple.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.partition import BlockPartition
from repro.symbolic.structure import SymbolicFactor

#: Blocking policies understood by :func:`make_partition` (and by every
#: ``block_policy`` knob threaded through the solver, service, and CLI).
BLOCK_POLICIES = ("uniform", "supernodal")

#: Default clamps for the supernodal policy. ``max_width`` defaults to
#: ``2 * block_size`` (clamped to ``>= 2 * min_width``) so the policy's
#: widest panels stay comparable to the uniform sweep it is benched against.
SUPERNODAL_MIN_WIDTH = 16


class SupernodalPartition(BlockPartition):
    """Supernode-following panel partition with width clamps.

    Attributes (beyond :class:`BlockPartition`'s)
    ----------
    min_width, max_width:
        The clamps. Every panel is at most ``max_width`` wide, and at least
        ``min(min_width, width of its supernode)`` wide.
    """

    policy_name = "supernodal"

    def __init__(
        self,
        sf: SymbolicFactor,
        min_width: int = SUPERNODAL_MIN_WIDTH,
        max_width: int = 96,
    ):
        if min_width < 1:
            raise ValueError("min_width must be positive")
        if max_width < 2 * min_width:
            raise ValueError(
                "max_width must be >= 2 * min_width "
                f"(got min_width={min_width}, max_width={max_width}); the "
                "thin-trailing-panel re-split guarantees both halves stay "
                "within the clamps only under that condition"
            )
        self.min_width = int(min_width)
        self.max_width = int(max_width)
        # ``block_size`` doubles as the effective width cap for layers that
        # report a single scalar (traces, bench metadata).
        self.block_size = self.max_width
        self.symbolic = sf
        boundaries: list[int] = [0]
        snode_ids: list[int] = []
        ptr = sf.snode_ptr
        for s in range(sf.nsupernodes):
            a, b = int(ptr[s]), int(ptr[s + 1])
            w = b - a
            pos = a
            for width in self._panel_widths(w):
                pos += width
                boundaries.append(pos)
                snode_ids.append(s)
            assert pos == b
        self._set_panels(boundaries, snode_ids)

    def _panel_widths(self, w: int) -> list[int]:
        """Panel widths for one supernode of width ``w`` (sum == w)."""
        if w <= self.max_width:
            return [w]
        full, r = divmod(w, self.max_width)
        if r == 0:
            return [self.max_width] * full
        if r >= self.min_width:
            return [self.max_width] * full + [r]
        # Thin trailing sliver: merge with the last full panel and re-split
        # the combined max_width + r columns evenly into two panels.
        span = self.max_width + r
        return [self.max_width] * (full - 1) + [span - span // 2, span // 2]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SupernodalPartition(N={self.npanels}, "
            f"min={self.min_width}, max={self.max_width})"
        )


def make_partition(
    sf: SymbolicFactor,
    block_policy: str = "uniform",
    block_size: int = 48,
    min_width: int | None = None,
    max_width: int | None = None,
) -> BlockPartition:
    """Build the partition a ``block_policy`` knob names.

    ``uniform`` honours ``block_size`` and ignores the clamps; ``supernodal``
    honours the clamps (``min_width`` defaults to
    :data:`SUPERNODAL_MIN_WIDTH`, ``max_width`` to ``2 * block_size``
    clamped to ``>= 2 * min_width``) and uses ``block_size`` only for that
    default. Every layer that plans independently (driver, workers, service)
    must call this with identical knobs to derive the identical layout.
    """
    if block_policy not in BLOCK_POLICIES:
        raise ValueError(
            f"unknown block_policy {block_policy!r}; "
            f"expected one of {BLOCK_POLICIES}"
        )
    if block_policy == "uniform":
        return BlockPartition(sf, block_size)
    lo = SUPERNODAL_MIN_WIDTH if min_width is None else int(min_width)
    hi = max(2 * lo, 2 * int(block_size)) if max_width is None else int(max_width)
    return SupernodalPartition(sf, min_width=lo, max_width=hi)
