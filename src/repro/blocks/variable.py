"""Variable block size partitions (§5 of the paper).

The paper tried two refinements of the fixed block size B:

* **stage-varying B** — large blocks early in the factorization (plenty of
  concurrency to hide imbalance), small blocks late. Finding: *no effect on
  load imbalance, and it reduces the available parallelism* — the intuition
  is wrong.
* **position-based B** — block size chosen by the processor row/column the
  block lands on. Finding: small improvement, much less than remapping.

Both are expressed here as panel-width policies: a callable mapping a
supernode's elimination-tree depth (and width) to the panel width used when
splitting that supernode. The result is an ordinary
:class:`~repro.blocks.partition.BlockPartition`-compatible object, so every
downstream stage (structure, work model, task graph, simulator) runs
unchanged — that is exactly the ablation the experiment module runs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.blocks.partition import BlockPartition
from repro.symbolic.structure import SymbolicFactor
from repro.util.arrays import INDEX_DTYPE

#: A policy maps (snode_depth, snode_width) -> panel width for that supernode.
SizePolicy = Callable[[int, int], int]


def stage_varying_policy(
    early: int = 96, late: int = 24, depth_cutoff: int = 4
) -> SizePolicy:
    """Large blocks near the elimination-tree root... wait — *early* in the
    factorization means *deep* in the tree (leaves eliminate first).

    Supernodes deeper than ``depth_cutoff`` (eliminated early) get ``early``;
    shallow supernodes near the root (eliminated last) get ``late``.
    """

    def policy(depth: int, width: int) -> int:
        return early if depth > depth_cutoff else late

    return policy


def uniform_policy(B: int = 48) -> SizePolicy:
    """The paper's baseline fixed block size."""

    def policy(depth: int, width: int) -> int:
        return B

    return policy


class VariableBlockPartition(BlockPartition):
    """Panel partition whose width varies per supernode via a policy.

    Subclasses :class:`BlockPartition` so the entire block/fan-out stack
    accepts it unchanged; only the splitting loop differs.
    """

    def __init__(self, sf: SymbolicFactor, policy: SizePolicy):
        # Deliberately do NOT call super().__init__ — we replace the
        # splitting loop but keep the same attribute contract.
        self.block_size = -1  # sentinel: variable
        self.policy = policy
        self.symbolic = sf
        snode_depth = sf.depth[sf.snode_ptr[:-1]]
        boundaries: list[int] = [0]
        snode_ids: list[int] = []
        ptr = sf.snode_ptr
        for s in range(sf.nsupernodes):
            a, b = int(ptr[s]), int(ptr[s + 1])
            w = b - a
            B = max(1, int(self.policy(int(snode_depth[s]), w)))
            npanels = max(1, -(-w // B))
            base, extra = divmod(w, npanels)
            pos = a
            for k in range(npanels):
                pos += base + (1 if k < extra else 0)
                boundaries.append(pos)
                snode_ids.append(s)
            assert pos == b
        self.panel_ptr = np.asarray(boundaries, dtype=INDEX_DTYPE)
        self.panel_snode = np.asarray(snode_ids, dtype=INDEX_DTYPE)
        n = sf.n
        marks = np.zeros(n, dtype=INDEX_DTYPE)
        marks[self.panel_ptr[1:-1]] = 1
        self.panel_of_col = np.cumsum(marks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VariableBlockPartition(N={self.npanels})"
