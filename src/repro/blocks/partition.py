"""Panel partition of the columns (and identically the rows).

Each supernode wider than the block size B is split into panels of width as
close to B as possible; narrower supernodes become single panels ("column
subsets are always subsets of supernodes", §3.2). The row partition reuses
the same boundaries, so the diagonal blocks are square.
"""

from __future__ import annotations

import numpy as np

from repro.symbolic.structure import SymbolicFactor
from repro.util.arrays import INDEX_DTYPE


class BlockPartition:
    """Partition of columns 0..n-1 into N contiguous panels.

    Attributes
    ----------
    panel_ptr:
        Length N+1; panel K spans columns ``panel_ptr[K] .. panel_ptr[K+1]-1``.
    panel_snode:
        Supernode that contains each panel.
    panel_of_col:
        Inverse map, length n.
    block_size:
        The requested B.
    policy_name:
        Which blocking policy produced the partition ("uniform" here;
        subclasses override).
    """

    policy_name = "uniform"

    def __init__(self, sf: SymbolicFactor, block_size: int = 48):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.symbolic = sf
        boundaries: list[int] = [0]
        snode_ids: list[int] = []
        ptr = sf.snode_ptr
        for s in range(sf.nsupernodes):
            a, b = int(ptr[s]), int(ptr[s + 1])
            w = b - a
            npanels = max(1, -(-w // block_size))  # ceil
            # Split as evenly as possible: widths differ by at most one.
            base, extra = divmod(w, npanels)
            pos = a
            for k in range(npanels):
                pos += base + (1 if k < extra else 0)
                boundaries.append(pos)
                snode_ids.append(s)
            assert pos == b
        self._set_panels(boundaries, snode_ids)

    def _set_panels(self, boundaries: list[int], snode_ids: list[int]) -> None:
        """Finalize panel arrays from boundary/supernode lists (shared with
        subclasses that build their own boundaries)."""
        self.panel_ptr = np.asarray(boundaries, dtype=INDEX_DTYPE)
        self.panel_snode = np.asarray(snode_ids, dtype=INDEX_DTYPE)
        n = self.symbolic.n
        self.panel_of_col = np.zeros(n, dtype=INDEX_DTYPE)
        if self.npanels > 0:
            marks = np.zeros(n, dtype=INDEX_DTYPE)
            marks[self.panel_ptr[1:-1]] = 1
            self.panel_of_col = np.cumsum(marks)

    @property
    def npanels(self) -> int:
        return self.panel_ptr.shape[0] - 1

    def width(self, k: int) -> int:
        return int(self.panel_ptr[k + 1] - self.panel_ptr[k])

    @property
    def widths(self) -> np.ndarray:
        return np.diff(self.panel_ptr)

    def panel_depths(self) -> np.ndarray:
        """Elimination-tree depth of each panel (depth of its last column, the
        shallowest, so a root panel has depth 0).

        This is the key used by the Increasing Depth (ID) mapping heuristic.
        """
        return self.symbolic.depth[self.panel_ptr[1:] - 1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockPartition(N={self.npanels}, B={self.block_size})"
