"""Sparse block structure of the supernodal factor.

For each block column (panel) K this records the nonzero block rows, the
number of dense rows each block holds, and the global row indices — enough
for the work model, the task graph, and the numeric block factorization.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.partition import BlockPartition
from repro.util.arrays import INDEX_DTYPE


class BlockStructure:
    """Block-sparse structure of L under a :class:`BlockPartition`.

    For panel K (columns ``c0..c1-1`` of supernode s with columns ``a..b-1``)
    the dense rows below the diagonal block are the remaining supernode
    columns ``c1..b-1`` followed by the supernode's below-rows — both sorted,
    so their concatenation is sorted.

    Attributes (per panel K)
    ----------
    rows_below[K]:
        Sorted global row indices strictly below the diagonal block.
    block_rows[K]:
        Sorted unique block-row indices I > K with a nonzero block (I, K).
    block_counts[K]:
        Dense row count of each such block.
    row_splits[K]:
        Offsets into ``rows_below[K]``: block ``(block_rows[K][t], K)`` holds
        rows ``rows_below[K][row_splits[K][t] : row_splits[K][t+1]]``.
    """

    def __init__(self, partition: BlockPartition):
        self.partition = partition
        sf = partition.symbolic
        ptr = partition.panel_ptr
        p_of = partition.panel_of_col
        N = partition.npanels

        self.rows_below: list[np.ndarray] = []
        self.block_rows: list[np.ndarray] = []
        self.block_counts: list[np.ndarray] = []
        self.row_splits: list[np.ndarray] = []

        snode_ptr = sf.snode_ptr
        for k in range(N):
            c1 = int(ptr[k + 1])
            s = int(partition.panel_snode[k])
            b = int(snode_ptr[s + 1])
            intra = np.arange(c1, b, dtype=INDEX_DTYPE)
            rows = np.concatenate([intra, sf.snode_rows[s]]) if intra.size else sf.snode_rows[s]
            self.rows_below.append(rows)
            if rows.size:
                brows = p_of[rows]
                # rows sorted => brows nondecreasing; run-length encode.
                change = np.flatnonzero(brows[1:] != brows[:-1]) + 1
                starts = np.concatenate([[0], change, [rows.shape[0]]]).astype(INDEX_DTYPE)
                self.block_rows.append(brows[starts[:-1]])
                self.block_counts.append(np.diff(starts))
                self.row_splits.append(starts)
            else:
                empty = np.empty(0, dtype=INDEX_DTYPE)
                self.block_rows.append(empty)
                self.block_counts.append(empty)
                self.row_splits.append(np.zeros(1, dtype=INDEX_DTYPE))

    @property
    def npanels(self) -> int:
        return self.partition.npanels

    @property
    def num_blocks(self) -> int:
        """Total nonzero blocks, diagonal blocks included."""
        return self.npanels + sum(br.shape[0] for br in self.block_rows)

    def block_row_span(self, k: int, t: int) -> np.ndarray:
        """Global row indices of the t-th below-diagonal block of panel k."""
        s = self.row_splits[k]
        return self.rows_below[k][int(s[t]) : int(s[t + 1])]

    def supernodal_nnz(self) -> int:
        """Dense entries stored by the block representation of L."""
        widths = self.partition.widths
        total = int(np.sum(widths * (widths + 1) // 2))
        for k in range(self.npanels):
            total += int(self.rows_below[k].shape[0]) * int(widths[k])
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockStructure(N={self.npanels}, blocks={self.num_blocks})"
