"""Block layer: panel partition, sparse block structure, and the work model.

The paper forms blocks by splitting the columns into contiguous subsets that
respect supernode boundaries (block size B = 48 in all experiments) and
partitioning the rows identically. ``work[I, J]`` — flops plus 1000 per
block operation, §3.2 — is the quantity every mapping heuristic optimizes.
"""

from repro.blocks.partition import BlockPartition
from repro.blocks.structure import BlockStructure
from repro.blocks.supernodal import (
    BLOCK_POLICIES,
    SupernodalPartition,
    make_partition,
)
from repro.blocks.workmodel import WorkModel, chol_flops

__all__ = [
    "BLOCK_POLICIES",
    "BlockPartition",
    "BlockStructure",
    "SupernodalPartition",
    "WorkModel",
    "chol_flops",
    "make_partition",
]
