"""Block layer: panel partition, sparse block structure, and the work model.

The paper forms blocks by splitting the columns into contiguous subsets that
respect supernode boundaries (block size B = 48 in all experiments) and
partitioning the rows identically. ``work[I, J]`` — flops plus 1000 per
block operation, §3.2 — is the quantity every mapping heuristic optimizes.
"""

from repro.blocks.partition import BlockPartition
from repro.blocks.structure import BlockStructure
from repro.blocks.workmodel import WorkModel, chol_flops

__all__ = ["BlockPartition", "BlockStructure", "WorkModel", "chol_flops"]
