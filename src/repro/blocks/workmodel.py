"""The paper's per-block work model (§3.2).

``work[I, J]`` is the work performed by the *owner* of block (I, J): the
floating-point operations of every block operation whose destination is
(I, J), plus one thousand per distinct block operation. The 1000-op fixed
cost models per-operation overhead, which dominates for matrices with many
small blocks; the paper measured it from their factorization code.

Block operations and their flop counts (w = width of panel K, r_X = dense
rows of block (X, K)):

=============  ======================  =======================
operation      destination             flops
=============  ======================  =======================
BFAC(K, K)     (K, K)                  dense Cholesky of w x w
BDIV(I, K)     (I, K)                  r_I * w^2
BMOD(I, J, K)  (I, J), K < J <= I      2 * r_I * r_J * w
=============  ======================  =======================

All pair enumeration is vectorized (outer products per panel), never Python
loops over block pairs.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.structure import BlockStructure
from repro.util.arrays import INDEX_DTYPE

#: The fixed per-block-operation cost, in equivalent flops (paper §3.2).
OP_FIXED_COST = 1000


def chol_flops(w: int) -> int:
    """Exact flops of a dense w x w Cholesky (sqrt + divs + updates).

    Matches :func:`repro.symbolic.colcounts.factor_ops_from_counts` applied
    to a dense matrix of order w.
    """
    return w + w * (w - 1) + (w - 1) * w * (2 * w - 1) // 6


class WorkModel:
    """Per-block work of a block factorization, plus row/column aggregates.

    Attributes
    ----------
    dest_I, dest_J:
        Block coordinates of every nonzero block (I >= J), deduplicated.
    flops, nops, nmod:
        Per-block flops, total block-operation count, and BMOD count (the
        BMOD count doubles as the DES dependency counter).
    work:
        ``flops + OP_FIXED_COST * nops`` — the paper's measure.
    """

    def __init__(self, structure: BlockStructure, op_fixed_cost: int = OP_FIXED_COST):
        self.structure = structure
        self.op_fixed_cost = op_fixed_cost
        part = structure.partition
        N = part.npanels
        widths = part.widths.astype(np.int64)

        key_chunks: list[np.ndarray] = []
        flop_chunks: list[np.ndarray] = []
        op_chunks: list[np.ndarray] = []
        mod_chunks: list[np.ndarray] = []

        for k in range(N):
            w = int(widths[k])
            brows = structure.block_rows[k]
            counts = structure.block_counts[k].astype(np.int64)
            # BFAC(K, K)
            key_chunks.append(np.array([k * N + k], dtype=np.int64))
            flop_chunks.append(np.array([chol_flops(w)], dtype=np.int64))
            op_chunks.append(np.ones(1, dtype=np.int64))
            mod_chunks.append(np.zeros(1, dtype=np.int64))
            m = brows.shape[0]
            if m == 0:
                continue
            # BDIV(I, K) for each below block
            key_chunks.append(brows * N + k)
            flop_chunks.append(counts * w * w)
            op_chunks.append(np.ones(m, dtype=np.int64))
            mod_chunks.append(np.zeros(m, dtype=np.int64))
            # BMOD(I, J, K): destination (brows[i], brows[j]) for i >= j.
            # Diagonal destinations (i == j) are symmetric rank-w updates
            # (SYRK): half the flops of the general GEMM case.
            ii, jj = np.tril_indices(m)
            key_chunks.append(brows[ii] * N + brows[jj])
            flop_chunks.append(
                np.where(
                    ii == jj,
                    counts[ii] * (counts[ii] + 1) * w,
                    2 * counts[ii] * counts[jj] * w,
                )
            )
            ones = np.ones(ii.shape[0], dtype=np.int64)
            op_chunks.append(ones)
            mod_chunks.append(ones)

        keys = np.concatenate(key_chunks)
        flops = np.concatenate(flop_chunks)
        ops = np.concatenate(op_chunks)
        mods = np.concatenate(mod_chunks)

        ukeys, inv = np.unique(keys, return_inverse=True)
        self.dest_I = (ukeys // N).astype(INDEX_DTYPE)
        self.dest_J = (ukeys % N).astype(INDEX_DTYPE)
        self.flops = np.bincount(inv, weights=flops).astype(np.int64)
        self.nops = np.bincount(inv, weights=ops).astype(np.int64)
        self.nmod = np.bincount(inv, weights=mods).astype(np.int64)
        self.work = self.flops + self.op_fixed_cost * self.nops

        self.npanels = N
        self.workI = np.bincount(self.dest_I, weights=self.work, minlength=N)
        self.workJ = np.bincount(self.dest_J, weights=self.work, minlength=N)
        self.total_work = float(self.work.sum())
        self.total_flops = int(self.flops.sum())
        self.total_ops = int(self.nops.sum())
        self._key_lookup = {int(k): i for i, k in enumerate(ukeys)}

    def block_index(self, I: int, J: int) -> int:
        """Index of block (I, J) into the per-block arrays; KeyError if zero."""
        return self._key_lookup[I * self.npanels + J]

    def block_nmod(self, I: int, J: int) -> int:
        """Number of BMOD operations targeting block (I, J)."""
        return int(self.nmod[self.block_index(I, J)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkModel(blocks={self.dest_I.shape[0]}, "
            f"flops={self.total_flops:.3g}, ops={self.total_ops})"
        )
