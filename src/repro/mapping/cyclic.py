"""The 2-D cyclic (torus-wrap) mapping — the paper's baseline."""

from __future__ import annotations

import numpy as np

from repro.mapping.base import CartesianMap
from repro.mapping.grid import ProcessorGrid
from repro.util.arrays import INDEX_DTYPE


def cyclic_map(npanels: int, grid: ProcessorGrid) -> CartesianMap:
    """``block (I, J) -> P(I mod Pr, J mod Pc)``.

    On a square grid this is a symmetric Cartesian mapping, which the paper
    shows must suffer diagonal imbalance; on a relatively-prime grid
    (``gcd(Pr, Pc) == 1``) the block diagonal is scattered over every
    processor, which removes the diagonal imbalance (§4.2).
    """
    idx = np.arange(npanels, dtype=INDEX_DTYPE)
    return CartesianMap(grid, idx % grid.Pr, idx % grid.Pc, label="cyclic")
