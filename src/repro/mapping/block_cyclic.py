"""Block-cyclic mappings (the ScaLAPACK family).

A block-cyclic map with blocking factor r assigns r consecutive block rows
to the same processor row before wrapping: ``mapI(I) = (I // r) mod Pr``.
With r = 1 it is the paper's 2-D cyclic map; larger r trades a shorter
settling distance for worse balance. Included as an additional baseline
family — the paper's heuristics beat every member of it, which the mapping
study example demonstrates.
"""

from __future__ import annotations

import numpy as np

from repro.mapping.base import CartesianMap
from repro.mapping.grid import ProcessorGrid
from repro.util.arrays import INDEX_DTYPE


def block_cyclic_map(
    npanels: int,
    grid: ProcessorGrid,
    row_factor: int = 2,
    col_factor: int | None = None,
) -> CartesianMap:
    """``block (I, J) -> P((I//r) mod Pr, (J//c) mod Pc)``."""
    if row_factor < 1:
        raise ValueError("row_factor must be >= 1")
    col_factor = row_factor if col_factor is None else col_factor
    if col_factor < 1:
        raise ValueError("col_factor must be >= 1")
    idx = np.arange(npanels, dtype=INDEX_DTYPE)
    return CartesianMap(
        grid,
        (idx // row_factor) % grid.Pr,
        (idx // col_factor) % grid.Pc,
        label=f"blockcyclic-{row_factor}x{col_factor}",
    )
