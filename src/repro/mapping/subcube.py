"""Subtree-to-subcube column mapping (§5, discussion).

The paper explored reducing communication by dividing *processor columns* of
the grid among elimination-tree subtrees (the block analogue of the
subtree-to-subcube scheme of George et al.): panels in a subtree are mapped
only to that subtree's processor-column subset, so column broadcasts span
fewer processors. They measured up to 30% lower communication volume but
worse load balance — with the Paragon's fast network the net effect was a
slowdown, which our simulator reproduces as an ablation.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.workmodel import WorkModel
from repro.mapping.base import CartesianMap
from repro.mapping.grid import ProcessorGrid
from repro.mapping.heuristics import heuristic_vector
from repro.symbolic.supernodes import supernode_parents
from repro.util.arrays import INDEX_DTYPE


def subtree_to_subcube_column_map(
    wm: WorkModel,
    grid: ProcessorGrid,
    row_heuristic: str = "ID",
) -> CartesianMap:
    """Columns by recursive subtree splitting, rows by a balance heuristic."""
    part = wm.structure.partition
    sf = part.symbolic
    N = part.npanels

    # Supernode tree and per-supernode column work (aggregated over panels).
    sparent = supernode_parents(sf.snode_ptr, sf.parent)
    nsup = sf.nsupernodes
    snode_work = np.zeros(nsup, dtype=np.float64)
    panel_snode = part.panel_snode
    np.add.at(snode_work, panel_snode, wm.workJ)
    # Subtree work: postordered snode indices => single ascending sweep.
    subtree = snode_work.copy()
    for s in range(nsup):
        p = sparent[s]
        if p != -1:
            subtree[int(p)] += subtree[s]

    children: list[list[int]] = [[] for _ in range(nsup)]
    roots: list[int] = []
    for s in range(nsup):
        p = int(sparent[s])
        if p == -1:
            roots.append(s)
        else:
            children[p].append(s)

    # Recursive descent assigning processor-column ranges [lo, hi) to
    # subtrees; a supernode's own panels cycle over its assigned range.
    col_range_lo = np.zeros(nsup, dtype=INDEX_DTYPE)
    col_range_hi = np.full(nsup, grid.Pc, dtype=INDEX_DTYPE)
    stack: list[int] = list(roots)
    while stack:
        s = stack.pop()
        lo, hi = int(col_range_lo[s]), int(col_range_hi[s])
        width = hi - lo
        kids = children[s]
        if not kids:
            continue
        if width <= 1:
            for c in kids:
                col_range_lo[c], col_range_hi[c] = lo, hi
                stack.append(c)
            continue
        # Split the range among children proportionally to subtree work,
        # heaviest children first, each getting at least one column.
        kids_sorted = sorted(kids, key=lambda c: -subtree[c])
        total = sum(subtree[c] for c in kids) or 1.0
        pos = lo
        for idx, c in enumerate(kids_sorted):
            remaining_kids = len(kids_sorted) - idx
            avail = hi - pos
            share = max(1, min(avail - (remaining_kids - 1),
                               int(round(width * subtree[c] / total)) or 1))
            col_range_lo[c], col_range_hi[c] = pos, pos + share
            pos += share
            if pos >= hi:  # out of columns: the rest share the last column
                pos = hi - 1
        stack.extend(kids)

    # Panels cycle within their supernode's column range.
    mapJ = np.empty(N, dtype=INDEX_DTYPE)
    counters = np.zeros(nsup, dtype=INDEX_DTYPE)
    for k in range(N):
        s = int(panel_snode[k])
        lo, hi = int(col_range_lo[s]), int(col_range_hi[s])
        mapJ[k] = lo + int(counters[s]) % max(1, hi - lo)
        counters[s] += 1

    depth = part.panel_depths()
    mapI = heuristic_vector(row_heuristic, wm.workI, grid.Pr, depth)
    return CartesianMap(grid, mapI, mapJ, label=f"subcube/{row_heuristic}")
