"""The processor-aware row-mapping variant of §4.2.

The main heuristics minimize the aggregate work per *row of processors*.
This variant fixes a column mapping first (cyclic, as in the paper), then
assigns each block row to the processor row that minimizes the resulting
maximum *single-processor* load — it sees where within the processor row the
work will actually land. The paper found it improves the balance statistic a
further 10-15% but not realized performance, confirming that load balance
stops being the binding constraint once the basic heuristic is applied.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.workmodel import WorkModel
from repro.mapping.base import CartesianMap
from repro.mapping.grid import ProcessorGrid
from repro.mapping.heuristics import _consider_order, heuristic_vector
from repro.util.arrays import INDEX_DTYPE


def processor_aware_row_map(
    wm: WorkModel,
    grid: ProcessorGrid,
    col_heuristic: str = "CY",
    row_order: str = "DW",
    depth: np.ndarray | None = None,
) -> CartesianMap:
    """Build the §4.2 alternative mapping.

    1. choose ``mapJ`` with ``col_heuristic`` (paper: cyclic);
    2. for each block row I (considered in ``row_order``), compute the work
       it adds to each processor column (``add[c] = sum of work[I, J] over
       J with mapJ[J] = c``) and place I on the processor row r minimizing
       ``max_c(load[r, c] + add[c])``, ties broken by the smaller total.
    """
    N = wm.npanels
    if depth is None and "ID" in (col_heuristic, row_order):
        depth = wm.structure.partition.panel_depths()
    mapJ = heuristic_vector(col_heuristic, wm.workJ, grid.Pc, depth)

    # Per-row additions to each processor column: CSR-style grouping of the
    # block list by dest_I.
    order_blocks = np.argsort(wm.dest_I, kind="stable")
    bI = wm.dest_I[order_blocks]
    bC = mapJ[wm.dest_J[order_blocks]]
    bw = wm.work[order_blocks].astype(np.float64)
    starts = np.searchsorted(bI, np.arange(N + 1))

    consider = _consider_order(row_order, wm.workI.astype(np.float64), depth)

    load = np.zeros((grid.Pr, grid.Pc), dtype=np.float64)
    mapI = np.empty(N, dtype=INDEX_DTYPE)
    for I in consider:
        lo, hi = starts[I], starts[I + 1]
        add = np.bincount(bC[lo:hi], weights=bw[lo:hi], minlength=grid.Pc)
        candidate = load + add[None, :]
        peak = candidate.max(axis=1)
        best = peak.min()
        tied = np.flatnonzero(peak <= best)
        if tied.shape[0] > 1:
            totals = load[tied].sum(axis=1)
            r = int(tied[np.argmin(totals)])
        else:
            r = int(tied[0])
        mapI[I] = r
        load[r] += add
    return CartesianMap(grid, mapI, mapJ, label=f"procaware-{row_order}/{col_heuristic}")
