"""Load-balance metrics (§3.2): overall, row, column, diagonal balance.

Each metric is an upper bound on achievable parallel efficiency; ``overall``
is the tightest (``efficiency <= overall <= row, column, diagonal``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocks.workmodel import WorkModel
from repro.mapping.base import CartesianMap


@dataclass(frozen=True)
class BalanceReport:
    """The four balance statistics of §3.2. ``diagonal`` is None on
    non-square grids (generalized diagonals are defined for ``Pr == Pc``)."""

    overall: float
    row: float
    column: float
    diagonal: float | None

    def as_row(self) -> tuple:
        d = self.diagonal if self.diagonal is not None else float("nan")
        return (self.row, self.column, d, self.overall)


def overall_balance_from_owners(wm: WorkModel, owners, P: int) -> float:
    """Overall balance for an arbitrary block ownership (e.g. with domains).

    This is the exact upper bound on the simulator's efficiency, since the
    simulator charges each processor ``work_p / flop_rate`` of compute time.
    """
    import numpy as _np

    owners = _np.asarray(owners)
    proc_work = _np.bincount(owners, weights=wm.work, minlength=P)
    total = wm.total_work
    if total <= 0:
        return 1.0
    return float(total / (P * proc_work.max()))


def balance_metrics(wm: WorkModel, cmap: CartesianMap) -> BalanceReport:
    """Compute the balance report of work model ``wm`` under mapping ``cmap``.

    overall  = work_total / (P * max_p work_p)
    row      = work_total / (P * max_r (sum_{mapI[I]=r} workI[I]) / Pc)
    column   = work_total / (P * max_c (sum_{mapJ[J]=c} workJ[J]) / Pr)
    diagonal = work_total / (P * max_d (sum_{(I,J) in D_d} work) / Pr),
               D_d = {(I, J) : (mapI[I] - mapJ[J]) mod Pr == d}.
    """
    grid = cmap.grid
    P = grid.P
    total = wm.total_work
    if total <= 0:
        return BalanceReport(1.0, 1.0, 1.0, 1.0 if grid.is_square else None)

    ranks = cmap.owner_array(wm.dest_I, wm.dest_J)
    proc_work = np.bincount(ranks, weights=wm.work, minlength=P)
    overall = total / (P * proc_work.max())

    row_work = np.bincount(cmap.mapI[wm.dest_I], weights=wm.work, minlength=grid.Pr)
    row_bal = total / (P * row_work.max() / grid.Pc)

    col_work = np.bincount(cmap.mapJ[wm.dest_J], weights=wm.work, minlength=grid.Pc)
    col_bal = total / (P * col_work.max() / grid.Pr)

    if grid.is_square:
        d = (cmap.mapI[wm.dest_I] - cmap.mapJ[wm.dest_J]) % grid.Pr
        diag_work = np.bincount(d, weights=wm.work, minlength=grid.Pr)
        diag_bal = total / (P * diag_work.max() / grid.Pr)
    else:
        diag_bal = None

    return BalanceReport(
        overall=float(overall),
        row=float(row_bal),
        column=float(col_bal),
        diagonal=None if diag_bal is None else float(diag_bal),
    )
