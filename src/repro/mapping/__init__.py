"""Block-to-processor mappings: the paper's core contribution.

A Cartesian-product (CP) mapping sends block (I, J) to processor
``P(mapI(I), mapJ(J))``; this limits each block's communication to one
processor row plus one processor column. The traditional choice is the
symmetric 2-D cyclic map, which balances load poorly; the paper's heuristics
choose ``mapI`` and ``mapJ`` independently by greedy number partitioning.
"""

from repro.mapping.grid import ProcessorGrid, square_grid, best_grid
from repro.mapping.base import BlockMap, CartesianMap
from repro.mapping.cyclic import cyclic_map
from repro.mapping.block_cyclic import block_cyclic_map
from repro.mapping.heuristics import (
    HEURISTICS,
    heuristic_map,
    heuristic_vector,
    greedy_partition,
)
from repro.mapping.balance import BalanceReport, balance_metrics
from repro.mapping.alternative import processor_aware_row_map
from repro.mapping.subcube import subtree_to_subcube_column_map

__all__ = [
    "ProcessorGrid",
    "square_grid",
    "best_grid",
    "BlockMap",
    "CartesianMap",
    "cyclic_map",
    "block_cyclic_map",
    "HEURISTICS",
    "heuristic_map",
    "heuristic_vector",
    "greedy_partition",
    "BalanceReport",
    "balance_metrics",
    "processor_aware_row_map",
    "subtree_to_subcube_column_map",
]
