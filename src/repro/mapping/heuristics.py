"""The paper's greedy remapping heuristics (§4).

All four heuristics run the same greedy number-partitioning loop — assign the
next block row to the least-loaded processor row — and differ only in the
order in which block rows are considered:

==  =================  =============================================
DW  Decreasing Work    heaviest rows first (classic LPT partitioning)
IN  Increasing Number  block-row index ascending (a control)
DN  Decreasing Number  block-row index descending (work grows with I)
ID  Increasing Depth   elimination-tree depth ascending (sparse-aware)
==  =================  =============================================

``CY`` (cyclic) is the identity baseline. The same machinery applies to
block columns with ``workJ``.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.workmodel import WorkModel
from repro.mapping.base import CartesianMap
from repro.mapping.grid import ProcessorGrid
from repro.util.arrays import INDEX_DTYPE

#: Heuristic codes accepted by :func:`heuristic_vector` / :func:`heuristic_map`.
HEURISTICS = ("CY", "DW", "IN", "DN", "ID")


def partition_lower_bound(work: np.ndarray, nbins: int) -> float:
    """Lower bound on the max-bin-load of any partition.

    ``max(sum/nbins, max item)`` — no assignment can beat either term, so
    ``bound / achieved_max`` measures how close a greedy heuristic is to
    the (NP-hard) optimum. The paper's 0.99 row balances say greedy is
    essentially optimal at these item-count-to-bin ratios.
    """
    w = np.asarray(work, dtype=np.float64)
    if w.size == 0:
        return 0.0
    return float(max(w.sum() / nbins, w.max()))


def greedy_partition(
    work: np.ndarray, order: np.ndarray, nbins: int
) -> np.ndarray:
    """Assign items to bins: next item (in ``order``) to the least-loaded bin.

    Returns the bin index per item. Ties broken by lowest bin index, which
    makes the result deterministic.
    """
    assignment = np.empty(work.shape[0], dtype=INDEX_DTYPE)
    loads = np.zeros(nbins, dtype=np.float64)
    for item in order:
        b = int(np.argmin(loads))
        assignment[item] = b
        loads[b] += work[item]
    return assignment


def _consider_order(
    heuristic: str, work: np.ndarray, depth: np.ndarray | None
) -> np.ndarray:
    n = work.shape[0]
    if heuristic == "DW":
        return np.argsort(-work, kind="stable")
    if heuristic == "IN":
        return np.arange(n)
    if heuristic == "DN":
        return np.arange(n - 1, -1, -1)
    if heuristic == "ID":
        if depth is None:
            raise ValueError("ID heuristic requires panel depths")
        return np.argsort(depth, kind="stable")
    raise KeyError(f"unknown heuristic {heuristic!r}; expected one of {HEURISTICS}")


def heuristic_vector(
    heuristic: str,
    work: np.ndarray,
    nbins: int,
    depth: np.ndarray | None = None,
) -> np.ndarray:
    """Row (or column) map under one heuristic: panel index -> bin.

    ``heuristic == "CY"`` returns the cyclic map; the others run greedy
    number partitioning in the heuristic's consideration order.
    """
    n = work.shape[0]
    if heuristic == "CY":
        return (np.arange(n) % nbins).astype(INDEX_DTYPE)
    order = _consider_order(heuristic, np.asarray(work, dtype=np.float64), depth)
    return greedy_partition(np.asarray(work, dtype=np.float64), order, nbins)


def heuristic_map(
    wm: WorkModel,
    grid: ProcessorGrid,
    row_heuristic: str = "ID",
    col_heuristic: str = "CY",
    depth: np.ndarray | None = None,
) -> CartesianMap:
    """Build the nonsymmetric CP map of §4.

    The row map minimizes the maximum aggregate ``workI`` per processor row;
    the column map does the same with ``workJ``. The paper's headline
    configuration (Table 7) is ID rows with cyclic columns.
    """
    if depth is None and "ID" in (row_heuristic, col_heuristic):
        depth = wm.structure.partition.panel_depths()
    mapI = heuristic_vector(row_heuristic, wm.workI, grid.Pr, depth)
    mapJ = heuristic_vector(col_heuristic, wm.workJ, grid.Pc, depth)
    return CartesianMap(
        grid, mapI, mapJ, label=f"{row_heuristic}/{col_heuristic}"
    )
