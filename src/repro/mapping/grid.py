"""Processor grid geometry."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessorGrid:
    """A ``Pr x Pc`` logical grid of processors.

    Processor (r, c) has linear rank ``r * Pc + c``. The physical
    interconnect topology is irrelevant to the mapping question (§1), so the
    grid is purely logical.
    """

    Pr: int
    Pc: int

    def __post_init__(self) -> None:
        if self.Pr < 1 or self.Pc < 1:
            raise ValueError("grid dimensions must be positive")

    @property
    def P(self) -> int:
        return self.Pr * self.Pc

    @property
    def is_square(self) -> bool:
        return self.Pr == self.Pc

    def rank(self, r: int, c: int) -> int:
        return r * self.Pc + c

    def coords(self, rank: int) -> tuple[int, int]:
        return divmod(rank, self.Pc)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.Pr}x{self.Pc}"


def square_grid(P: int) -> ProcessorGrid:
    """The ``sqrt(P) x sqrt(P)`` grid; raises unless P is a perfect square.

    The paper always chooses ``Pr = Pc = sqrt(P)`` in its experiments.
    """
    s = math.isqrt(P)
    if s * s != P:
        raise ValueError(f"P={P} is not a perfect square; use best_grid")
    return ProcessorGrid(s, s)


def best_grid(P: int) -> ProcessorGrid:
    """Most-square factorization ``Pr x Pc = P`` with ``Pr <= Pc``.

    For P = 63 this yields 7 x 9 — the relatively-prime grid of §4.2, whose
    cyclic mapping scatters block diagonals over all processors.
    """
    r = math.isqrt(P)
    while P % r:
        r -= 1
    return ProcessorGrid(r, P // r)
