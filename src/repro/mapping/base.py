"""Block mapping interfaces.

The paper's taxonomy (§2.4): an *arbitrary* mapping sends each block
anywhere; a *Cartesian product* (CP) mapping factors through independent row
and column maps; a *symmetric Cartesian* (SC) mapping additionally has
``Pr == Pc`` and ``mapI == mapJ``. Only CP structure is needed to bound the
communication fan-out at ``Pr + Pc``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.mapping.grid import ProcessorGrid
from repro.util.arrays import INDEX_DTYPE


class BlockMap(ABC):
    """Maps blocks (I, J) to processor ranks."""

    def __init__(self, grid: ProcessorGrid, npanels: int):
        self.grid = grid
        self.npanels = npanels

    @abstractmethod
    def owner(self, I: int, J: int) -> int:
        """Linear rank of the processor owning block (I, J)."""

    @abstractmethod
    def owner_array(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`."""

    @property
    def name(self) -> str:
        return type(self).__name__


class CartesianMap(BlockMap):
    """CP mapping: ``owner(I, J) = grid.rank(mapI[I], mapJ[J])``."""

    def __init__(
        self,
        grid: ProcessorGrid,
        mapI: np.ndarray,
        mapJ: np.ndarray,
        label: str = "cartesian",
    ):
        mapI = np.ascontiguousarray(mapI, dtype=INDEX_DTYPE)
        mapJ = np.ascontiguousarray(mapJ, dtype=INDEX_DTYPE)
        if mapI.shape != mapJ.shape:
            raise ValueError("mapI and mapJ must have equal length (one per panel)")
        if mapI.size and (mapI.min() < 0 or mapI.max() >= grid.Pr):
            raise ValueError("mapI out of range for grid rows")
        if mapJ.size and (mapJ.min() < 0 or mapJ.max() >= grid.Pc):
            raise ValueError("mapJ out of range for grid columns")
        super().__init__(grid, mapI.shape[0])
        self.mapI = mapI
        self.mapJ = mapJ
        self.label = label

    def owner(self, I: int, J: int) -> int:
        return self.grid.rank(int(self.mapI[I]), int(self.mapJ[J]))

    def owner_array(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        return self.mapI[I] * self.grid.Pc + self.mapJ[J]

    @property
    def is_symmetric_cartesian(self) -> bool:
        """SC test (§2.4): square grid and identical row/column maps."""
        return self.grid.is_square and np.array_equal(self.mapI, self.mapJ)

    @property
    def name(self) -> str:
        return self.label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CartesianMap({self.label!r}, grid={self.grid}, N={self.npanels})"
