"""Ordering containers, permutation application, and method dispatch."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.rcm import reverse_cuthill_mckee
from repro.util.arrays import as_index_array, invert_permutation, is_permutation


@dataclass
class Ordering:
    """A fill-reducing ordering.

    ``perm[k]`` is the original index of the k-th column in the new order
    (scipy "take" convention); ``iperm`` is its inverse (``iperm[old] = new``).
    """

    perm: np.ndarray
    method: str = "natural"

    def __post_init__(self) -> None:
        self.perm = as_index_array(self.perm)
        if not is_permutation(self.perm):
            raise ValueError("perm is not a permutation")
        self.iperm = invert_permutation(self.perm)

    @property
    def n(self) -> int:
        return self.perm.shape[0]


def permute_spd(A: sparse.spmatrix, ordering: Ordering | np.ndarray) -> sparse.csc_matrix:
    """Return the symmetrically permuted matrix ``P A P^T``.

    Row/column ``k`` of the result is row/column ``perm[k]`` of ``A``.
    """
    perm = ordering.perm if isinstance(ordering, Ordering) else as_index_array(ordering)
    A = A.tocsc()
    return A[perm][:, perm].tocsc()


def order_problem(problem, method: str | None = None, **kwargs) -> Ordering:
    """Compute an ordering for a :class:`ProblemMatrix`.

    ``method`` defaults to the problem's ``recommended_ordering``:
    ``"natural"`` (identity), ``"rcm"``, ``"nd"`` (nested dissection,
    geometric when coordinates are available), or ``"mmd"`` (multiple minimum
    degree).
    """
    # Imported here to avoid an import cycle at package-init time.
    from repro.ordering.minimum_degree import minimum_degree
    from repro.ordering.nested_dissection import nested_dissection

    method = method or problem.recommended_ordering
    n = problem.n
    if method == "natural":
        return Ordering(np.arange(n), method="natural")
    graph = AdjacencyGraph.from_sparse(problem.A)
    if method == "rcm":
        return Ordering(reverse_cuthill_mckee(graph), method="rcm")
    if method == "nd":
        perm = nested_dissection(graph, coords=problem.coords, **kwargs)
        return Ordering(perm, method="nd")
    if method == "mmd":
        perm = minimum_degree(graph, **kwargs)
        return Ordering(perm, method="mmd")
    raise KeyError(f"unknown ordering method {method!r}")
