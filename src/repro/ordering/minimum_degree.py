"""Minimum-degree ordering with multiple elimination (MMD, Liu 1985).

A quotient-graph implementation: eliminated vertices become *elements*; each
remaining *supervariable* tracks the set of adjacent supervariables and the
set of adjacent elements. Indistinguishable supervariables (identical
adjacency) are merged, and — following Liu's multiple-elimination refinement —
all minimum-degree vertices of an independent set are eliminated before any
degree is recomputed.

This is the ordering the paper uses for the irregular (Harwell-Boeing/
application) benchmark matrices.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import AdjacencyGraph
from repro.util.arrays import INDEX_DTYPE


def minimum_degree(
    graph: AdjacencyGraph,
    multiple: bool = True,
    approximate: bool = False,
) -> np.ndarray:
    """Return the (M)MD permutation: ``perm[k]`` = original vertex placed k-th.

    ``multiple=False`` degrades to classical single-elimination minimum
    degree (useful for comparing fill). ``approximate=True`` replaces the
    exact external degree (a set union per update) with the Amestoy-Davis-
    Duff style upper bound ``|A_u| + sum_e |L_e \\ {u}|`` — cheaper per
    update, slightly worse fill, the trade every modern AMD code makes.
    """
    n = graph.n
    if n == 0:
        return np.empty(0, dtype=INDEX_DTYPE)

    # Quotient graph state. adj_vars[v]/adj_elts[v] exist only for live
    # supervariable representatives.
    adj_vars: list[set[int]] = [set(graph.neighbors(v).tolist()) for v in range(n)]
    adj_elts: list[set[int]] = [set() for _ in range(n)]
    elt_vars: dict[int, set[int]] = {}  # element id -> boundary supervariables
    weight = np.ones(n, dtype=INDEX_DTYPE)  # columns merged into supervariable
    members: list[list[int]] = [[v] for v in range(n)]  # merged original vertices
    alive = np.ones(n, dtype=bool)
    degree = np.array([len(a) for a in adj_vars], dtype=INDEX_DTYPE)

    order: list[int] = []
    next_elt = n  # element ids disjoint from vertex ids

    def exact_degree(v: int) -> int:
        """External degree of supervariable v (sum of supervariable weights)."""
        if approximate:
            # ADD-style bound: element boundaries counted with multiplicity.
            total = sum(weight[u] for u in adj_vars[v])
            for e in adj_elts[v]:
                total += sum(weight[u] for u in elt_vars[e] if u != v)
            return int(total)
        seen = set(adj_vars[v])
        for e in adj_elts[v]:
            seen.update(elt_vars[e])
        seen.discard(v)
        return int(sum(weight[u] for u in seen))

    def reachable(v: int) -> set[int]:
        s = set(adj_vars[v])
        for e in adj_elts[v]:
            s.update(elt_vars[e])
        s.discard(v)
        return s

    remaining = n
    while remaining > 0:
        live = np.flatnonzero(alive)
        dmin = degree[live].min()
        # Candidates at minimum degree; with multiple elimination take an
        # independent set of them (no two adjacent in the quotient graph).
        candidates = live[degree[live] == dmin]
        if not multiple:
            candidates = candidates[:1]
        eliminated_this_round: list[int] = []
        blocked: set[int] = set()
        touched: set[int] = set()
        for v in candidates.tolist():
            if v in blocked or not alive[v]:
                continue
            boundary = reachable(v)
            # --- eliminate v: absorb its elements into a new element -------
            order.extend(members[v])
            alive[v] = False
            remaining -= 1
            eliminated_this_round.append(v)
            blocked.update(boundary)

            e_new = next_elt
            next_elt += 1
            elt_vars[e_new] = boundary
            absorbed = adj_elts[v]
            for u in boundary:
                adj_vars[u].discard(v)
                # Absorbed elements disappear; v's variable adjacency becomes
                # element adjacency via e_new.
                adj_elts[u] -= absorbed
                adj_elts[u].add(e_new)
                # Variable-variable edges inside the new element are redundant
                # (covered by e_new); prune them to keep sets small.
                adj_vars[u] -= boundary
                touched.add(u)
            for e in absorbed:
                elt_vars.pop(e, None)
            adj_vars[v] = set()
            adj_elts[v] = set()

        # --- mass degree update for all supervariables adjacent to any newly
        # formed element, with indistinguishable-variable merging ----------
        touched = {u for u in touched if alive[u]}
        # Merge indistinguishable supervariables (identical element and
        # variable adjacency). Touched vertices all carry at least one
        # element, so equal adjacency keys imply a shared element, i.e. the
        # two variables are adjacent in the filled graph — the classic
        # supervariable merge condition.
        sig: dict[tuple, int] = {}
        for u in sorted(touched):
            key = (tuple(sorted(adj_elts[u])), tuple(sorted(adj_vars[u])))
            w = sig.get(key)
            if w is None or not adj_elts[u]:
                sig[key] = u
                continue
            weight[w] += weight[u]
            members[w].extend(members[u])
            alive[u] = False
            remaining -= 1
            for e in adj_elts[u]:
                elt_vars[e].discard(u)
            for x in adj_vars[u]:
                adj_vars[x].discard(u)
                if x != w:
                    adj_vars[x].add(w)
                    adj_vars[w].add(x)
            adj_vars[u] = set()
            adj_elts[u] = set()
        touched = {u for u in touched if alive[u]}
        for u in touched:
            degree[u] = exact_degree(u)

    perm = np.asarray(order, dtype=INDEX_DTYPE)
    assert perm.shape[0] == n
    return perm
