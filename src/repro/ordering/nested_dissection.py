"""Nested dissection ordering.

Grid problems carry vertex coordinates, so we use geometric (coordinate
plane) separators — for regular grids this is the classic George ordering
that the paper calls "asymptotically optimal". Without coordinates we fall
back to BFS level-set separators from a pseudo-peripheral node.

Separator vertices are ordered *after* both halves, recursively, which is
what produces the elimination-tree structure (disjoint subtrees feeding
separator supernodes) that the block fan-out method's domain decomposition
relies on.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.separators import geometric_separator, vertex_separator_from_levels
from repro.graph.traversal import connected_components
from repro.util.arrays import INDEX_DTYPE


def nested_dissection(
    graph: AdjacencyGraph,
    coords: np.ndarray | None = None,
    leaf_size: int = 32,
    refine: bool = False,
) -> np.ndarray:
    """Return the nested-dissection permutation of ``graph``.

    ``perm[k]`` is the original vertex placed k-th. Components of size at
    most ``leaf_size`` are ordered as-is (they become domain subtrees).
    ``refine=True`` post-processes every separator with the
    Fiduccia-Mattheyses pass of :mod:`repro.graph.refinement` (useful for
    irregular graphs; geometric grid separators are already minimal).
    """
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    n = graph.n
    perm = np.empty(n, dtype=INDEX_DTYPE)
    # Fill from the back: each work item is (vertex_set, end_position); the
    # separator occupies the tail of the range, halves recurse before it.
    stack: list[np.ndarray] = [comp for comp in connected_components(graph)]
    # Order components one after another, each occupying a contiguous range.
    out_ranges: list[tuple[np.ndarray, int]] = []
    pos = n
    for comp in reversed(stack):
        out_ranges.append((comp, pos))
        pos -= comp.shape[0]

    work = list(out_ranges)
    while work:
        vertices, end = work.pop()
        m = vertices.shape[0]
        if m <= leaf_size:
            perm[end - m : end] = np.sort(vertices)
            continue
        if coords is not None:
            part_a, sep, part_b = geometric_separator(vertices, coords)
        else:
            part_a, sep, part_b = vertex_separator_from_levels(graph, vertices)
        if refine and sep.size and part_a.size and part_b.size:
            from repro.graph.refinement import refine_separator

            part_a, sep, part_b = refine_separator(graph, part_a, sep, part_b)
        if part_a.size == 0 or part_b.size == 0:
            # No useful split found; order the set directly.
            perm[end - m : end] = np.sort(vertices)
            continue
        # Layout: [part_a | part_b | separator], separator eliminated last.
        perm[end - sep.shape[0] : end] = np.sort(sep)
        mid = end - sep.shape[0]
        # Halves may themselves be disconnected once the separator is gone;
        # recurse per connected piece for a tighter elimination tree.
        for part in (part_b, part_a):
            if part.size == 0:
                continue
            for piece in _pieces(graph, part):
                work.append((piece, mid))
                mid -= piece.shape[0]
    return perm


def _pieces(graph: AdjacencyGraph, part: np.ndarray) -> list[np.ndarray]:
    """Connected pieces of ``part`` in the induced subgraph."""
    if part.shape[0] <= 1:
        return [part]
    mask = np.zeros(graph.n, dtype=bool)
    mask[part] = True
    return connected_components(graph, mask=mask)
