"""Fill-reducing orderings.

The paper pre-orders grid problems with nested dissection (asymptotically
optimal for grids) and irregular problems with multiple minimum degree; both
are implemented here, plus natural and RCM baselines.
"""

from repro.ordering.base import Ordering, order_problem, permute_spd
from repro.ordering.nested_dissection import nested_dissection
from repro.ordering.minimum_degree import minimum_degree

__all__ = [
    "Ordering",
    "order_problem",
    "permute_spd",
    "nested_dissection",
    "minimum_degree",
]
