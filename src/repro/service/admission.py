"""Bounded admission queue with reject / block / shed policies.

The queue is the service's pressure-relief valve. Capacity is bounded;
what happens when it is full is the admission *policy*:

* ``"reject"`` — refuse new work immediately with a typed
  :class:`~repro.service.jobs.AdmissionRejected` (never a hang). The
  right default for latency-sensitive clients that can retry elsewhere.
* ``"block"`` — backpressure: the submitting thread waits (bounded by
  its ``timeout``) for space; on timeout, a typed rejection. The right
  default for closed-loop clients.
* ``"shed"`` — admit the new job and shed the *oldest* queued one (its
  handle fails with ``AdmissionRejected("shed")``). Keeps the queue
  biased toward fresh work under sustained overload.

Everything is a plain condition variable over a deque, so a seeded load
trace drains deterministically: same arrivals, same capacity, same
policy → same admit/reject/shed decisions.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.service.jobs import AdmissionRejected, ServiceClosed

POLICIES = ("reject", "block", "shed")


@dataclass
class QueueStats:
    """Admission counters (monotonic over the queue's life)."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    timed_out: int = 0
    #: Jobs whose per-job deadline passed while still queued (the
    #: dispatcher fails them with ``DeadlineExceeded`` before dispatch).
    expired: int = 0
    high_water: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class JobQueue:
    """Bounded FIFO of pending jobs with an admission policy."""

    def __init__(self, capacity: int = 64, policy: str = "block"):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if policy not in POLICIES:
            raise KeyError(
                f"unknown admission policy {policy!r}; "
                f"expected one of {POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.stats = QueueStats()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def put(self, item, timeout: float | None = None):
        """Admit ``item`` under the configured policy.

        Returns the item shed to make room (``"shed"`` policy only;
        ``None`` otherwise). Raises :class:`AdmissionRejected` when the
        policy refuses the job, :class:`ServiceClosed` after
        :meth:`close`.
        """
        with self._cond:
            self.stats.submitted += 1
            if self._closed:
                raise ServiceClosed("service is shut down")
            shed = None
            if len(self._items) >= self.capacity:
                if self.policy == "reject":
                    self.stats.rejected += 1
                    raise AdmissionRejected(
                        "queue_full",
                        f"admission queue full "
                        f"({self.capacity} jobs pending)",
                    )
                if self.policy == "shed":
                    shed = self._items.popleft()
                    self.stats.shed += 1
                else:  # block: bounded backpressure
                    deadline = (
                        None if timeout is None
                        else time.monotonic() + timeout
                    )
                    while len(self._items) >= self.capacity:
                        if self._closed:
                            raise ServiceClosed("service is shut down")
                        remaining = None
                        if deadline is not None:
                            remaining = deadline - time.monotonic()
                            if remaining <= 0:
                                self.stats.rejected += 1
                                self.stats.timed_out += 1
                                raise AdmissionRejected(
                                    "backpressure_timeout",
                                    f"queue full for {timeout:.3g}s",
                                )
                        self._cond.wait(remaining)
            self._items.append(item)
            self.stats.admitted += 1
            self.stats.high_water = max(
                self.stats.high_water, len(self._items)
            )
            self._cond.notify_all()
            return shed

    # ------------------------------------------------------------------
    def get_batch(
        self, max_batch: int, batch_wait_s: float = 0.0
    ) -> list:
        """Take up to ``max_batch`` jobs, blocking until at least one is
        available (or the queue closes — then the remaining items, which
        may be ``[]``).

        After the first job arrives, waits up to ``batch_wait_s`` for
        more to accumulate (the batching window) — a burst of small jobs
        becomes one fan-out round instead of many.
        """
        with self._cond:
            while not self._items and not self._closed:
                self._cond.wait()
            if batch_wait_s > 0 and len(self._items) < max_batch:
                deadline = time.monotonic() + batch_wait_s
                while len(self._items) < max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
            batch = []
            while self._items and len(batch) < max_batch:
                batch.append(self._items.popleft())
            self._cond.notify_all()
            return batch

    def note_expired(self) -> None:
        """Count one job that expired in the queue (dispatcher calls)."""
        with self._cond:
            self.stats.expired += 1

    def drain(self) -> list:
        """Remove and return every pending item (used at shutdown)."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            self._cond.notify_all()
            return items

    def close(self) -> None:
        """Refuse new work and wake every waiter. Idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
