"""Job descriptions, results, handles, and the service's typed errors."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse


# ----------------------------------------------------------------------
# Typed errors — clients branch on these, never on message text.
# ----------------------------------------------------------------------
class ServiceError(RuntimeError):
    """Base class for every service-layer failure."""

    #: Stable wire tag (socket protocol maps errors back to types by it).
    kind = "error"
    #: Whether an idempotent retry of the same job may succeed (clients
    #: branch on this for backoff-retry; see ``ServiceClient``).
    retryable = False


class AdmissionRejected(ServiceError):
    """The admission controller refused the job (queue full / shed /
    closed). The job never entered the queue — nothing ran, so an
    idempotent retry after backoff is always safe."""

    kind = "rejected"
    retryable = True

    def __init__(self, reason: str, message: str | None = None):
        super().__init__(message or f"job rejected: {reason}")
        self.reason = reason


class ServiceClosed(ServiceError):
    """Submitted to (or waited on) a service that has shut down."""

    kind = "closed"


class UnknownPatternError(ServiceError):
    """A values-only job named a pattern id the cache does not hold."""

    kind = "unknown_pattern"


class DeadlineExceeded(ServiceError):
    """The job's per-job deadline passed before a factor was released.

    Raised server-side (the dispatcher seq-aborts the expired job without
    poisoning its batch) and client-side (``JobHandle.result`` raises it
    once the deadline passes even if the server is still working). Not
    retryable: the budget is spent."""

    kind = "deadline"


class ServiceUnavailable(ServiceError):
    """The client could not reach the service (connect/request failed or
    timed out). Retries are idempotent thanks to server-side job-id
    dedup, so this is retryable."""

    kind = "unavailable"
    retryable = True


class JobFailed(ServiceError):
    """The factorization itself failed (worker error, pool breakage)."""

    kind = "failed"

    def __init__(self, job_id: str, detail: str):
        super().__init__(f"job {job_id!r} failed: {detail}")
        self.job_id = job_id
        self.detail = detail


class ValidationFailed(JobFailed):
    """The parallel factor did not match the sequential baseline
    bitwise (only raised when the service runs with ``validate=True``)."""

    kind = "validation"


# ----------------------------------------------------------------------
# Jobs and results
# ----------------------------------------------------------------------
@dataclass
class FactorJob:
    """One client request: a full matrix, or a pattern handle + values.

    Exactly one of ``A`` / (``pattern_id`` + ``values``) is given. A full
    matrix is hashed on its sparsity structure — a cache hit still runs
    the warm path; ``pattern_id`` + ``values`` skips even the hash and the
    permutation-from-scratch, shipping the values straight through the
    cached ordering.
    """

    job_id: str
    A: sparse.csc_matrix | None = None
    pattern_id: str | None = None
    values: np.ndarray | None = None
    #: Per-job budget in seconds from submission; None = no deadline.
    deadline_s: float | None = None
    submitted_at: float = field(default_factory=time.monotonic)

    @property
    def deadline(self) -> float | None:
        """Absolute ``time.monotonic()`` deadline (None when unbounded)."""
        if self.deadline_s is None:
            return None
        return self.submitted_at + self.deadline_s

    @property
    def expired(self) -> bool:
        dl = self.deadline
        return dl is not None and time.monotonic() > dl

    def __post_init__(self) -> None:
        if self.A is None:
            if self.pattern_id is None or self.values is None:
                raise ValueError(
                    "FactorJob needs a matrix A, or pattern_id + values"
                )
            self.values = np.ascontiguousarray(self.values, dtype=np.float64)
        else:
            if self.values is not None:
                raise ValueError("give either A or values, not both")
            self.A = self.A.tocsc()
            if self.A.shape[0] != self.A.shape[1]:
                raise ValueError("matrix must be square")


@dataclass
class JobResult:
    """What the service hands back for one completed job."""

    job_id: str
    #: Cache key for the job's sparsity pattern — submit later jobs as
    #: ``(pattern_id, values)`` to take the fastest warm path.
    pattern_id: str
    #: ``"hit"`` (warm: symbolic/plan/arena reused) or ``"miss"`` (cold).
    cache: str
    #: The factor, permuted order (``L[perm][:, perm]`` space).
    L: sparse.csc_matrix
    #: Composed fill-reducing permutation used for this pattern.
    perm: np.ndarray
    #: Assembled :class:`~repro.numeric.BlockCholesky` (in-process only).
    factor: object | None = None
    #: Per-worker :class:`~repro.runtime.metrics.RuntimeMetrics`.
    metrics: object | None = None
    #: Merged :class:`~repro.runtime.trace.RunTrace` when tracing is on.
    trace: object | None = None
    #: The service-side :class:`~repro.service.metrics.JobRecord`.
    record: object | None = None

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` with this factor (locally, in-process; for
        the distributed solve on the service's resident factor use
        :meth:`FactorService.solve <repro.service.FactorService.solve>`)."""
        from repro.numeric import solve_with_factor

        return solve_with_factor(
            self.factor if self.factor is not None else self.L,
            b,
            self.perm,
        )


@dataclass
class SolveResult:
    """What the service hands back for one completed solve request."""

    job_id: str
    pattern_id: str
    #: Solution, client row order, same shape as the request's ``b``.
    x: np.ndarray
    #: ``"clean"`` (warm distributed solve on the pool's resident
    #: factor — only RHS values travelled) or ``"degraded_sequential"``
    #: (sequential block fallback — bitwise-identical result). Tags from
    #: :mod:`repro.runtime.recovery`.
    outcome: str = "clean"
    #: Per-worker :class:`~repro.runtime.metrics.RuntimeMetrics` of the
    #: warm distributed solve (None on the sequential fallback).
    metrics: object | None = None
    #: Merged :class:`~repro.runtime.trace.RunTrace` when tracing is on.
    trace: object | None = None
    #: The service-side :class:`~repro.service.metrics.JobRecord`.
    record: object | None = None


class JobHandle:
    """Future for a submitted job. ``result()`` blocks; typed errors
    raised at submit time surface from :meth:`result` as well."""

    def __init__(self, job: FactorJob):
        self.job = job
        self.job_id = job.job_id
        self._event = threading.Event()
        self._result: JobResult | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, result: JobResult) -> None:
        self._result = result
        self._event.set()

    def set_exception(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()

    def result(self, timeout: float | None = None) -> JobResult:
        """Block for the result.

        The wait is additionally bounded by the job's own deadline:
        whatever the server is doing, a deadlined job's ``result()``
        returns or raises the typed :class:`DeadlineExceeded` by its
        deadline — a client never hangs past the budget it asked for.
        """
        deadline = self.job.deadline
        wait = timeout
        if deadline is not None:
            remaining = max(deadline - time.monotonic(), 0.0)
            wait = remaining if wait is None else min(wait, remaining)
        if not self._event.wait(wait):
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineExceeded(
                    f"job {self.job_id!r} missed its "
                    f"{self.job.deadline_s}s deadline"
                )
            raise TimeoutError(
                f"job {self.job_id!r} not done within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result
