"""TCP front-end for a :class:`~repro.service.service.FactorService`.

A thin :mod:`socketserver` wrapper: each connection gets a handler
thread; each request is one framed message (see
:mod:`repro.service.protocol`); factorization requests block the
connection's thread on the job handle — concurrency comes from multiple
connections, admission control from the service's queue.

Request ops::

    {"op": "ping"}
    {"op": "health"}
    {"op": "factor", "A": {...csc...}} |
    {"op": "factor", "pattern_id": "...", "values": ndarray}
    {"op": "stats"}
    {"op": "shutdown"}

Error responses carry ``ok: False`` plus the typed error's stable
``kind`` tag, so :class:`~repro.service.client.ServiceClient` re-raises
the same exception types the in-process API uses.
"""

from __future__ import annotations

import socketserver
import threading

from repro.service import protocol
from repro.service.jobs import ServiceError
from repro.service.service import FactorService


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        server: ServiceServer = self.server.owner  # type: ignore[attr-defined]
        while True:
            try:
                msg = protocol.recv_msg(self.request)
            except (protocol.ProtocolError, OSError):
                return
            if msg is None:
                return
            try:
                response = server.dispatch(msg)
            except ServiceError as exc:
                response = {
                    "ok": False, "kind": exc.kind, "error": str(exc)
                }
            except Exception as exc:  # noqa: BLE001 - report, keep serving
                response = {
                    "ok": False, "kind": "error", "error": repr(exc)
                }
            try:
                protocol.send_msg(self.request, response)
            except OSError:
                return
            if msg.get("op") == "shutdown":
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServiceServer:
    """Serve a :class:`FactorService` on a TCP address."""

    def __init__(
        self,
        service: FactorService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.owner = self
        self._thread: threading.Thread | None = None
        self._shutdown_requested = threading.Event()
        self._serving = False

    @property
    def address(self) -> tuple[str, int]:
        return self._tcp.server_address[:2]

    # ------------------------------------------------------------------
    def dispatch(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "ping":
            return {"ok": True}
        if op == "health":
            return {"ok": True, "health": self.service.health()}
        if op == "stats":
            return {"ok": True, "stats": self.service.stats()}
        if op == "factor":
            A = msg.get("A")
            handle = self.service.submit(
                A=None if A is None else protocol.unpack_csc(A),
                pattern_id=msg.get("pattern_id"),
                values=msg.get("values"),
                job_id=msg.get("job_id"),
                timeout=msg.get("timeout"),
                deadline_s=msg.get("deadline_s"),
            )
            result = handle.result(msg.get("timeout"))
            return {
                "ok": True,
                "job_id": result.job_id,
                "pattern_id": result.pattern_id,
                "cache": result.cache,
                "L": protocol.pack_csc(result.L),
                "perm": result.perm,
                "record": (
                    None if result.record is None
                    else result.record.to_dict()
                ),
            }
        if op == "shutdown":
            self._shutdown_requested.set()
            # shutdown() blocks until serve_forever exits; never call it
            # from a handler thread.
            threading.Thread(
                target=self._tcp.shutdown, daemon=True
            ).start()
            return {"ok": True}
        raise ServiceError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        self._serving = True
        self._tcp.serve_forever(poll_interval=0.1)

    def start_background(self) -> "ServiceServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-service-tcp", daemon=True
        )
        self._thread.start()
        return self

    @property
    def shutdown_requested(self) -> bool:
        """True once a client sent ``{"op": "shutdown"}``."""
        return self._shutdown_requested.is_set()

    def close(self) -> None:
        """Stop accepting, close the socket (service left to the caller)."""
        if self._serving:
            self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
