"""Per-job service metrics: queue wait, batch size, cache outcome,
setup/run split, end-to-end latency percentiles.

Each job that passes through :class:`~repro.service.service.FactorService`
leaves one :class:`JobRecord`; :class:`ServiceMetrics` aggregates them
into the report `python -m repro loadgen` prints and the CI smoke job
asserts on. The per-run parallel profile still lands in the existing
:class:`~repro.runtime.metrics.RuntimeMetrics` (one per job, with the
service context tucked into its ``extra`` field) — this module only adds
the service-level view.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, field

import numpy as np

#: Tail-latency percentiles reported everywhere.
PERCENTILES = (50, 95, 99)


@dataclass
class JobRecord:
    """One job's trip through the service."""

    job_id: str
    pattern_id: str = ""
    #: ``"hit"`` / ``"miss"`` (empty for jobs that never reached the cache).
    cache: str = ""
    #: ``"ok"``, ``"failed"``, ``"expired"``, ``"rejected"``, or ``"shed"``.
    status: str = "ok"
    #: How the job survived: ``"clean"`` (first parallel attempt),
    #: ``"recovered"`` (re-run after a pool heal), or
    #: ``"degraded_sequential"`` (per-job sequential fallback). Tags from
    #: :mod:`repro.runtime.recovery`.
    outcome: str = "clean"
    #: Parallel attempts consumed (1 = clean; fallback adds none).
    attempts: int = 1
    #: Seconds spent in the admission queue before dispatch.
    queue_wait_s: float = 0.0
    #: Per-job deadline budget the client asked for (0 = none).
    deadline_s: float = 0.0
    #: Cold-path setup: symbolic analysis + owner planning + arena
    #: creation. ~0 on a cache hit — that drop *is* the service's point.
    setup_s: float = 0.0
    #: Parallel factorization wall time (fan-out round).
    run_s: float = 0.0
    #: Driver-side factor assembly (+ optional bitwise validation).
    assemble_s: float = 0.0
    #: Submit-to-completion, as the client experiences it.
    e2e_s: float = 0.0
    #: How many jobs shared this job's fan-out round.
    batch_size: int = 0
    error: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


def _pct(values: list[float]) -> dict:
    if not values:
        return {f"p{p}": 0.0 for p in PERCENTILES} | {"mean": 0.0, "max": 0.0}
    arr = np.asarray(values, dtype=float)
    out = {f"p{p}": float(np.percentile(arr, p)) for p in PERCENTILES}
    out["mean"] = float(arr.mean())
    out["max"] = float(arr.max())
    return out


@dataclass
class ServiceMetrics:
    """Thread-safe aggregate of every job the service has seen."""

    records: list = field(default_factory=list)
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    shed: int = 0
    expired: int = 0
    batches: int = 0
    #: Submissions answered from the job-id dedup table (idempotent
    #: client retries of an in-flight or completed job).
    deduped: int = 0
    #: Jobs that completed via re-run after a pool heal.
    recovered: int = 0
    #: Jobs that completed via the per-job sequential fallback.
    degraded: int = 0
    #: Pool-level breakages the dispatcher healed around.
    pool_restarts: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def count_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def count_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def count_batch(self) -> None:
        with self._lock:
            self.batches += 1

    def count_deduped(self) -> None:
        with self._lock:
            self.deduped += 1

    def count_pool_restart(self) -> None:
        with self._lock:
            self.pool_restarts += 1

    def add(self, record: JobRecord) -> None:
        with self._lock:
            self.records.append(record)
            if record.status == "ok":
                self.completed += 1
                if record.outcome == "recovered":
                    self.recovered += 1
                elif record.outcome == "degraded_sequential":
                    self.degraded += 1
            elif record.status == "shed":
                self.shed += 1
            elif record.status == "expired":
                self.expired += 1
            else:
                self.failed += 1

    # ------------------------------------------------------------------
    def _ok(self) -> list:
        return [r for r in self.records if r.status == "ok"]

    def summary(self) -> dict:
        """Aggregate report (all figures over completed jobs)."""
        with self._lock:
            ok = self._ok()
            hits = [r for r in ok if r.cache == "hit"]
            misses = [r for r in ok if r.cache == "miss"]
            return {
                "jobs": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "rejected": self.rejected,
                    "shed": self.shed,
                    "expired": self.expired,
                },
                "resilience": {
                    "deduped": self.deduped,
                    "recovered": self.recovered,
                    "degraded": self.degraded,
                    "pool_restarts": self.pool_restarts,
                },
                "batches": self.batches,
                "batch_size": _pct([float(r.batch_size) for r in ok]),
                "queue_wait_s": _pct([r.queue_wait_s for r in ok]),
                "e2e_s": _pct([r.e2e_s for r in ok]),
                "run_s": _pct([r.run_s for r in ok]),
                "setup_s": {
                    "cold": _pct([r.setup_s for r in misses]),
                    "warm": _pct([r.setup_s for r in hits]),
                },
                "cache": {"hit": len(hits), "miss": len(misses)},
            }

    def to_dict(self, include_records: bool = True) -> dict:
        d = self.summary()
        if include_records:
            with self._lock:
                d["records"] = [r.to_dict() for r in self.records]
        return d

    def to_json(self, indent: int | None = 2, include_records=True) -> str:
        return json.dumps(self.to_dict(include_records), indent=indent)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Compact human-readable summary block."""
        s = self.summary()
        j = s["jobs"]
        r = s["resilience"]
        lines = [
            f"jobs: {j['completed']} ok / {j['failed']} failed / "
            f"{j['expired']} expired / {j['rejected']} rejected / "
            f"{j['shed']} shed "
            f"(of {j['submitted']} submitted, {s['batches']} batches)",
            f"resilience: {r['recovered']} recovered / "
            f"{r['degraded']} degraded-sequential / "
            f"{r['pool_restarts']} pool restarts / "
            f"{r['deduped']} deduped retries",
            f"cache: {s['cache']['hit']} hits / {s['cache']['miss']} misses",
            "e2e latency: "
            + " ".join(
                f"p{p}={s['e2e_s'][f'p{p}'] * 1e3:.1f}ms"
                for p in PERCENTILES
            ),
            f"queue wait: p50={s['queue_wait_s']['p50'] * 1e3:.1f}ms "
            f"max={s['queue_wait_s']['max'] * 1e3:.1f}ms",
            f"setup: cold mean={s['setup_s']['cold']['mean'] * 1e3:.1f}ms "
            f"warm mean={s['setup_s']['warm']['mean'] * 1e3:.1f}ms",
        ]
        return "\n".join(lines)
