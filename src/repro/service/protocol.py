"""Length-prefixed pickle framing for the service's TCP transport.

One request, one response, many rounds per connection. The payload is a
plain dict of JSON-ish values plus numpy arrays / csc triplets (pickle
protocol 5 keeps large arrays zero-copy on the encode side).

Security note: pickle deserialization executes arbitrary code — the
server binds to localhost by default and the protocol is intended for
same-host (or otherwise trusted) clients only, matching the
multiprocessing transport the runtime already relies on.
"""

from __future__ import annotations

import pickle
import socket
import struct

#: 8-byte big-endian length prefix.
_HEADER = struct.Struct(">Q")

#: Refuse absurd frames before allocating (1 GiB).
MAX_FRAME = 1 << 30


class ProtocolError(RuntimeError):
    """Malformed frame or truncated stream."""


def send_msg(sock: socket.socket, obj) -> None:
    payload = pickle.dumps(obj, protocol=5)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"stream truncated mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket):
    """Next message, or None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds MAX_FRAME")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("stream truncated between header and payload")
    return pickle.loads(payload)


# ----------------------------------------------------------------------
# csc matrices travel as plain triplets (no scipy pickle internals).
# ----------------------------------------------------------------------
def pack_csc(M) -> dict:
    M = M.tocsc()
    return {
        "data": M.data,
        "indices": M.indices,
        "indptr": M.indptr,
        "shape": tuple(M.shape),
    }


def unpack_csc(d: dict):
    from scipy import sparse

    return sparse.csc_matrix(
        (d["data"], d["indices"], d["indptr"]), shape=tuple(d["shape"])
    )
