"""Pattern cache: symbolic analysis, owner plans, and arenas, keyed on
sparsity structure.

Two matrices with the same csc pattern (``shape``, ``indptr``,
``indices``) factor through identical symbolic machinery — ordering,
supernode partition, block structure, task graph, owner plan, arena
layout. The cache stores one :class:`PatternEntry` per distinct pattern
(LRU-bounded) so repeated-pattern traffic pays none of that setup again:
a warm job ships a values array and runs.

The digest also covers the service's planning knobs (block size,
blocking policy + width clamps, ordering algorithm, worker count,
mapping, transport, schedule) — a service restarted with different knobs
never aliases stale entries, and uniform vs supernodal plans for the same
pattern never collide.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse


def pattern_digest(A: sparse.csc_matrix, knobs: tuple) -> str:
    """Stable id of a csc sparsity pattern under the given knobs."""
    h = hashlib.sha256()
    h.update(repr(knobs).encode())
    h.update(np.asarray(A.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.indices, dtype=np.int64).tobytes())
    return h.hexdigest()[:16]


@dataclass
class PatternEntry:
    """Everything the service keeps warm for one sparsity pattern."""

    pattern_id: str
    #: :class:`~repro.symbolic.SymbolicFactor` — ordering + supernodes.
    symbolic: object
    structure: object
    tg: object
    owners: np.ndarray
    mapping_name: str
    #: Composed fill-reducing permutation (scipy "take" convention).
    perm: np.ndarray
    #: Original-pattern csc arrays — interpret values-only submissions.
    orig_indptr: np.ndarray = None
    orig_indices: np.ndarray = None
    #: Driver-owned shm arena for this pattern (None on inline).
    arena: object | None = None
    #: Seconds of cold setup this entry cost (symbolic + plan + arena).
    setup_s: float = 0.0
    uses: int = 0
    #: Crew size ``owners`` was planned for. After a pool heal shrinks
    #: the crew to P - f, the service re-plans owners lazily on the next
    #: job of the pattern (the arena layout is size-independent, so only
    #: the plan changes). 0 = "whatever the service was configured with".
    planned_nprocs: int = 0
    #: Execution schedule the workers run this pattern under
    #: ("static" | "dynamic") and the steal-victim seed for the latter.
    schedule: str = "static"
    steal_seed: int = 0
    #: Blocking policy the entry's partition was built under ("uniform" |
    #: "supernodal"). Informational — the digest knobs already separate
    #: policies, so one pattern factored under both policies yields two
    #: distinct entries (and two distinct ``seen_patterns`` residencies).
    block_policy: str = "uniform"
    #: Assembled :class:`~repro.numeric.BlockCholesky` of the pattern's
    #: last successful factor job — the sequential fallback (and bitwise
    #: reference) for solve requests.
    last_factor: object | None = field(default=None, repr=False)
    #: Pool generation whose resident workers still hold this pattern's
    #: factor blocks (-1 = none). Any pool restart/heal/regrow bumps the
    #: generation, so stale residency can never be mistaken for warm.
    resident_generation: int = -1
    #: All-zero matrix in the pattern's shape — the assembly shell
    #: (every block is overwritten by gathered frames).
    _empty: sparse.csc_matrix | None = field(default=None, repr=False)

    @property
    def shape(self) -> tuple:
        return self.symbolic.A.shape

    @property
    def nnz(self) -> int:
        """Nonzeros a values-only submission must provide."""
        return int(self.orig_indptr[-1])

    @property
    def empty(self) -> sparse.csc_matrix:
        if self._empty is None:
            self._empty = sparse.csc_matrix(self.shape)
        return self._empty

    def context(self):
        """The :class:`~repro.runtime.pool.PatternContext` to ship."""
        from repro.runtime.pool import PatternContext

        A_perm = self.symbolic.A
        return PatternContext(
            pattern_id=self.pattern_id,
            structure=self.structure,
            tg=self.tg,
            owners=self.owners,
            priorities=None,
            indptr=A_perm.indptr,
            indices=A_perm.indices,
            shape=tuple(A_perm.shape),
            arena_name=None if self.arena is None else self.arena.name,
            schedule=self.schedule,
            steal_seed=self.steal_seed,
        )

    def destroy(self) -> None:
        """Release the entry's arena segment (driver owns it)."""
        if self.arena is not None:
            self.arena.destroy()
            self.arena = None


class PatternCache:
    """LRU cache of :class:`PatternEntry`, with observable hit/miss
    counters and an eviction hook (the service uses it to drop worker
    attachments before destroying the arena)."""

    def __init__(self, capacity: int = 8):
        # Capacity 2+ so every in-batch pattern stays resident while the
        # batch that introduced it is being prepared.
        self.capacity = max(2, int(capacity))
        self._entries: OrderedDict[str, PatternEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Called with each evicted entry *before* its arena is destroyed.
        self.on_evict = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pattern_id: str) -> bool:
        return pattern_id in self._entries

    def lookup(self, pattern_id: str) -> PatternEntry | None:
        """Hit-counting lookup; refreshes LRU recency."""
        entry = self._entries.get(pattern_id)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        entry.uses += 1
        self._entries.move_to_end(pattern_id)
        return entry

    def peek(self, pattern_id: str) -> PatternEntry | None:
        """Counter-neutral lookup (does not touch recency)."""
        return self._entries.get(pattern_id)

    def put(self, entry: PatternEntry, protect=()) -> list[PatternEntry]:
        """Insert ``entry``; evict LRU entries beyond capacity.

        ``protect`` names pattern ids that must survive this insertion
        (patterns referenced by the batch being prepared). Returns the
        evicted entries — the caller drops worker attachments and then
        destroys their arenas.
        """
        self._entries[entry.pattern_id] = entry
        self._entries.move_to_end(entry.pattern_id)
        evicted = []
        protected = set(protect) | {entry.pattern_id}
        while len(self._entries) > self.capacity:
            victim = next(
                (pid for pid in self._entries if pid not in protected),
                None,
            )
            if victim is None:
                break
            evicted.append(self._entries.pop(victim))
            self.evictions += 1
        if self.on_evict is not None:
            for e in evicted:
                self.on_evict(e)
        return evicted

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def close(self) -> None:
        """Destroy every cached arena. Idempotent."""
        for entry in self._entries.values():
            entry.destroy()
        self._entries.clear()
