"""The :class:`FactorService` driver: warm pool + pattern cache +
admission queue + batched dispatch.

Lifecycle of a job::

    submit(A)                admission queue          dispatcher thread
    ───────────▶ JobQueue ──────────────────▶ get_batch() ─┐
                  (reject/block/shed)                      │ resolve
                                                           │ pattern
                                                           ▼
                              WorkerPool.run_batch([PoolJob, ...])
                                                           │
                  JobHandle ◀── assemble + validate ◀──────┘

Cold jobs (pattern never seen) pay symbolic analysis, owner planning,
and arena creation once; the resulting :class:`PatternEntry` is cached
and its context shipped to the resident workers with the first job.
Warm jobs ship a values array. Either way the numeric result is bitwise
identical to the sequential :class:`~repro.numeric.BlockCholesky` —
``validate=True`` asserts that on every job.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import OrderedDict

import numpy as np
from scipy import sparse

from repro.runtime.arena import BlockArena, resolve_transport
from repro.runtime.engine import _assemble, _merge_trace
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.pool import PoolJob, WorkerPool
from repro.runtime.recovery import (
    OUTCOME_CLEAN,
    OUTCOME_DEGRADED,
    OUTCOME_RECOVERED,
    SEQUENTIAL_MAPPING,
)
from repro.service.admission import JobQueue
from repro.service.cache import PatternCache, PatternEntry, pattern_digest
from repro.service.jobs import (
    AdmissionRejected,
    DeadlineExceeded,
    FactorJob,
    JobFailed,
    JobHandle,
    JobResult,
    ServiceClosed,
    ServiceUnavailable,
    SolveResult,
    UnknownPatternError,
    ValidationFailed,
)
from repro.service.metrics import JobRecord, ServiceMetrics
from repro.service.resilience import CircuitBreaker

#: Errors the dispatcher turns into per-job failures rather than letting
#: them crash the batch (``ValidationFailed`` subclasses ``JobFailed``).
_PER_JOB_ERRORS = (UnknownPatternError, JobFailed)


class _Queued:
    """A job waiting for dispatch (handle + admission timestamp)."""

    __slots__ = ("job", "handle", "enqueued_at")

    def __init__(self, job: FactorJob, handle: JobHandle):
        self.job = job
        self.handle = handle
        self.enqueued_at = time.monotonic()


class _Prep:
    """A batch job after pattern resolution, through its attempts."""

    __slots__ = ("queued", "entry", "record", "values", "fault_plan", "seq")

    def __init__(self, queued, entry, record, values, fault_plan=None):
        self.queued = queued
        self.entry = entry
        self.record = record
        self.values = values
        self.fault_plan = fault_plan
        self.seq = -1  # pool seq of the latest attempt


class FactorService:
    """A long-lived factorization service over the persistent pool.

    Parameters mirror :class:`~repro.solver.SparseCholesky` where they
    overlap (``ordering``, ``block_size``, ``nprocs``, ``mapping``,
    ``use_domains``, ``transport``, ``schedule``, ``trace``); the
    service-specific
    knobs are the admission policy (``admission`` + ``queue_capacity``),
    the batching window (``max_batch`` + ``batch_wait_s``), the pattern
    cache bound (``cache_capacity``), and ``validate`` (bitwise-check
    every factor against the sequential baseline before releasing it).
    """

    def __init__(
        self,
        nprocs: int = 2,
        ordering: str = "auto",
        block_size: int = 48,
        mapping: str = "DW/CY",
        use_domains: bool = False,
        transport: str = "auto",
        schedule: str = "static",
        steal_seed: int = 0,
        block_policy: str = "uniform",
        min_width: int | None = None,
        max_width: int | None = None,
        queue_capacity: int = 64,
        admission: str = "block",
        max_batch: int = 8,
        batch_wait_s: float = 0.002,
        cache_capacity: int = 8,
        validate: bool = False,
        trace: bool | int | None = None,
        start_method: str | None = None,
        stall_timeout_s: float = 30.0,
        batch_timeout_s: float = 300.0,
        record_timeline: bool = False,
        default_deadline_s: float | None = None,
        max_job_attempts: int = 2,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        dedup_capacity: int = 64,
        fault_plan=None,
        fault_jobs: tuple = (),
    ):
        self.nprocs = int(nprocs)
        self.ordering = ordering
        self.block_size = int(block_size)
        self.mapping = mapping
        self.use_domains = use_domains
        self.transport = resolve_transport(transport, self.nprocs)
        if schedule not in ("static", "dynamic"):
            raise ValueError(
                f"schedule must be 'static' or 'dynamic', got {schedule!r}"
            )
        self.schedule = schedule
        self.steal_seed = int(steal_seed)
        from repro.blocks import BLOCK_POLICIES

        if block_policy not in BLOCK_POLICIES:
            raise ValueError(
                f"block_policy must be one of {BLOCK_POLICIES}, "
                f"got {block_policy!r}"
            )
        self.block_policy = block_policy
        self.min_width = None if min_width is None else int(min_width)
        self.max_width = None if max_width is None else int(max_width)
        self.validate = validate
        self.max_batch = max(1, int(max_batch))
        self.batch_wait_s = float(batch_wait_s)
        self.batch_timeout_s = float(batch_timeout_s)
        if trace is None or trace is False:
            self.trace_capacity = 0
        elif trace is True:
            from repro.runtime.trace import DEFAULT_CAPACITY

            self.trace_capacity = DEFAULT_CAPACITY
        else:
            self.trace_capacity = int(trace)
        self.pool = WorkerPool(
            self.nprocs,
            start_method=start_method,
            stall_timeout_s=stall_timeout_s,
            record_timeline=record_timeline,
        )
        self.cache = PatternCache(cache_capacity)
        self.queue = JobQueue(queue_capacity, admission)
        self.metrics = ServiceMetrics()
        self.default_deadline_s = default_deadline_s
        self.max_job_attempts = max(1, int(max_job_attempts))
        self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown_s)
        #: Deterministic chaos injection: ``fault_plan`` is attached to
        #: the jobs whose dispatch index (0-based, in admission order) is
        #: in ``fault_jobs`` — first parallel attempt only, so injected
        #: faults are transient by construction.
        self.fault_plan = fault_plan
        self.fault_jobs = frozenset(fault_jobs)
        self._dispatched = 0
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        self._started = False
        self._dispatcher: threading.Thread | None = None
        #: Entries whose arenas must be released after the current batch
        #: (cache evictions are deferred past in-flight jobs).
        self._pending_evictions: list[PatternEntry] = []
        # Job-id dedup: outstanding handles (submitted, not finished) and
        # a bounded map of completed results, so an idempotent client
        # retry of the same job_id never runs the job twice.
        self._dedup_lock = threading.Lock()
        self._outstanding: dict[str, JobHandle] = {}
        self._completed: OrderedDict[str, JobResult] = OrderedDict()
        self._completed_solves: OrderedDict[str, SolveResult] = OrderedDict()
        self._dedup_capacity = max(0, int(dedup_capacity))
        #: Serializes pool dispatch between the dispatcher thread (factor
        #: batches) and client threads (:meth:`solve`): a solve job must
        #: never interleave with a factor batch that could overwrite the
        #: resident factor's arena slots mid-sweep.
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FactorService":
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise ServiceClosed("service is shut down")
            self.pool.start()
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name="repro-service-dispatch",
                daemon=True,
            )
            self._dispatcher.start()
            self._started = True
        return self

    def close(self, timeout: float = 30.0) -> None:
        """Graceful drain, bounded by ``timeout``: stop admission, let
        the dispatcher finish in-flight and queued batches, then fail
        every handle still outstanding with a typed
        :class:`ServiceClosed` — a caller blocked in ``result()`` always
        gets an answer, never a hang. The pool and every arena are
        released. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.queue.close()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)
        drained = (
            self._dispatcher is None or not self._dispatcher.is_alive()
        )
        for queued in self.queue.drain():
            self._finish_rejected(
                queued, ServiceClosed("service is shut down"), "failed"
            )
        # Stragglers the drain did not reach — jobs taken into a batch
        # that never completed (hung pool, stuck dispatcher). Without
        # this, their callers block in result() forever.
        with self._dedup_lock:
            stragglers = list(self._outstanding.values())
            self._outstanding.clear()
        for handle in stragglers:
            if not handle.done():
                why = (
                    "service is shut down"
                    if drained
                    else f"shutdown drain timed out after {timeout:.0f}s"
                )
                self.metrics.add(JobRecord(
                    job_id=handle.job_id, status="failed", error=why,
                ))
                handle.set_exception(ServiceClosed(why))
        self.pool.close()
        self._release_evictions()
        self.cache.close()

    def __enter__(self) -> "FactorService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        A: sparse.spmatrix | None = None,
        pattern_id: str | None = None,
        values: np.ndarray | None = None,
        job_id: str | None = None,
        timeout: float | None = None,
        deadline_s: float | None = None,
    ) -> JobHandle:
        """Queue one factorization; returns immediately with a handle.

        ``timeout`` bounds the backpressure wait under the ``"block"``
        admission policy. Raises :class:`AdmissionRejected` /
        :class:`ServiceClosed` at submit time — a full queue is a typed
        error, never a hang. ``deadline_s`` is the job's end-to-end
        budget: past it, the job fails with a typed
        :class:`DeadlineExceeded` wherever it is (queued, mid-batch, or
        waited on), without disturbing its batch.

        Submitting an explicit ``job_id`` is idempotent: a resubmission
        while the job is in flight returns the same handle; one after
        completion returns the cached result — so client retries after a
        broken connection never run a job twice.
        """
        if not self._started:
            self.start()
        job = FactorJob(
            job_id=job_id or uuid.uuid4().hex[:12],
            A=A,
            pattern_id=pattern_id,
            values=values,
            deadline_s=(
                deadline_s if deadline_s is not None
                else self.default_deadline_s
            ),
        )
        handle = JobHandle(job)
        with self._dedup_lock:
            existing = self._outstanding.get(job.job_id)
            if existing is not None:
                self.metrics.count_deduped()
                return existing
            cached = self._completed.get(job.job_id)
            if cached is not None:
                self.metrics.count_deduped()
                handle.set_result(cached)
                return handle
            # Register before the queue put: the dispatcher may finish
            # (and retire) the job before put() even returns.
            self._outstanding[job.job_id] = handle
        self.metrics.count_submitted()
        try:
            shed = self.queue.put(_Queued(job, handle), timeout=timeout)
        except (AdmissionRejected, ServiceClosed) as exc:
            if isinstance(exc, AdmissionRejected):
                self.metrics.count_rejected()
            with self._dedup_lock:
                self._outstanding.pop(job.job_id, None)
            raise
        if shed is not None:
            self._finish_rejected(
                shed, AdmissionRejected("shed", "shed under overload"),
                "shed",
            )
        return handle

    def factor(self, A=None, timeout: float | None = None, **kw) -> JobResult:
        """Submit and wait — the one-call path."""
        return self.submit(A, **kw).result(timeout)

    def solve(
        self,
        b: np.ndarray,
        pattern_id: str,
        job_id: str | None = None,
        deadline_s: float | None = None,
        fault_plan=None,
    ) -> SolveResult:
        """Solve ``A x = b`` against the pattern's resident factor.

        The warm path dispatches a distributed triangular solve to the
        pool workers that still hold the pattern's factor blocks from its
        last factor job — only the permuted RHS panel travels; no pattern
        context, no matrix values, no factor bytes. When residency was
        lost (pool heal/restart/regrow) or the pool job fails — e.g. a
        worker killed mid-solve — the service falls back to the retained
        driver-side factor and solves sequentially: the result is
        bitwise-identical either way, and :attr:`SolveResult.outcome`
        says which route ran (``"clean"`` vs ``"degraded_sequential"``).

        Typed errors, never hangs: :class:`UnknownPatternError` for an
        uncached pattern, :class:`JobFailed` for a pattern with no
        completed factor or a bad RHS shape, :class:`ServiceUnavailable`
        while the circuit breaker is open, :class:`DeadlineExceeded`
        past ``deadline_s``. Passing an explicit ``job_id`` is
        idempotent: a retry of a completed solve returns the cached
        result without re-running. ``fault_plan`` injects deterministic
        faults into the warm solve's workers (chaos testing).
        """
        if not self._started:
            self.start()
        if self._closed:
            raise ServiceClosed("service is shut down")
        job_id = job_id or uuid.uuid4().hex[:12]
        with self._dedup_lock:
            cached = self._completed_solves.get(job_id)
            if cached is not None:
                self.metrics.count_deduped()
                return cached
        t0 = time.monotonic()
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        deadline = None if deadline_s is None else t0 + deadline_s
        record = JobRecord(job_id=job_id, deadline_s=deadline_s or 0.0)
        entry = self.cache.lookup(pattern_id)
        if entry is None:
            raise UnknownPatternError(
                f"pattern {pattern_id!r} is not cached (evicted, or from "
                "a previous service run); factor the full matrix first"
            )
        record.pattern_id = entry.pattern_id
        record.cache = "hit"
        if entry.last_factor is None:
            raise JobFailed(
                job_id,
                f"pattern {pattern_id!r} has no completed factor to "
                "solve against",
            )
        b = np.asarray(b, dtype=np.float64)
        panel = b.reshape(-1, 1) if b.ndim == 1 else b
        if panel.ndim != 2 or panel.shape[0] != entry.shape[0]:
            raise JobFailed(
                job_id,
                f"rhs has shape {b.shape}; pattern expects "
                f"{entry.shape[0]} rows",
            )
        if not self.breaker.allow():
            raise ServiceUnavailable(
                "circuit breaker open: solve refused while the pool "
                "recovers"
            )
        pb = np.ascontiguousarray(panel[entry.perm])
        metrics = trace = None
        x_perm = None
        outcome_tag = OUTCOME_DEGRADED
        if (
            self.pool.running
            and entry.resident_generation == self.pool.generation
        ):
            with self._pool_lock:
                seq = next(self._seq)
                spec = PoolJob(
                    seq=seq,
                    pattern_id=entry.pattern_id,
                    values=None,
                    kind="solve",
                    rhs=pb,
                    deadline=deadline,
                    trace_capacity=self.trace_capacity,
                    fault_plan=fault_plan,
                )
                outcomes = self.pool.run_batch(
                    [spec], timeout_s=self.batch_timeout_s
                )
            out = outcomes[seq]
            if self.pool.last_error is not None:
                self.metrics.count_pool_restart()
                self.breaker.record_failure()
                entry.resident_generation = -1
            else:
                self.breaker.record_success()
            if out.expired:
                record.status = "expired"
                record.error = f"deadline of {deadline_s}s exceeded"
                self.metrics.add(record)
                raise DeadlineExceeded(
                    f"solve {job_id!r} missed its {deadline_s}s deadline"
                )
            if out.ok:
                x_perm = self._assemble_solution(entry, pb, out)
                if x_perm is not None:
                    outcome_tag = OUTCOME_CLEAN
                    record.run_s = out.wall_s
                    record.batch_size = 1
                    metrics = self._job_metrics(entry, record, out)
                    if self.trace_capacity:
                        trace = _merge_trace(
                            out.results, self.pool.nprocs,
                            entry.mapping_name, self.pool.start_method,
                            None, wall_s=out.wall_s,
                            nrhs=int(pb.shape[1]),
                        )
            else:
                record.error = out.error or "aborted"
        if x_perm is None:
            # Sequential fallback on the retained factor — the same
            # block substitution the distributed sweep mirrors, so the
            # answer is bitwise-identical to a clean warm solve.
            if deadline is not None and time.monotonic() > deadline:
                record.status = "expired"
                self.metrics.add(record)
                raise DeadlineExceeded(
                    f"solve {job_id!r} missed its {deadline_s}s deadline"
                )
            t_seq = time.monotonic()
            from repro.numeric.solve import block_solve_permuted

            x_perm = block_solve_permuted(entry.last_factor, pb)
            record.run_s = time.monotonic() - t_seq
        x = np.empty_like(panel)
        x[entry.perm] = x_perm
        if b.ndim == 1:
            x = x[:, 0]
        record.outcome = outcome_tag
        record.status = "ok"
        record.error = ""
        record.e2e_s = time.monotonic() - t0
        result = SolveResult(
            job_id=job_id,
            pattern_id=entry.pattern_id,
            x=x,
            outcome=outcome_tag,
            metrics=metrics,
            trace=trace,
            record=record,
        )
        self.metrics.add(record)
        with self._dedup_lock:
            if self._dedup_capacity:
                self._completed_solves[job_id] = result
                self._completed_solves.move_to_end(job_id)
                while len(self._completed_solves) > self._dedup_capacity:
                    self._completed_solves.popitem(last=False)
        return result

    def _assemble_solution(self, entry, pb, outcome) -> np.ndarray | None:
        """Stitch per-rank solution panels into the permuted solution;
        None when any panel is missing (triggers the sequential
        fallback rather than releasing a wrong answer)."""
        ptr = np.asarray(entry.structure.partition.panel_ptr, dtype=np.int64)
        x = np.empty_like(pb)
        seen = 0
        for res in outcome.results.values():
            for k, panel in (res.solution or {}).items():
                x[int(ptr[k]):int(ptr[k + 1])] = panel
                seen += int(ptr[k + 1] - ptr[k])
        if seen != pb.shape[0]:
            return None
        return x

    def stats(self) -> dict:
        """Service-level counters + aggregates (JSON-safe)."""
        return {
            "nprocs": self.nprocs,
            "pool_nprocs": self.pool.nprocs,
            "transport": self.transport,
            "mapping": self.mapping,
            "pool_generation": self.pool.generation,
            "breaker": self.breaker.to_dict(),
            "queue": self.queue.stats.to_dict(),
            "pattern_cache": self.cache.stats(),
            "service": self.metrics.to_dict(include_records=False),
        }

    def health(self) -> dict:
        """Cheap liveness/degradation probe (JSON-safe).

        ``status`` is ``"ok"`` (pool healthy, breaker closed),
        ``"degraded"`` (breaker open/half-open, or the pool healed down
        to fewer workers than configured), or ``"closed"``.
        """
        breaker = self.breaker.to_dict()
        degraded = (
            breaker["state"] != CircuitBreaker.CLOSED
            or (self.pool.running and self.pool.nprocs < self.nprocs)
        )
        status = (
            "closed" if self._closed
            else "degraded" if degraded
            else "ok"
        )
        now = time.monotonic()
        return {
            "status": status,
            "breaker": breaker,
            "pool": {
                "running": self.pool.running,
                "alive": self.pool.alive,
                "nprocs": self.pool.nprocs,
                "configured_nprocs": self.nprocs,
                "generation": self.pool.generation,
                "heartbeat_age_s": {
                    str(rank): round(now - t, 3)
                    for rank, t in sorted(
                        self.pool.last_heartbeats.items()
                    )
                },
            },
            "queue": {
                "depth": len(self.queue),
                "closed": self.queue.closed,
            },
        }

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            batch = self.queue.get_batch(self.max_batch, self.batch_wait_s)
            if not batch:
                if self.queue.closed:
                    return
                continue
            try:
                self._run_batch(batch)
            except BaseException as exc:  # noqa: BLE001 - keep serving
                for queued in batch:
                    if not queued.handle.done():
                        self._finish_failed(
                            queued,
                            JobFailed(queued.job.job_id, repr(exc)),
                            record=JobRecord(
                                job_id=queued.job.job_id,
                                status="failed",
                                error=repr(exc),
                            ),
                        )

    def _run_batch(self, batch: list) -> None:
        self.metrics.count_batch()
        t_dispatch = time.monotonic()
        prepared: list[_Prep] = []
        protect = {
            q.job.pattern_id for q in batch if q.job.pattern_id
        }
        for queued in batch:
            record = JobRecord(
                job_id=queued.job.job_id,
                queue_wait_s=t_dispatch - queued.enqueued_at,
                deadline_s=queued.job.deadline_s or 0.0,
            )
            if queued.job.expired:
                # Died waiting in the queue — typed error, nothing runs.
                self.queue.note_expired()
                self._finish_expired(queued, record)
                continue
            try:
                entry, record.cache, A_full = self._resolve_entry(
                    queued.job, record, protect
                )
                values = self._job_values(queued.job, entry, A_full)
            except _PER_JOB_ERRORS as exc:
                record.status = "failed"
                record.error = str(exc)
                self._finish_failed(queued, exc, record)
                continue
            protect.add(entry.pattern_id)
            plan = None
            if self.fault_plan is not None and (
                self._dispatched in self.fault_jobs
            ):
                plan = self.fault_plan
            self._dispatched += 1
            prepared.append(_Prep(queued, entry, record, values, plan))
        if not self.breaker.allow():
            # Breaker open: don't touch the pool; every job runs on the
            # sequential fallback — degraded but correct.
            for p in prepared:
                p.record.batch_size = len(prepared)
                self._run_sequential(p)
            self._release_evictions()
            return
        # A pool that healed onto a shrunken crew during an earlier batch
        # grows back to its configured width here — between batches is
        # the only safe point. The restart clears ``seen_patterns``, so
        # contexts re-ship lazily and ``_sync_plan`` re-plans owners for
        # the restored width exactly as it re-planned for the shrink.
        # ``_pool_lock`` keeps concurrent :meth:`solve` dispatches out of
        # the pool while a factor batch is in flight (and vice versa).
        with self._pool_lock:
            if (
                self.pool.running
                and self.pool.nprocs < self.pool.configured_nprocs
            ):
                self.pool.regrow()
            # Bounded parallel attempts: jobs that fail on a broken pool
            # are re-dispatched (fresh seqs; contexts re-ship because the
            # healed pool forgot them; owners re-planned for the crew).
            pending = prepared
            attempt = 0
            while pending and attempt < self.max_job_attempts:
                specs = self._make_specs(pending, attempt)
                outcomes = self.pool.run_batch(
                    specs, timeout_s=self.batch_timeout_s
                )
                if self.pool.last_error is not None:
                    self.metrics.count_pool_restart()
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()
                attempt += 1
                retry = []
                for p in pending:
                    out = outcomes[p.seq]
                    p.record.attempts = attempt
                    if out.ok:
                        p.record.outcome = (
                            OUTCOME_CLEAN if attempt == 1
                            else OUTCOME_RECOVERED
                        )
                        p.record.batch_size = len(specs)
                        self._finish_job(p.queued, p.entry, p.record, out)
                    elif out.expired or p.queued.job.expired:
                        self._finish_expired(p.queued, p.record)
                    else:
                        p.record.error = out.error or "aborted"
                        retry.append(p)
                pending = retry
                if pending and not self.breaker.allow():
                    break  # the breaker tripped mid-loop: stop probing
        # Attempts exhausted (or breaker open): per-job sequential
        # fallback, the always-correct last resort.
        for p in pending:
            self._run_sequential(p)
        self._release_evictions()

    def _make_specs(self, pending: list[_Prep], attempt: int) -> list[PoolJob]:
        """Pool specs for one parallel attempt (fresh seqs each time)."""
        specs = []
        last_on_arena: dict[str, int] = {}
        for p in pending:
            entry = p.entry
            self._sync_plan(entry)
            p.seq = next(self._seq)
            spec = PoolJob(
                seq=p.seq,
                pattern_id=entry.pattern_id,
                values=p.values,
                context=(
                    entry.context()
                    if entry.pattern_id not in self.pool.seen_patterns
                    else None
                ),
                wait_for=last_on_arena.get(entry.pattern_id),
                trace_capacity=self.trace_capacity,
                deadline=p.queued.job.deadline,
                # Injected faults fire on the first attempt only —
                # transient by construction, like CrashSpec's default.
                fault_plan=p.fault_plan if attempt == 0 else None,
            )
            if entry.arena is not None:
                last_on_arena[entry.pattern_id] = p.seq
            if spec.context is not None:
                # run_batch records it too, but later jobs in *this* loop
                # must already see the pattern as shipped.
                self.pool.seen_patterns.add(entry.pattern_id)
            specs.append(spec)
        # A job needs a DONE announcement exactly when a later job in the
        # batch waits on its arena slots.
        waited_on = {s.wait_for for s in specs if s.wait_for is not None}
        for spec in specs:
            spec.announce = spec.seq in waited_on
        return specs

    def _sync_plan(self, entry: PatternEntry) -> None:
        """Re-plan the entry's owners when the pool healed to a
        different crew size (the arena layout is crew-size-independent,
        so only the plan changes; the context re-ships regardless
        because the restarted pool cleared ``seen_patterns``)."""
        planned = entry.planned_nprocs or self.nprocs
        if planned == self.pool.nprocs:
            return
        from repro.runtime.engine import plan_owners

        entry.owners, entry.mapping_name = plan_owners(
            entry.tg.workmodel, entry.tg, self.pool.nprocs,
            self.mapping, self.use_domains,
        )
        entry.planned_nprocs = self.pool.nprocs
        # Any stale shipped context described the old owners.
        self.pool.evict([entry.pattern_id])

    def _run_sequential(self, p: _Prep) -> None:
        """Per-job sequential fallback: always correct (bitwise equal to
        the parallel factor), never parallel."""
        from repro.numeric import BlockCholesky

        if p.queued.job.expired:
            self._finish_expired(p.queued, p.record)
            return
        t0 = time.monotonic()
        try:
            A_perm = sparse.csc_matrix(
                (p.values, p.entry.symbolic.A.indices,
                 p.entry.symbolic.A.indptr),
                shape=p.entry.shape,
            )
            factor = BlockCholesky(p.entry.structure, A_perm).factor()
            L = factor.to_csc()
        except Exception as exc:  # noqa: BLE001 - typed per-job failure
            p.record.status = "failed"
            p.record.error = f"sequential fallback failed: {exc!r}"
            self._finish_failed(
                p.queued,
                JobFailed(p.queued.job.job_id, p.record.error),
                p.record,
            )
            return
        # The sequential factor is still the pattern's latest factor —
        # retain it for solve fallbacks — but no pool worker holds it, so
        # residency is explicitly cleared.
        p.entry.last_factor = factor
        p.entry.resident_generation = -1
        p.record.outcome = OUTCOME_DEGRADED
        p.record.status = "ok"
        p.record.error = ""
        p.record.run_s = time.monotonic() - t0
        p.record.e2e_s = time.monotonic() - p.queued.job.submitted_at
        metrics = RuntimeMetrics(
            nprocs=1,
            wall_s=p.record.run_s,
            workers=[],
            mapping=SEQUENTIAL_MAPPING,
            problem=p.entry.pattern_id,
        )
        metrics.extra["service"] = {
            "job_id": p.record.job_id,
            "cache": p.record.cache,
            "batch_size": p.record.batch_size,
            "queue_wait_s": p.record.queue_wait_s,
            "outcome": p.record.outcome,
        }
        result = JobResult(
            job_id=p.queued.job.job_id,
            pattern_id=p.entry.pattern_id,
            cache=p.record.cache,
            L=L,
            perm=p.entry.perm,
            factor=factor,
            metrics=metrics,
            record=p.record,
        )
        self.metrics.add(p.record)
        self._retire(p.queued.job.job_id, result)
        p.queued.handle.set_result(result)

    def _finish_expired(self, queued, record: JobRecord) -> None:
        record.status = "expired"
        record.error = (
            f"deadline of {queued.job.deadline_s}s exceeded"
        )
        self._finish_failed(
            queued,
            DeadlineExceeded(
                f"job {queued.job.job_id!r} missed its "
                f"{queued.job.deadline_s}s deadline"
            ),
            record,
        )

    # -- pattern resolution --------------------------------------------
    def _resolve_entry(self, job: FactorJob, record: JobRecord, protect):
        """Find or build the job's :class:`PatternEntry`.

        Returns ``(entry, "hit"|"miss", A_full)`` where ``A_full`` is
        the client's matrix (None on the values-only path).
        """
        if job.pattern_id is not None:
            entry = self.cache.lookup(job.pattern_id)
            if entry is None:
                self.cache.misses -= 1  # not a buildable miss
                raise UnknownPatternError(
                    f"pattern {job.pattern_id!r} is not cached "
                    "(evicted, or from a previous service run); "
                    "resubmit the full matrix"
                )
            record.pattern_id = entry.pattern_id
            return entry, "hit", None
        pid = pattern_digest(job.A, self._knobs())
        record.pattern_id = pid
        entry = self.cache.lookup(pid)
        if entry is not None:
            return entry, "hit", job.A
        t0 = time.monotonic()
        entry = self._build_entry(pid, job.A)
        entry.setup_s = time.monotonic() - t0
        record.setup_s = entry.setup_s
        for evicted in self.cache.put(entry, protect=protect):
            self.pool.evict([evicted.pattern_id])
            self._pending_evictions.append(evicted)
        return entry, "miss", job.A

    def _knobs(self) -> tuple:
        # Every knob that shapes an entry's symbolic plan must be here:
        # two jobs with the same csc pattern but different knobs (e.g.
        # uniform vs supernodal blocking) must never alias one entry.
        return (
            self.ordering,
            self.block_size,
            self.block_policy,
            self.min_width,
            self.max_width,
            self.nprocs,
            self.mapping,
            self.use_domains,
            self.transport,
            self.schedule,
        )

    def _build_entry(self, pid: str, A: sparse.csc_matrix) -> PatternEntry:
        """Cold setup: symbolic analysis, owner plan, arena — once per
        pattern."""
        from repro.blocks import BlockStructure, WorkModel, make_partition
        from repro.fanout import TaskGraph
        from repro.runtime.engine import plan_owners
        from repro.solver import SparseCholesky
        from repro.symbolic import symbolic_factor

        perm = SparseCholesky._resolve_ordering(A, self.ordering)
        symbolic = symbolic_factor(A, perm)
        structure = BlockStructure(make_partition(
            symbolic,
            block_policy=self.block_policy,
            block_size=self.block_size,
            min_width=self.min_width,
            max_width=self.max_width,
        ))
        wm = WorkModel(structure)
        tg = TaskGraph(wm)
        owners, name = plan_owners(
            wm, tg, self.nprocs, self.mapping, self.use_domains
        )
        arena = None
        if self.transport == "shm":
            arena = BlockArena.create(tg)
        return PatternEntry(
            pattern_id=pid,
            symbolic=symbolic,
            structure=structure,
            tg=tg,
            owners=owners,
            mapping_name=name,
            perm=np.asarray(symbolic.ordering.perm),
            orig_indptr=A.indptr.copy(),
            orig_indices=A.indices.copy(),
            arena=arena,
            schedule=self.schedule,
            steal_seed=self.steal_seed,
            block_policy=self.block_policy,
        )

    def _job_values(self, job, entry: PatternEntry, A_full) -> np.ndarray:
        """The permuted csc data array the workers factor."""
        from repro.ordering import permute_spd

        if A_full is None:
            if job.values.shape[0] != entry.nnz:
                raise JobFailed(
                    job.job_id,
                    f"values array has {job.values.shape[0]} entries; "
                    f"pattern {entry.pattern_id!r} has {entry.nnz}",
                )
            A_full = sparse.csc_matrix(
                (job.values, entry.orig_indices, entry.orig_indptr),
                shape=entry.shape,
            )
        elif A_full.shape != entry.shape:
            raise JobFailed(
                job.job_id,
                f"matrix shape {A_full.shape} != pattern {entry.shape}",
            )
        # Same deterministic permutation the cold path took — the warm
        # factor stays bitwise identical to a cold factor() of the same
        # values.
        return permute_spd(A_full, entry.perm).data

    # -- completion -----------------------------------------------------
    def _retire(self, job_id: str, result: JobResult | None = None) -> None:
        """Retire a job from the dedup registry. Successful results are
        kept (bounded LRU) so a late idempotent retry of the same job_id
        gets the answer instead of a re-run; failures are dropped so a
        retry re-runs the job."""
        with self._dedup_lock:
            self._outstanding.pop(job_id, None)
            if result is not None and self._dedup_capacity:
                self._completed[job_id] = result
                self._completed.move_to_end(job_id)
                while len(self._completed) > self._dedup_capacity:
                    self._completed.popitem(last=False)

    def _finish_job(self, queued, entry, record, outcome) -> None:
        if not outcome.ok:
            detail = outcome.error or "aborted"
            record.status = "failed"
            record.error = detail
            self._finish_failed(
                queued, JobFailed(queued.job.job_id, detail), record
            )
            return
        record.run_s = outcome.wall_s
        t0 = time.monotonic()
        try:
            factor = _assemble(
                entry.structure, entry.empty, entry.tg, outcome.results
            )
            L = factor.to_csc()
            if self.validate:
                self._validate(queued.job, entry, L)
        except ValidationFailed as exc:
            record.status = "failed"
            record.error = str(exc)
            self._finish_failed(queued, exc, record)
            return
        record.assemble_s = time.monotonic() - t0
        record.e2e_s = time.monotonic() - queued.job.submitted_at
        # Retain the factor for solve requests: the driver-side copy is
        # the sequential fallback, and the pool workers that just ran the
        # job keep their blocks resident for warm distributed solves.
        entry.last_factor = factor
        entry.resident_generation = self.pool.generation
        metrics = self._job_metrics(entry, record, outcome)
        trace = None
        if self.trace_capacity:
            trace = _merge_trace(
                outcome.results, self.nprocs, entry.mapping_name,
                self.pool.start_method, None, wall_s=outcome.wall_s,
            )
        result = JobResult(
            job_id=queued.job.job_id,
            pattern_id=entry.pattern_id,
            cache=record.cache,
            L=L,
            perm=entry.perm,
            factor=factor,
            metrics=metrics,
            trace=trace,
            record=record,
        )
        self.metrics.add(record)
        self._retire(queued.job.job_id, result)
        queued.handle.set_result(result)

    def _validate(self, job, entry: PatternEntry, L) -> None:
        """Bitwise check against the sequential baseline (the runtime's
        determinism makes exact equality the correct bar)."""
        from repro.numeric import BlockCholesky

        A_perm = sparse.csc_matrix(
            (self._job_values(job, entry,
                              job.A if job.A is not None else None),
             entry.symbolic.A.indices, entry.symbolic.A.indptr),
            shape=entry.shape,
        )
        ref = BlockCholesky(entry.structure, A_perm).factor().to_csc()
        same = (
            np.array_equal(L.indptr, ref.indptr)
            and np.array_equal(L.indices, ref.indices)
            and np.array_equal(L.data, ref.data)
        )
        if not same:
            raise ValidationFailed(
                job.job_id,
                "parallel factor differs bitwise from the sequential "
                "baseline",
            )

    def _job_metrics(self, entry, record, outcome) -> RuntimeMetrics:
        metrics = RuntimeMetrics(
            nprocs=self.nprocs,
            wall_s=outcome.wall_s,
            workers=[
                res.metrics for res in outcome.results.values()
            ],
            mapping=entry.mapping_name,
            problem=entry.pattern_id,
            transport="shm" if entry.arena is not None else "inline",
            schedule=entry.schedule,
        )
        metrics.extra["service"] = {
            "job_id": record.job_id,
            "cache": record.cache,
            "batch_size": record.batch_size,
            "queue_wait_s": record.queue_wait_s,
        }
        return metrics

    def _finish_failed(self, queued, exc, record) -> None:
        self.metrics.add(record)
        self._retire(queued.job.job_id)
        queued.handle.set_exception(exc)

    def _finish_rejected(self, queued, exc, status: str) -> None:
        record = JobRecord(
            job_id=queued.job.job_id, status=status, error=str(exc)
        )
        self.metrics.add(record)
        self._retire(queued.job.job_id)
        queued.handle.set_exception(exc)

    def _release_evictions(self) -> None:
        for entry in self._pending_evictions:
            entry.destroy()
        self._pending_evictions.clear()
