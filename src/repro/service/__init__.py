"""Factorization-as-a-service: a long-lived solver over the mp runtime.

The paper's motivating workload is *repeated* numeric factorization of a
fixed sparsity pattern inside interior-point LP loops, yet the one-shot
engine pays full job setup — symbolic analysis, owner planning, worker
spawn, arena creation — for every matrix. This package keeps all of that
warm:

* :class:`FactorService` — the driver. Owns a persistent
  :class:`~repro.runtime.pool.WorkerPool`, a pattern cache
  (:class:`~repro.service.cache.PatternCache`) keyed on sparsity
  structure, and a bounded admission queue
  (:class:`~repro.service.admission.JobQueue`). A dispatcher thread
  drains the queue in batches; each batch is one fan-out round on the
  resident crew.
* :class:`ServiceClient` — in-process or TCP client; submit a matrix, or
  a pattern handle plus a new values array, get the factor back.
* ``python -m repro serve`` / ``python -m repro loadgen`` — run the
  service as a server and drive it with closed- or open-loop traffic at
  a configurable pattern-repeat ratio.

Repeated-pattern traffic runs as pure numeric re-factorization: warm
jobs skip symbolic analysis, owner planning, and worker spawn entirely,
shipping only a float64 values array per worker. Every result can be
validated bitwise against the sequential :class:`~repro.numeric.BlockCholesky`
baseline (``validate=True``).

The service is self-healing: dead or stalled workers are detected
mid-batch, the pool restarts on the survivors, and in-flight jobs are
re-run (bounded attempts) before falling back to the always-correct
sequential path — outcomes are tagged per job. Per-job deadlines,
idempotent job-id dedup, a :class:`~repro.service.resilience.CircuitBreaker`
guarding the pool, and client-side :class:`~repro.service.resilience.RetryPolicy`
backoff round out the failure surface; every failure is a typed
:class:`ServiceError` subclass, never a hang. ``python -m repro
chaos-service`` drives the whole matrix deterministically.
"""

from repro.service.admission import JobQueue, QueueStats
from repro.service.cache import PatternCache, PatternEntry, pattern_digest
from repro.service.client import ClientResult, ServiceClient
from repro.service.loadgen import LoadgenConfig, LoadgenReport, run_loadgen
from repro.service.jobs import (
    AdmissionRejected,
    DeadlineExceeded,
    FactorJob,
    JobFailed,
    JobHandle,
    JobResult,
    ServiceClosed,
    ServiceError,
    ServiceUnavailable,
    SolveResult,
    UnknownPatternError,
    ValidationFailed,
)
from repro.service.resilience import CircuitBreaker, RetryPolicy
from repro.service.metrics import JobRecord, ServiceMetrics
from repro.service.server import ServiceServer
from repro.service.service import FactorService

__all__ = [
    "AdmissionRejected",
    "CircuitBreaker",
    "ClientResult",
    "DeadlineExceeded",
    "FactorJob",
    "FactorService",
    "JobFailed",
    "JobHandle",
    "JobQueue",
    "JobRecord",
    "JobResult",
    "LoadgenConfig",
    "LoadgenReport",
    "PatternCache",
    "PatternEntry",
    "QueueStats",
    "RetryPolicy",
    "ServiceClient",
    "ServiceClosed",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "ServiceUnavailable",
    "SolveResult",
    "UnknownPatternError",
    "ValidationFailed",
    "pattern_digest",
    "run_loadgen",
]
