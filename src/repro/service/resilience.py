"""Resilience primitives: circuit breaker and retry backoff policy.

Two small, independently testable pieces the service layer composes:

* :class:`CircuitBreaker` — guards the worker pool. Closed while the
  pool is healthy; ``threshold`` consecutive pool-level failures open it,
  after which the dispatcher routes jobs to the sequential fallback
  (degraded but correct — the fallback is bitwise-identical to the
  parallel path) instead of hammering a crew that keeps dying. After
  ``cooldown_s`` the breaker goes half-open: exactly one batch probes the
  pool, and its outcome closes the breaker again or re-opens it.
* :class:`RetryPolicy` — client-side exponential backoff with seeded
  jitter for transient typed errors (``retryable`` ones) and broken
  connections. Seeding keeps loadgen/chaos runs deterministic.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

__all__ = ["CircuitBreaker", "RetryPolicy"]


class CircuitBreaker:
    """A classic three-state circuit breaker (closed/open/half-open).

    ``threshold <= 0`` disables the breaker entirely (always closed).
    Thread-safe: the dispatcher records outcomes while health probes read
    the state.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ):
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self.trips = 0  # times the breaker opened (telemetry)

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May the caller use the pool for the next batch?

        While open, returns False until ``cooldown_s`` elapsed, then
        transitions to half-open and returns True exactly once — that
        call is the probe; its recorded outcome decides what happens
        next. (Single-dispatcher discipline: one probe in flight.)
        """
        if self.threshold <= 0:
            return True
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._state = self.HALF_OPEN
                    return True
                return False
            # Half-open: a probe is already in flight.
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        if self.threshold <= 0:
            return
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN or (
                self._state == self.CLOSED
                and self._failures >= self.threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
                "trips": self.trips,
            }


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter: ``delay(k)`` for retry ``k``.

    ``retries`` is the number of *re*-attempts after the first try.
    Jitter subtracts up to ``jitter`` fraction of the delay (seeded, so
    two policies with the same seed back off identically — chaos runs
    stay reproducible). ``retries=0`` disables retrying.
    """

    retries: int = 3
    base_s: float = 0.05
    cap_s: float = 2.0
    jitter: float = 0.5
    seed: int | None = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based)."""
        d = min(self.cap_s, self.base_s * (2.0 ** attempt))
        return d * (1.0 - self.jitter * self._rng.random())

    def should_retry(self, attempt: int, exc: BaseException) -> bool:
        """Retry ``attempt`` (0-based) after ``exc``?"""
        if attempt >= self.retries:
            return False
        return bool(getattr(exc, "retryable", False))
