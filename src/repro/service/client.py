"""`ServiceClient`: one API over the in-process and TCP transports.

In-process mode wraps a live :class:`~repro.service.service.FactorService`
(same process, zero serialization). Socket mode connects to a
``python -m repro serve`` server; requests are serialized on one socket,
so run one client per concurrent lane (the loadgen does exactly that).
Both modes raise the same typed errors
(:class:`~repro.service.jobs.AdmissionRejected`,
:class:`~repro.service.jobs.JobFailed`, ...).

Socket-mode resilience: connects (and reads) under the client's
``timeout`` — a down server is a typed
:class:`~repro.service.jobs.ServiceUnavailable`, never a hang — and a
broken connection triggers reconnect plus, when a
:class:`~repro.service.resilience.RetryPolicy` is configured,
exponential-backoff retries of ``retryable`` errors. Retries are safe
because every ``factor`` carries a stable ``job_id`` and the server
dedups on it: a retry of an in-flight or completed job never runs it
twice.
"""

from __future__ import annotations

import socket
import threading
import time
import uuid
from dataclasses import dataclass

import numpy as np

from repro.service import protocol
from repro.service.jobs import (
    AdmissionRejected,
    DeadlineExceeded,
    JobFailed,
    ServiceClosed,
    ServiceError,
    ServiceUnavailable,
    UnknownPatternError,
    ValidationFailed,
)
from repro.service.resilience import RetryPolicy

#: Wire ``kind`` tag -> exception type raised client-side.
_ERROR_TYPES = {
    "rejected": lambda m: AdmissionRejected("remote", m),
    "closed": ServiceClosed,
    "unknown_pattern": UnknownPatternError,
    "deadline": DeadlineExceeded,
    "unavailable": ServiceUnavailable,
    "failed": lambda m: JobFailed("<remote>", m),
    "validation": lambda m: ValidationFailed("<remote>", m),
    "error": ServiceError,
}


@dataclass
class ClientResult:
    """Transport-independent result of one factorization."""

    job_id: str
    pattern_id: str
    #: ``"hit"`` or ``"miss"``.
    cache: str
    #: The factor, in permuted order.
    L: object
    #: Fill-reducing permutation (for :func:`solve`).
    perm: np.ndarray
    #: Service-side timing record as a plain dict.
    record: dict | None = None

    def solve(self, b: np.ndarray) -> np.ndarray:
        from repro.numeric import solve_with_factor

        return solve_with_factor(self.L, b, self.perm)


class ServiceClient:
    """Submit factorizations to a service, local or remote.

    >>> client = ServiceClient(service=svc)            # in-process
    >>> client = ServiceClient(address=("host", 9876))  # TCP
    >>> res = client.factor(A)
    >>> res2 = client.factor(pattern_id=res.pattern_id, values=new_data)

    ``retry`` (a :class:`~repro.service.resilience.RetryPolicy`, or None
    to disable) governs reconnect-and-retry of transient failures in
    socket mode; :attr:`retry_count` tallies retries actually taken.
    """

    def __init__(
        self,
        service=None,
        address: tuple[str, int] | None = None,
        timeout: float | None = 120.0,
        retry: RetryPolicy | None = None,
    ):
        if (service is None) == (address is None):
            raise ValueError("give exactly one of service= or address=")
        self.service = service
        self.address = address
        self.timeout = timeout
        self.retry = retry
        #: Total transient-error retries this client has taken.
        self.retry_count = 0
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        if address is not None:
            self._connect()

    def _connect(self) -> None:
        # The configured timeout bounds connect AND every read: a down
        # or wedged server is a typed error, never an indefinite hang.
        try:
            self._sock = socket.create_connection(
                self.address, timeout=self.timeout
            )
        except OSError as exc:
            self._sock = None
            raise ServiceUnavailable(
                f"cannot connect to {self.address[0]}:{self.address[1]}: "
                f"{exc}"
            ) from exc
        self._sock.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass
            self._sock = None

    # ------------------------------------------------------------------
    def _request_once(self, msg: dict) -> dict:
        """One request/response round trip. Connection-level failures
        (broken pipe, timeout, dead server) drop the socket and surface
        as the retryable :class:`ServiceUnavailable`."""
        with self._lock:
            try:
                if self._sock is None:
                    self._connect()
                protocol.send_msg(self._sock, msg)
                response = protocol.recv_msg(self._sock)
            except ServiceUnavailable:
                raise
            except (OSError, protocol.ProtocolError) as exc:
                self._drop_connection()
                raise ServiceUnavailable(
                    f"connection to {self.address} broke: {exc!r}"
                ) from exc
        if response is None:
            self._drop_connection()
            raise ServiceUnavailable("server closed the connection")
        if not response.get("ok"):
            make = _ERROR_TYPES.get(response.get("kind"), ServiceError)
            raise make(response.get("error", "unknown server error"))
        return response

    def _request(self, msg: dict) -> dict:
        """Round trip with the retry policy applied: ``retryable`` typed
        errors back off and go again (reconnecting if the socket
        dropped); everything else raises immediately."""
        attempt = 0
        while True:
            try:
                return self._request_once(msg)
            except ServiceError as exc:
                if self.retry is None or not self.retry.should_retry(
                    attempt, exc
                ):
                    raise
                time.sleep(self.retry.delay(attempt))
                attempt += 1
                self.retry_count += 1

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        if self.service is not None:
            return not self.service.queue.closed
        return bool(self._request({"op": "ping"})["ok"])

    def health(self) -> dict:
        """The service's liveness/degradation probe (see
        :meth:`~repro.service.service.FactorService.health`)."""
        if self.service is not None:
            return self.service.health()
        return self._request({"op": "health"})["health"]

    def factor(
        self,
        A=None,
        pattern_id: str | None = None,
        values: np.ndarray | None = None,
        job_id: str | None = None,
        timeout: float | None = None,
        deadline_s: float | None = None,
    ) -> ClientResult:
        """Factor a matrix (or pattern handle + values); blocks until
        the job completes. Raises the service's typed errors.
        ``deadline_s`` is the job's end-to-end budget — past it the call
        raises :class:`~repro.service.jobs.DeadlineExceeded`, never
        hangs. A stable ``job_id`` is generated when not given, so
        socket-mode retries of the same call are idempotent."""
        timeout = self.timeout if timeout is None else timeout
        if self.service is not None:
            handle = self.service.submit(
                A=A, pattern_id=pattern_id, values=values,
                job_id=job_id, timeout=timeout, deadline_s=deadline_s,
            )
            res = handle.result(timeout)
            return ClientResult(
                job_id=res.job_id,
                pattern_id=res.pattern_id,
                cache=res.cache,
                L=res.L,
                perm=res.perm,
                record=None if res.record is None else res.record.to_dict(),
            )
        msg = {
            "op": "factor",
            "pattern_id": pattern_id,
            # Stable across retries: the server dedups on it.
            "job_id": job_id or uuid.uuid4().hex[:12],
            "timeout": timeout,
            "deadline_s": deadline_s,
        }
        if A is not None:
            msg["A"] = protocol.pack_csc(A)
        if values is not None:
            msg["values"] = np.ascontiguousarray(values, dtype=np.float64)
        r = self._request(msg)
        return ClientResult(
            job_id=r["job_id"],
            pattern_id=r["pattern_id"],
            cache=r["cache"],
            L=protocol.unpack_csc(r["L"]),
            perm=np.asarray(r["perm"]),
            record=r.get("record"),
        )

    def stats(self) -> dict:
        if self.service is not None:
            return self.service.stats()
        return self._request({"op": "stats"})["stats"]

    def shutdown_server(self) -> None:
        """Ask a remote server to stop serving (no-op in-process)."""
        if self.service is None:
            self._request({"op": "shutdown"})

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
