"""`ServiceClient`: one API over the in-process and TCP transports.

In-process mode wraps a live :class:`~repro.service.service.FactorService`
(same process, zero serialization). Socket mode connects to a
``python -m repro serve`` server; requests are serialized on one socket,
so run one client per concurrent lane (the loadgen does exactly that).
Both modes raise the same typed errors
(:class:`~repro.service.jobs.AdmissionRejected`,
:class:`~repro.service.jobs.JobFailed`, ...).
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass

import numpy as np

from repro.service import protocol
from repro.service.jobs import (
    AdmissionRejected,
    JobFailed,
    ServiceClosed,
    ServiceError,
    UnknownPatternError,
    ValidationFailed,
)

#: Wire ``kind`` tag -> exception type raised client-side.
_ERROR_TYPES = {
    "rejected": lambda m: AdmissionRejected("remote", m),
    "closed": ServiceClosed,
    "unknown_pattern": UnknownPatternError,
    "failed": lambda m: JobFailed("<remote>", m),
    "validation": lambda m: ValidationFailed("<remote>", m),
    "error": ServiceError,
}


@dataclass
class ClientResult:
    """Transport-independent result of one factorization."""

    job_id: str
    pattern_id: str
    #: ``"hit"`` or ``"miss"``.
    cache: str
    #: The factor, in permuted order.
    L: object
    #: Fill-reducing permutation (for :func:`solve`).
    perm: np.ndarray
    #: Service-side timing record as a plain dict.
    record: dict | None = None

    def solve(self, b: np.ndarray) -> np.ndarray:
        from repro.numeric import solve_with_factor

        return solve_with_factor(self.L, b, self.perm)


class ServiceClient:
    """Submit factorizations to a service, local or remote.

    >>> client = ServiceClient(service=svc)            # in-process
    >>> client = ServiceClient(address=("host", 9876))  # TCP
    >>> res = client.factor(A)
    >>> res2 = client.factor(pattern_id=res.pattern_id, values=new_data)
    """

    def __init__(
        self,
        service=None,
        address: tuple[str, int] | None = None,
        timeout: float | None = 120.0,
    ):
        if (service is None) == (address is None):
            raise ValueError("give exactly one of service= or address=")
        self.service = service
        self.address = address
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        if address is not None:
            self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(self.address, timeout=None)
        self._sock.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )

    # ------------------------------------------------------------------
    def _request(self, msg: dict) -> dict:
        with self._lock:
            protocol.send_msg(self._sock, msg)
            response = protocol.recv_msg(self._sock)
        if response is None:
            raise ServiceClosed("server closed the connection")
        if not response.get("ok"):
            make = _ERROR_TYPES.get(response.get("kind"), ServiceError)
            raise make(response.get("error", "unknown server error"))
        return response

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        if self.service is not None:
            return not self.service.queue.closed
        return bool(self._request({"op": "ping"})["ok"])

    def factor(
        self,
        A=None,
        pattern_id: str | None = None,
        values: np.ndarray | None = None,
        job_id: str | None = None,
        timeout: float | None = None,
    ) -> ClientResult:
        """Factor a matrix (or pattern handle + values); blocks until
        the job completes. Raises the service's typed errors."""
        timeout = self.timeout if timeout is None else timeout
        if self.service is not None:
            handle = self.service.submit(
                A=A, pattern_id=pattern_id, values=values,
                job_id=job_id, timeout=timeout,
            )
            res = handle.result(timeout)
            return ClientResult(
                job_id=res.job_id,
                pattern_id=res.pattern_id,
                cache=res.cache,
                L=res.L,
                perm=res.perm,
                record=None if res.record is None else res.record.to_dict(),
            )
        msg = {
            "op": "factor",
            "pattern_id": pattern_id,
            "job_id": job_id,
            "timeout": timeout,
        }
        if A is not None:
            msg["A"] = protocol.pack_csc(A)
        if values is not None:
            msg["values"] = np.ascontiguousarray(values, dtype=np.float64)
        r = self._request(msg)
        return ClientResult(
            job_id=r["job_id"],
            pattern_id=r["pattern_id"],
            cache=r["cache"],
            L=protocol.unpack_csc(r["L"]),
            perm=np.asarray(r["perm"]),
            record=r.get("record"),
        )

    def stats(self) -> dict:
        if self.service is not None:
            return self.service.stats()
        return self._request({"op": "stats"})["stats"]

    def shutdown_server(self) -> None:
        """Ask a remote server to stop serving (no-op in-process)."""
        if self.service is None:
            self._request({"op": "shutdown"})

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
