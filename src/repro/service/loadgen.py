"""Seeded load generator for the factorization service.

Builds a deterministic job schedule — K distinct sparsity patterns, a
configurable fraction of pattern-repeat jobs, fresh SPD values per job —
and drives it at the service either *closed-loop* (C worker lanes, each
submits the next job the moment its previous one finishes) or
*open-loop* (Poisson arrivals at a target rate, regardless of
completions — the shape that exposes queueing and admission behavior).

Repeat jobs are submitted as ``(pattern_id, values)`` once the pattern's
handle is known (the fastest warm path); until then they fall back to a
full-matrix submit, which still hits the cache by digest. The report
compares cold vs warm per-job setup time — repeated-pattern traffic
skipping symbolic analysis and worker spawn is the whole point of the
service, and the CI smoke job asserts it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.service.jobs import ServiceError


@dataclass
class LoadgenConfig:
    """Deterministic description of one load run."""

    jobs: int = 20
    #: Distinct sparsity patterns in the mix.
    patterns: int = 3
    #: Fraction of jobs that reuse an already-introduced pattern.
    repeat_ratio: float = 0.6
    #: ``"closed"`` (C lanes, submit-on-completion) or ``"open"``
    #: (Poisson arrivals at ``rate`` jobs/s).
    mode: str = "closed"
    rate: float = 20.0
    concurrency: int = 2
    seed: int = 0
    #: Problem family: ``"grid"`` (2-D k×k grids of growing k) or
    #: ``"random"`` (random SPD patterns of growing n).
    problem: str = "grid"
    #: Base problem size (grid side / matrix dimension).
    n: int = 10
    #: Submit repeats as (pattern_id, values) when the handle is known.
    values_only: bool = True
    timeout: float = 120.0
    #: Per-job deadline forwarded to the service (None = unbounded).
    deadline_s: float | None = None
    #: Client-side retries of transient typed errors (0 disables; socket
    #: mode only — in-process callers talk to the service directly).
    retries: int = 0
    #: SIGKILL a pool worker when this many jobs have been submitted
    #: (-1 disables; needs ``service=`` passed to :func:`run_loadgen`).
    kill_worker_at: int = -1
    #: Which rank :attr:`kill_worker_at` kills.
    kill_rank: int = 0


@dataclass
class _JobSpec:
    index: int
    pattern: int
    #: True when the schedule marks this job a repeat of a seen pattern.
    repeat: bool
    diag_shift: float


def build_matrices(cfg: LoadgenConfig) -> list:
    """The K base matrices (distinct patterns), deterministic in cfg."""
    from repro.matrices import grid2d_matrix, random_spd_sparse

    mats = []
    for i in range(cfg.patterns):
        if cfg.problem == "grid":
            mats.append(grid2d_matrix(cfg.n + i).A.tocsc())
        elif cfg.problem == "random":
            mats.append(
                random_spd_sparse(
                    cfg.n + 17 * i, density=0.05, seed=cfg.seed + i
                ).tocsc()
            )
        else:
            raise KeyError(f"unknown problem family {cfg.problem!r}")
    return mats


def build_schedule(cfg: LoadgenConfig) -> list[_JobSpec]:
    """The deterministic job sequence for ``cfg`` (same seed → same
    admit/reject/shed decisions downstream)."""
    rng = np.random.default_rng(cfg.seed)
    schedule: list[_JobSpec] = []
    introduced = 0
    for i in range(cfg.jobs):
        repeat = (
            introduced > 0
            and (introduced >= cfg.patterns
                 or rng.random() < cfg.repeat_ratio)
        )
        if repeat:
            pattern = int(rng.integers(introduced))
        else:
            pattern = introduced
            introduced += 1
        schedule.append(
            _JobSpec(
                index=i,
                pattern=pattern,
                repeat=repeat,
                diag_shift=float(rng.uniform(0.1, 2.0)),
            )
        )
    return schedule


def fresh_values(A, shift: float):
    """New SPD values on A's pattern: the diagonal shifted by ``shift``
    (A SPD ⇒ A + shift·I SPD). Returns a full matrix copy."""
    M = A.copy()
    M.setdiag(M.diagonal() + shift)
    return M.tocsc()


@dataclass
class LoadgenReport:
    """Everything one run measured (JSON-safe via :meth:`to_dict`)."""

    config: LoadgenConfig
    outcomes: list = field(default_factory=list)
    wall_s: float = 0.0
    server_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> list:
        return [o for o in self.outcomes if o["status"] == "ok"]

    def to_dict(self) -> dict:
        from repro.service.metrics import _pct

        ok = self.ok
        hits = [o for o in ok if o["cache"] == "hit"]
        misses = [o for o in ok if o["cache"] == "miss"]
        rejected = [o for o in self.outcomes if o["status"] == "rejected"]
        expired = [o for o in self.outcomes if o["status"] == "expired"]
        failed = [
            o for o in self.outcomes
            if o["status"] not in ("ok", "rejected", "expired")
        ]
        return {
            "config": dict(self.config.__dict__),
            "wall_s": self.wall_s,
            "throughput_jobs_s": (
                len(ok) / self.wall_s if self.wall_s > 0 else 0.0
            ),
            "jobs": {
                "ok": len(ok),
                "rejected": len(rejected),
                "expired": len(expired),
                "failed": len(failed),
            },
            "resilience": {
                "retries": sum(o.get("retries", 0) for o in self.outcomes),
                "recovered": len(
                    [o for o in ok if o.get("outcome") == "recovered"]
                ),
                "degraded": len(
                    [o for o in ok
                     if o.get("outcome") == "degraded_sequential"]
                ),
            },
            "cache": {"hit": len(hits), "miss": len(misses)},
            "latency_s": _pct([o["latency_s"] for o in ok]),
            "setup_s": {
                "cold": _pct([o["setup_s"] for o in misses]),
                "warm": _pct([o["setup_s"] for o in hits]),
            },
            "server": self.server_stats,
            "outcomes": self.outcomes,
        }

    def render(self) -> str:
        from repro.service.metrics import PERCENTILES

        d = self.to_dict()
        r = d["resilience"]
        lines = [
            f"{d['jobs']['ok']} ok, {d['jobs']['rejected']} rejected, "
            f"{d['jobs']['expired']} expired, "
            f"{d['jobs']['failed']} failed in {d['wall_s']:.2f}s "
            f"({d['throughput_jobs_s']:.1f} jobs/s)",
            f"resilience: {r['retries']} client retries, "
            f"{r['recovered']} recovered, "
            f"{r['degraded']} degraded-sequential",
            f"cache: {d['cache']['hit']} hits / "
            f"{d['cache']['miss']} misses",
            "latency "
            + " ".join(
                f"p{p}={d['latency_s'][f'p{p}'] * 1e3:.1f}ms"
                for p in PERCENTILES
            ),
            f"setup cold={d['setup_s']['cold']['mean'] * 1e3:.1f}ms "
            f"warm={d['setup_s']['warm']['mean'] * 1e3:.1f}ms "
            "(warm jobs skip symbolic analysis + planning)",
        ]
        return "\n".join(lines)


class _Runner:
    """Shared state for one load run (thread-safe)."""

    def __init__(self, cfg: LoadgenConfig, client_factory, service=None):
        self.cfg = cfg
        self.client_factory = client_factory
        #: In-process service, when the caller has one — enables the
        #: ``kill_worker_at`` chaos hook.
        self.service = service
        self.matrices = build_matrices(cfg)
        self.schedule = build_schedule(cfg)
        self.lock = threading.Lock()
        #: pattern index -> service pattern_id (learned from results).
        self.handles: dict[int, str] = {}
        self.outcomes: list[dict] = [None] * len(self.schedule)
        self.submitted = 0
        self.killed = False

    def _maybe_kill_worker(self) -> None:
        """SIGKILL the configured pool rank once ``kill_worker_at`` jobs
        have been submitted — the real mid-run worker-death chaos case."""
        cfg = self.cfg
        if (
            cfg.kill_worker_at < 0
            or self.service is None
            or self.killed
            or self.submitted < cfg.kill_worker_at
        ):
            return
        import os
        import signal

        self.killed = True
        procs = self.service.pool._procs
        if procs and 0 <= cfg.kill_rank < len(procs):
            proc = procs[cfg.kill_rank]
            if proc.is_alive() and proc.pid:
                os.kill(proc.pid, signal.SIGKILL)

    def run_one(self, client, spec: _JobSpec) -> None:
        M = fresh_values(self.matrices[spec.pattern], spec.diag_shift)
        with self.lock:
            handle = self.handles.get(spec.pattern)
            self.submitted += 1
            self._maybe_kill_worker()
        use_values = (
            self.cfg.values_only and spec.repeat and handle is not None
        )
        t0 = time.monotonic()
        outcome = {
            "index": spec.index,
            "pattern": spec.pattern,
            "scheduled_repeat": spec.repeat,
            "values_only": use_values,
            "status": "ok",
            "cache": "",
            "outcome": "",
            "retries": 0,
            "latency_s": 0.0,
            "setup_s": 0.0,
        }
        retries_before = getattr(client, "retry_count", 0)
        kw = dict(
            timeout=self.cfg.timeout, deadline_s=self.cfg.deadline_s
        )
        try:
            if use_values:
                res = client.factor(
                    pattern_id=handle, values=M.data, **kw
                )
            else:
                res = client.factor(A=M, **kw)
        except ServiceError as exc:
            outcome["status"] = (
                "rejected" if exc.kind in ("rejected", "closed")
                else "expired" if exc.kind == "deadline"
                else "failed"
            )
            outcome["error"] = str(exc)
        else:
            outcome["cache"] = res.cache
            if res.record:
                outcome["setup_s"] = res.record.get("setup_s", 0.0)
                outcome["outcome"] = res.record.get("outcome", "")
                outcome["queue_wait_s"] = res.record.get(
                    "queue_wait_s", 0.0
                )
            with self.lock:
                self.handles.setdefault(spec.pattern, res.pattern_id)
        outcome["retries"] = getattr(client, "retry_count", 0) - retries_before
        outcome["latency_s"] = time.monotonic() - t0
        self.outcomes[spec.index] = outcome


def run_loadgen(
    client_factory, cfg: LoadgenConfig, service=None
) -> LoadgenReport:
    """Drive one load run; ``client_factory()`` makes one client per
    concurrent lane (a TCP connection, or an in-process wrapper).
    ``service`` (the in-process :class:`FactorService`, when the caller
    owns one) enables the ``kill_worker_at`` fault hook."""
    runner = _Runner(cfg, client_factory, service=service)
    t_start = time.monotonic()
    if cfg.mode == "closed":
        _run_closed(runner)
    elif cfg.mode == "open":
        _run_open(runner)
    else:
        raise KeyError(f"unknown loadgen mode {cfg.mode!r}")
    report = LoadgenReport(
        config=cfg,
        outcomes=[o for o in runner.outcomes if o is not None],
        wall_s=time.monotonic() - t_start,
    )
    try:
        probe = client_factory()
        report.server_stats = probe.stats()
        if hasattr(probe, "close"):
            probe.close()
    except Exception:  # noqa: BLE001 - stats are best-effort
        pass
    return report


def _run_closed(runner: _Runner) -> None:
    """C lanes, each submitting its next job on completion."""
    it = iter(runner.schedule)
    it_lock = threading.Lock()

    def lane() -> None:
        client = runner.client_factory()
        try:
            while True:
                with it_lock:
                    spec = next(it, None)
                if spec is None:
                    return
                runner.run_one(client, spec)
        finally:
            if hasattr(client, "close"):
                client.close()

    lanes = [
        threading.Thread(target=lane, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, runner.cfg.concurrency))
    ]
    for t in lanes:
        t.start()
    for t in lanes:
        t.join()


def _run_open(runner: _Runner) -> None:
    """Poisson arrivals at ``cfg.rate``; one thread per in-flight job."""
    rng = np.random.default_rng(runner.cfg.seed + 1)
    gaps = rng.exponential(
        1.0 / max(runner.cfg.rate, 1e-6), size=len(runner.schedule)
    )
    threads = []
    t0 = time.monotonic()
    due = 0.0
    for spec, gap in zip(runner.schedule, gaps):
        due += gap
        delay = t0 + due - time.monotonic()
        if delay > 0:
            time.sleep(delay)

        def fire(spec=spec) -> None:
            client = runner.client_factory()
            try:
                runner.run_one(client, spec)
            finally:
                if hasattr(client, "close"):
                    client.close()

        t = threading.Thread(
            target=fire, name=f"loadgen-open-{spec.index}", daemon=True
        )
        t.start()
        threads.append(t)
    for t in threads:
        t.join(runner.cfg.timeout)
