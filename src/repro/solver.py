"""High-level facade: one-call sparse Cholesky with mapping planning.

For a downstream user who wants "factor my matrix, tell me how it would run
in parallel" without touching the layer-by-layer API:

>>> import repro
>>> from repro.solver import SparseCholesky
>>> chol = SparseCholesky(repro.grid2d_matrix(24).A).factor()
>>> x = chol.solve(b)                                    # doctest: +SKIP
>>> plan = chol.plan_parallel(P=64)                      # doctest: +SKIP
>>> plan.mflops, plan.efficiency                         # doctest: +SKIP

Execution backends: ``backend="sequential"`` factors in-process,
``backend="threads"`` uses the shared-memory thread pool, and
``backend="mp"`` runs the real message-passing runtime
(:mod:`repro.runtime`) — worker processes own blocks under the chosen
``mapping`` and exchange completed blocks as messages; per-worker metrics
land in :attr:`SparseCholesky.runtime_metrics`:

>>> chol = SparseCholesky(A, backend="mp", nprocs=4, mapping="DW/CY")  # doctest: +SKIP
>>> chol.factor().runtime_metrics.measured_balance       # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.blocks import BlockStructure, WorkModel, make_partition
from repro.fanout import TaskGraph, assign_domains, block_owners, run_fanout
from repro.graph.adjacency import AdjacencyGraph
from repro.machine.params import PARAGON, MachineParams
from repro.mapping import best_grid, cyclic_map, heuristic_map, square_grid
from repro.mapping.balance import overall_balance_from_owners
from repro.numeric import BlockCholesky, solve_with_factor
from repro.ordering import minimum_degree, nested_dissection
from repro.symbolic import symbolic_factor


@dataclass
class ParallelPlan:
    """Predicted parallel execution of the factorization."""

    P: int
    mapping: str
    mflops: float
    efficiency: float
    balance_bound: float
    runtime_seconds: float
    comm_megabytes: float
    meta: dict = field(default_factory=dict)


class SparseCholesky:
    """Sparse Cholesky factorization with parallel planning.

    Parameters
    ----------
    A:
        Symmetric positive definite sparse matrix (both triangles stored,
        or a lower/upper triangle — the pattern is symmetrized).
    ordering:
        ``"auto"`` (nested dissection when the graph is mesh-like — i.e.
        bounded degree — else minimum degree), ``"nd"``, ``"mmd"``,
        ``"natural"``, or an explicit permutation array.
    block_size:
        Panel width B (default 48, the paper's choice). Under
        ``block_policy="supernodal"`` it only seeds the default
        ``max_width`` (``2 * block_size``).
    block_policy:
        ``"uniform"`` (default — fixed-width panels) or ``"supernodal"``
        (structure-aware variable panels that follow supernode widths,
        clamped to ``[min_width, max_width]``; see ``docs/BLOCKING.md``).
    min_width, max_width:
        Clamps for the supernodal policy (defaults 16 and
        ``2 * block_size``). Ignored under ``"uniform"``.
    backend:
        ``"sequential"`` (default), ``"threads"`` (shared-memory thread
        pool), ``"mp"`` (real message-passing worker processes), or
        ``"service"`` (delegate the numeric work to a long-lived
        :class:`repro.service.FactorService` / connected
        :class:`~repro.service.ServiceClient`, passed via ``service=`` —
        repeated factorizations reuse its warm pool and pattern cache).
    nprocs:
        Worker count for the parallel backends.
    mapping:
        Block mapping for the ``"mp"`` backend: ``"cyclic"`` or a
        ``"<row>/<col>"`` heuristic pair such as ``"DW/CY"``.
    use_domains:
        Apply the domain (subtree) portion of the method to the ``"mp"``
        ownership, as :meth:`plan_parallel` does for the simulator.
    fault_plan:
        A :class:`repro.runtime.faults.FaultPlan` (or its dict/JSON form)
        for the ``"mp"`` backend. When given, the factorization runs under
        the chaos layer with integrity checking, bounded restart, and the
        sequential fallback; the structured outcome lands in
        :attr:`failure_report`.
    max_restarts:
        Restart budget for the recovery path (``"mp"`` backend only).
    trace:
        Structured event tracing for the ``"mp"`` backend: ``True`` for the
        default ring-buffer capacity, an int for an explicit per-worker
        capacity, ``False``/``None`` (default) for zero-overhead off. The
        merged :class:`repro.runtime.trace.RunTrace` lands in
        :attr:`run_trace` after :meth:`factor`.
    transport:
        Block payload transport for the ``"mp"`` backend: ``"auto"``
        (default — shared-memory arena when available), ``"shm"``, or
        ``"inline"``. See :func:`repro.runtime.engine.run_mp_fanout`.
    schedule:
        Execution discipline for the ``"mp"`` backend: ``"static"``
        (default — every task runs at its block's owner) or
        ``"dynamic"`` (idle workers steal ready BMOD/BDIV tasks from
        busy peers; factors stay bitwise identical — see
        ``docs/SCHEDULING.md``). Forwarded to the service backend's
        job context when set there.
    steal_seed:
        Seed for the dynamic schedule's deterministic victim selection.
    deadline_s:
        Per-job end-to-end budget for the ``"service"`` backend. Past
        it, :meth:`factor` raises the typed
        :class:`repro.service.DeadlineExceeded` — never hangs.

    The ownership plan for the ``"mp"`` backend is computed once per
    ``(P, mapping, use_domains)`` and cached on the instance, so repeated
    :meth:`factor` calls (and same-P recovery restarts) skip re-planning.
    """

    BACKENDS = ("sequential", "threads", "mp", "service")

    def __init__(
        self,
        A: sparse.spmatrix,
        ordering: str | np.ndarray = "auto",
        block_size: int = 48,
        backend: str = "sequential",
        nprocs: int = 4,
        mapping: str = "DW/CY",
        use_domains: bool = False,
        fault_plan=None,
        max_restarts: int = 2,
        trace: bool | int | None = None,
        transport: str = "auto",
        schedule: str = "static",
        steal_seed: int = 0,
        service=None,
        deadline_s: float | None = None,
        block_policy: str = "uniform",
        min_width: int | None = None,
        max_width: int | None = None,
    ):
        A = A.tocsc()
        if A.shape[0] != A.shape[1]:
            raise ValueError("matrix must be square")
        if backend not in self.BACKENDS:
            raise KeyError(
                f"unknown backend {backend!r}; expected one of {self.BACKENDS}"
            )
        self.A = A
        self.backend = backend
        self.nprocs = nprocs
        self.mapping = mapping
        self.use_domains = use_domains
        if isinstance(fault_plan, str):
            from repro.runtime.faults import FaultPlan

            fault_plan = FaultPlan.from_json(fault_plan)
        elif isinstance(fault_plan, dict):
            from repro.runtime.faults import FaultPlan

            fault_plan = FaultPlan.from_dict(fault_plan)
        self.fault_plan = fault_plan
        self.max_restarts = max_restarts
        self.trace = trace
        self.transport = transport
        if schedule not in ("static", "dynamic"):
            raise ValueError(
                f"schedule must be 'static' or 'dynamic', got {schedule!r}"
            )
        self.schedule = schedule
        self.steal_seed = steal_seed
        if backend == "service" and service is None:
            raise ValueError(
                'backend="service" needs a running service: pass '
                "service=FactorService(...) or a connected ServiceClient"
            )
        self.service = service
        #: Per-job deadline budget forwarded to the ``"service"`` backend
        #: (seconds from submission; None = unbounded). Past it,
        #: :meth:`factor` raises the typed
        #: :class:`repro.service.DeadlineExceeded` instead of hanging.
        self.deadline_s = deadline_s
        #: Memoized ``(P, mapping, use_domains) -> (owners, name)`` plans.
        self._plan_cache: dict = {}
        #: Observable plan reuse: how often :meth:`_plan` served a
        #: memoized owner plan vs computed one (lands in
        #: ``runtime_metrics.extra["plan_cache"]`` after ``"mp"`` runs).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: Structured recovery outcome of the last ``"mp"`` factorization
        #: run under a fault plan (None otherwise).
        self.failure_report = None
        perm = self._resolve_ordering(A, ordering)
        self.symbolic = symbolic_factor(A, perm)
        #: Blocking policy: "uniform" panels of ``block_size`` or
        #: "supernodal" structure-following panels clamped to
        #: ``[min_width, max_width]`` (see ``docs/BLOCKING.md``).
        self.block_policy = block_policy
        self.partition = make_partition(
            self.symbolic,
            block_policy=block_policy,
            block_size=block_size,
            min_width=min_width,
            max_width=max_width,
        )
        self.structure = BlockStructure(self.partition)
        self.workmodel = WorkModel(self.structure)
        self._taskgraph: TaskGraph | None = None
        self._numeric: BlockCholesky | None = None
        self._L: sparse.csc_matrix | None = None
        #: Per-worker metrics of the last ``"mp"`` factorization.
        self.runtime_metrics = None
        #: Merged structured trace of the last traced ``"mp"``
        #: factorization (:class:`repro.runtime.trace.RunTrace`, or None).
        self.run_trace = None
        #: Max-abs residual ``|A x - b|`` of the last :meth:`solve`
        #: (always computed — one SpMV per solve).
        self.solve_residual = None
        #: Residual history of the last :meth:`solve`: entry 0 is the
        #: direct solve, one more entry per refinement step.
        self.solve_residuals = None
        #: How the last ``"service"``-backend solve ran: ``"clean"``
        #: (warm distributed solve on the resident factor) or
        #: ``"degraded_sequential"`` (sequential fallback, still
        #: bitwise-identical). None otherwise.
        self.solve_outcome = None

    @staticmethod
    def _resolve_ordering(A, ordering):
        if isinstance(ordering, np.ndarray) or isinstance(ordering, list):
            return np.asarray(ordering)
        if ordering == "natural":
            return None
        graph = AdjacencyGraph.from_sparse(A)
        if ordering == "nd":
            return nested_dissection(graph)
        if ordering == "mmd":
            return minimum_degree(graph)
        if ordering == "auto":
            # Mesh-like (low, even degree) -> nested dissection; otherwise
            # minimum degree, mirroring the paper's per-family choices.
            deg = graph.degrees
            if deg.size and deg.max() <= max(32, 3 * int(np.median(deg))):
                return nested_dissection(graph)
            return minimum_degree(graph)
        raise KeyError(f"unknown ordering {ordering!r}")

    # ------------------------------------------------------------------
    @property
    def taskgraph(self) -> TaskGraph:
        if self._taskgraph is None:
            self._taskgraph = TaskGraph(self.workmodel)
        return self._taskgraph

    def _plan(self, P: int):
        """Owner plan for ``P`` workers, memoized on the instance."""
        from repro.runtime import plan_owners

        key = (P, self.mapping, self.use_domains)
        if key in self._plan_cache:
            self.plan_cache_hits += 1
        else:
            self.plan_cache_misses += 1
            self._plan_cache[key] = plan_owners(
                self.workmodel, self.taskgraph, P,
                self.mapping, self.use_domains,
            )
        return self._plan_cache[key]

    def factor(self) -> "SparseCholesky":
        """Numerically factor with the configured backend; returns self."""
        if self.backend == "service":
            return self._factor_via_service()
        if self.backend == "sequential":
            self._numeric = BlockCholesky(
                self.structure, self.symbolic.A
            ).factor()
        elif self.backend == "threads":
            from repro.numeric.parallel import parallel_block_cholesky

            self._numeric = parallel_block_cholesky(
                self.structure,
                self.symbolic.A,
                self.taskgraph,
                nthreads=self.nprocs,
            ).factor
        else:  # "mp"
            if self.fault_plan is not None:
                from repro.runtime.recovery import run_with_recovery

                result = run_with_recovery(
                    self.structure,
                    self.symbolic.A,
                    self.taskgraph,
                    nprocs=self.nprocs,
                    mapping=self.mapping,
                    use_domains=self.use_domains,
                    fault_plan=self.fault_plan,
                    max_restarts=self.max_restarts,
                    trace=self.trace,
                    transport=self.transport,
                    schedule=self.schedule,
                    steal_seed=self.steal_seed,
                    plan_cache=self._plan_cache,
                )
                self.failure_report = result.failure_report
            else:
                from repro.runtime import run_mp_fanout

                owners, name = self._plan(self.nprocs)
                result = run_mp_fanout(
                    self.structure,
                    self.symbolic.A,
                    self.taskgraph,
                    owners,
                    self.nprocs,
                    mapping=name,
                    trace=self.trace,
                    transport=self.transport,
                    schedule=self.schedule,
                    steal_seed=self.steal_seed,
                )
            self._numeric = result.factor
            self.runtime_metrics = result.metrics
            self.run_trace = result.trace
        if self.runtime_metrics is not None:
            self.runtime_metrics.extra["plan_cache"] = {
                "hits": self.plan_cache_hits,
                "misses": self.plan_cache_misses,
            }
        self._L = self._numeric.to_csc()
        return self

    def _factor_via_service(self) -> "SparseCholesky":
        """Delegate the numeric work to a long-lived
        :class:`repro.service.FactorService` (or a connected
        :class:`~repro.service.ServiceClient`) — repeated factorizations
        of this pattern reuse the service's warm pool and cached
        symbolic analysis instead of spawning workers per call.

        The factor comes back in the *service's* permutation; solves go
        through it, so the service may be configured with a different
        ordering than this instance.
        """
        result = self.service.factor(A=self.A, deadline_s=self.deadline_s)
        self._numeric = getattr(result, "factor", None)
        self._L = result.L
        self._solve_perm = np.asarray(result.perm)
        self.runtime_metrics = getattr(result, "metrics", None)
        self.run_trace = getattr(result, "trace", None)
        #: Service-side pattern handle + timing record of the last job.
        self.service_pattern_id = result.pattern_id
        self.service_record = result.record
        #: How the service survived this job: ``"clean"``,
        #: ``"recovered"`` (re-run after a pool heal), or
        #: ``"degraded_sequential"`` (sequential fallback — still
        #: bitwise-identical to the parallel factor).
        record = result.record
        if record is None:
            self.service_outcome = None
        elif isinstance(record, dict):
            self.service_outcome = record.get("outcome")
        else:
            self.service_outcome = getattr(record, "outcome", None)
        return self

    @property
    def L(self) -> sparse.csc_matrix:
        if self._L is None:
            raise RuntimeError("call factor() first")
        return self._L

    def solve(self, b: np.ndarray, refine: int = 0) -> np.ndarray:
        """Solve ``A x = b`` using the computed factor.

        Accepts a single vector or an ``n x nrhs`` panel of right-hand
        sides (multi-RHS solves batch into block-column panels, not
        ``nrhs`` separate sweeps). The route depends on the backend:

        * ``"mp"``, not yet factored: one combined distributed run —
          factor then the distributed triangular solve, the factor blocks
          never leaving the workers that computed them (see
          ``docs/SOLVING.md``);
        * ``"service"``: a solve job against the service's resident
          factor — warm solves ship only right-hand-side values; the
          outcome lands in :attr:`solve_outcome`;
        * otherwise (and for corrections): the sequential block
          substitution path on the assembled factor, which is the
          bitwise reference for both routes above.

        ``refine`` adds that many steps of iterative refinement
        (``r = b - A x``; ``x += solve(r)``). The max-abs residual is
        always computed and reported in :attr:`solve_residual` (history
        in :attr:`solve_residuals`).
        """
        if refine < 0:
            raise ValueError("refine must be non-negative")
        b = np.asarray(b, dtype=np.float64)
        self.solve_outcome = None
        if self.backend == "service":
            x = self._solve_via_service(b)
        elif (
            self.backend == "mp"
            and self._numeric is None
            and self.fault_plan is None
        ):
            x = self._solve_distributed(b)
        else:
            x = self._base_solve(b)
        residuals = [self._residual(b, x)]
        for _ in range(refine):
            r = b - self.A @ x
            x = x + self._base_solve(r)
            residuals.append(self._residual(b, x))
        self.solve_residuals = residuals
        self.solve_residual = residuals[-1]
        return x

    def _residual(self, b: np.ndarray, x: np.ndarray) -> float:
        return float(np.max(np.abs(b - self.A @ x)))

    def _base_solve(self, b: np.ndarray) -> np.ndarray:
        """Sequential solve on the held factor — the block substitution
        path when the block factor is present (the distributed solve's
        bitwise reference), else the sparse-L path."""
        perm = getattr(self, "_solve_perm", None)
        if perm is None:
            perm = self.symbolic.ordering
        factor = self._numeric if self._numeric is not None else self.L
        return solve_with_factor(factor, b, perm)

    def _solve_distributed(self, b: np.ndarray) -> np.ndarray:
        """Combined distributed factor+solve in a single ``"mp"`` runtime
        launch (used when :meth:`solve` is called before :meth:`factor`):
        the factor stays distributed and only RHS fragments travel."""
        from repro.numeric.solve import _resolve_perm
        from repro.runtime import run_mp_fanout

        owners, name = self._plan(self.nprocs)
        perm = _resolve_perm(self.symbolic.ordering)
        pb = b if perm is None else b[perm]
        result = run_mp_fanout(
            self.structure,
            self.symbolic.A,
            self.taskgraph,
            owners,
            self.nprocs,
            mapping=name,
            trace=self.trace,
            transport=self.transport,
            schedule=self.schedule,
            steal_seed=self.steal_seed,
            rhs=pb,
        )
        self._numeric = result.factor
        self.runtime_metrics = result.metrics
        self.run_trace = result.trace
        self._L = self._numeric.to_csc()
        z = result.solution
        if b.ndim == 1:
            z = z[:, 0]
        if perm is None:
            return z
        x = np.empty_like(z)
        x[perm] = z
        return x

    def _solve_via_service(self, b: np.ndarray) -> np.ndarray:
        """Solve through the service's resident factor (warm solves ship
        only RHS values); falls back to the local factor copy when the
        service cannot solve (older service, no resident factor)."""
        pattern_id = getattr(self, "service_pattern_id", None)
        if pattern_id is None:
            raise RuntimeError("call factor() first")
        if hasattr(self.service, "solve"):
            sres = self.service.solve(
                b, pattern_id=pattern_id, deadline_s=self.deadline_s
            )
            self.solve_outcome = sres.outcome
            return sres.x
        return self._base_solve(b)

    # ------------------------------------------------------------------
    def plan_parallel(
        self,
        P: int,
        mapping: str = "ID/CY",
        machine: MachineParams = PARAGON,
        use_domains: bool = True,
    ) -> ParallelPlan:
        """Simulate the block fan-out factorization on ``P`` processors.

        ``mapping`` is ``"cyclic"`` or a ``"<row>/<col>"`` heuristic pair.
        """
        try:
            grid = square_grid(P)
        except ValueError:
            grid = best_grid(P)
        wm = self.workmodel
        if mapping == "cyclic":
            cmap = cyclic_map(self.partition.npanels, grid)
        else:
            rh, _, ch = mapping.partition("/")
            cmap = heuristic_map(wm, grid, rh.upper(), (ch or "CY").upper())
        domains = assign_domains(wm, grid.P) if use_domains else None
        owners = block_owners(self.taskgraph, cmap, domains)
        res = run_fanout(
            self.taskgraph, cmap, machine=machine, domains=domains,
            factor_ops=self.symbolic.factor_ops,
        )
        return ParallelPlan(
            P=grid.P,
            mapping=cmap.name,
            mflops=res.mflops,
            efficiency=res.efficiency,
            balance_bound=overall_balance_from_owners(wm, owners, grid.P),
            runtime_seconds=res.t_parallel,
            comm_megabytes=res.comm_bytes / 1e6,
            meta={"grid": str(grid), "messages": res.comm_messages},
        )

    def compare_mappings(
        self,
        P: int,
        mappings: tuple[str, ...] = ("cyclic", "ID/CY", "DW/CY"),
        machine: MachineParams = PARAGON,
    ) -> dict[str, ParallelPlan]:
        """Plan several mappings at once (the paper's comparison, one call)."""
        return {m: self.plan_parallel(P, m, machine) for m in mappings}

    def recommend_processors(
        self,
        target_efficiency: float = 0.5,
        candidates: tuple[int, ...] = (1, 4, 9, 16, 25, 36, 64, 100, 144, 196),
        mapping: str = "ID/CY",
        machine: MachineParams = PARAGON,
    ) -> ParallelPlan:
        """Largest machine that still achieves ``target_efficiency``.

        Sweeps the candidate machine sizes (ascending) and returns the plan
        for the largest P whose simulated efficiency meets the target; if
        none does, returns the single-processor plan.
        """
        if not 0 < target_efficiency <= 1:
            raise ValueError("target_efficiency must be in (0, 1]")
        best = self.plan_parallel(1, mapping, machine)
        for P in sorted(candidates):
            if P == 1:
                continue
            plan = self.plan_parallel(P, mapping, machine)
            if plan.efficiency >= target_efficiency:
                best = plan
        return best
