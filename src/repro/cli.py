"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info <problem>``
    Print matrix/ordering/symbolic statistics for a benchmark problem.
``factor <problem>``
    Numerically factor a benchmark problem and verify ``L L^T = A``.
``simulate <problem>``
    Simulate the parallel block fan-out under a chosen mapping.
``bench-real <problem>``
    Execute the real multiprocess message-passing runtime and report the
    measured per-worker busy/idle/comm breakdown and load balance.
``chaos <problem>``
    Sweep deterministic fault-injection scenarios (crash, drop, duplicate,
    corrupt, delay, slow) over the runtime and assert that every run
    either recovers to the sequential factor or degrades cleanly to the
    sequential backend with a populated failure report.
``trace <file>``
    Inspect a structured run trace (written by ``bench-real --trace-out``):
    summary, ASCII Gantt chart, replay validation, Chrome trace export.
``serve``
    Run the long-lived factorization service (persistent worker pool,
    pattern cache, admission control) as a TCP server.
``loadgen``
    Drive a service — remote (``--connect``) or spun up in-process — with
    a seeded closed- or open-loop job mix at a configurable
    pattern-repeat ratio, and report cache hits, latency percentiles, and
    retry/recovery counts (``--fault-plan`` / ``--kill-worker-at`` inject
    faults mid-run).
``chaos-service``
    Seeded fault matrix over the *service* layer: worker kills (hard and
    soft), per-job deadlines, and the circuit breaker — asserting every
    job completes bitwise-identically to the fault-free run or raises a
    typed error within its deadline, with no leaked shm segments.
``experiment <name>``
    Run one paper experiment (table1..table7, figure1, prime_grids, ...).
``suite``
    Run every experiment at the chosen scale (same as
    ``scripts/run_all_experiments.py``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", default="medium",
                   choices=("small", "medium", "paper"))
    p.add_argument("--block-size", type=int, default=48)


def cmd_info(args) -> int:
    from repro.experiments.pipeline import prepare_problem

    prep = prepare_problem(args.problem, args.scale, args.block_size)
    sf, part = prep.symbolic, prep.partition
    wm = prep.workmodel
    print(f"problem      : {prep.name} (scale={args.scale})")
    print(f"equations    : {prep.problem.n:,}")
    print(f"nnz(A)       : {prep.problem.nnz:,}")
    print(f"ordering     : {prep.problem.recommended_ordering}")
    print(f"nnz(L)       : {sf.factor_nnz:,}")
    print(f"factor ops   : {sf.factor_ops / 1e6:,.1f} M")
    print(f"supernodes   : {sf.nsupernodes:,}")
    print(f"panels (B={args.block_size}): {part.npanels:,}")
    print(f"blocks       : {prep.structure.num_blocks:,}")
    print(f"block ops    : {wm.total_ops:,}")
    return 0


def cmd_factor(args) -> int:
    from repro.experiments.pipeline import prepare_problem
    from repro.numeric import BlockCholesky, solve_with_factor

    prep = prepare_problem(args.problem, args.scale, args.block_size)
    bc = BlockCholesky(prep.structure, prep.symbolic.A).factor()
    L = bc.to_csc()
    resid = abs(L @ L.T - prep.symbolic.A).max()
    print(f"factored {prep.name}: |L L^T - A|_max = {resid:.3e}")
    b = np.ones(prep.problem.n)
    x = solve_with_factor(L, b, prep.symbolic.ordering)
    sres = np.max(np.abs(prep.problem.A @ x - b))
    print(f"solve residual |Ax - b|_max = {sres:.3e}")
    return 0 if resid < 1e-6 else 1


def cmd_simulate(args) -> int:
    from repro.experiments.pipeline import prepare_problem
    from repro.fanout import assign_domains, run_fanout
    from repro.mapping import best_grid, cyclic_map, heuristic_map, square_grid

    prep = prepare_problem(args.problem, args.scale, args.block_size)
    try:
        grid = square_grid(args.P)
    except ValueError:
        grid = best_grid(args.P)
    wm = prep.workmodel
    domains = assign_domains(wm, grid.P) if not args.no_domains else None
    if args.mapping == "cyclic":
        cmap = cyclic_map(prep.partition.npanels, grid)
    else:
        rh, _, ch = args.mapping.partition("/")
        cmap = heuristic_map(wm, grid, rh.upper(), (ch or "CY").upper())
    res = run_fanout(
        prep.taskgraph, cmap, domains=domains,
        priority_mode=args.priority, factor_ops=prep.factor_ops,
    )
    print(f"{prep.name} on {grid} ({cmap.name}):")
    print(f"  runtime    : {res.t_parallel * 1e3:.2f} ms (simulated)")
    print(f"  efficiency : {res.efficiency:.3f}")
    print(f"  Mflops     : {res.mflops:.1f}")
    print(f"  messages   : {res.comm_messages:,} "
          f"({res.comm_bytes / 1e6:.1f} MB)")
    print(f"  idle       : {res.idle_fraction:.2f}")
    return 0


def _usable_cpus() -> int | None:
    """CPUs this process may actually run on (affinity beats count)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count()


def _oversub_note(nprocs: int, usable: int | None) -> str | None:
    """The oversubscription warning, or None when the run is honest.

    Printed at *every* place a timing is reported — not just once at
    startup — so a grepped or truncated log can never show a wall clock
    without its caveat."""
    if usable is None or nprocs <= usable:
        return None
    return (f"WARNING: {nprocs} workers on {usable} affinity-visible "
            f"CPUs — oversubscribed wall clocks measure time-sliced "
            f"execution, not parallel speedup")


def cmd_bench_real(args) -> int:
    import json

    import numpy as np

    from repro.analysis.comm_volume import (
        communication_volume,
        solve_communication_volume,
    )
    from repro.experiments.pipeline import prepare_problem
    from repro.runtime import (
        plan_owners,
        run_mp_fanout,
        shm_available,
        validate_runtime,
    )

    transport = getattr(args, "transport", "auto")
    if transport == "shm" and not shm_available():
        # Smoke runs on platforms without POSIX shared memory skip
        # gracefully instead of failing the whole invocation.
        print("transport=shm requested but shared memory is unavailable "
              "on this platform; skipping")
        return 0
    usable = _usable_cpus()
    oversub = _oversub_note(args.nprocs, usable)
    if oversub is not None:
        # Same honesty policy as scripts/bench_runtime.py: oversubscribed
        # wall clocks measure time-slicing, not parallel speedup.
        print(oversub, file=sys.stderr)
        if args.require_multicore:
            print(f"--require-multicore: refusing to record "
                  f"oversubscribed timings ({args.nprocs} workers > "
                  f"{usable} usable CPUs)", file=sys.stderr)
            return 2
    phase = args.phase
    prep = prepare_problem(args.problem, args.scale, args.block_size)
    rhs = None
    if phase in ("solve", "both"):
        if args.nrhs < 1:
            print("--nrhs must be positive", file=sys.stderr)
            return 2
        rng = np.random.default_rng(args.rhs_seed)
        rhs = rng.standard_normal(
            (prep.symbolic.A.shape[0], args.nrhs)
        )
    mappings = [m.strip() for m in args.mappings.split(",") if m.strip()]
    schedules = (
        ["static", "dynamic"] if args.schedule == "both"
        else [args.schedule]
    )
    bpolicies = (
        ["uniform", "supernodal"] if args.block_policy == "both"
        else [args.block_policy]
    )
    policy = None if args.policy == "fifo" else args.policy
    runs = {}
    resids = {}
    multi = len(mappings) * len(schedules) * len(bpolicies) > 1
    for bpolicy in bpolicies:
        prep = prepare_problem(
            args.problem, args.scale, args.block_size,
            block_policy=bpolicy,
        )
        for mapping in mappings:
            owners, name = plan_owners(
                prep.workmodel, prep.taskgraph, args.nprocs, mapping,
                use_domains=args.domains,
            )
            for schedule in schedules:
                res = run_mp_fanout(
                    prep.structure, prep.symbolic.A, prep.taskgraph, owners,
                    args.nprocs, policy=policy, mapping=name,
                    timeout_s=args.timeout,
                    stall_timeout_s=args.stall_timeout,
                    trace=bool(args.trace_out), transport=transport,
                    schedule=schedule, steal_seed=args.steal_seed,
                    rhs=rhs,
                )
                met = res.metrics
                met.problem = prep.name
                label = (
                    mapping if len(schedules) == 1
                    else f"{mapping}:{schedule}"
                )
                if len(bpolicies) > 1:
                    label = f"{label}@{bpolicy}"
                runs[label] = res
                predicted = communication_volume(prep.taskgraph, owners)
                L = res.to_csc()
                resid = abs(L @ L.T - prep.symbolic.A).max()
                resids[label] = float(resid)
                print(f"{prep.name} on {args.nprocs} workers ({name}, "
                      f"schedule={schedule}, block_policy={bpolicy}):")
                if oversub is not None:
                    print(f"  {oversub}")
                print(f"  wall clock      : {met.wall_s * 1e3:.1f} ms "
                      f"(factor{'+solve' if rhs is not None else ''})")
                if phase in ("factor", "both"):
                    print(f"  |L L^T - A|_max : {resid:.3e}")
                    print(f"  balance         : measured "
                          f"{met.measured_balance:.3f} "
                          f"(busy time), work {met.work_balance:.3f}")
                    print(f"  imbalance       : max/mean busy "
                          f"{met.imbalance:.3f}, work {met.work_imbalance:.3f}")
                    print(f"  messages        : {met.messages_total} measured /"
                          f" {predicted.messages} predicted "
                          f"({met.bytes_total / 1e6:.2f} MB)")
                    print(f"  transport       : {met.transport} "
                          f"({met.wire_bytes_total / 1e6:.2f} MB transported)")
                if rhs is not None:
                    spred = solve_communication_volume(
                        prep.taskgraph, owners, nrhs=args.nrhs
                    )
                    sresid = float(
                        np.max(np.abs(prep.symbolic.A @ res.solution - rhs))
                    )
                    busy = sum(w.solve_busy_s for w in met.workers)
                    comm = sum(w.solve_comm_s for w in met.workers)
                    print(f"  solve ({args.nrhs} rhs) : "
                          f"|A x - b|_max {sresid:.3e} (permuted system)")
                    print(f"  solve time      : busy {busy * 1e3:.1f} ms, "
                          f"comm {comm * 1e3:.1f} ms across workers")
                    print(f"  solve messages  : {met.solve_messages_total} "
                          f"measured / {spred.messages} predicted "
                          f"({met.solve_bytes_total / 1e3:.1f} kB)")
                if schedule == "dynamic":
                    print(f"  stealing        : {met.tasks_stolen_total} "
                          f"migrations / {met.steal_reqs_total} requests "
                          f"({met.steal_bytes_total / 1e3:.1f} kB steal "
                          f"traffic); idle {met.idle_total_s * 1e3:.1f} ms")
                print("  per-worker breakdown:")
                print("    " + met.render().replace("\n", "\n    "))
                if args.validate:
                    rep = validate_runtime(
                        prep.structure, prep.symbolic.A, prep.taskgraph,
                        problem=prep.name, result=res, strict=False,
                    )
                    print("  " + rep.summary().replace("\n", "\n  "))
                    if not rep.ok:
                        return 1
                if args.trace_out and res.trace is not None:
                    path = _trace_path(args.trace_out, label, multi)
                    res.trace.meta["problem"] = prep.name
                    res.trace.dump(path)
                    print(f"  trace ({len(res.trace.events)} events) written "
                          f"to {path}")
                print()
    if len(runs) > 1:
        print("mapping comparison (work imbalance, lower is better; "
              "labels are mapping[:schedule][@block_policy]):")
        if oversub is not None:
            print(f"  {oversub}")
        for label, res in sorted(
            runs.items(), key=lambda kv: kv[1].metrics.work_imbalance
        ):
            met = res.metrics
            print(f"  {label:<28s} work_imbalance="
                  f"{met.work_imbalance:.3f} "
                  f"measured_balance={met.measured_balance:.3f} "
                  f"resid={resids[label]:.2e} "
                  f"wall={met.wall_s * 1e3:.1f} ms")
    if len(schedules) == 2:
        print("schedule comparison (dynamic vs static):")
        if oversub is not None:
            print(f"  {oversub}")
        for mapping in mappings:
            for bpolicy in bpolicies:
                suffix = f"@{bpolicy}" if len(bpolicies) > 1 else ""
                st = runs.get(f"{mapping}:static{suffix}")
                dy = runs.get(f"{mapping}:dynamic{suffix}")
                if st is None or dy is None:
                    continue
                same = (abs(dy.to_csc() - st.to_csc()).max() == 0.0)
                sm, dm = st.metrics, dy.metrics
                print(f"  {mapping + suffix:<20s} "
                      f"idle {dm.idle_total_s * 1e3:.1f} ms "
                      f"vs {sm.idle_total_s * 1e3:.1f} ms static, "
                      f"wall {dm.wall_s * 1e3:.1f} vs "
                      f"{sm.wall_s * 1e3:.1f} ms, "
                      f"{dm.tasks_stolen_total} migrations, factors "
                      f"{'bitwise identical' if same else 'DIFFER'}")
    if args.json:
        payload = {m: r.metrics.to_dict() for m, r in runs.items()}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"metrics written to {args.json}")
    return 0


def _trace_path(base: str, mapping: str, multi: bool) -> str:
    """Output path for one mapping's trace; with several mappings a
    filesystem-safe mapping slug is inserted before the extension."""
    if not multi:
        return base
    slug = mapping.replace("/", "-").replace(":", ".").lower()
    root, dot, ext = base.rpartition(".")
    if not dot:
        return f"{base}.{slug}"
    return f"{root}.{slug}.{ext}"


def cmd_trace(args) -> int:
    from repro.analysis.trace_replay import validate_trace
    from repro.runtime.trace import RunTrace

    trace = RunTrace.load(args.file)
    print(trace.summary())
    if args.gantt:
        print()
        print(trace.gantt(width=args.width))
    if args.validate:
        rep = validate_trace(trace)
        print()
        print(rep.summary())
        if not rep.ok:
            return 1
    if args.chrome:
        trace.dump_chrome(args.chrome)
        print(f"\nChrome trace written to {args.chrome} "
              f"(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


#: Scenario sweep run by ``repro chaos --faults all``.
_CHAOS_SWEEP = (
    "none", "crash", "drop", "duplicate", "corrupt", "delay", "slow",
)


def cmd_chaos(args) -> int:
    import json

    from repro.experiments.pipeline import prepare_problem
    from repro.numeric import BlockCholesky
    from repro.runtime.faults import FaultPlan
    from repro.runtime.recovery import run_with_recovery

    prep = prepare_problem(
        args.problem, args.scale, args.block_size,
        block_policy=getattr(args, "block_policy", "uniform"),
    )
    A = prep.symbolic.A
    seq = BlockCholesky(prep.structure, A).factor().to_csc()
    names = (
        list(_CHAOS_SWEEP) if args.faults == "all"
        else [f.strip() for f in args.faults.split(",") if f.strip()]
    )
    procs = [int(p) for p in args.procs.split(",") if p.strip()]
    failures = 0
    payload = {}
    print(f"chaos sweep on {prep.name} (seed={args.seed}, "
          f"rate={args.rate}, schedule={getattr(args, 'schedule', 'static')}, "
          f"block_policy={getattr(args, 'block_policy', 'uniform')}, "
          f"scenarios={len(names)} x P={procs})")
    for P in procs:
        for name in names:
            plan = FaultPlan.scenario(
                name, seed=args.seed, rate=args.rate, rank=min(1, P - 1),
            )
            res = run_with_recovery(
                prep.structure, A, prep.taskgraph, nprocs=P,
                mapping=args.mapping, fault_plan=plan,
                max_restarts=args.max_restarts,
                timeout_s=args.timeout, stall_timeout_s=args.stall_timeout,
                renegotiate_base_s=0.05, renegotiate_cap_s=0.5,
                max_renegotiations=6, dead_grace_s=5.0,
                transport=getattr(args, "transport", "auto"),
                schedule=getattr(args, "schedule", "static"),
            )
            rep = res.failure_report
            L = res.to_csc()
            diff = float(abs(L - seq).max())
            resid = float(abs(L @ L.T - A).max())
            ok = diff < 1e-8 and (rep.ok or rep.degraded)
            if name == "none":
                # A fault-free sweep entry must stay pristine: no faults
                # fired, no recovery machinery engaged, no restarts.
                ok = ok and rep.outcome == "clean" and \
                    rep.recovery_events == 0 and not rep.faults_injected
            failures += 0 if ok else 1
            status = "ok" if ok else "FAIL"
            print(f"  [{status}] P={P} fault={name:<10s} "
                  f"outcome={rep.outcome:<20s} restarts={rep.restarts} "
                  f"|dL|={diff:.1e} resid={resid:.1e} "
                  f"events={rep.recovery_events} "
                  f"injected={sum(rep.faults_injected.values())}")
            if args.verbose and rep.attempts:
                print("    " + rep.summary().replace("\n", "\n    "))
            payload[f"P{P}:{name}"] = {
                "ok": ok,
                "factor_diff": diff,
                "residual": resid,
                "report": rep.to_dict(),
            }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"chaos report written to {args.json}")
    print(f"chaos sweep: {len(payload) - failures}/{len(payload)} scenarios "
          f"{'ok' if failures == 0 else 'ok, ' + str(failures) + ' FAILED'}")
    return 0 if failures == 0 else 1


def _service_from_args(args, **extra):
    from repro.runtime.faults import parse_fault_plan
    from repro.service import FactorService

    kwargs = dict(
        nprocs=args.nprocs,
        ordering=args.ordering,
        block_size=args.block_size,
        block_policy=getattr(args, "block_policy", "uniform"),
        mapping=args.mapping,
        transport=args.transport,
        schedule=getattr(args, "schedule", "static"),
        steal_seed=getattr(args, "steal_seed", 0),
        queue_capacity=args.queue_capacity,
        admission=args.admission,
        max_batch=args.max_batch,
        batch_wait_s=args.batch_wait / 1e3,
        cache_capacity=args.cache_capacity,
        validate=args.validate,
        default_deadline_s=args.deadline,
        max_job_attempts=args.max_job_attempts,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
    )
    plan_spec = getattr(args, "fault_plan", None)
    if plan_spec:
        kwargs["fault_plan"] = parse_fault_plan(
            plan_spec, seed=getattr(args, "seed", 0)
        )
        kwargs["fault_jobs"] = tuple(
            int(i) for i in getattr(args, "fault_jobs", "0").split(",")
            if i.strip()
        )
    kwargs.update(extra)
    return FactorService(**kwargs)


def _add_service_knobs(p: argparse.ArgumentParser) -> None:
    p.add_argument("-p", "--nprocs", type=int, default=2,
                   help="resident worker process count")
    p.add_argument("--ordering", default="auto",
                   choices=("auto", "nd", "mmd", "natural"))
    p.add_argument("--block-size", type=int, default=48)
    p.add_argument("--block-policy", default="uniform",
                   choices=("uniform", "supernodal"),
                   help="panel blocking policy (see docs/BLOCKING.md)")
    p.add_argument("--mapping", default="DW/CY")
    p.add_argument("--transport", default="auto",
                   choices=("auto", "shm", "inline"))
    p.add_argument("--schedule", default="static",
                   choices=("static", "dynamic"),
                   help="execution schedule inside the worker pool")
    p.add_argument("--steal-seed", type=int, default=0,
                   help="victim-selection seed for the dynamic schedule")
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="admission queue bound")
    p.add_argument("--admission", default="block",
                   choices=("block", "reject", "shed"),
                   help="what happens when the queue is full")
    p.add_argument("--max-batch", type=int, default=8,
                   help="max jobs folded into one fan-out round")
    p.add_argument("--batch-wait", type=float, default=2.0, metavar="MS",
                   help="batching window in milliseconds")
    p.add_argument("--cache-capacity", type=int, default=8,
                   help="pattern cache entries (LRU beyond this)")
    p.add_argument("--validate", action="store_true",
                   help="bitwise-check every factor against the "
                        "sequential baseline")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="default per-job deadline in seconds "
                        "(None = unbounded)")
    p.add_argument("--max-job-attempts", type=int, default=2,
                   help="parallel attempts per job before the "
                        "sequential fallback")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive pool failures that trip the "
                        "circuit breaker (0 disables)")
    p.add_argument("--breaker-cooldown", type=float, default=5.0,
                   metavar="S",
                   help="seconds the breaker stays open before the "
                        "half-open probe")


def cmd_serve(args) -> int:
    from repro.service import ServiceServer

    service = _service_from_args(args).start()
    server = ServiceServer(service, host=args.host, port=args.port)
    host, port = server.address
    print(f"repro service listening on {host}:{port} "
          f"(nprocs={args.nprocs}, transport={service.transport}, "
          f"admission={args.admission}, queue={args.queue_capacity})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.close()
        service.close()
        print("service stopped:", service.metrics.render(), sep="\n")
    return 0


def cmd_loadgen(args) -> int:
    import json

    from repro.service import ServiceClient
    from repro.service.loadgen import LoadgenConfig, run_loadgen
    from repro.service.resilience import RetryPolicy

    cfg = LoadgenConfig(
        jobs=args.jobs,
        patterns=args.patterns,
        repeat_ratio=args.repeat_ratio,
        mode=args.mode,
        rate=args.rate,
        concurrency=args.concurrency,
        seed=args.seed,
        problem=args.problem,
        n=args.n,
        values_only=not args.full_matrix,
        timeout=args.timeout,
        deadline_s=args.deadline,
        retries=args.retries,
        kill_worker_at=args.kill_worker_at,
        kill_rank=args.kill_rank,
    )
    retry = (
        RetryPolicy(retries=args.retries, seed=args.seed)
        if args.retries > 0 else None
    )
    service = None
    if args.connect:
        if args.kill_worker_at >= 0:
            print("--kill-worker-at needs an in-process service "
                  "(drop --connect)", file=sys.stderr)
            return 2
        host, _, port = args.connect.rpartition(":")
        address = (host or "127.0.0.1", int(port))

        def client_factory():
            return ServiceClient(
                address=address, timeout=args.timeout, retry=retry
            )
    else:
        service = _service_from_args(args).start()

        def client_factory():
            return ServiceClient(service=service, timeout=args.timeout)

    try:
        report = run_loadgen(client_factory, cfg, service=service)
    finally:
        if service is not None:
            service.close()
    print(report.render())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"loadgen report written to {args.json}")
    if args.shutdown_server and args.connect:
        with ServiceClient(address=address, timeout=args.timeout) as c:
            c.shutdown_server()
        print("server shutdown requested")
    d = report.to_dict()
    return 0 if d["jobs"]["failed"] == 0 else 1


#: Scenario matrix run by ``repro chaos-service --scenarios all``.
_SERVICE_CHAOS = (
    "none", "worker-kill", "worker-crash", "deadline", "breaker",
)

#: Wall-clock slack allowed past a job's deadline before the run counts
#: as a client hang (scheduler jitter, queue polling).
_DEADLINE_SLACK_S = 5.0


def cmd_chaos_service(args) -> int:
    """Seeded fault matrix over the *service* layer.

    Every scenario drives the same deterministic job stream through a
    fresh :class:`~repro.service.FactorService` and asserts the
    acceptance bar for self-healing: every submitted job completes
    (recovered or sequential-fallback, tagged in its record) or raises a
    typed error within its deadline, completed factors are
    bitwise-identical to the fault-free run, no shm segments leak, and
    no client ever hangs.
    """
    import glob
    import json
    import time as time_mod

    from repro.matrices import grid2d_matrix
    from repro.runtime.faults import FaultPlan
    from repro.service import FactorService
    from repro.service.jobs import DeadlineExceeded, ServiceError
    from repro.service.loadgen import fresh_values

    names = (
        list(_SERVICE_CHAOS) if args.scenarios == "all"
        else [s.strip() for s in args.scenarios.split(",") if s.strip()]
    )
    # The fault-free run is always first: it produces the reference
    # factors every other scenario is compared against bitwise.
    if "none" in names:
        names.remove("none")
    names.insert(0, "none")

    rng = np.random.default_rng(args.seed)
    base = [
        grid2d_matrix(args.n + i).A.tocsc() for i in range(args.patterns)
    ]
    stream = [
        (i % args.patterns, float(rng.uniform(0.1, 2.0)))
        for i in range(args.jobs)
    ]
    matrices = [fresh_values(base[p], shift) for p, shift in stream]
    fault_at = args.fault_at if args.fault_at >= 0 else args.jobs // 2
    crash_rank = min(1, args.nprocs - 1)
    shm_before = set(glob.glob("/dev/shm/psm_*"))
    reference: dict[int, tuple] = {}
    payload: dict[str, dict] = {}
    failures = 0
    print(f"service chaos matrix: jobs={args.jobs} "
          f"patterns={args.patterns} P={args.nprocs} "
          f"transport={args.transport} "
          f"block_policy={getattr(args, 'block_policy', 'uniform')} "
          f"seed={args.seed} fault_at={fault_at}")
    for name in names:
        svc_kw = dict(
            nprocs=args.nprocs,
            ordering="nd",
            block_size=args.block_size,
            block_policy=getattr(args, "block_policy", "uniform"),
            transport=args.transport,
            max_batch=args.max_batch,
            stall_timeout_s=args.stall_timeout,
            batch_timeout_s=args.timeout,
        )
        deadlines: dict[int, float] = {}
        if name == "worker-kill":
            # Hard crash: os._exit mid-job, the SIGKILL/segfault
            # stand-in — the pool must heal on P - f workers.
            svc_kw["fault_plan"] = FaultPlan.scenario(
                "crash-hard", seed=args.seed, rank=crash_rank,
                after_tasks=1,
            )
            svc_kw["fault_jobs"] = (fault_at,)
        elif name == "worker-crash":
            # Soft crash: the worker errors and ABORTs its job; the
            # pool survives, the job is retried without the plan.
            svc_kw["fault_plan"] = FaultPlan.scenario(
                "crash", seed=args.seed, rank=crash_rank, after_tasks=1,
            )
            svc_kw["fault_jobs"] = (fault_at,)
        elif name == "deadline":
            # Every odd job gets an unmeetable budget: it must raise
            # the typed DeadlineExceeded by its deadline; even jobs
            # must complete untouched in the same batches.
            deadlines = {i: 5e-4 for i in range(1, args.jobs, 2)}
        elif name == "breaker":
            # First job kills the pool; threshold 1 trips the breaker,
            # the rest of the stream runs degraded-sequential; after
            # the cooldown a probe job half-opens and closes it again.
            svc_kw["fault_plan"] = FaultPlan.scenario(
                "crash-hard", seed=args.seed, rank=crash_rank,
                after_tasks=1,
            )
            svc_kw["fault_jobs"] = (0,)
            svc_kw["breaker_threshold"] = 1
            svc_kw["breaker_cooldown_s"] = 1.0
        elif name != "none":
            print(f"unknown scenario {name!r}; known: "
                  f"{', '.join(_SERVICE_CHAOS)}", file=sys.stderr)
            return 2
        problems: list[str] = []
        results: dict[int, object] = {}
        typed_errors: dict[int, ServiceError] = {}
        probe_ok = breaker_state = None
        with FactorService(**svc_kw) as svc:
            handles = [
                svc.submit(matrices[i], deadline_s=deadlines.get(i))
                for i in range(args.jobs)
            ]
            for i, h in enumerate(handles):
                t0 = time_mod.monotonic()
                try:
                    results[i] = h.result(timeout=args.timeout)
                except ServiceError as exc:
                    typed_errors[i] = exc
                    elapsed = time_mod.monotonic() - t0
                    dl = deadlines.get(i)
                    if (
                        isinstance(exc, DeadlineExceeded)
                        and dl is not None
                        and elapsed > dl + _DEADLINE_SLACK_S
                    ):
                        problems.append(
                            f"job {i} deadline error took {elapsed:.1f}s"
                        )
                except TimeoutError:
                    problems.append(f"job {i} HUNG past {args.timeout}s")
            if name == "breaker":
                time_mod.sleep(svc_kw["breaker_cooldown_s"] + 0.2)
                try:
                    probe = svc.factor(matrices[0], timeout=args.timeout)
                    probe_ok = True
                    ref = reference.get(0)
                    if ref is not None and not _same_factor(probe.L, ref):
                        problems.append("post-recovery probe not bitwise")
                except ServiceError as exc:
                    probe_ok = False
                    problems.append(f"post-cooldown probe failed: {exc}")
                breaker_state = svc.breaker.state
            stats = svc.stats()
        # -- invariants every scenario must hold -----------------------
        expected_errors = set(deadlines)
        if set(typed_errors) != expected_errors:
            problems.append(
                f"typed errors on jobs {sorted(typed_errors)} "
                f"(expected {sorted(expected_errors)})"
            )
        for i in expected_errors & set(typed_errors):
            if not isinstance(typed_errors[i], DeadlineExceeded):
                problems.append(
                    f"job {i} raised {type(typed_errors[i]).__name__}, "
                    "not DeadlineExceeded"
                )
        for i, res in results.items():
            key = (res.L.indptr, res.L.indices, res.L.data)
            if name == "none":
                reference[i] = key
            elif i in reference and not _same_factor(res.L, reference[i]):
                problems.append(f"job {i} factor differs bitwise")
        outcomes = sorted(
            {res.record.outcome for res in results.values()}
        )
        resil = stats["service"]["resilience"]
        if name == "none":
            if outcomes != ["clean"]:
                problems.append(f"fault-free outcomes {outcomes}")
            if resil["pool_restarts"]:
                problems.append("fault-free run restarted the pool")
        elif name == "worker-kill":
            if resil["pool_restarts"] < 1:
                problems.append("worker kill never healed the pool")
            if not (resil["recovered"] or resil["degraded"]):
                problems.append("no job tagged recovered/degraded")
            if stats["pool_generation"] < 2:
                problems.append("pool generation never advanced")
        elif name == "worker-crash":
            if not (resil["recovered"] or resil["degraded"]):
                problems.append("no job tagged recovered/degraded")
        elif name == "breaker":
            if stats["breaker"]["trips"] < 1:
                problems.append("breaker never tripped")
            if not resil["degraded"]:
                problems.append("no degraded-sequential jobs")
            if breaker_state != "closed":
                problems.append(
                    f"breaker {breaker_state!r} after cooldown probe"
                )
        shm_now = set(glob.glob("/dev/shm/psm_*"))
        leaked = shm_now - shm_before
        if leaked:
            problems.append(f"leaked shm segments: {sorted(leaked)}")
        ok = not problems
        failures += 0 if ok else 1
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] scenario={name:<13s} "
              f"ok={len(results)} typed_errors={len(typed_errors)} "
              f"outcomes={','.join(outcomes) or '-'} "
              f"restarts={resil['pool_restarts']} "
              f"recovered={resil['recovered']} "
              f"degraded={resil['degraded']}")
        for problem in problems:
            print(f"        - {problem}")
        payload[name] = {
            "ok": ok,
            "problems": problems,
            "completed": len(results),
            "typed_errors": {
                str(i): type(e).__name__ for i, e in typed_errors.items()
            },
            "outcomes": outcomes,
            "resilience": resil,
            "breaker": stats["breaker"],
            "probe_ok": probe_ok,
        }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"chaos-service report written to {args.json}")
    print(f"chaos-service: {len(payload) - failures}/{len(payload)} "
          f"scenarios {'ok' if failures == 0 else 'ok, ' + str(failures) + ' FAILED'}")
    return 0 if failures == 0 else 1


def _same_factor(L, ref: tuple) -> bool:
    """Bitwise factor comparison against a (indptr, indices, data) key."""
    return (
        np.array_equal(L.indptr, ref[0])
        and np.array_equal(L.indices, ref[1])
        and np.array_equal(L.data, ref[2])
    )


def cmd_analyze(args) -> int:
    from repro.analysis import (
        critical_path,
        memory_usage,
        tree_statistics,
        work_by_depth,
    )
    from repro.experiments.pipeline import prepare_problem
    from repro.fanout import assign_domains, block_owners
    from repro.mapping import best_grid, heuristic_map, square_grid

    prep = prepare_problem(args.problem, args.scale, args.block_size)
    stats = tree_statistics(prep.symbolic, args.block_size)
    print(f"structure of {prep.name}:")
    for label, value in stats.as_rows():
        print(f"  {label:<22s}: {value}")
    w = work_by_depth(prep.symbolic, nbins=5)
    print("  work by depth quintile :", " ".join(f"{x:.2f}" for x in w))
    cp = critical_path(prep.taskgraph)
    print(f"  critical path          : {cp.length_seconds * 1e3:.2f} ms "
          f"(max speedup {cp.max_speedup:.1f}x)")
    try:
        grid = square_grid(args.P)
    except ValueError:
        grid = best_grid(args.P)
    owners = block_owners(
        prep.taskgraph,
        heuristic_map(prep.workmodel, grid, "ID", "CY"),
        assign_domains(prep.workmodel, grid.P),
    )
    mem = memory_usage(prep.taskgraph, owners, grid.P)
    print(f"  per-node factor storage: max {mem.max_owned / 2**20:.2f} MiB "
          f"(balance {mem.storage_balance:.2f})")
    print(f"  worst-case node memory : {mem.worst_case_bytes / 2**20:.2f} MiB "
          f"({'fits' if mem.fits() else 'EXCEEDS'} a 32 MiB Paragon node)")
    return 0


_EXPERIMENTS = {
    "table1": ("repro.experiments.table1", "run", "{:.1f}"),
    "table2": ("repro.experiments.table2", "run", "{:.2f}"),
    "table3": ("repro.experiments.table3", "run", "{:.2f}"),
    "table4": ("repro.experiments.table4", "run", "{:.0f}"),
    "table5": ("repro.experiments.table5", "run", "{:.0f}"),
    "table6": ("repro.experiments.table6", "run", "{:.1f}"),
    "table7": ("repro.experiments.table7", "run", "{:.0f}"),
    "figure1": ("repro.experiments.figure1", "run", "{:.3f}"),
    "prime_grids": ("repro.experiments.prime_grids", "run", "{:.0f}"),
    "alt_heuristic": ("repro.experiments.alt_heuristic", "run", "{:.2f}"),
    "variable_block": ("repro.experiments.variable_block", "run", "{:.2f}"),
    "dense_study": ("repro.experiments.dense_study", "run", "{:.0f}"),
    "critical_path": ("repro.experiments.discussion", "run_critical_path", "{:.3f}"),
    "subcube": ("repro.experiments.discussion", "run_subcube", "{:.2f}"),
    "priority": ("repro.experiments.discussion", "run_priority_scheduling", "{:.1f}"),
}


def cmd_experiment(args) -> int:
    import importlib

    spec = _EXPERIMENTS.get(args.name)
    if spec is None:
        print(f"unknown experiment {args.name!r}; known: "
              f"{', '.join(sorted(_EXPERIMENTS))}", file=sys.stderr)
        return 2
    module, fn, fmt = spec
    run = getattr(importlib.import_module(module), fn)
    print(run(args.scale).render(fmt))
    return 0


def cmd_suite(args) -> int:
    import subprocess

    return subprocess.call(
        [sys.executable, "scripts/run_all_experiments.py", args.scale]
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rothberg-Schreiber SC'94 reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="problem statistics")
    p.add_argument("problem")
    _add_common(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("factor", help="numeric factorization + verification")
    p.add_argument("problem")
    _add_common(p)
    p.set_defaults(fn=cmd_factor)

    p = sub.add_parser("simulate", help="parallel fan-out simulation")
    p.add_argument("problem")
    p.add_argument("-P", type=int, default=64, help="processor count")
    p.add_argument("--mapping", default="ID/CY",
                   help='"cyclic" or "<row>/<col>" heuristic pair, e.g. ID/CY')
    p.add_argument("--no-domains", action="store_true")
    p.add_argument("--priority", action="store_true",
                   help="priority scheduling instead of FIFO")
    _add_common(p)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "bench-real",
        help="execute the real multiprocess runtime and report per-worker "
             "metrics",
    )
    p.add_argument("problem")
    p.add_argument("-p", "--nprocs", type=int, default=4,
                   help="worker process count")
    p.add_argument("--mappings", default="cyclic,DW/CY",
                   help="comma-separated mappings to execute and compare")
    p.add_argument("--policy", default="fifo",
                   choices=("fifo", "column", "bottom_level"),
                   help="ready-task scheduling policy on every worker")
    p.add_argument("--domains", action="store_true",
                   help="apply the domain (subtree) ownership portion")
    p.add_argument("--validate", action="store_true",
                   help="also check numerics/messages/work against the "
                        "models")
    p.add_argument("--transport", default="auto",
                   choices=("auto", "shm", "inline"),
                   help="block payload transport: shared-memory arena "
                        "with 64-byte descriptors, inline frame bytes, "
                        "or auto-detect")
    p.add_argument("--schedule", default="static",
                   choices=("static", "dynamic", "both"),
                   help="execution schedule: the static owner-computes "
                        "map, dynamic work stealing, or 'both' to run "
                        "each mapping under both and compare")
    p.add_argument("--steal-seed", type=int, default=0,
                   help="victim-selection seed for the dynamic schedule")
    p.add_argument("--block-policy", default="uniform",
                   choices=("uniform", "supernodal", "both"),
                   help="panel blocking policy: fixed-width panels, "
                        "structure-aware supernodal panels, or 'both' to "
                        "run and compare side by side")
    p.add_argument("--phase", default="factor",
                   choices=("factor", "solve", "both"),
                   help="run and report the factorization, the "
                        "distributed triangular solve (factor runs too — "
                        "the solve needs it — but reporting focuses on "
                        "the solve), or both")
    p.add_argument("--nrhs", type=int, default=1,
                   help="right-hand sides in the solve panel "
                        "(--phase solve|both)")
    p.add_argument("--rhs-seed", type=int, default=0,
                   help="seed for the random solve right-hand sides")
    p.add_argument("--require-multicore", action="store_true",
                   help="exit nonzero instead of timing an oversubscribed "
                        "run (more workers than affinity-visible CPUs) — "
                        "for CI perf jobs that must not record garbage "
                        "baselines")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write per-mapping metrics JSON to PATH")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="record a structured event trace and write it to "
                        "PATH (one file per mapping; inspect with "
                        "'repro trace')")
    p.add_argument("--timeout", type=float, default=300.0, metavar="S",
                   help="global wall-clock deadline in seconds")
    p.add_argument("--stall-timeout", type=float, default=30.0, metavar="S",
                   help="per-worker no-progress watchdog in seconds")
    _add_common(p)
    p.set_defaults(fn=cmd_bench_real)

    p = sub.add_parser(
        "chaos",
        help="sweep fault-injection scenarios over the runtime and check "
             "recovery against the sequential factor",
    )
    p.add_argument("problem")
    p.add_argument("-p", "--procs", default="2,4",
                   help="comma-separated worker counts to sweep")
    p.add_argument("--faults", default="all",
                   help=f"comma-separated scenarios or 'all' "
                        f"({','.join(_CHAOS_SWEEP)},crash-hard,"
                        f"crash-persistent)")
    p.add_argument("--rate", type=float, default=0.15,
                   help="per-message fault probability for message faults")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed (decisions are reproducible)")
    p.add_argument("--mapping", default="DW/CY")
    p.add_argument("--transport", default="auto",
                   choices=("auto", "shm", "inline"),
                   help="block payload transport for the chaos runs")
    p.add_argument("--schedule", default="static",
                   choices=("static", "dynamic"),
                   help="execution schedule for the chaos runs")
    p.add_argument("--block-policy", default="uniform",
                   choices=("uniform", "supernodal"),
                   help="panel blocking policy, so fault fingerprints "
                        "stay comparable across policies")
    p.add_argument("--max-restarts", type=int, default=2,
                   help="restart budget before the sequential fallback")
    p.add_argument("--timeout", type=float, default=120.0, metavar="S",
                   help="global wall-clock deadline per run in seconds")
    p.add_argument("--stall-timeout", type=float, default=15.0, metavar="S",
                   help="per-worker no-progress watchdog in seconds")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the structured chaos report to PATH")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print per-attempt failure details")
    _add_common(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "trace",
        help="inspect a structured run trace (summary, Gantt, replay "
             "validation, Chrome export)",
    )
    p.add_argument("file", help="trace file written by bench-real --trace-out")
    p.add_argument("--gantt", action="store_true",
                   help="render the ASCII Gantt chart")
    p.add_argument("--width", type=int, default=72,
                   help="Gantt chart width in characters")
    p.add_argument("--validate", action="store_true",
                   help="replay the trace and check its internal invariants")
    p.add_argument("--chrome", default=None, metavar="PATH",
                   help="also export Chrome trace_event JSON to PATH")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "serve",
        help="run the long-lived factorization service as a TCP server",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 picks a free one, printed at startup)")
    _add_service_knobs(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive a factorization service with a seeded job mix and "
             "report cache hits + latency percentiles",
    )
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="target a running 'repro serve' (default: spin up "
                        "an in-process service with the knobs below)")
    p.add_argument("--jobs", type=int, default=20)
    p.add_argument("--patterns", type=int, default=3,
                   help="distinct sparsity patterns in the mix")
    p.add_argument("--repeat-ratio", type=float, default=0.6,
                   help="fraction of jobs reusing an already-seen pattern")
    p.add_argument("--mode", default="closed", choices=("closed", "open"))
    p.add_argument("--rate", type=float, default=20.0,
                   help="open-loop arrival rate (jobs/s)")
    p.add_argument("--concurrency", type=int, default=2,
                   help="closed-loop client lanes")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--problem", default="grid", choices=("grid", "random"),
                   help="synthetic problem family")
    p.add_argument("--n", type=int, default=10,
                   help="base problem size (grid side / dimension)")
    p.add_argument("--full-matrix", action="store_true",
                   help="always submit full matrices (never the "
                        "pattern-handle + values warm path)")
    p.add_argument("--timeout", type=float, default=120.0)
    p.add_argument("--retries", type=int, default=0,
                   help="client-side backoff retries of transient typed "
                        "errors (socket mode)")
    p.add_argument("--fault-plan", default=None, metavar="SPEC",
                   help="inject a fault plan into pool jobs, e.g. "
                        "'crash-hard:rank=1,after_tasks=1' or '@plan.json' "
                        "(in-process service only)")
    p.add_argument("--fault-jobs", default="0", metavar="IDX[,IDX...]",
                   help="dispatch indices the --fault-plan attaches to")
    p.add_argument("--kill-worker-at", type=int, default=-1, metavar="N",
                   help="SIGKILL a pool worker once N jobs have been "
                        "submitted (in-process service only)")
    p.add_argument("--kill-rank", type=int, default=0,
                   help="which pool rank --kill-worker-at kills")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the loadgen report JSON to PATH")
    p.add_argument("--shutdown-server", action="store_true",
                   help="send a shutdown to the --connect server when done")
    _add_service_knobs(p)
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser(
        "chaos-service",
        help="seeded fault matrix over the factorization service: worker "
             "kills, deadlines, circuit breaker — bitwise-checked recovery",
    )
    p.add_argument("--jobs", type=int, default=10,
                   help="jobs per scenario (same stream every scenario)")
    p.add_argument("--patterns", type=int, default=2,
                   help="distinct sparsity patterns in the stream")
    p.add_argument("--n", type=int, default=10,
                   help="base grid side (pattern i uses n + i)")
    p.add_argument("-p", "--nprocs", type=int, default=2,
                   help="pool workers per service")
    p.add_argument("--transport", default="auto",
                   choices=("auto", "shm", "inline"),
                   help="block payload transport")
    p.add_argument("--scenarios", default="all",
                   help=f"comma-separated scenarios or 'all' "
                        f"({','.join(_SERVICE_CHAOS)}); 'none' always "
                        f"runs first as the bitwise reference")
    p.add_argument("--seed", type=int, default=0,
                   help="job-stream + fault-plan seed")
    p.add_argument("--fault-at", type=int, default=-1, metavar="IDX",
                   help="dispatch index the injected crash rides on "
                        "(default: jobs // 2)")
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--block-policy", default="uniform",
                   choices=("uniform", "supernodal"),
                   help="panel blocking policy, so fault fingerprints "
                        "stay comparable across policies")
    p.add_argument("--max-batch", type=int, default=4)
    p.add_argument("--timeout", type=float, default=120.0, metavar="S",
                   help="per-scenario batch + result-wait bound in seconds")
    p.add_argument("--stall-timeout", type=float, default=10.0, metavar="S",
                   help="per-worker no-progress watchdog in seconds")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the structured report to PATH")
    p.set_defaults(fn=cmd_chaos_service)

    p = sub.add_parser("analyze", help="structure/memory/critical-path report")
    p.add_argument("problem")
    p.add_argument("-P", type=int, default=64)
    _add_common(p)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("experiment", help="run one paper experiment")
    p.add_argument("name", help=", ".join(sorted(_EXPERIMENTS)))
    _add_common(p)
    p.set_defaults(fn=cmd_experiment)

    p = sub.add_parser("suite", help="run every experiment")
    _add_common(p)
    p.set_defaults(fn=cmd_suite)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
