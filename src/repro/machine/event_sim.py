"""A small deterministic discrete-event engine.

Events fire in (time, insertion-sequence) order, so simultaneous events run
in the order they were scheduled — runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable


class DiscreteEventSimulator:
    """Minimal event loop: ``schedule_at`` callbacks, ``run`` to exhaustion."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, self._seq, action))
        self._seq += 1

    def schedule_after(self, delay: float, action: Callable[[], None]) -> None:
        self.schedule_at(self.now + delay, action)

    def run(self, until: float | None = None) -> float:
        """Process events until the queue drains (or past ``until``); returns
        the final simulation time."""
        while self._heap:
            time, _, action = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self.now = time
            self.events_processed += 1
            action()
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)
