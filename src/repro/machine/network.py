"""Physical network topology models.

The Paragon is a 2-D mesh with wormhole routing, which makes message time
nearly distance-insensitive — the reason the paper can treat the machine as
a flat set of processors ("these advantages accrue even when the underlying
machine has some interconnection network whose topology is not a grid",
§1). ``MeshTopology`` lets that assumption be stress-tested: a nonzero
per-hop latency charges Manhattan distance between the communicating nodes'
physical mesh positions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MeshTopology:
    """P processors arranged (row-major) in a physical 2-D mesh."""

    rows: int
    cols: int

    @classmethod
    def for_processors(cls, P: int) -> "MeshTopology":
        """Most-square physical mesh holding P nodes."""
        r = math.isqrt(P)
        while P % r:
            r -= 1
        return cls(r, P // r)

    @property
    def P(self) -> int:
        return self.rows * self.cols

    def position(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.P:
            raise ValueError(f"rank {rank} outside mesh of {self.P}")
        return divmod(rank, self.cols)

    def hops(self, a: int, b: int) -> int:
        """Manhattan distance between two ranks' mesh positions."""
        ra, ca = self.position(a)
        rb, cb = self.position(b)
        return abs(ra - rb) + abs(ca - cb)

    @property
    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)
