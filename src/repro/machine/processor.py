"""Processor model: serial task execution with a ready queue.

The block fan-out method is data-driven: a processor works through block
operations in the order their inputs arrive (§2.3). ``SimProcessor``
implements that as a FIFO ready queue; an optional priority mode (smaller
destination block column first) models the dynamic-scheduling refinement the
paper proposes as future work (§5).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any


class SimProcessor:
    """One node: executes ready tasks serially, tracks busy time and traffic."""

    __slots__ = (
        "rank",
        "queue",
        "_pqueue",
        "_pseq",
        "priority_mode",
        "running",
        "busy_time",
        "tasks_done",
        "bytes_sent",
        "messages_sent",
    )

    def __init__(self, rank: int, priority_mode: bool = False):
        self.rank = rank
        self.queue: deque = deque()
        self._pqueue: list = []
        self._pseq = 0
        self.priority_mode = priority_mode
        self.running = False
        self.busy_time = 0.0
        self.tasks_done = 0
        self.bytes_sent = 0
        self.messages_sent = 0

    def push(self, task: Any, priority: float = 0.0) -> None:
        if self.priority_mode:
            heapq.heappush(self._pqueue, (priority, self._pseq, task))
            self._pseq += 1
        else:
            self.queue.append(task)

    def pop(self) -> Any:
        if self.priority_mode:
            return heapq.heappop(self._pqueue)[2]
        return self.queue.popleft()

    def has_work(self) -> bool:
        return bool(self._pqueue) if self.priority_mode else bool(self.queue)
