"""Machine cost model parameters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineParams:
    """Cost model of a message-passing multicomputer node.

    ``task_time`` charges every block operation its flops plus a fixed
    ``op_fixed_flops`` overhead — the same 1000-op surcharge the paper's
    work model uses (§3.2), so the simulator's per-processor busy time is
    exactly ``work / flop_rate`` and simulated efficiency is bounded by the
    overall-balance statistic, as in the paper.
    """

    flop_rate: float = 40e6  # flops/s per node (Paragon level-3 BLAS)
    latency: float = 50e-6  # message latency, seconds
    bandwidth: float = 40e6  # effective bytes/s (paper: ~40 MB/s)
    send_overhead: float = 10e-6  # sender CPU occupancy per message
    op_fixed_flops: int = 1000  # fixed cost per block operation, in flops
    word_bytes: int = 8
    header_bytes: int = 64
    #: Receive-side serialization: bytes/s a node's NIC can absorb. The
    #: default (infinity) is the contention-free model; set it to e.g.
    #: ``bandwidth`` to model incast congestion on column broadcasts.
    rx_bandwidth: float = float("inf")
    #: Per-mesh-hop latency. Zero (the default) is the paper's
    #: distance-insensitive wormhole model; nonzero values charge Manhattan
    #: distance on a physical 2-D mesh (see machine.network.MeshTopology).
    hop_latency: float = 0.0

    def task_time(self, flops: float) -> float:
        """Execution time of one block operation."""
        return (flops + self.op_fixed_flops) / self.flop_rate

    def transfer_time(self, words: float) -> float:
        """Wire time of one message carrying ``words`` matrix entries."""
        return self.latency + (words * self.word_bytes + self.header_bytes) / self.bandwidth

    def message_bytes(self, words: float) -> int:
        return int(words) * self.word_bytes + self.header_bytes

    @property
    def has_rx_contention(self) -> bool:
        return self.rx_bandwidth != float("inf")

    def rx_time(self, words: float) -> float:
        """NIC occupancy at the receiver for one message."""
        if not self.has_rx_contention:
            return 0.0
        return (words * self.word_bytes + self.header_bytes) / self.rx_bandwidth


#: The Paragon system of the paper's experiments (§3.1).
PARAGON = MachineParams()

#: A zero-communication machine: useful for isolating load imbalance from
#: communication effects (efficiency == schedule-limited balance).
ZERO_COMM = MachineParams(latency=0.0, bandwidth=float("inf"), send_overhead=0.0)
