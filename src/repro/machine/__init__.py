"""Simulated distributed-memory multicomputer.

The paper's testbed is an Intel Paragon (OSF/1 R1.2): 50 microsecond message
latency, ~40 MB/s effective bandwidth at the message sizes the code uses, and
hand-optimized Level-3 BLAS running 20-40 Mflops per node. No Paragon being
available, this package provides a deterministic discrete-event model with
exactly those parameters; the fan-out simulator runs the real algorithm's
task and message structure against it.
"""

from repro.machine.params import MachineParams, PARAGON
from repro.machine.event_sim import DiscreteEventSimulator
from repro.machine.network import MeshTopology
from repro.machine.processor import SimProcessor

__all__ = [
    "MachineParams",
    "PARAGON",
    "DiscreteEventSimulator",
    "MeshTopology",
    "SimProcessor",
]
