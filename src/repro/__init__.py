"""repro — reproduction of Rothberg & Schreiber, "Improved Load Distribution
in Parallel Sparse Cholesky Factorization" (Supercomputing '94).

The package implements block-oriented parallel sparse Cholesky factorization
(the block fan-out method) on a simulated message-passing multicomputer, and
the paper's block-mapping heuristics that repair the load imbalance of the
traditional 2-D cyclic mapping.

Quickstart
----------
>>> import repro
>>> prob = repro.grid2d_matrix(32)
>>> sf = repro.symbolic_factor(prob.A, repro.order_problem(prob, "nd"))
>>> part = repro.BlockPartition(sf, block_size=16)
>>> wm = repro.WorkModel(repro.BlockStructure(part))
>>> grid = repro.square_grid(16)
>>> tg = repro.TaskGraph(wm)
>>> cyc = repro.run_fanout(tg, repro.cyclic_map(part.npanels, grid),
...                        factor_ops=sf.factor_ops)
>>> heur = repro.run_fanout(tg, repro.heuristic_map(wm, grid, "ID", "CY"),
...                         factor_ops=sf.factor_ops)

See ``examples/`` for complete scenarios and ``repro.experiments`` for the
per-table reproduction harness.
"""

from repro.matrices import (
    ProblemMatrix,
    bcsstk_like_matrix,
    copter_like_matrix,
    cube3d_matrix,
    dense_matrix,
    fleet_like_matrix,
    get_problem,
    grid2d_matrix,
    problem_names,
)
from repro.ordering import Ordering, order_problem, permute_spd
from repro.symbolic import SymbolicFactor, symbolic_factor
from repro.blocks import BlockPartition, BlockStructure, WorkModel
from repro.mapping import (
    BalanceReport,
    CartesianMap,
    ProcessorGrid,
    balance_metrics,
    best_grid,
    cyclic_map,
    heuristic_map,
    processor_aware_row_map,
    square_grid,
    subtree_to_subcube_column_map,
)
from repro.machine import PARAGON, MachineParams
from repro.fanout import (
    DomainAssignment,
    FanoutResult,
    TaskGraph,
    assign_domains,
    block_owners,
    run_fanout,
    simulate_fanout,
)
from repro.numeric import (
    BlockCholesky,
    MultifrontalCholesky,
    simplicial_cholesky,
    solve_with_factor,
)
from repro.analysis import (
    communication_volume,
    critical_path,
    tree_statistics,
    utilization_profile,
    work_by_depth,
)
from repro.solver import ParallelPlan, SparseCholesky

__version__ = "1.0.0"

__all__ = [
    "ProblemMatrix",
    "dense_matrix",
    "grid2d_matrix",
    "cube3d_matrix",
    "bcsstk_like_matrix",
    "copter_like_matrix",
    "fleet_like_matrix",
    "get_problem",
    "problem_names",
    "Ordering",
    "order_problem",
    "permute_spd",
    "SymbolicFactor",
    "symbolic_factor",
    "BlockPartition",
    "BlockStructure",
    "WorkModel",
    "ProcessorGrid",
    "square_grid",
    "best_grid",
    "CartesianMap",
    "cyclic_map",
    "heuristic_map",
    "processor_aware_row_map",
    "subtree_to_subcube_column_map",
    "BalanceReport",
    "balance_metrics",
    "MachineParams",
    "PARAGON",
    "TaskGraph",
    "DomainAssignment",
    "assign_domains",
    "block_owners",
    "FanoutResult",
    "run_fanout",
    "simulate_fanout",
    "BlockCholesky",
    "MultifrontalCholesky",
    "simplicial_cholesky",
    "solve_with_factor",
    "critical_path",
    "communication_volume",
    "tree_statistics",
    "work_by_depth",
    "utilization_profile",
    "SparseCholesky",
    "ParallelPlan",
    "__version__",
]
