"""Driver for the multiprocess message-passing fan-out runtime.

``run_mp_fanout`` spawns one OS process per logical processor, hands each
its share of the block map, lets them factor by exchanging real messages
(:mod:`repro.runtime.worker`), then gathers the owned factor blocks and
per-worker metrics. ``plan_owners`` turns the mapping names used everywhere
else in the repo (``"cyclic"``, ``"DW/CY"``, ...) into a block ownership
array, so the exact configurations studied by the simulator and the balance
metrics can be executed for real and timed.

Robustness: workers that raise broadcast ABORT frames; the driver enforces
a global deadline, joins every child, and terminates stragglers — no orphan
processes on success, failure, or deadlock.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.blocks.structure import BlockStructure
from repro.fanout.domains import assign_domains
from repro.fanout.ownership import block_owners
from repro.fanout.priorities import task_priorities
from repro.fanout.tasks import TaskGraph
from repro.mapping import best_grid, cyclic_map, heuristic_map, square_grid
from repro.numeric.blockfact import BlockCholesky
from repro.runtime import wire
from repro.runtime.links import LinkFabric
from repro.runtime.metrics import RuntimeMetrics, WorkerMetrics
from repro.runtime.trace import DEFAULT_CAPACITY, RunTrace
from repro.runtime.worker import worker_main


class FanoutError(RuntimeError):
    """A parallel run failed. Carries whatever the driver salvaged:
    ``results`` (rank -> WorkerResult for every worker that reported) and
    ``failed_ranks`` — the recovery layer mines these for checkpoints."""

    def __init__(self, message: str, results: dict | None = None,
                 failed_ranks: list[int] | None = None):
        super().__init__(message)
        self.results = results or {}
        self.failed_ranks = failed_ranks or []


class WorkerError(FanoutError):
    """A worker process failed; carries the remote traceback."""

    def __init__(self, rank: int, remote_traceback: str,
                 results: dict | None = None,
                 failed_ranks: list[int] | None = None):
        super().__init__(
            f"worker {rank} failed:\n{remote_traceback.rstrip()}",
            results=results,
            failed_ranks=failed_ranks if failed_ranks is not None else [rank],
        )
        self.rank = rank
        self.remote_traceback = remote_traceback


class DeadWorkerError(FanoutError):
    """A worker process died without reporting (kill/segfault stand-in)."""


class RuntimeTimeoutError(FanoutError):
    """The run exceeded its global deadline."""


@dataclass
class MPRuntimeResult:
    """A real parallel factorization: the assembled factor plus metrics."""

    factor: BlockCholesky
    metrics: RuntimeMetrics
    owners: np.ndarray
    mapping: str
    meta: dict = field(default_factory=dict)
    #: Populated by :func:`repro.runtime.recovery.run_with_recovery`.
    failure_report: object | None = None
    #: Merged structured trace (:class:`repro.runtime.trace.RunTrace`),
    #: present when the run was started with ``trace=...``.
    trace: RunTrace | None = None
    #: Distributed-solve output (permuted coordinates, ``n x nrhs``),
    #: present when the run was started with ``rhs=...``.
    solution: np.ndarray | None = None

    def to_csc(self) -> sparse.csc_matrix:
        return self.factor.to_csc()


def plan_owners(
    wm,
    tg: TaskGraph,
    nprocs: int,
    mapping: str = "DW/CY",
    use_domains: bool = False,
) -> tuple[np.ndarray, str]:
    """Block ownership for ``nprocs`` workers under a named mapping.

    ``mapping`` is ``"cyclic"`` or a ``"<row>/<col>"`` heuristic pair
    (``DW``, ``IN``, ``DN``, ``ID`` x ``CY``, ...) exactly as accepted by
    the CLI and :meth:`repro.solver.SparseCholesky.plan_parallel`.
    """
    try:
        grid = square_grid(nprocs)
    except ValueError:
        grid = best_grid(nprocs)
    if mapping == "cyclic":
        cmap = cyclic_map(tg.npanels, grid)
    else:
        rh, _, ch = mapping.partition("/")
        cmap = heuristic_map(wm, grid, rh.upper(), (ch or "CY").upper())
    domains = assign_domains(wm, grid.P) if use_domains else None
    return block_owners(tg, cmap, domains), cmap.name


def run_mp_fanout(
    structure: BlockStructure,
    A: sparse.spmatrix,
    tg: TaskGraph,
    owners: np.ndarray,
    nprocs: int,
    priorities: np.ndarray | None = None,
    policy: str | None = None,
    depth: np.ndarray | None = None,
    timeout_s: float = 300.0,
    stall_timeout_s: float = 30.0,
    poll_s: float = 0.002,
    inject_failure: tuple[int, int] | None = None,
    record_timeline: bool = True,
    trace: bool | int | None = None,
    start_method: str | None = None,
    mapping: str = "",
    fault_plan=None,
    recovery: bool | None = None,
    checkpoint: dict[int, bytes] | None = None,
    dead_grace_s: float = 0.0,
    renegotiate_base_s: float = 0.2,
    renegotiate_cap_s: float = 2.0,
    max_renegotiations: int = 8,
    retransmit_limit: int = 5,
    transport: str = "auto",
    schedule: str = "static",
    steal_seed: int = 0,
    rhs: np.ndarray | None = None,
) -> MPRuntimeResult:
    """Factor ``A`` with ``nprocs`` worker processes exchanging messages.

    ``rhs`` (an ``n``-vector or ``n x nrhs`` panel stack, already in
    permuted coordinates) additionally runs the distributed triangular
    solve after the factor phase: the factor blocks stay where they were
    computed and only right-hand-side fragments travel (their own frame
    kinds and ledger — see ``docs/SOLVING.md``); the assembled solution
    lands on the result's ``solution`` attribute, bitwise identical to
    the sequential :func:`repro.numeric.solve.solve_with_factor`.

    ``schedule`` selects the execution discipline: ``"static"`` (the
    default) runs every task at its block's owner exactly as mapped;
    ``"dynamic"`` adds work stealing — an idle worker requests a ready
    BMOD/BDIV task from a seeded-random peer, executes it against the
    shipped destination-block state, and returns the result, so transient
    load imbalance converts to steal traffic instead of idle time while
    the factor stays bitwise identical (see ``docs/SCHEDULING.md``).
    ``steal_seed`` keys the deterministic victim-selection stream.

    ``transport`` selects how block payloads travel: ``"inline"`` packs
    them into the queue frames; ``"shm"`` moves them through a per-run
    shared-memory arena (64-byte descriptor frames, zero payload copies on
    the consumer side, coalesced queue puts); ``"auto"`` (the default)
    picks shm when the platform supports it and there is more than one
    worker. Logical message/byte accounting is identical across transports
    — only ``wire_bytes`` metrics differ. The arena is unlinked in every
    exit path; salvaged checkpoint frames carried by a raised
    :class:`FanoutError` are converted to inline frames first so they
    outlive the arena.

    ``owners[b]`` assigns block ``b`` to a worker (see :func:`plan_owners`).
    ``policy`` is a :mod:`repro.fanout.priorities` name (``"fifo"``,
    ``"column"``, ``"depth"``, ``"bottom_level"``) applied identically on
    every worker; an explicit ``priorities`` array wins over ``policy``.
    ``inject_failure=(rank, after_n_tasks)`` is the fault-injection hook the
    shutdown tests use; ``fault_plan`` (:class:`repro.runtime.faults.FaultPlan`)
    is the full chaos layer. ``trace`` turns on structured event tracing
    (:mod:`repro.runtime.trace`): ``True`` uses the default per-worker
    ring capacity, an int sets it; the merged
    :class:`~repro.runtime.trace.RunTrace` lands on the result's
    ``trace`` attribute. Tracing off (the default) adds no per-event
    allocation on the hot path. ``recovery`` turns on the in-run integrity
    protocol (CRC reject + NACK/retransmit + duplicate suppression + the
    DONE linger barrier); it defaults to on exactly when a fault plan is
    given. ``checkpoint`` maps block ids to completed-block wire frames
    from a previous attempt; those blocks are preloaded and their tasks
    skipped. Raises :class:`WorkerError` if any worker fails,
    :class:`DeadWorkerError` if one dies without reporting (after waiting
    up to ``dead_grace_s`` for surviving workers' checkpoints), and
    :class:`RuntimeTimeoutError` on a global timeout; in every case all
    child processes are reaped before returning or raising, and the raised
    :class:`FanoutError` carries every salvaged ``WorkerResult``.
    """
    owners = np.asarray(owners)
    if owners.shape[0] != tg.nblocks:
        raise ValueError("owners must have one entry per block")
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    if owners.size and (owners.min() < 0 or owners.max() >= nprocs):
        raise ValueError("block owner out of range for nprocs")
    if schedule not in ("static", "dynamic"):
        raise ValueError(
            f"schedule must be 'static' or 'dynamic', got {schedule!r}"
        )
    if priorities is None and policy not in (None, "fifo"):
        priorities = task_priorities(tg, policy, depth=depth)
    if recovery is None:
        recovery = fault_plan is not None
    if trace is None or trace is False:
        trace_capacity = 0
    elif trace is True:
        trace_capacity = DEFAULT_CAPACITY
    else:
        trace_capacity = int(trace)
        if trace_capacity < 0:
            raise ValueError("trace capacity must be non-negative")

    if rhs is not None:
        rhs = np.ascontiguousarray(rhs, dtype=np.float64)
        if rhs.ndim == 1:
            rhs = rhs.reshape(-1, 1)
        if rhs.ndim != 2 or rhs.shape[0] != A.shape[0]:
            raise ValueError(
                f"rhs must be ({A.shape[0]}, nrhs), got {rhs.shape}"
            )

    if start_method is None:
        start_method = (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
    from repro.runtime.arena import BlockArena, resolve_transport

    transport = resolve_transport(transport, nprocs)
    arena = BlockArena.create(tg) if transport == "shm" else None
    try:
        return _run(
            structure, A, tg, owners, nprocs, priorities, timeout_s,
            stall_timeout_s, poll_s, inject_failure, record_timeline,
            trace_capacity, start_method, mapping, fault_plan, recovery,
            checkpoint, dead_grace_s, renegotiate_base_s,
            renegotiate_cap_s, max_renegotiations, retransmit_limit,
            transport, arena, schedule, steal_seed, rhs,
        )
    except FanoutError as exc:
        if arena is not None:
            _inline_results(exc.results, arena)
        raise
    finally:
        if arena is not None:
            arena.destroy()


def _run(
    structure, A, tg, owners, nprocs, priorities, timeout_s,
    stall_timeout_s, poll_s, inject_failure, record_timeline,
    trace_capacity, start_method, mapping, fault_plan, recovery,
    checkpoint, dead_grace_s, renegotiate_base_s, renegotiate_cap_s,
    max_renegotiations, retransmit_limit, transport, arena,
    schedule="static", steal_seed=0, rhs=None,
) -> MPRuntimeResult:
    ctx = mp.get_context(start_method)
    fabric = LinkFabric(nprocs, ctx)
    result_queue = ctx.Queue()
    epoch = time.perf_counter()
    op_fixed_cost = getattr(tg.workmodel, "op_fixed_cost", 1000)

    procs = []
    for rank in range(nprocs):
        kwargs = dict(
            structure=structure,
            A=A,
            tg=tg,
            owners=owners,
            fabric=fabric,
            result_queue=result_queue,
            priorities=priorities,
            epoch=epoch,
            poll_s=poll_s,
            stall_timeout_s=stall_timeout_s,
            inject_failure=inject_failure,
            record_timeline=record_timeline,
            trace_capacity=trace_capacity,
            op_fixed_cost=op_fixed_cost,
            fault_plan=fault_plan,
            recovery=recovery,
            checkpoint=checkpoint,
            renegotiate_base_s=renegotiate_base_s,
            renegotiate_cap_s=renegotiate_cap_s,
            max_renegotiations=max_renegotiations,
            retransmit_limit=retransmit_limit,
            transport=transport,
            arena_name=arena.name if arena is not None else None,
            schedule=schedule,
            steal_seed=steal_seed,
            rhs=rhs,
        )
        p = ctx.Process(
            target=worker_main, args=(rank, kwargs), name=f"repro-mp-{rank}"
        )
        p.daemon = True
        p.start()
        procs.append(p)

    results: dict[int, object] = {}
    deadline = time.monotonic() + timeout_s
    dead_deadline: float | None = None
    try:
        while len(results) < nprocs:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeTimeoutError(
                    f"runtime timeout after {timeout_s:.0f}s: "
                    f"{len(results)}/{nprocs} workers reported",
                    results=results,
                    failed_ranks=[
                        r for r in range(nprocs) if r not in results
                    ],
                )
            try:
                res = result_queue.get(timeout=min(0.1, remaining))
                results[res.rank] = res
            except queue_mod.Empty:
                dead = [
                    r for r, p in enumerate(procs)
                    if not p.is_alive() and p.exitcode not in (0, None)
                    and r not in results
                ]
                if dead and len(results) < nprocs:
                    # A worker died without reporting (kill/segfault).
                    # Optionally linger so surviving workers can notice,
                    # abort, and ship their completed-block checkpoints.
                    now = time.monotonic()
                    if dead_deadline is None:
                        dead_deadline = now + dead_grace_s
                    survivors_pending = nprocs - len(results) - len(dead)
                    if now >= dead_deadline or survivors_pending <= 0:
                        raise DeadWorkerError(
                            "worker process(es) died without reporting: "
                            f"{[f'repro-mp-{r}' for r in dead]}",
                            results=results,
                            failed_ranks=dead,
                        )
        wall_s = time.perf_counter() - epoch
    finally:
        _reap(procs)
        fabric.shutdown()
        result_queue.cancel_join_thread()
        result_queue.close()

    error_ranks = [
        r for r in sorted(results) if results[r].metrics.error is not None
    ]
    if error_ranks:
        first = error_ranks[0]
        raise WorkerError(
            first,
            results[first].metrics.error,
            results=results,
            failed_ranks=error_ranks,
        )

    factor = _assemble(structure, A, tg, results, arena)
    metrics = RuntimeMetrics(
        nprocs=nprocs,
        wall_s=wall_s,
        workers=[results[r].metrics for r in sorted(results)],
        mapping=mapping,
        transport=transport,
        schedule=schedule,
    )
    solution = None
    if rhs is not None:
        solution = _assemble_solution(structure, rhs, results)
    run_trace = None
    if trace_capacity:
        nrhs = int(rhs.shape[1]) if rhs is not None else 0
        run_trace = _merge_trace(results, nprocs, mapping, start_method,
                                 fault_plan, wall_s, schedule, nrhs)
    meta = {
        "start_method": start_method,
        "recovery": recovery,
        "checkpoint_blocks": len(checkpoint) if checkpoint else 0,
        "transport": transport,
        "schedule": schedule,
        "block_policy": getattr(
            structure.partition, "policy_name", "uniform"
        ),
    }
    if rhs is not None:
        meta["nrhs"] = int(rhs.shape[1])
    return MPRuntimeResult(
        factor=factor,
        metrics=metrics,
        owners=owners,
        mapping=mapping,
        meta=meta,
        trace=run_trace,
        solution=solution,
    )


def _runtime_grid(nprocs: int):
    """The processor grid :func:`plan_owners` would use for ``nprocs``."""
    try:
        return square_grid(nprocs)
    except ValueError:
        return best_grid(nprocs)


def _merge_trace(results, nprocs, mapping, start_method, fault_plan,
                 wall_s=None, schedule="static", nrhs=0) -> RunTrace:
    """Merge worker ring snapshots into one :class:`RunTrace`."""
    grid = _runtime_grid(nprocs)
    attempt = int(fault_plan.attempt) if fault_plan is not None else 0
    meta = {
        "nprocs": nprocs,
        "mapping": mapping,
        "grid": [int(grid.Pr), int(grid.Pc)],
        "start_method": start_method,
        "attempt": attempt,
        "schedule": schedule,
    }
    if nrhs:
        meta["nrhs"] = int(nrhs)
    if wall_s is not None:
        meta["wall_s"] = wall_s
    return RunTrace.from_workers(
        {r: results[r].trace for r in sorted(results)},
        meta=meta,
        attempt=attempt,
    )


def _reap(procs, grace_s: float = 5.0) -> None:
    """Join every child; terminate (then kill) any that linger."""
    deadline = time.monotonic() + grace_s
    for p in procs:
        p.join(timeout=max(0.0, deadline - time.monotonic()))
    for p in procs:
        if p.is_alive():
            p.terminate()
            p.join(timeout=1.0)
    for p in procs:
        if p.is_alive():  # pragma: no cover - last resort
            p.kill()
            p.join(timeout=1.0)
        p.close()


def _assemble_solution(structure, rhs, results) -> np.ndarray:
    """Stack the workers' owned solution panels into the full ``n x nrhs``
    solution (permuted coordinates; the caller un-permutes)."""
    ptr = np.asarray(structure.partition.panel_ptr, dtype=np.int64)
    x = np.empty_like(rhs)
    seen = 0
    for res in results.values():
        for k, panel in (res.solution or {}).items():
            x[int(ptr[k]) : int(ptr[k + 1])] = panel
            seen += int(ptr[k + 1] - ptr[k])
    if seen != rhs.shape[0]:
        raise FanoutError(
            f"solve gather incomplete: {seen}/{rhs.shape[0]} rows "
            "reported", results=results,
        )
    return x


def _inline_results(results: dict, arena) -> None:
    """Rewrite ref frames in salvaged results as inline frames (the
    checkpoint they feed must outlive the arena being destroyed)."""
    for res in results.values():
        res.frames = [arena.inline_frame(f) for f in res.frames]


def _assemble(structure, A, tg, results, arena=None) -> BlockCholesky:
    """Overwrite a factor shell with the gathered owned blocks.

    On the shm transport the gather frames are descriptors; the payload is
    copied out of the (still-live) arena here — the driver's only copy.
    """
    shell = BlockCholesky(structure, A)
    for res in results.values():
        for frame in res.frames:
            msg = wire.unpack(frame)
            b = msg.block
            if msg.kind == wire.BLOCK_REF:
                if arena is None:
                    raise RuntimeError(
                        f"gathered a BLOCK_REF frame for block {b} "
                        "without a live arena"
                    )
                payload = arena.read(b)
            else:
                payload = msg.payload
            I, J = int(tg.block_I[b]), int(tg.block_J[b])
            if I == J:
                shell.diag[J] = payload
            else:
                shell.below[J][I] = payload
    shell._factored[:] = True
    return shell


def mp_block_cholesky(
    structure: BlockStructure,
    A: sparse.spmatrix,
    tg: TaskGraph,
    nprocs: int = 4,
    mapping: str = "DW/CY",
    use_domains: bool = False,
    **kwargs,
) -> MPRuntimeResult:
    """One-call convenience: plan ownership from a mapping name and run."""
    owners, name = plan_owners(
        tg.workmodel, tg, nprocs, mapping, use_domains
    )
    return run_mp_fanout(
        structure, A, tg, owners, nprocs, mapping=name, **kwargs
    )
