"""Dependency plan for the distributed triangular solve.

The solve phase reuses the factor's block-column structure: forward
substitution sends each solved panel down its *column* (the subdiagonal
blocks consume it) and accumulates update fragments by *row*; backward
substitution mirrors it. :class:`SolvePlan` precomputes, once per
pattern, everything a worker needs to run both sweeps without touching
the symbolic layer again:

* per-panel diagonal block ids and widths;
* the column block list of each panel (ascending destination panel — the
  order ``tg.subdiag_blocks`` already stores);
* the row block list of each panel (ascending source panel — the
  canonical forward accumulation order);
* per-block destination row indices, local to the destination panel;
* forward/backward dependency counts.

Determinism contract: updates into a panel are applied in ascending
source order in both sweeps — the exact order the sequential reference
:func:`repro.numeric.solve.block_forward` / ``block_backward`` uses — so
a worker parks early arrivals and advances a next-index cursor instead
of applying them as they land.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.structure import BlockStructure
from repro.fanout.tasks import TaskGraph

__all__ = ["SolvePlan"]

#: Solve task kinds (worker-internal; they never appear in a TaskGraph).
FSOLVE, FUPD, BSOLVE, BUPD = 0, 1, 2, 3

SOLVE_KIND_NAMES = {FSOLVE: "FSOLVE", FUPD: "FUPD",
                    BSOLVE: "BSOLVE", BUPD: "BUPD"}


class SolvePlan:
    """Per-pattern dependency lists for forward/backward substitution."""

    def __init__(self, structure: BlockStructure, tg: TaskGraph):
        part = structure.partition
        ptr = np.asarray(part.panel_ptr, dtype=np.int64)
        npanels = tg.npanels
        self.npanels = npanels
        self.panel_ptr = ptr
        self.widths = np.asarray(part.widths, dtype=np.int64)

        diag_mask = tg.block_I == tg.block_J
        diag_ids = np.flatnonzero(diag_mask)
        #: Panel -> its diagonal block id.
        self.diag_block = np.full(npanels, -1, dtype=np.int64)
        self.diag_block[tg.block_J[diag_ids]] = diag_ids

        #: Block id -> (dest panel, src panel) for subdiagonal blocks.
        self.block_I = np.asarray(tg.block_I, dtype=np.int64)
        self.block_J = np.asarray(tg.block_J, dtype=np.int64)

        #: Panel K -> subdiagonal block ids of column K, ascending dest.
        self.col_blocks: list[np.ndarray] = []
        #: Block id -> destination rows local to the destination panel
        #: (``block_row_span(K, t) - panel_ptr[I]``).
        self.block_ridx: dict[int, np.ndarray] = {}
        row_lists: list[list[int]] = [[] for _ in range(npanels)]
        for k in range(npanels):
            sub = np.asarray(
                tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]],
                dtype=np.int64,
            )
            self.col_blocks.append(sub)
            for t in range(sub.shape[0]):
                b = int(sub[t])
                dest = int(self.block_I[b])
                rows = structure.block_row_span(k, t)
                self.block_ridx[b] = (
                    np.asarray(rows, dtype=np.int64) - ptr[dest]
                )
                # Outer loop ascends k == block_J, so each row list is
                # built in ascending source-panel order — the canonical
                # forward accumulation order.
                row_lists[dest].append(b)

        #: Panel I -> block ids of row I, ascending source panel.
        self.row_blocks = [
            np.asarray(bs, dtype=np.int64) for bs in row_lists
        ]
        #: Forward updates each panel waits for (one per row block).
        self.fwd_count = np.array(
            [bs.shape[0] for bs in self.row_blocks], dtype=np.int64
        )
        #: Backward updates each panel waits for (one per column block).
        self.bwd_count = np.array(
            [bs.shape[0] for bs in self.col_blocks], dtype=np.int64
        )

    # ------------------------------------------------------------------
    def block_rows_count(self, b: int) -> int:
        """Dense row count of subdiagonal block ``b``."""
        return int(self.block_ridx[int(b)].shape[0])

    def owned_task_count(self, owners: np.ndarray, rank: int) -> int:
        """Solve tasks ``rank`` executes: FSOLVE+BSOLVE per owned
        diagonal panel, FUPD+BUPD per owned subdiagonal block."""
        owners = np.asarray(owners)
        diag_owned = int(np.sum(owners[self.diag_block] == rank))
        sub = 0
        for k in range(self.npanels):
            sub += int(np.sum(owners[self.col_blocks[k]] == rank))
        return 2 * diag_owned + 2 * sub
