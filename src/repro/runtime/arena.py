"""Shared-memory block arena: the zero-copy transport backing store.

One POSIX shared-memory segment per run holds every factor block in a
pre-assigned *slot*. The slot map (:class:`ArenaLayout`) is a pure function
of the :class:`~repro.fanout.tasks.TaskGraph`, so the driver and every
worker compute byte-identical layouts independently — no layout metadata
ever travels on a link. A worker that completes a block writes it straight
into its slot and fans out a 64-byte ``BLOCK_REF`` descriptor
(:func:`repro.runtime.wire.pack_block_ref`) naming the slot; consumers map
the slot read-only with ``np.ndarray(buffer=shm.buf, ...)`` and apply
``bmod`` against it with zero payload copies.

Integrity: the descriptor carries a CRC32 of the slot bytes at send time.
:meth:`BlockArena.resolve` recomputes it on receipt, so a corrupted slot
(or a descriptor whose slot metadata was bit-flipped in flight — the frame
header CRC covers that) surfaces as the same
:class:`~repro.runtime.wire.CorruptFrameError` → NACK → retransmit path the
inline transport uses.

Storage: slots are row-major float64 and hold exactly the *logical*
payload — ``tg.block_words[b]`` words. A subdiagonal block is the dense
``rows x w`` rectangle; a diagonal block is the packed lower triangle
(``w * (w + 1) / 2`` words, row-major ``np.tril_indices`` order — byte
identical to the inline ``BLOCK`` payload ``wire.pack_block`` produces).
Consumers never see the packed form: :meth:`BlockArena.view` /
:meth:`BlockArena.read` / :meth:`BlockArena.resolve` unpack a diagonal
slot into the same freshly-allocated C-contiguous zero-upper square that
``wire.unpack`` builds on the inline transport, so kernel inputs are
bitwise identical across transports (``solve_triangular`` rounds
differently for C- vs F-contiguous inputs, so the layout must match, not
just the values). Packing matters under variable blocking: square diagonal
slots waste ``w^2 / 2`` words of dead upper triangle, a cost that grows
quadratically with the wide panels the supernodal policy produces.

Each slot starts on a :data:`SLOT_ALIGN`-byte boundary (cache-line
alignment for the zero-copy bmod reads); the tail padding between a slot's
payload and the next slot's offset is the arena's only dead space, and
``ArenaLayout.padding_bytes`` reports it.

Lifecycle: the driver creates the arena (:meth:`BlockArena.create`) and
unlinks it in the engine's ``finally`` (:meth:`BlockArena.destroy`), even
on crash/abort paths — workers only ever attach (:meth:`BlockArena.attach`)
and never unlink, so no ``/dev/shm`` segment outlives a run.
"""

from __future__ import annotations

import zlib
from dataclasses import replace

import numpy as np

from repro.runtime import wire

__all__ = [
    "ArenaLayout",
    "BlockArena",
    "shm_available",
    "resolve_transport",
    "TRANSPORTS",
    "SLOT_ALIGN",
]

#: Accepted values for the engine's ``transport`` parameter.
TRANSPORTS = ("auto", "shm", "inline")

#: Every slot offset is a multiple of this (bytes). 64 = one cache line;
#: it also keeps float64 alignment trivially satisfied.
SLOT_ALIGN = 64

_SHM_PROBED: bool | None = None


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` works on this platform.

    Probes once per process by creating (and immediately unlinking) a tiny
    segment; the result is cached.
    """
    global _SHM_PROBED
    if _SHM_PROBED is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=8)
            seg.close()
            seg.unlink()
            _SHM_PROBED = True
        except Exception:
            _SHM_PROBED = False
    return _SHM_PROBED


def resolve_transport(transport: str, nprocs: int) -> str:
    """Resolve a requested transport to a concrete one.

    ``"auto"`` picks ``"shm"`` when shared memory works and there is more
    than one worker (a single worker never fans out, and the gather alone
    does not justify a segment), else ``"inline"``. An explicit ``"shm"``
    raises when the platform cannot honor it.
    """
    if transport not in TRANSPORTS:
        raise ValueError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if transport == "inline":
        return "inline"
    if transport == "auto" and nprocs < 2:
        return "inline"
    if shm_available():
        return "shm"
    if transport == "shm":
        raise RuntimeError(
            "transport='shm' requested but multiprocessing.shared_memory is "
            "unavailable on this platform; use transport='auto' to fall "
            "back to the inline transport"
        )
    return "inline"


def _attach_untracked(name: str):
    """Attach to an existing segment without resource-tracker registration.

    The driver owns the segment's lifetime; if workers registered their
    attachments, each worker's resource tracker would try to unlink the
    segment at exit (and warn about a leak), racing the driver's cleanup.
    Python 3.13+ has ``track=False`` for exactly this; on older versions we
    suppress the registration call during attach (register/unregister pairs
    are unsafe under fork, where all workers share one tracker process and
    the tracker's name cache is a set, not a refcount).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    orig_register = resource_tracker.register

    def _no_register(rname, rtype):
        if rtype != "shared_memory":  # pragma: no cover - not hit in attach
            orig_register(rname, rtype)

    resource_tracker.register = _no_register
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register


class ArenaLayout:
    """Deterministic block -> slot map derived from a :class:`TaskGraph`.

    Slot ``b`` stores exactly the logical payload of global block ``b``
    (``tg.block_words[b]`` float64 words): the packed lower triangle for a
    diagonal block, the dense row-major ``rows x w`` rectangle for a
    subdiagonal block. ``rows``/``cols`` are the block's *logical* extents
    (a diagonal block reports ``w x w`` even though its slot holds the
    triangle) — they are what descriptors advertise and what consumers see
    after unpacking. Slot offsets are :data:`SLOT_ALIGN`-aligned; the
    widths come from the partition, so uniform and supernodal policies each
    get a layout that fits their panels exactly.
    """

    __slots__ = ("nblocks", "rows", "cols", "diag", "offsets",
                 "logical_words", "block_I", "block_J", "total_bytes",
                 "payload_bytes", "padding_bytes")

    def __init__(self, tg):
        part = tg.workmodel.structure.partition
        widths = np.asarray(part.widths, dtype=np.int64)
        I = np.asarray(tg.block_I, dtype=np.int64)
        J = np.asarray(tg.block_J, dtype=np.int64)
        diag = I == J
        cols = widths[J]
        logical = np.asarray(tg.block_words, dtype=np.int64)
        rows = np.where(diag, cols, logical // np.maximum(cols, 1))
        self.nblocks = int(I.shape[0])
        self.rows = rows
        self.cols = cols
        self.diag = diag
        self.logical_words = logical
        self.block_I = I
        self.block_J = J
        slot_bytes = logical * 8
        spans = -(-slot_bytes // SLOT_ALIGN) * SLOT_ALIGN  # ceil to align
        self.offsets = np.zeros(self.nblocks + 1, dtype=np.int64)
        np.cumsum(spans, out=self.offsets[1:])
        self.total_bytes = int(self.offsets[-1])
        self.payload_bytes = int(slot_bytes.sum())
        self.padding_bytes = self.total_bytes - self.payload_bytes


class BlockArena:
    """A shared-memory segment holding one slot per factor block."""

    def __init__(self, layout: ArenaLayout, shm, owner: bool):
        self.layout = layout
        self.shm = shm
        self.owner = owner

    @property
    def name(self) -> str:
        return self.shm.name

    @classmethod
    def create(cls, tg) -> "BlockArena":
        """Driver side: allocate the segment (layout computed from ``tg``)."""
        from multiprocessing import shared_memory

        layout = ArenaLayout(tg)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, layout.total_bytes)
        )
        return cls(layout, shm, owner=True)

    @classmethod
    def attach(cls, tg, name: str) -> "BlockArena":
        """Worker side: map the driver's segment (never unlinks it)."""
        layout = ArenaLayout(tg)
        shm = _attach_untracked(name)
        if shm.size < layout.total_bytes:
            raise ValueError(
                f"arena segment {name!r} is {shm.size} bytes, layout "
                f"needs {layout.total_bytes}"
            )
        return cls(layout, shm, owner=False)

    # -- slot access ----------------------------------------------------

    def _slot(self, b: int) -> np.ndarray:
        """Flat float64 view of slot ``b``'s stored words."""
        lay = self.layout
        return np.ndarray(
            (int(lay.logical_words[b]),),
            dtype=np.float64,
            buffer=self.shm.buf,
            offset=int(lay.offsets[b]),
        )

    def _dense(self, b: int) -> np.ndarray:
        """2-D view of a subdiagonal slot (diagonal slots are packed)."""
        lay = self.layout
        return self._slot(b).reshape(int(lay.rows[b]), int(lay.cols[b]))

    def _unpack_diag(self, b: int) -> np.ndarray:
        """Fresh C-contiguous ``w x w`` square from a packed diagonal slot
        — structurally identical to what ``wire.unpack`` builds for an
        inline diagonal payload, so kernels see bitwise-equal inputs on
        both transports."""
        w = int(self.layout.cols[b])
        out = np.zeros((w, w))
        out[np.tril_indices(w)] = self._slot(b)
        return out

    def write(self, b: int, array: np.ndarray) -> None:
        """Copy a completed block into its slot (the producer's one copy).

        Diagonal blocks are handed over as the full square (however the
        kernel laid it out — bfac yields Fortran order) and stored packed.
        """
        lay = self.layout
        arr = np.asarray(array, dtype=np.float64)
        if lay.diag[b]:
            self._slot(b)[:] = arr[np.tril_indices(int(lay.cols[b]))]
        else:
            np.copyto(self._dense(b), arr, casting="same_kind")

    def view(self, b: int) -> np.ndarray:
        """Consumer-side mapping of slot ``b``: a read-only zero-copy view
        for subdiagonal blocks, a freshly unpacked square for diagonal
        blocks (the packed triangle is a storage format, never a kernel
        input)."""
        if self.layout.diag[b]:
            return self._unpack_diag(b)
        v = self._dense(b)
        v.flags.writeable = False
        return v

    def read(self, b: int) -> np.ndarray:
        """A private copy of block ``b`` (driver gather; outlives the
        arena). Always the dense array: unpacked square for diagonal
        blocks."""
        if self.layout.diag[b]:
            return self._unpack_diag(b)
        return self._dense(b).copy()

    def checksum(self, b: int) -> int:
        """CRC32 over slot ``b``'s stored bytes — the descriptor's payload
        CRC. Tail alignment padding is excluded, so for every block this
        equals the CRC of the inline ``BLOCK`` payload bytes."""
        lay = self.layout
        off = int(lay.offsets[b])
        n = int(lay.logical_words[b]) * 8
        return zlib.crc32(self.shm.buf[off:off + n])

    # -- wire integration ----------------------------------------------

    def pack_ref(self, src: int, b: int) -> bytes:
        """Build the 64-byte descriptor frame for slot ``b``."""
        lay = self.layout
        return wire.pack_block_ref(
            src, b,
            int(lay.rows[b]), int(lay.cols[b]),
            int(lay.logical_words[b]),
            int(lay.offsets[b]),
            self.checksum(b),
        )

    def resolve(self, msg: wire.WireMessage) -> wire.WireMessage:
        """Turn a ``BLOCK_REF`` descriptor into a BLOCK message whose
        payload is the consumer-side mapping of the slot (zero-copy
        read-only view for subdiagonal blocks, unpacked square for
        diagonal blocks — exactly what the inline transport would have
        delivered).

        Raises :class:`~repro.runtime.wire.CorruptFrameError` when the
        descriptor's slot metadata disagrees with the layout or the slot
        bytes fail the descriptor's payload CRC — both funnel into the
        same NACK/retransmit recovery path as inline payload corruption.
        """
        lay = self.layout
        b = msg.block
        if not (
            0 <= b < lay.nblocks
            and msg.offset == int(lay.offsets[b])
            and msg.rows == int(lay.rows[b])
            and msg.cols == int(lay.cols[b])
            and msg.words == int(lay.logical_words[b])
        ):
            raise wire.CorruptFrameError(
                f"BLOCK_REF descriptor for block {b} disagrees with the "
                "arena layout",
                src=msg.src, block=b,
            )
        if msg.payload_crc != self.checksum(b):
            raise wire.CorruptFrameError(
                f"arena slot CRC mismatch for block {b} "
                f"(descriptor {msg.payload_crc:#010x})",
                src=msg.src, block=b,
            )
        return replace(msg, kind=wire.BLOCK, payload=self.view(b))

    def inline_frame(self, frame: bytes) -> bytes:
        """Convert a ``BLOCK_REF`` frame into the byte-identical inline
        ``BLOCK`` frame (checkpoint harvest / error paths: the salvaged
        frames must outlive the arena)."""
        if wire.frame_kind(frame) != wire.BLOCK_REF:
            return frame
        msg = wire.unpack(frame)
        lay = self.layout
        b = msg.block
        return wire.pack_block(
            msg.src, b, int(lay.block_I[b]), int(lay.block_J[b]),
            self.read(b),
        )

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view (safe to call repeatedly)."""
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - outstanding ndarray views
            pass

    def destroy(self) -> None:
        """Driver-side teardown: unmap and unlink the segment."""
        self.close()
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
