"""The worker event loop: §2.3's fan-out protocol over real processes.

Each worker owns the blocks a :class:`~repro.mapping.base.BlockMap` (via
``block_owners``) assigned to it and executes every block operation whose
destination it owns. Completions trigger real messages:

* BFAC(K,K)  -> send ``L_KK`` to every remote worker owning a subdiagonal
  block of panel K (they need it for BDIV);
* BDIV(I,K)  -> send ``L_IK`` to every remote worker owning a destination
  of one of its BMODs;
* a BMOD becomes ready when both source blocks are present; BFAC/BDIV when
  the destination has absorbed all its BMODs (BDIV also after the diagonal
  arrives) — identical bookkeeping to the discrete-event simulator, so the
  same mapping yields the same message set, now with real wall-clock time.

A worker terminates when it has executed all its tasks; it then ships its
factored blocks and metrics home on the result queue. On error it
broadcasts ABORT frames so peers exit promptly instead of deadlocking.

Fault tolerance (``recovery=True``, see :mod:`repro.runtime.faults` and
:mod:`repro.runtime.recovery`):

* every incoming frame is CRC-checked; corrupt frames are rejected and the
  presumed sender NACKed for a retransmit;
* duplicate block frames are suppressed idempotently (a block is applied
  exactly once, no matter how often it arrives);
* a worker that stops receiving messages it still needs *renegotiates*:
  it NACKs the owners of its missing blocks under bounded exponential
  backoff before giving up;
* after finishing its own tasks a worker broadcasts DONE and lingers to
  serve retransmit requests until every peer is done — so late NACKs
  always find a living sender;
* on abort/error the worker ships every completed block it holds as a
  checkpoint, which the driver feeds to the restarted run.
"""

from __future__ import annotations

import os
import queue as queue_mod
import random
import time
import traceback
from dataclasses import dataclass

import numpy as np

from repro.numeric.blockfact import BlockCholesky
from repro.numeric.solve import (
    bsolve_kernel,
    bupd_kernel,
    fsolve_kernel,
    fupd_kernel,
    solve_flops,
)
from repro.fanout.tasks import BDIV, BFAC, BMOD
from repro.runtime import wire
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.metrics import TimelineRecorder, WorkerMetrics
from repro.runtime.scheduler import ReadyScheduler
from repro.runtime.solve_plan import SolvePlan
from repro.runtime.trace import TraceRecorder, WorkerTrace

_KIND_NAMES = {BFAC: "BFAC", BDIV: "BDIV", BMOD: "BMOD"}

#: Solve-phase task kinds (worker-internal ids; see ``_solve_tid``).
_FSOLVE, _FUPD, _BSOLVE, _BUPD = 0, 1, 2, 3
_SOLVE_KIND_NAMES = {_FSOLVE: "FSOLVE", _FUPD: "FUPD",
                     _BSOLVE: "BSOLVE", _BUPD: "BUPD"}


class _Abort(Exception):
    """A peer told us to stop."""


@dataclass
class WorkerResult:
    """What a worker sends home: metrics plus its owned factor blocks
    (wire frames; on error/abort under recovery, the completed-block
    checkpoint instead)."""

    rank: int
    metrics: WorkerMetrics
    frames: list[bytes]
    trace: WorkerTrace | None = None
    #: Solve-phase output: owned panel id -> dense ``w x nrhs`` solution
    #: fragment (permuted coordinates). ``None`` when no solve ran.
    solution: dict[int, np.ndarray] | None = None


class Worker:
    """One rank of the message-passing runtime.

    Parameters mirror the shared plan built by the engine: the block
    ``structure`` and input matrix ``A`` (to scatter initial block data —
    the runtime's stand-in for the host distributing ``A``), the task graph
    ``tg``, the block ``owners`` array, an optional per-task priority
    array, and failure-injection / recovery / watchdog knobs.
    """

    def __init__(
        self,
        rank: int,
        structure,
        A,
        tg,
        owners: np.ndarray,
        fabric,
        result_queue,
        priorities: np.ndarray | None = None,
        epoch: float = 0.0,
        poll_s: float = 0.002,
        stall_timeout_s: float = 30.0,
        inject_failure: tuple[int, int] | None = None,
        record_timeline: bool = True,
        trace_capacity: int = 0,
        op_fixed_cost: int = 1000,
        fault_plan: FaultPlan | None = None,
        recovery: bool = False,
        checkpoint: dict[int, bytes] | None = None,
        renegotiate_base_s: float = 0.2,
        renegotiate_cap_s: float = 2.0,
        max_renegotiations: int = 8,
        retransmit_limit: int = 5,
        transport: str = "inline",
        arena_name: str | None = None,
        arena=None,
        inline_gather: bool = False,
        schedule: str = "static",
        steal_seed: int = 0,
        rhs: np.ndarray | None = None,
    ):
        self.rank = rank
        self.structure = structure
        self.A = A
        self.tg = tg
        self.owners = np.asarray(owners)
        self.fabric = fabric
        self.result_queue = result_queue
        self.priorities = priorities
        self.epoch = epoch
        self.poll_s = poll_s
        self.stall_timeout_s = stall_timeout_s
        self.inject_failure = inject_failure
        self.op_fixed_cost = op_fixed_cost
        self.fault_plan = fault_plan
        self.recovery = recovery
        self.checkpoint = checkpoint or {}
        self.renegotiate_base_s = renegotiate_base_s
        self.renegotiate_cap_s = renegotiate_cap_s
        self.max_renegotiations = max_renegotiations
        self.retransmit_limit = retransmit_limit
        self.transport = transport
        self.arena_name = arena_name
        #: Pre-attached :class:`~repro.runtime.arena.BlockArena` shared by
        #: the persistent pool (:mod:`repro.runtime.pool`); when given, the
        #: worker uses it instead of attaching by name, and never closes it.
        self.shared_arena = arena
        #: Ship gather frames inline even on the shm transport. The pool
        #: reuses arena slots across jobs, so the driver cannot defer the
        #: gather copy until after the next job may have overwritten them.
        self.inline_gather = inline_gather
        #: ``"static"`` runs the owner-computes map as-is; ``"dynamic"``
        #: adds work stealing on top of it (see :mod:`docs/SCHEDULING.md`):
        #: an idle worker requests a task from a seeded-random busy peer,
        #: executes it against the shipped destination state, and returns
        #: the result — ownership of the *update* migrates, never the block.
        self.schedule = schedule
        self.steal_seed = steal_seed
        #: Right-hand side panel stack (already permuted, full ``n x nrhs``
        #: float64). When given, the worker runs the distributed triangular
        #: solve after the factor phase and ships its owned solution panels
        #: home in :attr:`WorkerResult.solution`.
        self.rhs = None if rhs is None else np.ascontiguousarray(
            rhs, dtype=np.float64
        )
        self.record_timeline = record_timeline
        self.metrics = WorkerMetrics(rank=rank)
        self.timeline = TimelineRecorder(enabled=record_timeline)
        #: Structured event recorder, or None (tracing off — the hot path
        #: then pays one identity check per event site, no allocation).
        self.trace = TraceRecorder(trace_capacity) if trace_capacity else None

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Execute the event loop and ship the result; never raises."""
        solution = None
        try:
            self._setup()
            self._loop()
            self._linger()
            if self.rhs is not None:
                self._solve_loop()
                solution = self._solution_panels
            frames = self._gather_frames()
        except _Abort:
            self.metrics.aborted = True
            frames = self._checkpoint_frames() if self.recovery else []
        except BaseException:  # noqa: BLE001 - reported to the driver
            self.metrics.error = traceback.format_exc()
            frames = self._checkpoint_frames() if self.recovery else []
            self._broadcast_abort()
        self._finalize()
        trace = None if self.trace is None else self.trace.snapshot(self.rank)
        self.result_queue.put(
            WorkerResult(self.rank, self.metrics, frames, trace, solution)
        )
        if self.metrics.error is not None or self.metrics.aborted:
            # Don't hang at exit flushing frames to peers that may be gone.
            for link in getattr(self, "links", {}).values():
                link.queue.cancel_join_thread()

    # ------------------------------------------------------------------
    def _setup(self) -> None:
        tg = self.tg
        self.chol = BlockCholesky(self.structure, self.A)
        self.inbox = self.fabric.inbox(self.rank)
        self.links = self.fabric.outgoing(self.rank)
        self.arena = self.shared_arena
        if (
            self.arena is None
            and self.transport == "shm"
            and self.arena_name is not None
        ):
            from repro.runtime.arena import BlockArena

            self.arena = BlockArena.attach(tg, self.arena_name)
        self.injector = None
        if self.fault_plan is not None and self.fault_plan.active:
            self.injector = FaultInjector(self.fault_plan, self.rank)
            self.links = self.injector.wrap_links(self.links)
        if self.arena is not None:
            # Descriptors are cheap and uniform — batch them per link and
            # ship one queue put per drain instead of one per block.
            for link in self.links.values():
                link.coalesce = True
        self._crash_after, self._crash_hard = self._crash_config()
        self._slow_s = (
            self.fault_plan.slow_for(self.rank) if self.fault_plan else 0.0
        )
        self.task_owner = self.owners[tg.task_block]
        self.mine = self.task_owner == self.rank
        self.n_owned = int(self.mine.sum())
        self.executed = 0
        self.mods_remaining = tg.nmod.copy()
        self.missing = tg.task_missing_init.copy()
        self.diag_ready = np.zeros(tg.nblocks, dtype=bool)
        self.scheduler = ReadyScheduler(self.priorities)
        #: Blocks whose final factored value is present locally (owned
        #: completions, received frames, checkpoint preloads). Drives both
        #: duplicate suppression and the abort-time checkpoint.
        self.have: set[int] = set()
        self.done_peers: set[int] = set()
        self._resends: dict[tuple[int, int], int] = {}
        self._reneg_attempts = 0
        self._last_reneg = 0.0
        # Checkpointed blocks are final: skip every task that writes them.
        done_block = np.zeros(tg.nblocks, dtype=bool)
        valid_ck = [
            int(b) for b in self.checkpoint if 0 <= int(b) < tg.nblocks
        ]
        done_block[valid_ck] = True
        self.skip_task = done_block[tg.task_block]
        self.executed += int((self.mine & self.skip_task).sum())
        # Deterministic accumulation: BMOD updates into a given destination
        # block are applied in ascending task id, regardless of message
        # arrival order. A BMOD whose sources arrive "early" is parked in
        # ``_bmod_src_ready`` until its predecessors for the same block have
        # run. Floating-point block sums are then bitwise reproducible
        # run-to-run and across transports.
        self._bmod_order: dict[int, list[int]] = {}
        for t in np.flatnonzero(
            (tg.task_kind == BMOD) & self.mine & ~self.skip_task
        ):
            self._bmod_order.setdefault(int(tg.task_block[t]), []).append(
                int(t)
            )
        self._bmod_next_idx: dict[int, int] = dict.fromkeys(
            self._bmod_order, 0
        )
        self._bmod_src_ready: set[int] = set()
        # Seed: owned diagonal blocks with no incoming BMODs.
        diag = tg.block_I == tg.block_J
        for b in np.flatnonzero(diag & (tg.nmod == 0)):
            if self.owners[b] == self.rank:
                self._push(int(tg.bfac_task[int(b)]))
        self._load_checkpoint(valid_ck)
        self.expected = self._expected_blocks() if self.recovery else set()
        # --- dynamic-schedule (work stealing) state -------------------
        self.dynamic = self.schedule == "dynamic" and self.fabric.nprocs > 1
        #: Tasks granted away and not yet returned: tid -> thief rank.
        self._stolen_out: dict[int, int] = {}
        #: Blocks installed via STEAL_SHIP (no dependency bookkeeping);
        #: the later regular frame re-runs bookkeeping exactly once.
        self._steal_srcs: set[int] = set()
        self._steal_round = 0
        self._steal_victim: int | None = None
        self._steal_backoff_until = 0.0
        # Panel -> diagonal block id (BDIV tasks carry src1 == -1, so the
        # steal path resolves a BDIV's diagonal source through this map).
        diag_ids = np.flatnonzero(diag)
        self._diag_block = np.full(tg.npanels, -1, dtype=np.int64)
        self._diag_block[tg.block_J[diag_ids]] = diag_ids
        # --- solve-phase state ----------------------------------------
        # Initialized during factor setup because solve frames may arrive
        # while this rank is still factoring (a fast peer enters its solve
        # loop as soon as its own factor tasks are done).
        self._phase = "factor"
        if self.rhs is not None:
            self._solve_init()

    def _crash_config(self) -> tuple[int | None, bool]:
        if (
            self.inject_failure is not None
            and self.rank == self.inject_failure[0]
        ):
            return int(self.inject_failure[1]), False
        if self.fault_plan is not None:
            spec = self.fault_plan.crash_for(self.rank)
            if spec is not None:
                return int(spec.after_tasks), bool(spec.hard)
        return None, False

    def _load_checkpoint(self, blocks: list[int]) -> None:
        """Preload final block values snapshotted by a previous attempt."""
        tg = self.tg
        for b in blocks:
            msg = wire.unpack(self.checkpoint[b])
            I, J = int(tg.block_I[b]), int(tg.block_J[b])
            self.have.add(b)
            if self.arena is not None:
                # Keep the invariant "b in have => slot b is valid": any
                # held block may later be served to a NACKing peer as a
                # descriptor. Re-writing the same final bytes from every
                # preloading worker is benign.
                self.arena.write(b, msg.payload)
            self.metrics.checkpoint_blocks_loaded += 1
            if self.trace is not None:
                self.trace.mark("checkpoint_load", self._now(),
                                {"block": b, "I": I, "J": J})
            if I == J:
                self.chol.diag[J] = msg.payload
                self.chol._factored[J] = True
                self._diag_completed(J)
            else:
                self.chol.below[J][I] = msg.payload
                self._subdiag_completed(b)

    def _expected_blocks(self) -> set[int]:
        """Remote blocks this worker still needs to receive."""
        tg = self.tg
        expected: set[int] = set()
        diag = tg.block_I == tg.block_J
        diag_of_panel = np.full(tg.npanels, -1, dtype=np.int64)
        diag_ids = np.flatnonzero(diag)
        diag_of_panel[tg.block_J[diag_ids]] = diag_ids
        own_sub = np.flatnonzero((self.owners == self.rank) & ~diag)
        d = diag_of_panel[tg.block_J[own_sub]]
        d = d[d >= 0]
        expected.update(int(x) for x in d[self.owners[d] != self.rank])
        mod_mine = (tg.task_kind == BMOD) & self.mine
        for src in (tg.task_src1, tg.task_src2):
            s = src[mod_mine]
            s = s[s >= 0]
            expected.update(int(x) for x in s[self.owners[s] != self.rank])
        return expected - self.have

    def _push(self, tid: int) -> None:
        """Schedule a task unless a checkpoint already supplies its output
        (the scheduler additionally dedups repeat pushes). BMODs are held
        back until they are the next update in their destination block's
        canonical order."""
        if self.skip_task[tid]:
            return
        if int(self.tg.task_kind[tid]) == BMOD and not self._bmod_is_next(tid):
            self._bmod_src_ready.add(tid)
            return
        self.scheduler.push(tid)

    def _bmod_is_next(self, tid: int) -> bool:
        b = int(self.tg.task_block[tid])
        order = self._bmod_order[b]
        return order[self._bmod_next_idx[b]] == tid

    def _bmod_advance(self, b: int) -> None:
        """A BMOD into ``b`` just ran: release its successor if its sources
        already arrived (it was parked waiting for canonical order)."""
        order = self._bmod_order[b]
        idx = self._bmod_next_idx[b] + 1
        self._bmod_next_idx[b] = idx
        if idx < len(order) and order[idx] in self._bmod_src_ready:
            self._bmod_src_ready.discard(order[idx])
            self.scheduler.push(order[idx])

    def _now(self) -> float:
        return time.perf_counter() - self.epoch

    def _loop(self) -> None:
        last_progress = self._now()
        while self.executed < self.n_owned:
            progressed = self._drain_inbox()
            if self.scheduler:
                tid = self.scheduler.pop()
                self._execute(tid)
                progressed = True
                if not self.scheduler:
                    # About to go idle (or wait on the inbox): ship any
                    # coalesced descriptor batches so consumers proceed.
                    self._flush_pending()
            elif not progressed:
                if self.dynamic:
                    self._maybe_request_steal()
                progressed = self._wait_for_message()
            now = self._now()
            if progressed:
                last_progress = now
                self._reneg_attempts = 0
            elif now - last_progress > self.stall_timeout_s:
                raise RuntimeError(
                    f"worker {self.rank} stalled: {self.executed}/"
                    f"{self.n_owned} tasks done, no messages for "
                    f"{self.stall_timeout_s:.0f}s (deadlock?)"
                )
            elif self.recovery and self.expected:
                self._maybe_renegotiate(now, last_progress)
        self._flush_pending()

    def _flush_pending(self) -> None:
        """Ship every link's coalesced batch (does *not* release frames a
        fault injector is deliberately delaying)."""
        for link in self.links.values():
            link.flush_pending()

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _handle_item(self, item) -> bool:
        """Process one inbox item: a bare frame or a coalesced batch."""
        if isinstance(item, list):
            got = False
            for frame in item:
                got = self._handle_frame(frame) or got
            return got
        return self._handle_frame(item)

    def _drain_inbox(self) -> bool:
        got = False
        while True:
            try:
                item = self.inbox.get_nowait()
            except queue_mod.Empty:
                return got
            got = self._handle_item(item) or got

    def _wait_for_message(self) -> bool:
        t0 = self._now()
        cat = "solve_idle" if self._phase == "solve" else "idle"
        try:
            item = self.inbox.get(timeout=self.poll_s)
        except queue_mod.Empty:
            t1 = self._now()
            self.timeline.add(cat, t0, t1)
            if self.trace is not None:
                self.trace.span(cat, "idle", t0, t1)
            return False
        t1 = self._now()
        self.timeline.add(cat, t0, t1)
        if self.trace is not None:
            self.trace.span(cat, "idle", t0, t1)
        return self._handle_item(item)

    def _handle_frame(self, frame: bytes) -> bool:
        """Process one incoming frame; returns True if it made progress
        (i.e. could unblock a task)."""
        t0 = self._now()
        m = self.metrics
        tr = self.trace
        try:
            msg = wire.unpack(frame, copy=False)
            if msg.kind == wire.BLOCK_REF:
                if self.arena is None:
                    raise wire.WireError(
                        "BLOCK_REF descriptor received but no arena is "
                        "attached (transport mismatch)"
                    )
                # Swap the descriptor for the read-only arena slot view;
                # a slot-CRC mismatch funnels into the same reject/NACK
                # path as inline payload corruption.
                msg = self.arena.resolve(msg)
        except wire.CorruptFrameError as exc:
            m.frames_rejected += 1
            if not self.recovery:
                raise RuntimeError(
                    f"worker {self.rank} rejected a corrupt frame "
                    f"(no recovery enabled): {exc}"
                ) from exc
            self._nack_corrupt(exc)
            t1 = self._now()
            self.timeline.add("comm", t0, t1)
            if tr is not None:
                tr.span("comm", "frame_rejected", t0, t1,
                        {"src": exc.src, "block": exc.block})
            return False
        except wire.WireError as exc:
            m.frames_rejected += 1
            if not self.recovery:
                raise RuntimeError(
                    f"worker {self.rank} received an undecodable frame "
                    f"(no recovery enabled): {exc}"
                ) from exc
            # Unattributable garbage: drop it; renegotiation re-requests
            # whatever it was supposed to carry.
            t1 = self._now()
            self.timeline.add("comm", t0, t1)
            if tr is not None:
                tr.span("comm", "undecodable", t0, t1)
            return False
        if msg.kind == wire.ABORT:
            m.control_received += 1
            if tr is not None:
                tr.mark("abort_recv", t0, {"src": msg.src})
            raise _Abort()
        if msg.kind == wire.DONE:
            m.control_received += 1
            self.done_peers.add(msg.src)
            t1 = self._now()
            self.timeline.add("comm", t0, t1)
            if tr is not None:
                tr.span("comm", "done_recv", t0, t1, {"src": msg.src})
            return True
        if msg.kind == wire.NACK:
            m.control_received += 1
            m.nacks_received += 1
            self._serve_nack(msg)
            t1 = self._now()
            self.timeline.add("comm", t0, t1)
            if tr is not None:
                tr.span("comm", "nack_recv", t0, t1,
                        {"src": msg.src, "block": msg.block})
            return False
        if msg.kind in wire.STEAL_KINDS:
            m.steal_messages_received += 1
            m.steal_bytes_received += len(frame)
            if msg.kind == wire.STEAL_REQ:
                return self._serve_steal_req(msg, t0)
            if msg.kind == wire.STEAL_DENY:
                self._steal_victim = None
                self._steal_round += 1
                m.steal_denies_received += 1
                # Brief backoff: all-busy or all-done peers would
                # otherwise draw a REQ/DENY ping-pong every poll tick.
                self._steal_backoff_until = self._now() + 0.01
                t1 = self._now()
                self.timeline.add("comm", t0, t1)
                if tr is not None:
                    tr.span("steal", "steal_deny_recv", t0, t1,
                            {"src": msg.src})
                return False
            if msg.kind == wire.STEAL_SHIP:
                self._apply_steal_ship(msg)
                t1 = self._now()
                self.timeline.add("comm", t0, t1)
                if tr is not None:
                    tr.span("steal", "steal_ship_recv", t0, t1,
                            {"block": msg.block, "src": msg.src})
                return False
            if msg.kind == wire.STEAL_GRANT:
                self._steal_victim = None
                self._steal_round += 1
                return self._handle_steal_grant(msg, t0)
            return self._handle_steal_result(msg, t0)
        if msg.kind in wire.SOLVE_KINDS:
            # Solve plane: its own ledger, fully inline payloads, so
            # logical bytes == wire bytes by construction.
            if self.rhs is None:
                raise RuntimeError(
                    f"worker {self.rank} received a solve frame "
                    f"(kind={msg.kind}) but carries no right-hand side"
                )
            m.solve_messages_received += 1
            m.solve_bytes_received += len(frame)
            return self._handle_solve_msg(msg, len(frame), t0)
        # Logical bytes (what the predictor charges) vs wire bytes (what
        # actually crossed the queue — 64 for a descriptor).
        m.messages_received += 1
        m.bytes_received += msg.nbytes
        m.wire_bytes_received += len(frame)
        b = msg.block
        if b in self.have:
            m.duplicates_dropped += 1
            t1 = self._now()
            self.timeline.add("comm", t0, t1)
            if tr is not None:
                tr.span("recv", "duplicate", t0, t1,
                        {"block": b, "src": msg.src, "bytes": msg.nbytes,
                         "wire_bytes": len(frame)})
            return False
        self._apply_block(msg)
        t1 = self._now()
        self.timeline.add("comm", t0, t1)
        if tr is not None:
            tg = self.tg
            tr.span(
                "recv",
                f"recv({int(tg.block_I[b])},{int(tg.block_J[b])})",
                t0, t1,
                {"block": b, "src": msg.src, "bytes": msg.nbytes,
                 "wire_bytes": len(frame)},
            )
        return True

    def _apply_block(self, msg: wire.WireMessage) -> None:
        tg = self.tg
        b = msg.block
        self.have.add(b)
        self.expected.discard(b)
        I, J = int(tg.block_I[b]), int(tg.block_J[b])
        if I == J:
            self.chol.diag[J] = msg.payload
            self.chol._factored[J] = True
            self._diag_completed(J)
        else:
            self.chol.below[J][I] = msg.payload
            self._subdiag_completed(b)

    # ------------------------------------------------------------------
    # Recovery protocol
    # ------------------------------------------------------------------
    def _nack_corrupt(self, exc: wire.CorruptFrameError) -> None:
        """Reject-and-renegotiate: ask the presumed sender to retransmit."""
        src, b = exc.src, exc.block
        target = -1
        if 0 <= src < self.fabric.nprocs and src != self.rank:
            target = src
        elif 0 <= b < self.tg.nblocks:
            owner = int(self.owners[b])
            if owner != self.rank:
                target = owner
        if target >= 0 and 0 <= b < self.tg.nblocks:
            self.links[target].send_control(wire.pack_nack(self.rank, b))
            self.metrics.nacks_sent += 1
            if self.trace is not None:
                self.trace.mark("nack_sent", self._now(),
                                {"block": b, "dst": target})

    def _serve_nack(self, msg: wire.WireMessage) -> None:
        """A peer wants block ``msg.block`` (again). Resend if we hold its
        final value; otherwise the normal fan-out will deliver it once it
        completes."""
        b, requester = msg.block, msg.src
        if not (0 <= b < self.tg.nblocks) or requester == self.rank:
            return
        if requester not in self.links or b not in self.have:
            return
        key = (b, requester)
        if self._resends.get(key, 0) >= self.retransmit_limit:
            return
        self._resends[key] = self._resends.get(key, 0) + 1
        frame = self._frame_for(b)
        nbytes = self._logical_nbytes(b)
        self.links[requester].resend(frame, nbytes)
        self.metrics.retransmits += 1
        if self.trace is not None:
            self.trace.mark("retransmit", self._now(),
                            {"block": b, "dst": requester,
                             "bytes": nbytes, "wire_bytes": len(frame)})

    def _maybe_renegotiate(self, now: float, last_progress: float) -> None:
        """NACK owners of still-missing blocks under exponential backoff."""
        delay = min(
            self.renegotiate_base_s * (2.0 ** self._reneg_attempts),
            self.renegotiate_cap_s,
        )
        if now - max(last_progress, self._last_reneg) <= delay:
            return
        if self._reneg_attempts >= self.max_renegotiations:
            missing = sorted(self.expected)[:8]
            raise RuntimeError(
                f"worker {self.rank} unrecoverable: "
                f"{len(self.expected)} blocks still missing after "
                f"{self._reneg_attempts} renegotiations "
                f"(e.g. blocks {missing})"
            )
        self._reneg_attempts += 1
        self._last_reneg = now
        self.metrics.renegotiations += 1
        if self.trace is not None:
            self.trace.mark("renegotiate", now,
                            {"round": self._reneg_attempts,
                             "missing": len(self.expected)})
        for b in sorted(self.expected):
            owner = int(self.owners[b])
            if owner == self.rank or owner not in self.links:
                continue
            self.links[owner].send_control(wire.pack_nack(self.rank, b))
            self.metrics.nacks_sent += 1
            if self.trace is not None:
                self.trace.mark("nack_sent", self._now(),
                                {"block": b, "dst": owner})

    def _linger(self) -> None:
        """After finishing own tasks under recovery or dynamic schedule:
        release delayed frames, broadcast DONE, and keep serving peers
        until every one is done too — so no NACK ever targets a dead
        sender and no steal GRANT ever targets a dead thief (a finished
        worker answers STEAL_REQ with DENY but still executes a binding
        GRANT that raced its DONE)."""
        if not (self.recovery or self.dynamic) or not self.links:
            return
        for link in self.links.values():
            link.flush()
        done = wire.pack_done(self.rank)
        for link in self.links.values():
            link.send_control(done)
        if self.trace is not None:
            self.trace.mark("done_sent", self._now())
        peers = set(self.links)
        last_activity = self._now()
        while not peers <= self.done_peers:
            if self._wait_for_message():
                last_activity = self._now()
            elif self._now() - last_activity > self.stall_timeout_s:
                waiting = sorted(peers - self.done_peers)
                raise RuntimeError(
                    f"worker {self.rank} finished but peers {waiting} "
                    f"never reported DONE within "
                    f"{self.stall_timeout_s:.0f}s"
                )

    # ------------------------------------------------------------------
    # Distributed triangular solve (see docs/SOLVING.md)
    # ------------------------------------------------------------------
    # The factor never moves: FSOLVE/BSOLVE run where the diagonal block
    # lives, FUPD/BUPD run where the subdiagonal block lives, and only
    # right-hand-side fragments cross the wire (SOLVE_Y/X panel
    # broadcasts, SOLVE_FUP/BUP update fragments). Updates into a panel
    # are applied in ascending source order — exactly the sequential
    # reference's order — so the distributed solution is bitwise the
    # sequential one on every transport, schedule, and process count.

    def _solve_tid(self, kind: int, ident: int) -> int:
        return kind * self.tg.nblocks + ident

    def _push_solve(self, kind: int, ident: int) -> None:
        self.solve_scheduler.push(self._solve_tid(kind, ident))

    def _solve_init(self) -> None:
        tg = self.tg
        if self.rhs.ndim == 1:
            self.rhs = self.rhs.reshape(-1, 1)
        self.splan = sp = SolvePlan(self.structure, tg)
        n = int(sp.panel_ptr[-1])
        if self.rhs.shape[0] != n:
            raise ValueError(
                f"rhs has {self.rhs.shape[0]} rows, matrix has {n}"
            )
        self.nrhs = int(self.rhs.shape[1])
        rank = self.rank
        own_diag = [
            k
            for k in range(sp.npanels)
            if int(self.owners[sp.diag_block[k]]) == rank
        ]
        self._own_diag = set(own_diag)
        #: Forward accumulation buffers for owned panels (start as the
        #: permuted rhs fragment; updates subtract in canonical order;
        #: FSOLVE replaces the buffer with the solved panel).
        self._ypanel = {}
        for k in own_diag:
            c0, c1 = int(sp.panel_ptr[k]), int(sp.panel_ptr[k + 1])
            self._ypanel[k] = np.array(self.rhs[c0:c1])
        self._fwd_next = dict.fromkeys(own_diag, 0)
        self._fwd_pending: dict[int, dict[int, np.ndarray]] = {
            k: {} for k in own_diag
        }
        self._bwd_next = dict.fromkeys(own_diag, 0)
        self._bwd_pending: dict[int, dict[int, np.ndarray]] = {
            k: {} for k in own_diag
        }
        #: Backward accumulation buffers (created when FSOLVE completes,
        #: seeded from the solved forward panel — the sequential B).
        self._xbuf: dict[int, np.ndarray] = {}
        self._fsolve_done: set[int] = set()
        #: Final forward panels available locally (own or received).
        self._y_have: dict[int, np.ndarray] = {}
        #: Final solution panels available locally (own or received).
        self._x_have: dict[int, np.ndarray] = {}
        #: Owned solution panels shipped home in the WorkerResult.
        self._solution_panels: dict[int, np.ndarray] = {}
        self.solve_scheduler = ReadyScheduler(None)
        self.n_solve_owned = sp.owned_task_count(self.owners, rank)
        self.solve_executed = 0
        for k in own_diag:
            if sp.fwd_count[k] == 0:
                self._push_solve(_FSOLVE, k)

    def _solve_diag_owner(self, panel: int) -> int:
        return int(self.owners[self.splan.diag_block[panel]])

    def _solve_loop(self) -> None:
        self._phase = "solve"
        last_progress = self._now()
        while self.solve_executed < self.n_solve_owned:
            progressed = self._drain_inbox()
            if self.solve_scheduler:
                stid = self.solve_scheduler.pop()
                self._solve_execute(stid)
                progressed = True
            elif not progressed:
                progressed = self._wait_for_message()
            now = self._now()
            if progressed:
                last_progress = now
            elif now - last_progress > self.stall_timeout_s:
                raise RuntimeError(
                    f"worker {self.rank} stalled in solve: "
                    f"{self.solve_executed}/{self.n_solve_owned} solve "
                    f"tasks done, no messages for "
                    f"{self.stall_timeout_s:.0f}s (deadlock?)"
                )
        self._flush_pending()

    def _y_ready(self, k: int, panel: np.ndarray) -> None:
        """Forward panel ``Y_k`` is final here; wake owned FUPDs of
        column k."""
        self._y_have[k] = panel
        sp = self.splan
        for b in sp.col_blocks[k]:
            if int(self.owners[int(b)]) == self.rank:
                self._push_solve(_FUPD, int(b))

    def _x_ready(self, i: int, panel: np.ndarray) -> None:
        """Solution panel ``X_i`` is final here; wake owned BUPDs of
        row i."""
        self._x_have[i] = panel
        sp = self.splan
        for b in sp.row_blocks[i]:
            if int(self.owners[int(b)]) == self.rank:
                self._push_solve(_BUPD, int(b))

    def _fwd_deliver(self, i: int, b: int, u: np.ndarray) -> None:
        """Park a forward update into panel ``i`` and apply every parked
        update that is next in canonical (ascending-source) order."""
        self._fwd_pending[i][b] = u
        sp = self.splan
        order = sp.row_blocks[i]
        idx = self._fwd_next[i]
        pend = self._fwd_pending[i]
        Y = self._ypanel[i]
        while idx < order.shape[0]:
            nxt = int(order[idx])
            w = pend.pop(nxt, None)
            if w is None:
                break
            Y[sp.block_ridx[nxt]] -= w
            idx += 1
        self._fwd_next[i] = idx
        if idx == order.shape[0]:
            self._push_solve(_FSOLVE, i)

    def _bwd_deliver(self, k: int, b: int, u: np.ndarray) -> None:
        """Backward mirror of :meth:`_fwd_deliver` (ascending destination
        order down column ``k``); releases BSOLVE(k) when the buffer has
        absorbed every update."""
        self._bwd_pending[k][b] = u
        self._bwd_drain(k)

    def _bwd_drain(self, k: int) -> None:
        B = self._xbuf.get(k)
        if B is None:
            # FSOLVE(k) has not run; causally impossible for a remote
            # update, but the drain is re-run right after FSOLVE anyway.
            return
        sp = self.splan
        order = sp.col_blocks[k]
        idx = self._bwd_next[k]
        pend = self._bwd_pending[k]
        while idx < order.shape[0]:
            nxt = int(order[idx])
            u = pend.pop(nxt, None)
            if u is None:
                break
            B -= u
            idx += 1
        self._bwd_next[k] = idx
        if idx == order.shape[0] and k in self._fsolve_done:
            self._push_solve(_BSOLVE, k)

    def _handle_solve_msg(self, msg: wire.WireMessage, nbytes: int,
                          t0: float) -> bool:
        sp = self.splan
        if msg.kind == wire.SOLVE_Y:
            k = msg.block
            self._y_ready(k, np.asarray(msg.payload))
            name = f"y({k})"
        elif msg.kind == wire.SOLVE_X:
            i = msg.block
            self._x_ready(i, np.asarray(msg.payload))
            name = f"x({i})"
        elif msg.kind == wire.SOLVE_FUP:
            b = msg.block
            i = int(sp.block_I[b])
            self._fwd_deliver(i, b, np.asarray(msg.payload))
            name = f"fup({i},{int(sp.block_J[b])})"
        else:  # SOLVE_BUP
            b = msg.block
            k = int(sp.block_J[b])
            self._bwd_deliver(k, b, np.asarray(msg.payload))
            name = f"bup({int(sp.block_I[b])},{k})"
        t1 = self._now()
        self.timeline.add("solve_comm", t0, t1)
        if self.trace is not None:
            self.trace.span("solve_recv", name, t0, t1,
                            {"src": msg.src, "bytes": nbytes})
        return True

    def _solve_fan_out(self, frame: bytes, target_owners: np.ndarray,
                       name: str) -> None:
        """Send one solve frame to each distinct remote owner."""
        remote = np.unique(target_owners[target_owners != self.rank])
        if remote.size == 0:
            return
        t0 = self._now()
        for dst in remote:
            self.links[int(dst)].send_solve(frame)
        t1 = self._now()
        self.timeline.add("solve_comm", t0, t1)
        if self.trace is not None:
            self.trace.span("solve_send", name, t0, t1,
                            {"bytes": len(frame),
                             "targets": [int(d) for d in remote]})

    def _solve_send(self, frame: bytes, dst: int, name: str) -> None:
        t0 = self._now()
        self.links[dst].send_solve(frame)
        t1 = self._now()
        self.timeline.add("solve_comm", t0, t1)
        if self.trace is not None:
            self.trace.span("solve_send", name, t0, t1,
                            {"bytes": len(frame), "targets": [dst]})

    def _solve_execute(self, stid: int) -> None:
        tg = self.tg
        sp = self.splan
        kind, ident = divmod(stid, tg.nblocks)
        m = self.metrics
        t0 = self._now()
        if kind == _FSOLVE:
            k = ident
            w = int(sp.widths[k])
            panel = fsolve_kernel(self.chol.diag[k], self._ypanel[k])
            self._ypanel[k] = panel
            t1 = self._now()
            work = solve_flops(w, w, self.nrhs, diag=True)
            name = f"FSOLVE({k})"
        elif kind == _FUPD:
            b = ident
            i, k = int(sp.block_I[b]), int(sp.block_J[b])
            u = fupd_kernel(self.chol.below[k][i], self._y_have[k])
            t1 = self._now()
            rows = sp.block_rows_count(b)
            work = solve_flops(rows, int(sp.widths[k]), self.nrhs,
                               diag=False)
            name = f"FUPD({i},{k})"
        elif kind == _BSOLVE:
            k = ident
            w = int(sp.widths[k])
            panel = bsolve_kernel(self.chol.diag[k], self._xbuf[k])
            t1 = self._now()
            work = solve_flops(w, w, self.nrhs, diag=True)
            name = f"BSOLVE({k})"
        else:  # _BUPD
            b = ident
            i, k = int(sp.block_I[b]), int(sp.block_J[b])
            u = bupd_kernel(self.chol.below[k][i],
                            self._x_have[i][sp.block_ridx[b]])
            t1 = self._now()
            rows = sp.block_rows_count(b)
            work = solve_flops(rows, int(sp.widths[k]), self.nrhs,
                               diag=False)
            name = f"BUPD({i},{k})"
        self.timeline.add("solve_busy", t0, t1)
        m.solve_tasks_executed += 1
        m.solve_task_counts[_SOLVE_KIND_NAMES[kind]] += 1
        m.solve_work_executed += work
        self.solve_executed += 1
        if self.trace is not None:
            self.trace.span("solve_task", name, t0, t1,
                            {"id": ident, "work": work})
        if self._slow_s > 0.0:
            if self.injector is not None:
                self.injector.injected["slow"] += 1
            if self.trace is not None:
                self.trace.mark("slow", self._now(), {"s": self._slow_s})
            time.sleep(self._slow_s)
        if (
            self._crash_after is not None
            and self.executed + self.solve_executed >= self._crash_after
        ):
            if self.trace is not None:
                self.trace.mark(
                    "crash", self._now(),
                    {"after": self.executed + self.solve_executed,
                     "hard": self._crash_hard, "phase": "solve"},
                )
            if self._crash_hard:
                os._exit(17)
            raise RuntimeError(
                f"injected failure on worker {self.rank} after "
                f"{self.solve_executed} solve tasks"
            )
        # Post-task bookkeeping and fan-out.
        if kind == _FSOLVE:
            self._fsolve_done.add(k)
            self._xbuf[k] = panel.copy()
            self._solve_fan_out(
                wire.pack_solve_y(self.rank, k, panel),
                self.owners[sp.col_blocks[k]],
                f"y({k})",
            )
            self._y_ready(k, panel)
            self._bwd_drain(k)
        elif kind == _FUPD:
            dst = self._solve_diag_owner(i)
            if dst == self.rank:
                self._fwd_deliver(i, b, u)
            else:
                self._solve_send(
                    wire.pack_solve_fup(self.rank, b, u), dst,
                    f"fup({i},{k})",
                )
        elif kind == _BSOLVE:
            self._solution_panels[k] = panel
            self._solve_fan_out(
                wire.pack_solve_x(self.rank, k, panel),
                self.owners[sp.row_blocks[k]],
                f"x({k})",
            )
            self._x_ready(k, panel)
        else:  # _BUPD
            dst = self._solve_diag_owner(k)
            if dst == self.rank:
                self._bwd_deliver(k, b, u)
            else:
                self._solve_send(
                    wire.pack_solve_bup(self.rank, b, u), dst,
                    f"bup({i},{k})",
                )

    def run_solve(self, rhs, fabric, result_queue, trace_capacity: int = 0,
                  fault_plan: FaultPlan | None = None) -> None:
        """Re-arm a retained, already-factored worker for one warm solve
        job (the persistent pool's path): fresh fabric, fresh metrics and
        trace, only right-hand-side values in and solution panels out —
        the factor stays resident and ships zero bytes."""
        self.fabric = fabric
        self.inbox = fabric.inbox(self.rank)
        self.links = fabric.outgoing(self.rank)
        self.result_queue = result_queue
        self.rhs = np.ascontiguousarray(rhs, dtype=np.float64)
        self.metrics = WorkerMetrics(rank=self.rank)
        self.timeline = TimelineRecorder(enabled=self.record_timeline)
        self.trace = TraceRecorder(trace_capacity) if trace_capacity else None
        self.done_peers = set()
        self.fault_plan = fault_plan
        self.injector = None
        self._crash_after, self._crash_hard = self._crash_config()
        self._slow_s = (
            fault_plan.slow_for(self.rank) if fault_plan else 0.0
        )
        solution = None
        try:
            self._solve_init()
            self._solve_loop()
            solution = self._solution_panels
        except _Abort:
            self.metrics.aborted = True
        except BaseException:  # noqa: BLE001 - reported to the driver
            self.metrics.error = traceback.format_exc()
            self._broadcast_abort()
        self._finalize()
        trace = None if self.trace is None else self.trace.snapshot(self.rank)
        self.result_queue.put(
            WorkerResult(self.rank, self.metrics, [], trace, solution)
        )
        if self.metrics.error is not None or self.metrics.aborted:
            for link in self.links.values():
                link.queue.cancel_join_thread()

    # ------------------------------------------------------------------
    # Work stealing (dynamic schedule)
    # ------------------------------------------------------------------
    # Ownership of the *update* migrates, never of the block. The victim
    # ships the destination block's current partial state in the GRANT;
    # the thief runs the identical kernel on those identical bytes at the
    # task's canonical accumulation position and ships the state back in a
    # RESULT, which the victim swaps in before doing the normal post-task
    # bookkeeping. Same kernel + same input bytes + same position ==
    # bitwise-identical factors, whichever rank executed the task.
    #
    # Safe-grant invariant: any BMOD in the ready queue is the canonical
    # next update for its destination block (_push parks the rest), and
    # BDIV/BFAC only enqueue once mods_remaining hits zero — so at most
    # one update per destination is ever in flight, and the victim never
    # touches a granted-out destination until the RESULT returns (the
    # successor BMOD stays parked, executed < n_owned keeps the loop
    # alive, and sources are only read once a block is final).

    def _pick_victim(self) -> int | None:
        """Deterministic seeded victim choice keyed on (seed, round,
        rank): reproducible given the same knobs, uncorrelated between
        thieves so they don't dog-pile one victim."""
        peers = sorted(d for d in self.links if d not in self.done_peers)
        if not peers:
            return None
        seed = (
            self.steal_seed * 2654435761
            + self._steal_round * 40503
            + self.rank
        ) & 0xFFFFFFFF
        return peers[random.Random(seed).randrange(len(peers))]

    def _maybe_request_steal(self) -> None:
        """Idle and out of ready work: ask one peer for a task. At most
        one outstanding request; a DENY advances the round and backs off
        briefly before the next attempt."""
        if self._steal_victim is not None:
            return
        now = self._now()
        if now < self._steal_backoff_until:
            return
        victim = self._pick_victim()
        if victim is None:
            return
        self._steal_victim = victim
        self.metrics.steal_reqs_sent += 1
        self.links[victim].send_steal(
            wire.pack_steal_req(self.rank, self._steal_round)
        )
        t1 = self._now()
        self.timeline.add("comm", now, t1)
        if self.trace is not None:
            self.trace.span("steal", "steal_req", now, t1,
                            {"victim": victim, "round": self._steal_round})

    def _task_sources(self, tid: int) -> list[int]:
        """Final source blocks a stolen task reads (BDIV tasks carry
        ``src1 == -1``; their one source is the panel's diagonal)."""
        tg = self.tg
        if int(tg.task_kind[tid]) == BDIV:
            b = int(tg.task_block[tid])
            return [int(self._diag_block[int(tg.block_J[b])])]
        srcs: list[int] = []
        for s in (int(tg.task_src1[tid]), int(tg.task_src2[tid])):
            if s >= 0 and s not in srcs:
                srcs.append(s)
        return srcs

    def _serve_steal_req(self, msg: wire.WireMessage, t0: float) -> bool:
        """Grant the steal-end task of our queue, or DENY. Grants only
        BMOD/BDIV (BFAC pivots are cheap and fan out locally) and only
        while we keep at least one ready task for ourselves."""
        thief = msg.src
        tg = self.tg
        tid = None
        if self.dynamic and thief in self.links and len(self.scheduler) >= 2:
            tid = self.scheduler.steal(
                lambda t: int(tg.task_kind[t]) != BFAC
            )
        m = self.metrics
        if tid is None:
            m.steal_denies += 1
            self.links[thief].send_steal(
                wire.pack_steal_deny(self.rank, msg.block)
            )
            t1 = self._now()
            self.timeline.add("comm", t0, t1)
            if self.trace is not None:
                self.trace.span("steal", "steal_deny", t0, t1,
                                {"thief": thief})
            return False
        b = int(tg.task_block[tid])
        I, J = int(tg.block_I[b]), int(tg.block_J[b])
        if self.arena is None:
            # Inline transport: ship the final sources ahead of the grant
            # (same link, FIFO — they land first). On shm the thief reads
            # them straight from the arena instead.
            for s in self._task_sources(tid):
                sI, sJ = int(tg.block_I[s]), int(tg.block_J[s])
                arr = (
                    self.chol.diag[sJ]
                    if sI == sJ
                    else self.chol.below[sJ][sI]
                )
                self.links[thief].send_steal(
                    wire.pack_steal_ship(self.rank, s, sI, sJ, arr)
                )
        dest = self.chol.diag[J] if I == J else self.chol.below[J][I]
        self.links[thief].send_steal(
            wire.pack_steal_grant(self.rank, tid, I == J, dest)
        )
        self._stolen_out[tid] = thief
        work = int(tg.task_flops[tid]) + self.op_fixed_cost
        m.steal_grants += 1
        m.tasks_shipped += 1
        m.work_shipped += work
        t1 = self._now()
        self.timeline.add("comm", t0, t1)
        if self.trace is not None:
            self.trace.span("steal", "steal_grant", t0, t1,
                            {"tid": tid, "thief": thief, "work": work})
        return False

    def _apply_steal_ship(self, msg: wire.WireMessage) -> None:
        """Install a steal-shipped final source block *without* dependency
        bookkeeping: the regular fan-out frame for it still arrives later
        and runs the bookkeeping exactly once (its bytes are identical, so
        the overwrite is a no-op numerically)."""
        b = msg.block
        if b in self.have or b in self._steal_srcs:
            return
        tg = self.tg
        I, J = int(tg.block_I[b]), int(tg.block_J[b])
        if I == J:
            self.chol.diag[J] = msg.payload
            self.chol._factored[J] = True
        else:
            self.chol.below[J][I] = msg.payload
        self._steal_srcs.add(b)

    def _handle_steal_grant(self, msg: wire.WireMessage, t0: float) -> bool:
        """A victim granted us task ``msg.block`` (a task id, not a block
        id) and shipped the destination's partial state. Install sources
        and state, then execute."""
        tg = self.tg
        tid = msg.block
        victim = msg.src
        b = int(tg.task_block[tid])
        I, J = int(tg.block_I[b]), int(tg.block_J[b])
        if self.arena is not None:
            for s in self._task_sources(tid):
                if s in self.have or s in self._steal_srcs:
                    continue
                sI, sJ = int(tg.block_I[s]), int(tg.block_J[s])
                arr = self.arena.read(s)
                if sI == sJ:
                    self.chol.diag[sJ] = arr
                    self.chol._factored[sJ] = True
                else:
                    self.chol.below[sJ][sI] = arr
                self._steal_srcs.add(s)
        # Writable C-contiguous copy: BDIV solves in place, and the BMOD
        # fused kernel's fast path requires a writable contiguous dest
        # (falling off it would round differently and break bitwise
        # identity with the victim having run the task itself).
        state = np.array(msg.payload)
        if I == J:
            self.chol.diag[J] = state
        else:
            self.chol.below[J][I] = state
        t1 = self._now()
        self.timeline.add("comm", t0, t1)
        if self.trace is not None:
            self.trace.span("steal", "steal_grant_recv", t0, t1,
                            {"tid": tid, "victim": victim})
        self._execute_stolen(tid, victim)
        return True

    def _execute_stolen(self, tid: int, victim: int) -> None:
        """Run a stolen task and ship the resulting destination state
        back. Counts toward our executed-work metrics (and the stolen
        tallies) but *not* toward ``executed`` — that is the victim's
        owned-task counter and ticks when the RESULT lands there."""
        tg = self.tg
        kind = int(tg.task_kind[tid])
        b = int(tg.task_block[tid])
        I, J = int(tg.block_I[b]), int(tg.block_J[b])
        # No BDIV layout juggling needed here: bdiv_kernel canonicalizes
        # L_KK to C order itself, so our copy of the diagonal (F if we
        # factored it, C if it came over a link or out of an arena slot)
        # yields exactly the bits the victim would have computed.
        t0 = self._now()
        self.chol.apply_task(tg, tid)
        t1 = self._now()
        self.timeline.add("busy", t0, t1)
        m = self.metrics
        m.tasks_executed += 1
        m.task_counts[_KIND_NAMES[kind]] += 1
        flops = int(tg.task_flops[tid])
        work = flops + self.op_fixed_cost
        m.flops_executed += flops
        m.work_executed += work
        m.tasks_stolen += 1
        m.work_stolen += work
        if self.trace is not None:
            self.trace.span(
                "task",
                f"{_KIND_NAMES[kind]}({I},{J})",
                t0, t1,
                {"tid": tid, "block": b, "flops": flops, "work": work,
                 "stolen_from": victim},
            )
        if self._slow_s > 0.0:
            if self.injector is not None:
                self.injector.injected["slow"] += 1
            if self.trace is not None:
                self.trace.mark("slow", self._now(), {"s": self._slow_s})
            time.sleep(self._slow_s)
        dest = self.chol.diag[J] if I == J else self.chol.below[J][I]
        t2 = self._now()
        self.links[victim].send_steal(
            wire.pack_steal_result(self.rank, tid, I == J, dest)
        )
        t3 = self._now()
        self.timeline.add("comm", t2, t3)
        if self.trace is not None:
            self.trace.span("steal", "steal_result", t2, t3,
                            {"tid": tid, "victim": victim, "work": work})

    def _handle_steal_result(self, msg: wire.WireMessage, t0: float) -> bool:
        """The thief returned the destination state for a task we granted
        away: swap it in, count it as one of our owned executions, and do
        the normal post-task bookkeeping (fan-out, wake-ups)."""
        tg = self.tg
        tid = msg.block
        thief = msg.src
        self._stolen_out.pop(tid, None)
        kind = int(tg.task_kind[tid])
        b = int(tg.task_block[tid])
        I, J = int(tg.block_I[b]), int(tg.block_J[b])
        state = np.array(msg.payload)
        if I == J:
            self.chol.diag[J] = state
        else:
            self.chol.below[J][I] = state
        self.executed += 1
        work = int(tg.task_flops[tid]) + self.op_fixed_cost
        # Close the comm span before the dispatch below: _fan_out times
        # its own comm segment and must not be double-counted here.
        t1 = self._now()
        self.timeline.add("comm", t0, t1)
        if self.trace is not None:
            self.trace.span("steal", "steal_result_recv", t0, t1,
                            {"tid": tid, "thief": thief, "work": work})
        if kind == BMOD:
            self._bmod_advance(b)
            self.mods_remaining[b] -= 1
            if self.mods_remaining[b] == 0:
                self._block_mods_done(b)
        else:  # BDIV (BFAC is never granted)
            self._publish(b)
            deps = tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]
            self._fan_out(b, self.task_owner[deps])
            self._subdiag_completed(b)
        return True

    # ------------------------------------------------------------------
    # Dependency bookkeeping (local mirror of the simulator's)
    # ------------------------------------------------------------------
    def _diag_completed(self, k: int) -> None:
        """``L_KK`` is available here; wake owned BDIVs of panel k."""
        tg = self.tg
        sub = tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]]
        for b in sub:
            b = int(b)
            if self.owners[b] != self.rank:
                continue
            self.diag_ready[b] = True
            if self.mods_remaining[b] == 0:
                self._push(int(tg.bdiv_task[b]))

    def _subdiag_completed(self, b: int) -> None:
        """``L_IK`` is available here; decrement owned consumer BMODs."""
        tg = self.tg
        for t in tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]:
            t = int(t)
            if self.task_owner[t] != self.rank:
                continue
            self.missing[t] -= 1
            if self.missing[t] == 0:
                self._push(t)

    def _block_mods_done(self, b: int) -> None:
        tg = self.tg
        if tg.block_I[b] == tg.block_J[b]:
            self._push(int(tg.bfac_task[b]))
        elif self.diag_ready[b]:
            self._push(int(tg.bdiv_task[b]))

    # ------------------------------------------------------------------
    # Executing and fanning out
    # ------------------------------------------------------------------
    def _execute(self, tid: int) -> None:
        tg = self.tg
        t0 = self._now()
        self.chol.apply_task(tg, tid)
        t1 = self._now()
        self.timeline.add("busy", t0, t1)

        kind = int(tg.task_kind[tid])
        b = int(tg.task_block[tid])
        m = self.metrics
        m.tasks_executed += 1
        m.task_counts[_KIND_NAMES[kind]] += 1
        flops = int(tg.task_flops[tid])
        m.flops_executed += flops
        m.work_executed += flops + self.op_fixed_cost
        self.executed += 1
        if self.trace is not None:
            self.trace.span(
                "task",
                f"{_KIND_NAMES[kind]}"
                f"({int(tg.block_I[b])},{int(tg.block_J[b])})",
                t0, t1,
                {"tid": tid, "block": b, "flops": flops,
                 "work": flops + self.op_fixed_cost},
            )
        if self._slow_s > 0.0:
            if self.injector is not None:
                self.injector.injected["slow"] += 1
            if self.trace is not None:
                self.trace.mark("slow", self._now(), {"s": self._slow_s})
            time.sleep(self._slow_s)
        if self._crash_after is not None and self.executed >= self._crash_after:
            if self.trace is not None:
                self.trace.mark(
                    "crash", self._now(),
                    {"after": self.executed, "hard": self._crash_hard},
                )
            if self._crash_hard:
                # A stand-in for a segfault/OOM kill: vanish without
                # reporting. The driver notices the dead child.
                os._exit(17)
            raise RuntimeError(
                f"injected failure on worker {self.rank} after "
                f"{self.executed} tasks"
            )

        if kind == BMOD:
            self._bmod_advance(b)
            self.mods_remaining[b] -= 1
            if self.mods_remaining[b] == 0:
                self._block_mods_done(b)
        elif kind == BFAC:
            self._publish(b)
            k = int(tg.block_J[b])
            sub = tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]]
            self._fan_out(b, self.owners[sub])
            self._diag_completed(k)
        else:  # BDIV
            self._publish(b)
            deps = tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]
            self._fan_out(b, self.task_owner[deps])
            self._subdiag_completed(b)

    def _publish(self, b: int) -> None:
        """Mark block ``b`` final and, on the shm transport, copy it into
        its arena slot (the producer's single copy) before any descriptor
        for it can be sent — to peers *or* to the driver gather."""
        self.have.add(b)
        if self.arena is not None:
            tg = self.tg
            I, J = int(tg.block_I[b]), int(tg.block_J[b])
            arr = self.chol.diag[J] if I == J else self.chol.below[J][I]
            self.arena.write(b, arr)

    def _fan_out(self, b: int, target_owners: np.ndarray) -> None:
        """Send completed block ``b`` once to each distinct remote owner."""
        remote = np.unique(target_owners[target_owners != self.rank])
        if remote.size == 0:
            return
        t0 = self._now()
        frame = self._frame_for(b)
        nbytes = self._logical_nbytes(b)
        for dst in remote:
            self.links[int(dst)].send(frame, nbytes)
        t1 = self._now()
        self.timeline.add("comm", t0, t1)
        if self.trace is not None:
            tg = self.tg
            self.trace.span(
                "send",
                f"send({int(tg.block_I[b])},{int(tg.block_J[b])})",
                t0, t1,
                {"block": b, "bytes": nbytes, "wire_bytes": len(frame),
                 "targets": [int(d) for d in remote]},
            )

    def _logical_nbytes(self, b: int) -> int:
        """Logical frame bytes for block ``b`` — exactly what the static
        predictor charges, independent of the transport."""
        return wire.HEADER_BYTES + 8 * int(self.tg.block_words[b])

    def _frame_for(self, b: int, inline: bool = False) -> bytes:
        if self.arena is not None and not inline:
            return self.arena.pack_ref(self.rank, b)
        tg = self.tg
        I, J = int(tg.block_I[b]), int(tg.block_J[b])
        arr = self.chol.diag[J] if I == J else self.chol.below[J][I]
        return wire.pack_block(self.rank, b, I, J, arr)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def _gather_frames(self) -> list[bytes]:
        """Frames for every block this worker owns (the result gather)."""
        inline = self.inline_gather
        return [
            self._frame_for(int(b), inline=inline)
            for b in np.flatnonzero(self.owners == self.rank)
        ]

    def _checkpoint_frames(self) -> list[bytes]:
        """Frames for every *completed* block held locally — the snapshot
        a restarted attempt resumes from. Safe on partially-initialized
        workers."""
        if not hasattr(self, "chol"):
            return []
        return [self._frame_for(b) for b in sorted(self.have)]

    def _broadcast_abort(self) -> None:
        if self.trace is not None:
            self.trace.mark("abort_sent", self._now())
        frame = wire.pack_abort(self.rank)
        for link in getattr(self, "links", {}).values():
            try:
                link.send_control(frame)
            except Exception:  # pragma: no cover - peer already gone
                pass

    def _finalize(self) -> None:
        m = self.metrics
        m.busy_s = self.timeline.totals["busy"]
        m.comm_s = self.timeline.totals["comm"]
        m.idle_s = self.timeline.totals["idle"]
        m.solve_busy_s = self.timeline.totals["solve_busy"]
        m.solve_comm_s = self.timeline.totals["solve_comm"]
        m.solve_idle_s = self.timeline.totals["solve_idle"]
        m.timeline = list(self.timeline.segments)
        for dst, link in getattr(self, "links", {}).items():
            if link.messages:
                m.links[dst] = [link.messages, link.bytes]
            m.wire_bytes_sent += link.wire_bytes
            m.control_sent += link.control_messages
            m.steal_messages_sent += link.steal_messages
            m.steal_bytes_sent += link.steal_bytes
            m.solve_messages_sent += link.solve_messages
            m.solve_bytes_sent += link.solve_bytes
        m.messages_sent = sum(v[0] for v in m.links.values())
        m.bytes_sent = sum(v[1] for v in m.links.values())
        injector = getattr(self, "injector", None)
        if injector is not None:
            m.faults_injected = {
                k: v for k, v in injector.injected.items() if v
            }
        if self.trace is not None:
            m.trace_events = len(self.trace.events)
            m.trace_dropped = self.trace.dropped


def worker_main(rank: int, kwargs: dict) -> None:
    """Process entry point (must be a module-level function for spawn)."""
    Worker(rank, **kwargs).run()
