"""The worker event loop: §2.3's fan-out protocol over real processes.

Each worker owns the blocks a :class:`~repro.mapping.base.BlockMap` (via
``block_owners``) assigned to it and executes every block operation whose
destination it owns. Completions trigger real messages:

* BFAC(K,K)  -> send ``L_KK`` to every remote worker owning a subdiagonal
  block of panel K (they need it for BDIV);
* BDIV(I,K)  -> send ``L_IK`` to every remote worker owning a destination
  of one of its BMODs;
* a BMOD becomes ready when both source blocks are present; BFAC/BDIV when
  the destination has absorbed all its BMODs (BDIV also after the diagonal
  arrives) — identical bookkeeping to the discrete-event simulator, so the
  same mapping yields the same message set, now with real wall-clock time.

A worker terminates when it has executed all its tasks; it then ships its
factored blocks and metrics home on the result queue. On error it
broadcasts ABORT frames so peers exit promptly instead of deadlocking.
"""

from __future__ import annotations

import queue as queue_mod
import time
import traceback
from dataclasses import dataclass

import numpy as np

from repro.numeric.blockfact import BlockCholesky
from repro.fanout.tasks import BDIV, BFAC, BMOD
from repro.runtime import wire
from repro.runtime.metrics import TimelineRecorder, WorkerMetrics
from repro.runtime.scheduler import ReadyScheduler

_KIND_NAMES = {BFAC: "BFAC", BDIV: "BDIV", BMOD: "BMOD"}


class _Abort(Exception):
    """A peer told us to stop."""


@dataclass
class WorkerResult:
    """What a worker sends home: metrics plus its owned factor blocks
    (wire frames; empty on error/abort)."""

    rank: int
    metrics: WorkerMetrics
    frames: list[bytes]


class Worker:
    """One rank of the message-passing runtime.

    Parameters mirror the shared plan built by the engine: the block
    ``structure`` and input matrix ``A`` (to scatter initial block data —
    the runtime's stand-in for the host distributing ``A``), the task graph
    ``tg``, the block ``owners`` array, an optional per-task priority
    array, and failure-injection / watchdog knobs.
    """

    def __init__(
        self,
        rank: int,
        structure,
        A,
        tg,
        owners: np.ndarray,
        fabric,
        result_queue,
        priorities: np.ndarray | None = None,
        epoch: float = 0.0,
        poll_s: float = 0.002,
        stall_timeout_s: float = 30.0,
        inject_failure: tuple[int, int] | None = None,
        record_timeline: bool = True,
        op_fixed_cost: int = 1000,
    ):
        self.rank = rank
        self.structure = structure
        self.A = A
        self.tg = tg
        self.owners = np.asarray(owners)
        self.fabric = fabric
        self.result_queue = result_queue
        self.priorities = priorities
        self.epoch = epoch
        self.poll_s = poll_s
        self.stall_timeout_s = stall_timeout_s
        self.inject_failure = inject_failure
        self.op_fixed_cost = op_fixed_cost
        self.metrics = WorkerMetrics(rank=rank)
        self.timeline = TimelineRecorder(enabled=record_timeline)

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Execute the event loop and ship the result; never raises."""
        try:
            self._setup()
            self._loop()
            frames = self._gather_frames()
        except _Abort:
            self.metrics.aborted = True
            frames = []
        except BaseException:  # noqa: BLE001 - reported to the driver
            self.metrics.error = traceback.format_exc()
            frames = []
            self._broadcast_abort()
        self._finalize()
        self.result_queue.put(WorkerResult(self.rank, self.metrics, frames))
        if self.metrics.error is not None or self.metrics.aborted:
            # Don't hang at exit flushing frames to peers that may be gone.
            for link in getattr(self, "links", {}).values():
                link.queue.cancel_join_thread()

    # ------------------------------------------------------------------
    def _setup(self) -> None:
        tg = self.tg
        self.chol = BlockCholesky(self.structure, self.A)
        self.inbox = self.fabric.inbox(self.rank)
        self.links = self.fabric.outgoing(self.rank)
        self.task_owner = self.owners[tg.task_block]
        self.mine = self.task_owner == self.rank
        self.n_owned = int(self.mine.sum())
        self.executed = 0
        self.mods_remaining = tg.nmod.copy()
        self.missing = tg.task_missing_init.copy()
        self.diag_ready = np.zeros(tg.nblocks, dtype=bool)
        self.scheduler = ReadyScheduler(self.priorities)
        # Seed: owned diagonal blocks with no incoming BMODs.
        diag = tg.block_I == tg.block_J
        for b in np.flatnonzero(diag & (tg.nmod == 0)):
            if self.owners[b] == self.rank:
                self.scheduler.push(int(tg.bfac_task[int(b)]))

    def _now(self) -> float:
        return time.perf_counter() - self.epoch

    def _loop(self) -> None:
        last_progress = self._now()
        while self.executed < self.n_owned:
            progressed = self._drain_inbox()
            if self.scheduler:
                tid = self.scheduler.pop()
                self._execute(tid)
                progressed = True
            elif not progressed:
                progressed = self._wait_for_message()
            if progressed:
                last_progress = self._now()
            elif self._now() - last_progress > self.stall_timeout_s:
                raise RuntimeError(
                    f"worker {self.rank} stalled: {self.executed}/"
                    f"{self.n_owned} tasks done, no messages for "
                    f"{self.stall_timeout_s:.0f}s (deadlock?)"
                )

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _drain_inbox(self) -> bool:
        got = False
        while True:
            try:
                frame = self.inbox.get_nowait()
            except queue_mod.Empty:
                return got
            self._handle_frame(frame)
            got = True

    def _wait_for_message(self) -> bool:
        t0 = self._now()
        try:
            frame = self.inbox.get(timeout=self.poll_s)
        except queue_mod.Empty:
            self.timeline.add("idle", t0, self._now())
            return False
        self.timeline.add("idle", t0, self._now())
        self._handle_frame(frame)
        return True

    def _handle_frame(self, frame: bytes) -> None:
        t0 = self._now()
        msg = wire.unpack(frame)
        if msg.kind == wire.ABORT:
            raise _Abort()
        self.metrics.messages_received += 1
        self.metrics.bytes_received += len(frame)
        tg = self.tg
        b = msg.block
        I, J = int(tg.block_I[b]), int(tg.block_J[b])
        if I == J:
            self.chol.diag[J] = msg.payload
            self.chol._factored[J] = True
            self._diag_completed(J)
        else:
            self.chol.below[J][I] = msg.payload
            self._subdiag_completed(b)
        self.timeline.add("comm", t0, self._now())

    # ------------------------------------------------------------------
    # Dependency bookkeeping (local mirror of the simulator's)
    # ------------------------------------------------------------------
    def _diag_completed(self, k: int) -> None:
        """``L_KK`` is available here; wake owned BDIVs of panel k."""
        tg = self.tg
        sub = tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]]
        for b in sub:
            b = int(b)
            if self.owners[b] != self.rank:
                continue
            self.diag_ready[b] = True
            if self.mods_remaining[b] == 0:
                self.scheduler.push(int(tg.bdiv_task[b]))

    def _subdiag_completed(self, b: int) -> None:
        """``L_IK`` is available here; decrement owned consumer BMODs."""
        tg = self.tg
        for t in tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]:
            t = int(t)
            if self.task_owner[t] != self.rank:
                continue
            self.missing[t] -= 1
            if self.missing[t] == 0:
                self.scheduler.push(t)

    def _block_mods_done(self, b: int) -> None:
        tg = self.tg
        if tg.block_I[b] == tg.block_J[b]:
            self.scheduler.push(int(tg.bfac_task[b]))
        elif self.diag_ready[b]:
            self.scheduler.push(int(tg.bdiv_task[b]))

    # ------------------------------------------------------------------
    # Executing and fanning out
    # ------------------------------------------------------------------
    def _execute(self, tid: int) -> None:
        tg = self.tg
        t0 = self._now()
        self.chol.apply_task(tg, tid)
        t1 = self._now()
        self.timeline.add("busy", t0, t1)

        kind = int(tg.task_kind[tid])
        b = int(tg.task_block[tid])
        m = self.metrics
        m.tasks_executed += 1
        m.task_counts[_KIND_NAMES[kind]] += 1
        flops = int(tg.task_flops[tid])
        m.flops_executed += flops
        m.work_executed += flops + self.op_fixed_cost
        self.executed += 1
        if (
            self.inject_failure is not None
            and self.rank == self.inject_failure[0]
            and self.executed >= self.inject_failure[1]
        ):
            raise RuntimeError(
                f"injected failure on worker {self.rank} after "
                f"{self.executed} tasks"
            )

        if kind == BMOD:
            self.mods_remaining[b] -= 1
            if self.mods_remaining[b] == 0:
                self._block_mods_done(b)
        elif kind == BFAC:
            k = int(tg.block_J[b])
            sub = tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]]
            self._fan_out(b, self.owners[sub])
            self._diag_completed(k)
        else:  # BDIV
            deps = tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]
            self._fan_out(b, self.task_owner[deps])
            self._subdiag_completed(b)

    def _fan_out(self, b: int, target_owners: np.ndarray) -> None:
        """Send completed block ``b`` once to each distinct remote owner."""
        remote = np.unique(target_owners[target_owners != self.rank])
        if remote.size == 0:
            return
        t0 = self._now()
        frame = self._frame_for(b)
        for dst in remote:
            self.links[int(dst)].send(frame)
        self.timeline.add("comm", t0, self._now())

    def _frame_for(self, b: int) -> bytes:
        tg = self.tg
        I, J = int(tg.block_I[b]), int(tg.block_J[b])
        arr = self.chol.diag[J] if I == J else self.chol.below[J][I]
        return wire.pack_block(self.rank, b, I, J, arr)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def _gather_frames(self) -> list[bytes]:
        """Frames for every block this worker owns (the result gather)."""
        return [
            self._frame_for(int(b))
            for b in np.flatnonzero(self.owners == self.rank)
        ]

    def _broadcast_abort(self) -> None:
        frame = wire.pack_abort(self.rank)
        for link in getattr(self, "links", {}).values():
            try:
                link.queue.put(frame)
            except Exception:  # pragma: no cover - peer already gone
                pass

    def _finalize(self) -> None:
        m = self.metrics
        m.busy_s = self.timeline.totals["busy"]
        m.comm_s = self.timeline.totals["comm"]
        m.idle_s = self.timeline.totals["idle"]
        m.timeline = list(self.timeline.segments)
        for dst, link in getattr(self, "links", {}).items():
            if link.messages:
                m.links[dst] = [link.messages, link.bytes]
        m.messages_sent = sum(v[0] for v in m.links.values())
        m.bytes_sent = sum(v[1] for v in m.links.values())


def worker_main(rank: int, kwargs: dict) -> None:
    """Process entry point (must be a module-level function for spawn)."""
    Worker(rank, **kwargs).run()
