"""Ready-task scheduling inside one worker.

Mirrors the simulator's two queue disciplines
(:class:`repro.machine.processor.SimProcessor`): data-driven FIFO — tasks
run in arrival order, §2.3's default — or priority order under any of the
per-task priority arrays from :mod:`repro.fanout.priorities` (``column``,
``depth``, ``bottom_level``; lower value runs first). The same policy names
therefore mean the same execution order in simulation and real execution.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np


class ReadyScheduler:
    """Queue of ready task ids; FIFO or priority-ordered.

    ``priorities`` is the full per-task priority array (one value per task
    in the graph, lower runs first) or None for FIFO. Ties and FIFO order
    are broken by arrival sequence, making every discipline deterministic.

    Pushes are idempotent: a task id already enqueued (ever) is silently
    ignored, so redundant wakeups — duplicate frames, checkpoint replay
    racing a late message — cannot execute a task twice.
    """

    def __init__(self, priorities: np.ndarray | None = None):
        self._prio = None if priorities is None else np.asarray(
            priorities, dtype=np.float64
        )
        self._fifo: deque[int] = deque()
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self._seen: set[int] = set()

    @property
    def priority_mode(self) -> bool:
        return self._prio is not None

    def push(self, tid: int) -> bool:
        """Enqueue ``tid``; returns False if it was already pushed once."""
        if tid in self._seen:
            return False
        self._seen.add(tid)
        if self._prio is None:
            self._fifo.append(tid)
        else:
            heapq.heappush(self._heap, (float(self._prio[tid]), self._seq, tid))
        self._seq += 1
        return True

    def pop(self) -> int:
        if self._prio is None:
            return self._fifo.popleft()
        return heapq.heappop(self._heap)[2]

    def steal(self, eligible) -> int | None:
        """Remove and return the task a thief should get, or None.

        ``eligible`` is a predicate over task ids (the worker grants only
        BMOD/BDIV tasks). The steal end is the opposite of :meth:`pop`:
        the FIFO tail under data-driven order, the *worst*-priority entry
        under a priority discipline — the victim keeps the work it would
        have run next, the thief takes what would have waited longest.
        The task stays in ``_seen``, so a redundant wakeup cannot
        re-enqueue it behind the thief's back.
        """
        if self._prio is None:
            for i in range(len(self._fifo) - 1, -1, -1):
                tid = self._fifo[i]
                if eligible(tid):
                    del self._fifo[i]
                    return tid
            return None
        best = -1
        for i, entry in enumerate(self._heap):
            if eligible(entry[2]) and (
                best < 0 or entry[:2] > self._heap[best][:2]
            ):
                best = i
        if best < 0:
            return None
        tid = self._heap[best][2]
        self._heap[best] = self._heap[-1]
        self._heap.pop()
        if best < len(self._heap):
            heapq.heapify(self._heap)
        return tid

    def __len__(self) -> int:
        return len(self._fifo) if self._prio is None else len(self._heap)

    def __bool__(self) -> bool:
        return len(self) > 0
