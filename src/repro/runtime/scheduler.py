"""Ready-task scheduling inside one worker.

Mirrors the simulator's two queue disciplines
(:class:`repro.machine.processor.SimProcessor`): data-driven FIFO — tasks
run in arrival order, §2.3's default — or priority order under any of the
per-task priority arrays from :mod:`repro.fanout.priorities` (``column``,
``depth``, ``bottom_level``; lower value runs first). The same policy names
therefore mean the same execution order in simulation and real execution.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np


class ReadyScheduler:
    """Queue of ready task ids; FIFO or priority-ordered.

    ``priorities`` is the full per-task priority array (one value per task
    in the graph, lower runs first) or None for FIFO. Ties and FIFO order
    are broken by arrival sequence, making every discipline deterministic.

    Pushes are idempotent: a task id already enqueued (ever) is silently
    ignored, so redundant wakeups — duplicate frames, checkpoint replay
    racing a late message — cannot execute a task twice.
    """

    def __init__(self, priorities: np.ndarray | None = None):
        self._prio = None if priorities is None else np.asarray(
            priorities, dtype=np.float64
        )
        self._fifo: deque[int] = deque()
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self._seen: set[int] = set()

    @property
    def priority_mode(self) -> bool:
        return self._prio is not None

    def push(self, tid: int) -> bool:
        """Enqueue ``tid``; returns False if it was already pushed once."""
        if tid in self._seen:
            return False
        self._seen.add(tid)
        if self._prio is None:
            self._fifo.append(tid)
        else:
            heapq.heappush(self._heap, (float(self._prio[tid]), self._seq, tid))
        self._seq += 1
        return True

    def pop(self) -> int:
        if self._prio is None:
            return self._fifo.popleft()
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._fifo) if self._prio is None else len(self._heap)

    def __bool__(self) -> bool:
        return len(self) > 0
