"""Per-worker and runtime-wide metrics for the message-passing engine.

Each worker records a wall-clock timeline of ``busy`` (executing block
operations), ``comm`` (serializing, sending, receiving, unpacking frames)
and ``idle`` (blocked waiting for messages) segments, plus task counts,
per-link traffic, and the work-model units it actually executed. The
aggregate report computes measured load balance the same way the paper's
balance statistic does — ``total / (P * max)`` — so a real run can be laid
directly beside the :mod:`repro.mapping.balance` predictions, dumped as
JSON, or rendered as an ASCII chart via :mod:`repro.util.ascii_chart`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.util.ascii_chart import bar_chart

#: Timeline categories. The ``solve_*`` trio mirrors the factor-phase
#: trio for the triangular-solve phase, so a combined factor+solve run
#: keeps the two phases' time separately reconcilable.
CATEGORIES = ("busy", "comm", "idle", "solve_busy", "solve_comm",
              "solve_idle")


class TimelineRecorder:
    """Accumulates (category, start, end) segments, merging adjacent
    segments of the same category (keeps timelines compact)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.segments: list[tuple[str, float, float]] = []
        self.totals = {c: 0.0 for c in CATEGORIES}

    def add(self, category: str, start: float, end: float) -> None:
        if end <= start:
            return
        self.totals[category] += end - start
        if not self.enabled:
            return
        if self.segments:
            last_cat, last_start, last_end = self.segments[-1]
            if last_cat == category and start - last_end < 1e-7:
                self.segments[-1] = (category, last_start, end)
                return
        self.segments.append((category, start, end))


@dataclass
class WorkerMetrics:
    """One worker's measured execution profile."""

    rank: int
    tasks_executed: int = 0
    task_counts: dict[str, int] = field(
        default_factory=lambda: {"BFAC": 0, "BDIV": 0, "BMOD": 0}
    )
    busy_s: float = 0.0
    comm_s: float = 0.0
    idle_s: float = 0.0
    flops_executed: int = 0
    work_executed: int = 0  # work-model units: flops + fixed cost per op
    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    #: Transported bytes actually put on / taken off the queues. Equal to
    #: ``bytes_sent``/``bytes_received`` on the inline transport; 64 bytes
    #: per data message (header-only descriptors) on the shm transport.
    #: The ``bytes_*`` counters above stay *logical* — identical across
    #: transports and exactly equal to the static predictor.
    wire_bytes_sent: int = 0
    wire_bytes_received: int = 0
    #: Per-link traffic this worker sent: ``{dst_rank: [messages, bytes]}``.
    links: dict[int, list[int]] = field(default_factory=dict)
    timeline: list[tuple[str, float, float]] = field(default_factory=list)
    error: str | None = None
    aborted: bool = False
    # ------------------------------------------------------------------
    # Fault / integrity / recovery counters. All stay zero on a healthy
    # run with no fault plan — the chaos suite asserts exactly that.
    # ------------------------------------------------------------------
    #: Control frames (NACK/DONE/ABORT) sent / received.
    control_sent: int = 0
    control_received: int = 0
    #: Incoming frames rejected by the CRC32 / decode checks.
    frames_rejected: int = 0
    #: Incoming BLOCK frames ignored because the block was already applied.
    duplicates_dropped: int = 0
    #: NACK frames this worker emitted (corrupt reject + renegotiation).
    nacks_sent: int = 0
    #: NACK frames this worker received and served (or deferred).
    nacks_received: int = 0
    #: Data frames re-sent in response to a NACK.
    retransmits: int = 0
    #: Stall-triggered renegotiation rounds (exponential backoff).
    renegotiations: int = 0
    #: Blocks preloaded from a driver checkpoint instead of recomputed.
    checkpoint_blocks_loaded: int = 0
    #: Faults this worker's injector actually fired: ``{class: count}``.
    faults_injected: dict[str, int] = field(default_factory=dict)
    #: Structured trace events recorded / dropped to ring overflow
    #: (zero when tracing is off; see :mod:`repro.runtime.trace`).
    trace_events: int = 0
    trace_dropped: int = 0
    # ------------------------------------------------------------------
    # Work-stealing counters (``schedule="dynamic"``). All stay zero on a
    # static-schedule run. ``tasks_executed``/``work_executed`` above
    # count where tasks *ran* (the thief counts a stolen task), so
    # ``tasks_stolen``/``work_stolen`` minus ``tasks_shipped``/
    # ``work_shipped`` is exactly this worker's deviation from its static
    # owner share — validation reconciles that identity to the integer.
    # ------------------------------------------------------------------
    #: STEAL_REQ frames this worker sent as a thief.
    steal_reqs_sent: int = 0
    #: STEAL_REQ frames answered as a victim, by outcome.
    steal_grants: int = 0
    steal_denies: int = 0
    #: STEAL_DENY frames received as a thief.
    steal_denies_received: int = 0
    #: Tasks executed here but owned elsewhere (thief side).
    tasks_stolen: int = 0
    #: Tasks owned here but executed elsewhere (victim side).
    tasks_shipped: int = 0
    #: Work-model units migrated in / out with those tasks.
    work_stolen: int = 0
    work_shipped: int = 0
    #: Steal-plane traffic (REQ/GRANT/DENY/SHIP/RESULT frame bytes) —
    #: kept out of ``messages_*``/``bytes_*`` so the data ledgers stay
    #: exactly equal to the static communication-volume prediction.
    steal_messages_sent: int = 0
    steal_bytes_sent: int = 0
    steal_messages_received: int = 0
    steal_bytes_received: int = 0
    # ------------------------------------------------------------------
    # Triangular-solve phase counters. All stay zero on a factor-only
    # run. The solve plane has its own ledger (outside ``messages_*``/
    # ``bytes_*``) so the factor-phase counters keep reconciling exactly
    # with the factor predictor, and the solve counters with
    # :func:`repro.analysis.comm_volume.solve_communication_volume`.
    # Solve frames always ship inline, so logical == wire bytes here.
    # ------------------------------------------------------------------
    solve_tasks_executed: int = 0
    solve_task_counts: dict[str, int] = field(
        default_factory=lambda: {"FSOLVE": 0, "FUPD": 0, "BSOLVE": 0,
                                 "BUPD": 0}
    )
    solve_busy_s: float = 0.0
    solve_comm_s: float = 0.0
    solve_idle_s: float = 0.0
    #: Work units executed in the solve phase (see
    #: :func:`repro.numeric.solve.solve_flops` — exact integers).
    solve_work_executed: int = 0
    solve_messages_sent: int = 0
    solve_bytes_sent: int = 0
    solve_messages_received: int = 0
    solve_bytes_received: int = 0

    @property
    def recovery_events(self) -> int:
        """Total integrity/recovery actions (0 on an undisturbed run)."""
        return (
            self.frames_rejected
            + self.duplicates_dropped
            + self.nacks_sent
            + self.retransmits
            + self.renegotiations
            + self.checkpoint_blocks_loaded
        )

    @property
    def span_s(self) -> float:
        return self.busy_s + self.comm_s + self.idle_s

    def to_dict(self) -> dict:
        d = dict(self.__dict__)
        d["links"] = {str(k): list(v) for k, v in self.links.items()}
        d["timeline"] = [list(seg) for seg in self.timeline]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "WorkerMetrics":
        d = dict(d)
        d["links"] = {int(k): list(v) for k, v in d.get("links", {}).items()}
        d["timeline"] = [
            (str(c), float(a), float(b)) for c, a, b in d.get("timeline", [])
        ]
        return cls(**d)


@dataclass
class RuntimeMetrics:
    """Aggregate of one real parallel factorization."""

    nprocs: int
    wall_s: float
    workers: list[WorkerMetrics]
    mapping: str = ""
    problem: str = ""
    #: Which transport moved block payloads: ``"inline"`` or ``"shm"``.
    transport: str = "inline"
    #: Scheduling mode: ``"static"`` (owner-mapped task lists) or
    #: ``"dynamic"`` (ready-queue execution with work stealing).
    schedule: str = "static"
    #: Free-form annotations carried into the JSON dump (e.g. the solver's
    #: plan-cache counters, the service layer's per-job context).
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.workers = sorted(self.workers, key=lambda w: w.rank)

    # ------------------------------------------------------------------
    def _per_worker(self, attr: str) -> np.ndarray:
        return np.array([getattr(w, attr) for w in self.workers], dtype=float)

    @property
    def busy(self) -> np.ndarray:
        return self._per_worker("busy_s")

    @property
    def work(self) -> np.ndarray:
        return self._per_worker("work_executed")

    @property
    def messages_total(self) -> int:
        return int(sum(w.messages_sent for w in self.workers))

    @property
    def bytes_total(self) -> int:
        return int(sum(w.bytes_sent for w in self.workers))

    @property
    def wire_bytes_total(self) -> int:
        """Bytes actually transported (== ``bytes_total`` inline; the
        headline savings on the shm transport)."""
        return int(sum(w.wire_bytes_sent for w in self.workers))

    @property
    def tasks_total(self) -> int:
        return int(sum(w.tasks_executed for w in self.workers))

    @property
    def retransmits_total(self) -> int:
        return int(sum(w.retransmits for w in self.workers))

    @property
    def frames_rejected_total(self) -> int:
        return int(sum(w.frames_rejected for w in self.workers))

    @property
    def duplicates_total(self) -> int:
        return int(sum(w.duplicates_dropped for w in self.workers))

    @property
    def recovery_events_total(self) -> int:
        """Sum of every worker's integrity/recovery actions."""
        return int(sum(w.recovery_events for w in self.workers))

    @property
    def steal_reqs_total(self) -> int:
        return int(sum(w.steal_reqs_sent for w in self.workers))

    @property
    def steal_grants_total(self) -> int:
        return int(sum(w.steal_grants for w in self.workers))

    @property
    def steal_denies_total(self) -> int:
        return int(sum(w.steal_denies for w in self.workers))

    @property
    def tasks_stolen_total(self) -> int:
        return int(sum(w.tasks_stolen for w in self.workers))

    @property
    def work_stolen_total(self) -> int:
        return int(sum(w.work_stolen for w in self.workers))

    @property
    def steal_bytes_total(self) -> int:
        return int(sum(w.steal_bytes_sent for w in self.workers))

    @property
    def solve_messages_total(self) -> int:
        return int(sum(w.solve_messages_sent for w in self.workers))

    @property
    def solve_bytes_total(self) -> int:
        return int(sum(w.solve_bytes_sent for w in self.workers))

    @property
    def solve_tasks_total(self) -> int:
        return int(sum(w.solve_tasks_executed for w in self.workers))

    @property
    def solve_work_total(self) -> int:
        return int(sum(w.solve_work_executed for w in self.workers))

    @property
    def idle_total_s(self) -> float:
        """Summed per-worker idle seconds — the quantity dynamic
        scheduling exists to shrink."""
        return float(sum(w.idle_s for w in self.workers))

    @property
    def faults_injected_total(self) -> dict:
        out: dict[str, int] = {}
        for w in self.workers:
            for k, v in w.faults_injected.items():
                out[k] = out.get(k, 0) + int(v)
        return out

    @staticmethod
    def _balance(values: np.ndarray) -> float:
        """``total / (P * max)`` — 1.0 is perfect, the paper's statistic."""
        m = float(values.max(initial=0.0))
        if m <= 0:
            return 1.0
        return float(values.sum() / (values.shape[0] * m))

    @property
    def measured_balance(self) -> float:
        """Balance of measured busy seconds (wall-clock load distribution)."""
        return self._balance(self.busy)

    @property
    def work_balance(self) -> float:
        """Balance of executed work-model units (deterministic; comparable
        to :func:`repro.mapping.balance.overall_balance_from_owners`)."""
        return self._balance(self.work)

    @property
    def imbalance(self) -> float:
        """``max busy / mean busy`` — 1.0 is perfect, larger is worse."""
        b = self.busy
        mean = float(b.mean()) if b.size else 0.0
        if mean <= 0:
            return 1.0
        return float(b.max() / mean)

    @property
    def work_imbalance(self) -> float:
        w = self.work
        mean = float(w.mean()) if w.size else 0.0
        if mean <= 0:
            return 1.0
        return float(w.max() / mean)

    def link_matrix(self) -> np.ndarray:
        """``[src, dst] -> messages`` over the whole run."""
        M = np.zeros((self.nprocs, self.nprocs), dtype=np.int64)
        for w in self.workers:
            for dst, (msgs, _bytes) in w.links.items():
                M[w.rank, dst] = msgs
        return M

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "nprocs": self.nprocs,
            "wall_s": self.wall_s,
            "mapping": self.mapping,
            "problem": self.problem,
            "transport": self.transport,
            "schedule": self.schedule,
            "measured_balance": self.measured_balance,
            "work_balance": self.work_balance,
            "imbalance": self.imbalance,
            "messages": self.messages_total,
            "bytes": self.bytes_total,
            "wire_bytes": self.wire_bytes_total,
            "tasks": self.tasks_total,
            "recovery": {
                "events": self.recovery_events_total,
                "retransmits": self.retransmits_total,
                "frames_rejected": self.frames_rejected_total,
                "duplicates_dropped": self.duplicates_total,
                "faults_injected": self.faults_injected_total,
            },
            "steals": {
                "requests": self.steal_reqs_total,
                "grants": self.steal_grants_total,
                "denies": self.steal_denies_total,
                "tasks_migrated": self.tasks_stolen_total,
                "work_migrated": self.work_stolen_total,
                "steal_bytes": self.steal_bytes_total,
                "idle_s": self.idle_total_s,
            },
            "solve": {
                "tasks": self.solve_tasks_total,
                "work": self.solve_work_total,
                "messages": self.solve_messages_total,
                "bytes": self.solve_bytes_total,
            },
            "extra": self.extra,
            "workers": [w.to_dict() for w in self.workers],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: dict) -> "RuntimeMetrics":
        return cls(
            nprocs=int(d["nprocs"]),
            wall_s=float(d["wall_s"]),
            workers=[WorkerMetrics.from_dict(w) for w in d["workers"]],
            mapping=str(d.get("mapping", "")),
            problem=str(d.get("problem", "")),
            transport=str(d.get("transport", "inline")),
            schedule=str(d.get("schedule", "static")),
            extra=dict(d.get("extra", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RuntimeMetrics":
        return cls.from_dict(json.loads(text))

    def dump(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    # ------------------------------------------------------------------
    def render(self, width: int = 40) -> str:
        """ASCII busy/comm/idle breakdown, one bar group per worker."""
        labels = [f"w{w.rank}" for w in self.workers]
        series = {
            "busy": [w.busy_s for w in self.workers],
            "comm": [w.comm_s for w in self.workers],
            "idle": [w.idle_s for w in self.workers],
        }
        chart = bar_chart(labels, series, width=width)
        summary = (
            f"P={self.nprocs} wall={self.wall_s * 1e3:.1f} ms "
            f"balance={self.measured_balance:.3f} "
            f"(work {self.work_balance:.3f}) "
            f"msgs={self.messages_total} ({self.bytes_total / 1e6:.2f} MB)"
        )
        if self.wire_bytes_total != self.bytes_total:
            summary += (
                f" wire={self.wire_bytes_total / 1e6:.2f} MB "
                f"[{self.transport}]"
            )
        if self.schedule == "dynamic":
            summary += (
                f"\nschedule=dynamic steals={self.tasks_stolen_total}"
                f"/{self.steal_reqs_total} reqs "
                f"migrated_work={self.work_stolen_total} "
                f"idle={self.idle_total_s * 1e3:.1f} ms"
            )
        return chart + "\n" + summary
