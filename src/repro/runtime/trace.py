"""Structured runtime tracing: per-task and per-message event records.

Each worker carries a :class:`TraceRecorder` — a bounded ring buffer of
``(category, name, t0, t1, args)`` tuples stamped with the shared run
epoch. Recording is strictly opt-in: with tracing off the worker holds
``None`` and the hot path performs a single identity check per candidate
event, no allocation. With tracing on, span events mirror the
:class:`~repro.runtime.metrics.TimelineRecorder` one-for-one — every
``busy``/``comm``/``idle`` segment the metrics layer accumulates appears
as exactly one trace event with the same endpoints, in the same order —
so busy/idle/comm time, message counts, and bytes recomputed from the
trace (:mod:`repro.analysis.trace_replay`) reconcile *exactly* with
:class:`~repro.runtime.metrics.RuntimeMetrics` on a fault-free run.

Span categories
---------------
``task``
    One executed block operation; named ``BFAC(I,J)`` / ``BDIV(I,J)`` /
    ``BMOD(I,J)``; args carry the task id, block id, flops, and
    work-model units.
``send``
    One fan-out of a completed block: args carry the block, the
    *logical* byte size (``bytes`` — what the static predictor charges),
    the *transported* frame size (``wire_bytes`` — 64 for a shm
    ``BLOCK_REF`` descriptor, equal to ``bytes`` inline), and the
    distinct destination ranks (one wire message per destination).
``recv``
    Handling of one incoming BLOCK or BLOCK_REF frame (named
    ``recv(I,J)``, or ``duplicate`` for an idempotently dropped
    repeat); args carry the same ``bytes`` / ``wire_bytes`` split.
``comm``
    Handling of a control frame (``done_recv``, ``nack_recv``) or a
    rejected frame (``frame_rejected``, ``undecodable``).
``idle``
    One blocking wait on the inbox.
``steal``
    Work-stealing protocol handling (``schedule="dynamic"``):
    ``steal_req`` / ``steal_deny_recv`` on the thief, ``steal_grant`` /
    ``steal_deny`` / ``steal_result_recv`` on the victim, and
    ``steal_result`` (execute-and-return bookkeeping) on the thief.
    Buckets into comm time. A *stolen task's execution* is an ordinary
    ``task`` span on the thief whose args carry ``stolen_from`` (the
    owning victim's rank) — replay uses it to reconcile migrated work
    exactly against the static owner shares.

Instant events (category ``mark``, zero duration) record the fault /
recovery protocol: ``crash``, ``slow``, ``nack_sent``, ``retransmit``,
``renegotiate``, ``checkpoint_load``, ``done_sent``, ``abort_sent``,
``abort_recv``.

The engine merges per-worker buffers into a :class:`RunTrace`, which
serializes to a native JSON form, exports Chrome ``trace_event`` JSON
(open in Perfetto or ``chrome://tracing``), and renders an ASCII Gantt
chart (``python -m repro trace``). See ``docs/TRACING.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Span categories, in the order they map onto the metrics timeline.
#: The ``solve_*`` categories mirror the factor-phase ones for the
#: triangular-solve phase (a solve span never lands in a factor bucket).
SPAN_CATEGORIES = ("task", "send", "recv", "comm", "idle", "steal",
                   "solve_task", "solve_send", "solve_recv", "solve_idle")

#: Instant-event category.
MARK = "mark"

#: Timeline bucket each span category reconciles into (see
#: :mod:`repro.analysis.trace_replay`): ``task`` is busy time; ``send``,
#: ``recv``, ``comm`` and ``steal`` are comm time; ``idle`` is idle time.
#: Solve spans reconcile into the dedicated solve buckets.
TIMELINE_BUCKET = {
    "task": "busy",
    "send": "comm",
    "recv": "comm",
    "comm": "comm",
    "steal": "comm",
    "idle": "idle",
    "solve_task": "solve_busy",
    "solve_send": "solve_comm",
    "solve_recv": "solve_comm",
    "solve_idle": "solve_idle",
}

#: Default ring capacity (events per worker). Small runs use a few
#: thousand events; the ring only wraps on pathological workloads.
DEFAULT_CAPACITY = 1 << 18


class TraceRecorder:
    """Bounded ring buffer of trace events inside one worker.

    Events are compact tuples ``(cat, name, t0, t1, args)`` with ``args``
    a small dict or None. When the ring is full the *oldest* events are
    overwritten and ``dropped`` counts the overwritten ones, so a
    runaway run degrades to a suffix trace instead of unbounded memory.
    """

    __slots__ = ("capacity", "events", "dropped", "_head")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.capacity = int(capacity)
        self.events: list[tuple] = []
        self.dropped = 0
        self._head = 0  # next overwrite slot once the ring is full

    def _put(self, ev: tuple) -> None:
        if len(self.events) < self.capacity:
            self.events.append(ev)
        else:
            self.events[self._head] = ev
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def span(self, cat: str, name: str, t0: float, t1: float,
             args: dict | None = None) -> None:
        """Record a duration event (mirrors one timeline segment)."""
        self._put((cat, name, t0, t1, args))

    def mark(self, name: str, t: float, args: dict | None = None) -> None:
        """Record an instant (zero-duration) protocol event."""
        self._put((MARK, name, t, t, args))

    def snapshot(self, rank: int) -> "WorkerTrace":
        """Freeze the ring into the shippable per-worker trace (oldest
        event first, even after wrap-around)."""
        if self.dropped:
            events = self.events[self._head:] + self.events[: self._head]
        else:
            events = list(self.events)
        return WorkerTrace(rank=rank, events=events, dropped=self.dropped)


@dataclass
class WorkerTrace:
    """One worker's recorded events, shipped home with its result."""

    rank: int
    events: list[tuple]
    dropped: int = 0


@dataclass(frozen=True)
class TraceEvent:
    """One merged run-trace event."""

    rank: int
    attempt: int
    cat: str
    name: str
    t0: float
    t1: float
    args: dict | None = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_row(self) -> list:
        return [self.rank, self.attempt, self.cat, self.name,
                self.t0, self.t1, self.args]

    @classmethod
    def from_row(cls, row) -> "TraceEvent":
        rank, attempt, cat, name, t0, t1, args = row
        return cls(int(rank), int(attempt), str(cat), str(name),
                   float(t0), float(t1), args)


@dataclass
class RunTrace:
    """The merged trace of one runtime execution (possibly multi-attempt).

    ``events`` keeps each worker's events in recorded order (grouped by
    attempt, then rank); ``meta`` carries run identity (nprocs, mapping,
    problem, processor grid, start method); ``dropped`` maps
    ``"attempt:rank"`` to the number of ring-overwritten events.
    """

    meta: dict = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)
    dropped: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_workers(
        cls,
        worker_traces: dict[int, WorkerTrace],
        meta: dict | None = None,
        attempt: int = 0,
    ) -> "RunTrace":
        """Merge per-worker ring snapshots into one run trace."""
        events: list[TraceEvent] = []
        dropped: dict[str, int] = {}
        for rank in sorted(worker_traces):
            wt = worker_traces[rank]
            if wt is None:
                continue
            if wt.dropped:
                dropped[f"{attempt}:{rank}"] = int(wt.dropped)
            for cat, name, t0, t1, args in wt.events:
                events.append(TraceEvent(
                    rank=rank, attempt=attempt, cat=cat, name=name,
                    t0=float(t0), t1=float(t1), args=args,
                ))
        return cls(meta=dict(meta or {}), events=events, dropped=dropped)

    @classmethod
    def concat(cls, traces: list["RunTrace"]) -> "RunTrace":
        """Stitch multi-attempt traces (failed attempts first). Keeps the
        final trace's meta and unions events and drop counts."""
        traces = [t for t in traces if t is not None]
        if not traces:
            return cls()
        out = cls(meta=dict(traces[-1].meta))
        for t in traces:
            out.events.extend(t.events)
            out.dropped.update(t.dropped)
        return out

    # ------------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        n = self.meta.get("nprocs")
        if n:
            return int(n)
        return 1 + max((e.rank for e in self.events), default=0)

    @property
    def attempts(self) -> list[int]:
        return sorted({e.attempt for e in self.events})

    @property
    def total_dropped(self) -> int:
        return int(sum(self.dropped.values()))

    @property
    def t_end(self) -> float:
        return max((e.t1 for e in self.events), default=0.0)

    @property
    def t_start(self) -> float:
        return min((e.t0 for e in self.events), default=0.0)

    def select(
        self,
        cat: str | None = None,
        name: str | None = None,
        rank: int | None = None,
        attempt: int | None = None,
    ) -> list[TraceEvent]:
        """Events filtered by category / name / rank / attempt."""
        return [
            e for e in self.events
            if (cat is None or e.cat == cat)
            and (name is None or e.name == name)
            and (rank is None or e.rank == rank)
            and (attempt is None or e.attempt == attempt)
        ]

    def per_worker(self, attempt: int | None = None) -> dict[int, list[TraceEvent]]:
        """``rank -> events`` in recorded order."""
        out: dict[int, list[TraceEvent]] = {}
        for e in self.events:
            if attempt is not None and e.attempt != attempt:
                continue
            out.setdefault(e.rank, []).append(e)
        return out

    # ------------------------------------------------------------------
    # Native serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": "repro-trace",
            "version": 1,
            "meta": self.meta,
            "dropped": self.dropped,
            "events": [e.to_row() for e in self.events],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: dict) -> "RunTrace":
        if d.get("format") != "repro-trace":
            raise ValueError(
                "not a repro trace file (missing format='repro-trace')"
            )
        return cls(
            meta=dict(d.get("meta", {})),
            events=[TraceEvent.from_row(r) for r in d.get("events", [])],
            dropped={str(k): int(v) for k, v in d.get("dropped", {}).items()},
        )

    @classmethod
    def from_json(cls, text: str) -> "RunTrace":
        return cls.from_dict(json.loads(text))

    def dump(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "RunTrace":
        with open(path) as fh:
            return cls.from_json(fh.read())

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """The trace as a Chrome ``trace_event`` JSON object.

        Open the dumped file in https://ui.perfetto.dev or
        ``chrome://tracing``. Each attempt becomes one process (pid),
        each worker one thread (tid); span events are complete (``X``)
        events in microseconds, marks are thread-scoped instants.
        """
        out: list[dict] = []
        for attempt in self.attempts or [0]:
            out.append({
                "name": "process_name", "ph": "M", "pid": attempt,
                "args": {"name": f"repro-mp attempt {attempt}"},
            })
            for rank in sorted({e.rank for e in self.events
                                if e.attempt == attempt}):
                out.append({
                    "name": "thread_name", "ph": "M", "pid": attempt,
                    "tid": rank, "args": {"name": f"worker {rank}"},
                })
        for e in self.events:
            ev = {
                "name": e.name,
                "cat": e.cat,
                "ts": e.t0 * 1e6,
                "pid": e.attempt,
                "tid": e.rank,
            }
            if e.args:
                ev["args"] = e.args
            if e.cat == MARK:
                ev["ph"] = "i"
                ev["s"] = "t"
            else:
                ev["ph"] = "X"
                ev["dur"] = (e.t1 - e.t0) * 1e6
            out.append(ev)
        return {
            "traceEvents": out,
            "displayTimeUnit": "ms",
            "otherData": dict(self.meta),
        }

    def dump_chrome(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)

    # ------------------------------------------------------------------
    # ASCII Gantt
    # ------------------------------------------------------------------
    def gantt(self, width: int = 72, attempt: int | None = None) -> str:
        """Render per-worker busy/comm/idle lanes over wall-clock time.

        ``#`` busy (task execution), ``~`` comm (send/recv/control),
        ``.`` idle (blocked on the inbox), ``!`` a fault/recovery mark,
        space: outside the worker's recorded lifetime. Priority within a
        bin: mark > busy > comm > idle.
        """
        if attempt is None:
            attempts = self.attempts
            attempt = attempts[-1] if attempts else 0
        lanes = self.per_worker(attempt)
        t1 = max((e.t1 for evs in lanes.values() for e in evs), default=0.0)
        t0 = min((e.t0 for evs in lanes.values() for e in evs), default=0.0)
        span = max(t1 - t0, 1e-9)
        rank_w = max((len(str(r)) for r in lanes), default=1)
        lines = [
            f"attempt {attempt}: {span * 1e3:.1f} ms "
            f"({'#'} busy, {'~'} comm, {'.'} idle, {'!'} fault/recovery)"
        ]
        prio = {MARK: 3, "task": 2, "send": 1, "recv": 1, "comm": 1,
                "steal": 1, "idle": 0, "solve_task": 2, "solve_send": 1,
                "solve_recv": 1, "solve_idle": 0}
        glyph = {MARK: "!", "task": "#", "send": "~", "recv": "~",
                 "comm": "~", "steal": "~", "idle": ".", "solve_task": "#",
                 "solve_send": "~", "solve_recv": "~", "solve_idle": "."}
        for rank in sorted(lanes):
            best = [-1] * width
            chars = [" "] * width
            for e in lanes[rank]:
                lo = int((e.t0 - t0) / span * width)
                hi = int((e.t1 - t0) / span * width)
                lo = min(max(lo, 0), width - 1)
                hi = min(max(hi, lo), width - 1)
                p = prio.get(e.cat, 0)
                g = glyph.get(e.cat, "?")
                for i in range(lo, hi + 1):
                    if p > best[i]:
                        best[i] = p
                        chars[i] = g
            lines.append(f"w{rank:<{rank_w}} |{''.join(chars)}|")
        axis = f"{' ' * (rank_w + 1)} {0.0:<8.1f}"
        axis += " " * max(0, width - len(axis) + rank_w + 3)
        lines.append(axis + f"{span * 1e3:>8.1f} ms")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-paragraph account of what the trace contains."""
        n_task = sum(1 for e in self.events if e.cat == "task")
        n_send = sum(1 for e in self.events if e.cat == "send")
        n_recv = sum(1 for e in self.events
                     if e.cat == "recv" and e.name != "duplicate")
        n_mark = sum(1 for e in self.events if e.cat == MARK)
        parts = [
            f"trace: {len(self.events)} events, "
            f"{self.nprocs} workers, "
            f"{len(self.attempts) or 1} attempt(s), "
            f"{(self.t_end - self.t_start) * 1e3:.1f} ms",
            f"  tasks={n_task} sends={n_send} recvs={n_recv} "
            f"marks={n_mark}",
        ]
        if self.meta:
            keys = ("problem", "mapping", "nprocs", "grid", "start_method")
            kv = [f"{k}={self.meta[k]}" for k in keys if self.meta.get(k)]
            if kv:
                parts.append("  " + " ".join(str(x) for x in kv))
        if self.total_dropped:
            parts.append(
                f"  WARNING: ring overflow dropped {self.total_dropped} "
                "oldest events (raise the trace capacity)"
            )
        return "\n".join(parts)
