"""Validation harness: does the real runtime do what the models promised?

Three checks close the loop between the paper's analytical machinery and
real execution:

1. **Numerics** — the runtime's factor satisfies ``L L^T = A`` to the same
   tolerance as the sequential :class:`~repro.numeric.blockfact.BlockCholesky`.
2. **Communication** — the per-link message counters sum to exactly the
   message (and byte) count the static predictor
   :func:`repro.analysis.comm_volume.communication_volume` computed for the
   same ownership.
3. **Load distribution** — each worker's executed work (flops plus the
   per-operation fixed cost) equals the :class:`~repro.blocks.workmodel.WorkModel`
   share the mapping heuristics optimized, integer for integer. Under
   ``schedule="dynamic"`` the identity is migration-adjusted: executed
   minus stolen-in plus shipped-away work equals the owner share exactly
   (the steal ledger rides outside the data counters, so the message and
   byte checks stay exact either way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.analysis.comm_volume import communication_volume
from repro.blocks.structure import BlockStructure
from repro.fanout.tasks import TaskGraph
from repro.numeric.blockfact import BlockCholesky
from repro.runtime.engine import MPRuntimeResult, plan_owners, run_mp_fanout


class ValidationError(AssertionError):
    """The runtime disagreed with the sequential factor or the models."""


@dataclass
class ValidationReport:
    """Outcome of one runtime validation run."""

    problem: str
    mapping: str
    nprocs: int
    residual: float
    seq_residual: float
    factor_diff: float
    messages_measured: int
    messages_predicted: int
    bytes_measured: int
    bytes_predicted: int
    work_measured: np.ndarray
    work_predicted: np.ndarray
    #: Bytes actually transported (== ``bytes_measured`` inline; header-only
    #: descriptor traffic on the shm transport).
    wire_bytes_measured: int = 0
    transport: str = "inline"
    recovery_events: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"validate {self.problem or '?'} mapping={self.mapping} "
            f"P={self.nprocs}: {'OK' if self.ok else 'FAILED'}",
            f"  residual        : {self.residual:.3e} "
            f"(sequential {self.seq_residual:.3e})",
            f"  |L_mp - L_seq|  : {self.factor_diff:.3e}",
            f"  messages        : {self.messages_measured} measured / "
            f"{self.messages_predicted} predicted",
            f"  bytes           : {self.bytes_measured} measured / "
            f"{self.bytes_predicted} predicted",
            f"  wire bytes      : {self.wire_bytes_measured} transported "
            f"[{self.transport}]",
            f"  work match      : max |measured - predicted| = "
            f"{np.abs(self.work_measured - self.work_predicted).max():.0f}",
            f"  recovery events : {self.recovery_events}",
        ]
        lines.extend(f"  FAIL: {f}" for f in self.failures)
        return "\n".join(lines)


def validate_runtime(
    structure: BlockStructure,
    A: sparse.spmatrix,
    tg: TaskGraph,
    nprocs: int = 4,
    mapping: str = "DW/CY",
    use_domains: bool = False,
    tolerance: float = 1e-8,
    strict: bool = True,
    problem: str = "",
    result: MPRuntimeResult | None = None,
    faulty: bool = False,
    **runtime_kwargs,
) -> ValidationReport:
    """Run the message-passing runtime and check it against the models.

    Pass ``result`` to validate an execution you already have (its
    ``owners`` must come from the same task graph). With ``strict`` (the
    default), any mismatch raises :class:`ValidationError`; otherwise the
    failures are listed in the returned report.

    ``faulty`` marks an execution that ran under fault injection: the
    numeric checks still apply in full, but the exact message/byte/work
    accounting checks are skipped (retransmits and checkpoint-skipped
    tasks legitimately perturb them). Conversely, a run that is *not*
    marked faulty must show zero integrity/recovery events — a healthy
    interconnect never triggers the recovery machinery.
    """
    wm = tg.workmodel
    if result is None:
        owners, name = plan_owners(wm, tg, nprocs, mapping, use_domains)
        result = run_mp_fanout(
            structure, A, tg, owners, nprocs, mapping=name, **runtime_kwargs
        )
    owners = result.owners
    nprocs = result.metrics.nprocs

    L = result.to_csc()
    residual = float(abs(L @ L.T - A).max())
    seq = BlockCholesky(structure, A).factor().to_csc()
    seq_residual = float(abs(seq @ seq.T - A).max())
    factor_diff = float(abs(L - seq).max())

    predicted = communication_volume(tg, owners)
    measured_msgs = result.metrics.messages_total
    measured_bytes = result.metrics.bytes_total
    wire_bytes = result.metrics.wire_bytes_total
    transport = result.metrics.transport

    # Under the dynamic schedule, executed work migrates; fold the steal
    # ledger back so the comparison is owner share vs owner share.
    work_measured = np.array(
        [
            w.work_executed
            - getattr(w, "work_stolen", 0)
            + getattr(w, "work_shipped", 0)
            for w in result.metrics.workers
        ],
        dtype=np.int64,
    )
    work_predicted = np.bincount(
        owners, weights=wm.work, minlength=nprocs
    ).astype(np.int64)

    recovery_events = result.metrics.recovery_events_total

    failures: list[str] = []
    tol = max(tolerance, 10.0 * seq_residual)
    if not residual <= tol:
        failures.append(
            f"residual {residual:.3e} exceeds tolerance {tol:.3e}"
        )
    if not faulty:
        if measured_msgs != predicted.messages:
            failures.append(
                f"measured {measured_msgs} messages, comm_volume predicted "
                f"{predicted.messages}"
            )
        if measured_bytes != predicted.bytes:
            failures.append(
                f"measured {measured_bytes} bytes, comm_volume predicted "
                f"{predicted.bytes}"
            )
        if not np.array_equal(work_measured, work_predicted):
            failures.append(
                "per-worker executed work differs from the WorkModel "
                f"distribution by up to "
                f"{np.abs(work_measured - work_predicted).max()}"
            )
        if recovery_events:
            failures.append(
                f"fault-free run triggered {recovery_events} "
                "integrity/recovery events (expected zero)"
            )
        if transport == "inline" and wire_bytes != measured_bytes:
            failures.append(
                f"inline transport moved {wire_bytes} wire bytes, "
                f"logical accounting says {measured_bytes}"
            )
        if transport == "shm" and wire_bytes != 64 * measured_msgs:
            failures.append(
                f"shm transport moved {wire_bytes} wire bytes; expected "
                f"header-only traffic {64 * measured_msgs}"
            )

    report = ValidationReport(
        problem=problem,
        mapping=result.mapping,
        nprocs=nprocs,
        residual=residual,
        seq_residual=seq_residual,
        factor_diff=factor_diff,
        messages_measured=measured_msgs,
        messages_predicted=predicted.messages,
        bytes_measured=measured_bytes,
        bytes_predicted=predicted.bytes,
        wire_bytes_measured=wire_bytes,
        transport=transport,
        work_measured=work_measured,
        work_predicted=work_predicted,
        recovery_events=recovery_events,
        failures=failures,
    )
    if strict and failures:
        raise ValidationError(report.summary())
    return report
