"""Deterministic fault injection for the message-passing runtime.

A :class:`FaultPlan` describes *what goes wrong* in a run: worker crashes
after the k-th task, message drop / duplication / delay (which reorders),
bit-flip corruption of payload or header bytes, and slow-worker
throttling. Every message-level decision is drawn from a counter-based RNG
keyed on ``(seed, attempt, src, dst, block, occurrence)``, so a plan is
fully reproducible from its seed: the same block's n-th transmission on a
given link always suffers the same fate, independent of OS scheduling.

Faults are injected at the ``links``/``worker`` boundary: each worker
wraps its outgoing :class:`~repro.runtime.links.Link` objects in
:class:`FaultyLink` (message faults) and consults :meth:`FaultPlan.crash_for`
/ :attr:`FaultPlan.slow` in its event loop (process faults). Control
frames (ABORT/NACK/DONE) are never faulted — the virtual interconnect's
control plane is reliable, like a dedicated service network.

Crash faults are *transient* by default: they fire on attempt 0 only, so a
driver-level restart (:mod:`repro.runtime.recovery`) sees the fault
disappear, exactly the scenario checkpoint/restart exists for. Set
``every_attempt=True`` for a persistent fault that forces the sequential
fallback.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.runtime import wire
from repro.runtime.links import Link

#: Message-fault classes, in the order their probabilities are drawn.
MESSAGE_FAULTS = ("drop", "corrupt", "corrupt_header", "delay", "duplicate")

#: Every fault class a plan can express (chaos sweeps iterate this).
FAULT_CLASSES = ("crash", *MESSAGE_FAULTS, "slow")


@dataclass(frozen=True)
class CrashSpec:
    """Kill worker ``rank`` after it has executed ``after_tasks`` tasks.

    ``hard`` crashes exit the process without reporting (a segfault
    stand-in); soft crashes raise, so the worker ships its error and its
    completed-block checkpoint home first. Transient crashes
    (``every_attempt=False``, the default) fire only on attempt 0.
    """

    rank: int
    after_tasks: int
    hard: bool = False
    every_attempt: bool = False

    def applies(self, attempt: int) -> bool:
        return self.every_attempt or attempt == 0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable description of injected faults."""

    seed: int = 0
    attempt: int = 0
    crash: tuple[CrashSpec, ...] = ()
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    corrupt_header: float = 0.0
    delay: float = 0.0
    #: A delayed frame is released after this many later sends on the link
    #: (or at loop end via ``flush``), which reorders the stream.
    delay_messages: int = 3
    #: ``{rank: seconds}`` of extra sleep per executed task.
    slow: dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return bool(
            self.crash
            or self.slow
            or any(getattr(self, f) > 0.0 for f in MESSAGE_FAULTS)
        )

    @property
    def message_faults_active(self) -> bool:
        return any(getattr(self, f) > 0.0 for f in MESSAGE_FAULTS)

    def for_attempt(self, attempt: int) -> "FaultPlan":
        """The plan as seen by restart ``attempt`` (transient crashes
        filtered out; message faults re-keyed so retries see fresh but
        still deterministic decisions)."""
        return replace(
            self,
            attempt=attempt,
            crash=tuple(c for c in self.crash if c.applies(attempt)),
        )

    def crash_for(self, rank: int) -> CrashSpec | None:
        for spec in self.crash:
            if spec.rank == rank:
                return spec
        return None

    def slow_for(self, rank: int) -> float:
        return float(self.slow.get(rank, 0.0))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d["crash"] = [asdict(c) for c in self.crash]
        d["slow"] = {str(k): v for k, v in self.slow.items()}
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        d = dict(d)
        d["crash"] = tuple(
            c if isinstance(c, CrashSpec) else CrashSpec(**c)
            for c in d.get("crash", ())
        )
        d["slow"] = {int(k): float(v) for k, v in d.get("slow", {}).items()}
        return cls(**d)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    @classmethod
    def scenario(
        cls,
        name: str,
        seed: int = 0,
        rate: float = 0.1,
        rank: int = 1,
        after_tasks: int = 3,
        slow_s: float = 0.002,
    ) -> "FaultPlan":
        """One named single-fault scenario (what ``repro chaos`` sweeps).

        ``name`` is one of :data:`FAULT_CLASSES` plus ``"crash-hard"``,
        ``"crash-persistent"`` and ``"none"``.
        """
        if name == "none":
            return cls(seed=seed)
        if name == "crash":
            return cls(seed=seed, crash=(CrashSpec(rank, after_tasks),))
        if name == "crash-hard":
            return cls(
                seed=seed, crash=(CrashSpec(rank, after_tasks, hard=True),)
            )
        if name == "crash-persistent":
            return cls(
                seed=seed,
                crash=(CrashSpec(rank, after_tasks, every_attempt=True),),
            )
        if name == "slow":
            return cls(seed=seed, slow={rank: slow_s})
        if name in MESSAGE_FAULTS:
            return cls(seed=seed, **{name: rate})
        raise KeyError(
            f"unknown fault scenario {name!r}; known: "
            f"{', '.join(FAULT_CLASSES)}, crash-hard, crash-persistent, none"
        )


def parse_fault_plan(spec: str | None, seed: int = 0) -> FaultPlan | None:
    """Parse a CLI-friendly fault-plan spec into a :class:`FaultPlan`.

    Accepted forms::

        none                         -> None (no plan)
        crash-hard                   -> FaultPlan.scenario("crash-hard")
        crash-hard:rank=1,after_tasks=2
        slow:rank=0,slow_s=0.05
        @plan.json                   -> FaultPlan.from_json(file contents)

    Scenario parameters after ``:`` are ``key=value`` pairs forwarded to
    :meth:`FaultPlan.scenario` (ints and floats are coerced). ``seed`` is
    the default seed when the spec does not carry one.
    """
    if spec is None or spec == "none":
        return None
    if spec.startswith("@"):
        with open(spec[1:], "r", encoding="utf-8") as fh:
            return FaultPlan.from_json(fh.read())
    name, _, params = spec.partition(":")
    kwargs: dict = {"seed": seed}
    for pair in filter(None, params.split(",")):
        key, _, value = pair.partition("=")
        key = key.strip()
        if key in ("rank", "after_tasks", "seed"):
            kwargs[key] = int(value)
        else:
            kwargs[key] = float(value)
    return FaultPlan.scenario(name.strip(), **kwargs)


class FaultInjector:
    """Per-worker fault state: wraps outgoing links, tallies injections."""

    def __init__(self, plan: FaultPlan, rank: int):
        self.plan = plan
        self.rank = rank
        self.injected = {f: 0 for f in FAULT_CLASSES}

    def wrap_links(self, links: dict[int, Link]) -> dict[int, Link]:
        """Replace each plain link with a fault-injecting one."""
        if not self.plan.message_faults_active:
            return links
        return {
            dst: FaultyLink(link.src, link.dst, link.queue, self)
            for dst, link in links.items()
        }


class FaultyLink(Link):
    """A :class:`Link` that applies the plan's message faults to data
    frames. Control frames pass through untouched."""

    __slots__ = ("injector", "_held", "_occurrence")

    def __init__(self, src: int, dst: int, queue, injector: FaultInjector):
        super().__init__(src, dst, queue)
        self.injector = injector
        #: Frames held back by delay faults: ``[frame, sends_remaining]``.
        self._held: list[list] = []
        self._occurrence: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _decisions(self, block: int) -> np.ndarray:
        occ = self._occurrence.get(block, 0)
        self._occurrence[block] = occ + 1
        plan = self.injector.plan
        rng = np.random.default_rng(
            [plan.seed, plan.attempt, self.src, self.dst, block & 0x7FFFFFFF,
             occ]
        )
        return rng.random(len(MESSAGE_FAULTS) + 1)

    @staticmethod
    def _flip_bit(frame: bytes, offset: int, bit: int) -> bytes:
        buf = bytearray(frame)
        buf[offset] ^= 1 << bit
        return bytes(buf)

    def send(self, frame: bytes, nbytes: int | None = None) -> None:
        if wire.frame_kind(frame) not in wire.DATA_KINDS:
            super().send(frame, nbytes)
            return
        plan = self.injector.plan
        block = wire.frame_block(frame)
        u = self._decisions(block)
        duplicate = u[4] < plan.duplicate
        if u[0] < plan.drop:
            # The frame left the NIC (counted) but the fabric ate it.
            self.injector.injected["drop"] += 1
            self._count(frame, nbytes)
            self._tick_held()
            return
        if u[1] < plan.corrupt:
            if wire.frame_kind(frame) == wire.BLOCK_REF:
                # The descriptor carries no payload bytes — the logical
                # payload's integrity words are the slot metadata (offset +
                # slot CRC), so that is what "payload corruption" flips.
                # The frame CRC covers the region, so the receiver rejects
                # and NACKs exactly like an inline payload flip.
                self.injector.injected["corrupt"] += 1
                span = wire.REF_REGION_LEN
                offset = wire.REF_REGION_START + int(u[5] * span) % span
                frame = self._flip_bit(frame, offset, int(u[5] * 8) % 8)
            elif len(frame) > wire.HEADER_BYTES:
                self.injector.injected["corrupt"] += 1
                span = len(frame) - wire.HEADER_BYTES
                offset = wire.HEADER_BYTES + int(u[5] * span) % span
                frame = self._flip_bit(frame, offset, int(u[5] * 8) % 8)
        elif u[2] < plan.corrupt_header:
            self.injector.injected["corrupt_header"] += 1
            # Flip a bit inside the header prefix (fields 4..29).
            offset = 4 + int(u[5] * 25) % 25
            frame = self._flip_bit(frame, offset, int(u[5] * 8) % 8)
        if u[3] < plan.delay:
            self.injector.injected["delay"] += 1
            self._count(frame, nbytes)
            self._held.append([frame, max(1, plan.delay_messages)])
            if duplicate:
                self.injector.injected["duplicate"] += 1
                super().send(frame, nbytes)
            self._tick_held()
            return
        super().send(frame, nbytes)
        if duplicate:
            self.injector.injected["duplicate"] += 1
            super().send(frame, nbytes)
        self._tick_held()

    def _tick_held(self) -> None:
        due = []
        for item in self._held:
            item[1] -= 1
            if item[1] <= 0:
                due.append(item)
        for item in due:
            self._held.remove(item)
            self.queue.put(item[0])

    def flush(self) -> None:
        """Deliver every delayed frame (called at worker loop end), then
        ship any coalesced batch."""
        for frame, _ in self._held:
            self.queue.put(frame)
        self._held.clear()
        self.flush_pending()
