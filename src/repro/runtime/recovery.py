"""Driver-level checkpoint/restart for the message-passing runtime.

:func:`run_with_recovery` wraps :func:`~repro.runtime.engine.run_mp_fanout`
in a bounded restart loop:

1. run the factorization with the in-run integrity protocol enabled
   (CRC reject + NACK/retransmit + duplicate suppression);
2. if the attempt dies (worker crash, death without reporting, timeout),
   harvest the completed-block *checkpoint* every reporting worker shipped
   home, shrink the block map onto the P - f surviving processes, and
   restart — checkpointed blocks are preloaded, their tasks skipped;
3. after ``max_restarts`` failed restarts (or when shrunk to nothing),
   degrade to the sequential :class:`~repro.numeric.blockfact.BlockCholesky`
   backend as a last resort.

Every attempt is logged in a structured :class:`FailureReport` attached to
the returned :class:`~repro.runtime.engine.MPRuntimeResult`, so a caller
can always tell whether the factor came from a clean run, a recovered
restart, or the sequential fallback — never from a silent wrong answer.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.blocks.structure import BlockStructure
from repro.fanout.tasks import TaskGraph
from repro.numeric.blockfact import BlockCholesky
from repro.runtime import wire
from repro.runtime.engine import (
    FanoutError,
    MPRuntimeResult,
    plan_owners,
    run_mp_fanout,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.trace import RunTrace

#: FailureReport.outcome values. The service layer reuses these to tag
#: each JobRecord with how the job survived (clean / re-run after a pool
#: heal / per-job sequential fallback).
OUTCOME_CLEAN = "clean"
OUTCOME_RECOVERED = "recovered"
OUTCOME_DEGRADED = "degraded_sequential"

#: Mapping name reported by sequential-fallback results.
SEQUENTIAL_MAPPING = "sequential-fallback"


@dataclass
class FailedAttempt:
    """One failed parallel attempt, as recorded by the restart loop."""

    attempt: int
    nprocs: int
    failed_ranks: list[int]
    error: str
    checkpoint_blocks: int
    wall_s: float

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class FailureReport:
    """Structured account of how a factorization survived its faults."""

    outcome: str = OUTCOME_CLEAN
    attempts: list[FailedAttempt] = field(default_factory=list)
    restarts: int = 0
    final_nprocs: int = 0
    checkpoint_blocks_used: int = 0
    recovery_events: int = 0
    faults_injected: dict = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome in (OUTCOME_CLEAN, OUTCOME_RECOVERED)

    @property
    def degraded(self) -> bool:
        return self.outcome == OUTCOME_DEGRADED

    def to_dict(self) -> dict:
        d = dict(self.__dict__)
        d["attempts"] = [a.to_dict() for a in self.attempts]
        return d

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        lines = [
            f"outcome={self.outcome} restarts={self.restarts} "
            f"final_P={self.final_nprocs} "
            f"checkpoint_blocks={self.checkpoint_blocks_used} "
            f"recovery_events={self.recovery_events}"
        ]
        for a in self.attempts:
            lines.append(
                f"  attempt {a.attempt} (P={a.nprocs}) failed "
                f"[ranks {a.failed_ranks}] after {a.wall_s * 1e3:.0f} ms, "
                f"salvaged {a.checkpoint_blocks} blocks: "
                f"{a.error.strip().splitlines()[-1] if a.error else '?'}"
            )
        if self.faults_injected:
            lines.append(f"  faults injected: {self.faults_injected}")
        return "\n".join(lines)


def _harvest_checkpoint(
    exc: FanoutError, tg: TaskGraph, checkpoint: dict[int, bytes]
) -> None:
    """Fold the completed-block frames salvaged from a failed attempt into
    the running checkpoint (frames are CRC-verified before acceptance).

    On the shm transport the engine already rewrote any ``BLOCK_REF``
    descriptors as inline frames before destroying the arena, so every
    salvaged frame here carries its payload and outlives the attempt."""
    for res in exc.results.values():
        for frame in res.frames:
            try:
                b = wire.frame_block(frame)
                if b in checkpoint or not 0 <= b < tg.nblocks:
                    continue
                wire.unpack(frame)  # CRC + shape check; corrupt -> skip
            except wire.WireError:
                continue
            checkpoint[b] = frame


def _salvage_trace(exc: FanoutError, attempt: int, P: int) -> RunTrace | None:
    """Merge the worker traces a failed attempt shipped home (None when
    the attempt ran untraced or nothing was salvaged)."""
    worker_traces = {
        r: res.trace for r, res in exc.results.items()
        if getattr(res, "trace", None) is not None
    }
    if not worker_traces:
        return None
    return RunTrace.from_workers(
        worker_traces,
        meta={"nprocs": P, "attempt": attempt, "failed": True},
        attempt=attempt,
    )


def run_with_recovery(
    structure: BlockStructure,
    A: sparse.spmatrix,
    tg: TaskGraph,
    nprocs: int,
    mapping: str = "DW/CY",
    use_domains: bool = False,
    fault_plan: FaultPlan | None = None,
    max_restarts: int = 2,
    fallback_sequential: bool = True,
    plan_cache: dict | None = None,
    **kwargs,
) -> MPRuntimeResult:
    """Factor ``A`` in parallel, restarting on failure, degrading last.

    Returns an :class:`MPRuntimeResult` whose ``failure_report`` is always
    populated. Raises only if ``fallback_sequential`` is disabled and
    every parallel attempt failed. Extra ``kwargs`` flow to
    :func:`run_mp_fanout` (timeouts, poll interval, scheduling policy,
    transport...). ``plan_cache`` memoizes owner plans across calls and
    restarts, keyed on ``(P, mapping, use_domains)`` — pass a dict owned
    by the caller (e.g. :class:`repro.solver.SparseCholesky`) so repeated
    ``factor()`` calls and same-P restarts skip re-planning.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    wm = tg.workmodel
    t_start = time.perf_counter()
    report = FailureReport()
    checkpoint: dict[int, bytes] = {}
    kwargs.setdefault("dead_grace_s", 10.0)
    P = nprocs
    last_exc: FanoutError | None = None
    salvaged_traces: list[RunTrace] = []
    for attempt in range(max_restarts + 1):
        key = (P, mapping, use_domains)
        if plan_cache is not None and key in plan_cache:
            owners, name = plan_cache[key]
        else:
            owners, name = plan_owners(wm, tg, P, mapping, use_domains)
            if plan_cache is not None:
                plan_cache[key] = (owners, name)
        plan_a = fault_plan.for_attempt(attempt) if fault_plan else None
        t_attempt = time.perf_counter()
        try:
            res = run_mp_fanout(
                structure, A, tg, owners, P,
                mapping=name,
                fault_plan=plan_a,
                recovery=True,
                checkpoint=checkpoint or None,
                **kwargs,
            )
        except FanoutError as exc:
            last_exc = exc
            before = len(checkpoint)
            _harvest_checkpoint(exc, tg, checkpoint)
            salvage = _salvage_trace(exc, attempt, P)
            if salvage is not None:
                salvaged_traces.append(salvage)
            report.attempts.append(FailedAttempt(
                attempt=attempt,
                nprocs=P,
                failed_ranks=list(exc.failed_ranks),
                error=str(exc),
                checkpoint_blocks=len(checkpoint) - before,
                wall_s=time.perf_counter() - t_attempt,
            ))
            # Shrink the block map onto the surviving processes.
            P = max(1, P - max(1, len(exc.failed_ranks)))
            continue
        report.outcome = (
            OUTCOME_CLEAN if attempt == 0 else OUTCOME_RECOVERED
        )
        report.restarts = attempt
        report.final_nprocs = P
        report.checkpoint_blocks_used = len(checkpoint)
        report.recovery_events = res.metrics.recovery_events_total
        report.faults_injected = res.metrics.faults_injected_total
        report.wall_s = time.perf_counter() - t_start
        res.failure_report = report
        if salvaged_traces:
            # Prepend the failed attempts' salvaged events so the final
            # trace tells the whole multi-attempt story.
            res.trace = RunTrace.concat([*salvaged_traces, res.trace])
        return res

    if not fallback_sequential:
        report.outcome = OUTCOME_DEGRADED
        assert last_exc is not None
        last_exc.failure_report = report  # type: ignore[attr-defined]
        raise last_exc

    # Last resort: the sequential backend (always correct, never parallel).
    factor = BlockCholesky(structure, A).factor()
    report.outcome = OUTCOME_DEGRADED
    report.restarts = len(report.attempts)
    report.final_nprocs = 1
    report.checkpoint_blocks_used = len(checkpoint)
    report.wall_s = time.perf_counter() - t_start
    metrics = RuntimeMetrics(
        nprocs=1, wall_s=report.wall_s, workers=[],
        mapping=SEQUENTIAL_MAPPING,
    )
    res = MPRuntimeResult(
        factor=factor,
        metrics=metrics,
        owners=np.zeros(tg.nblocks, dtype=np.int64),
        mapping=SEQUENTIAL_MAPPING,
        meta={"fallback": True},
        failure_report=report,
        trace=RunTrace.concat(salvaged_traces) if salvaged_traces else None,
    )
    return res
