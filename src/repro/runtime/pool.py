"""Persistent worker pool: the engine's one-shot lifecycle made resident.

:func:`repro.runtime.engine.run_mp_fanout` pays full job setup for every
matrix: spawn workers, build links, create an arena, run, tear everything
down. For a factorization *service* — the paper's own motivating workload
is repeated numeric factorization inside interior-point LP loops — that
setup dominates. :class:`WorkerPool` keeps the worker processes and the
link fabric alive across jobs and ships each job as a small message:

* **Pattern contexts** travel once. The first job of a sparsity pattern
  carries the block structure, task graph, owner plan, and arena name;
  workers cache them (and their arena attachment) keyed by pattern id, so
  every later job with the same pattern is *values-only*: a single float64
  array (the permuted matrix's csc data) per worker.
* **Batched dispatch.** A batch of jobs is one command put per worker;
  workers run the jobs back to back without returning to the driver in
  between, so a burst of small factorizations costs one dispatch
  round-trip instead of one per job.
* **Job-tagged frames.** Every queue item is ``(seq, item)`` where ``seq``
  is the global job number. A worker that runs ahead can already be
  fanning out job *k+1* while a peer still drains job *k*; the router
  parks frames for other jobs so the wrong :class:`Worker` never sees
  them (see :class:`InboxRouter`).
* **Arena-reuse barrier.** Shared-memory arenas are *per pattern* and
  live across jobs, so two jobs with the same pattern would race on the
  same slots. A job that reuses an in-flight arena waits until every rank
  announced completion of the previous job on that arena (DONE control
  frames, 64 bytes each). Inline jobs, and jobs on distinct arenas,
  pipeline freely. Gather frames are always shipped inline in pool mode
  (:attr:`Worker.inline_gather`) so the driver never reads a slot that a
  later job may have overwritten.

Failure containment: a worker error poisons only its own job — the
erroring worker broadcasts ABORT for that job's tag, peers abort that job
and move on to the next one in the batch, and the driver reports the job
failed while the rest of the batch completes. Dead processes and global
timeouts tear the pool down and bring up a fresh crew — on ``P - f``
workers when ``f`` processes died (:meth:`WorkerPool.heal`); pattern
contexts are re-shipped lazily because ``seen_patterns`` is cleared, and
the caller re-plans owners for the shrunken crew. Per-job deadlines are
enforced driver-side: an expired job gets a seq-tagged ABORT injected
into every inbox, so exactly that job aborts while its batch keeps
running. Workers heartbeat on the result queue before every job, so the
driver can tell a stalled crew from a slow one. The pool never runs the
checkpoint/recovery protocol — that remains the one-shot engine's job —
but it does thread :class:`~repro.runtime.faults.FaultPlan` injection
into individual jobs so the service layer above is chaos-testable.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.runtime import wire
from repro.runtime.engine import _reap
from repro.runtime.links import Link, LinkFabric
from repro.runtime.worker import Worker, WorkerResult

__all__ = [
    "HEARTBEAT_SEQ",
    "PatternContext",
    "PoolJob",
    "JobOutcome",
    "PoolError",
    "PoolTimeoutError",
    "WorkerPool",
]


class PoolError(RuntimeError):
    """The pool itself failed (dead worker process, protocol breach)."""


class PoolTimeoutError(PoolError):
    """A batch exceeded its global deadline."""


#: Result-queue tag used by worker heartbeats (never a valid job seq).
HEARTBEAT_SEQ = -1


# ----------------------------------------------------------------------
# Job descriptions (driver -> worker)
# ----------------------------------------------------------------------
@dataclass
class PatternContext:
    """Everything a worker must hold to run jobs of one sparsity pattern.

    Shipped once per pattern per pool incarnation; ``indptr``/``indices``
    describe the *permuted* matrix, so later jobs need only a values
    array. ``arena_name`` names the driver-owned shared-memory segment
    for the pattern (None on the inline transport).
    """

    pattern_id: str
    structure: object
    tg: object
    owners: np.ndarray
    priorities: np.ndarray | None
    indptr: np.ndarray
    indices: np.ndarray
    shape: tuple
    arena_name: str | None = None
    op_fixed_cost: int = 1000
    #: Execution discipline for the pattern's jobs: ``"static"`` or
    #: ``"dynamic"`` (work stealing; see :mod:`repro.runtime.worker`).
    schedule: str = "static"
    steal_seed: int = 0


@dataclass
class PoolJob:
    """One factorization (or warm solve) dispatched to the pool.

    ``values`` is the csc ``data`` array of the permuted input matrix.
    ``context`` is present exactly when this pool incarnation has not seen
    the pattern yet. ``wait_for`` is the seq of the latest earlier job
    sharing this job's arena (barrier); ``announce`` makes every rank
    broadcast a DONE control frame tagged with this job when it finishes,
    so later same-arena jobs can wait on it. ``deadline`` is an absolute
    ``time.monotonic()`` instant past which the driver aborts the job
    (``time.monotonic`` is system-wide on Linux, so workers and driver
    agree on it). ``fault_plan`` injects deterministic faults into this
    job's workers — chaos testing for the layers above the pool.

    ``kind="solve"`` runs the distributed triangular solve against the
    rank's *resident* factor — the :class:`~repro.runtime.worker.Worker`
    retained from the pattern's last clean factor job. Only ``rhs`` (the
    permuted right-hand-side panel) travels; no pattern context, no
    matrix values, no factor blocks. A solve job on a rank with no
    resident factor fails with a typed protocol error rather than
    recomputing anything.
    """

    seq: int
    pattern_id: str
    values: np.ndarray
    context: PatternContext | None = None
    wait_for: int | None = None
    announce: bool = False
    trace_capacity: int = 0
    deadline: float | None = None
    fault_plan: object | None = None
    kind: str = "factor"
    rhs: np.ndarray | None = None


@dataclass
class JobOutcome:
    """Driver-side result of one pooled job."""

    seq: int
    results: dict = field(default_factory=dict)  # rank -> WorkerResult
    error: str | None = None
    aborted: bool = False
    expired: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and not self.aborted


# ----------------------------------------------------------------------
# Job-tagged views over the persistent fabric
# ----------------------------------------------------------------------
class InboxRouter:
    """Demultiplexes one worker's tagged inbox by job sequence number.

    Frames for the requested job are returned; frames for other (later)
    jobs are parked until their job asks for them; frames older than
    ``min_seq`` — stragglers of fully-collected batches, e.g. late DONE
    announcements — are dropped.
    """

    def __init__(self, inbox):
        self.inbox = inbox
        self.parked: dict[int, deque] = {}
        self.min_seq = 0

    def prune(self, min_seq: int) -> None:
        self.min_seq = min_seq
        for tag in [t for t in self.parked if t < min_seq]:
            del self.parked[tag]

    def _accept(self, tag: int, item, seq: int):
        if tag == seq:
            return item
        if tag >= self.min_seq:
            self.parked.setdefault(tag, deque()).append(item)
        return None

    def get_nowait(self, seq: int):
        q = self.parked.get(seq)
        if q:
            return q.popleft()
        while True:
            tag, item = self.inbox.get_nowait()  # raises Empty when drained
            got = self._accept(tag, item, seq)
            if got is not None:
                return got

    def get(self, seq: int, timeout: float | None = None):
        q = self.parked.get(seq)
        if q:
            return q.popleft()
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise queue_mod.Empty
            tag, item = self.inbox.get(timeout=remaining)
            got = self._accept(tag, item, seq)
            if got is not None:
                return got


class _TaggedQueue:
    """Write-side wrapper tagging every put with a job seq."""

    __slots__ = ("q", "tag")

    def __init__(self, q, tag: int):
        self.q = q
        self.tag = tag

    def put(self, item) -> None:
        self.q.put((self.tag, item))

    def cancel_join_thread(self) -> None:
        self.q.cancel_join_thread()

    def close(self) -> None:  # pragma: no cover - Worker never closes links
        pass


class _JobInbox:
    """Read-side wrapper: the inbox one :class:`Worker` (one job) sees."""

    __slots__ = ("router", "seq")

    def __init__(self, router: InboxRouter, seq: int):
        self.router = router
        self.seq = seq

    def get(self, timeout: float | None = None):
        return self.router.get(self.seq, timeout)

    def get_nowait(self):
        return self.router.get_nowait(self.seq)


class JobFabric:
    """A per-job view of the persistent :class:`LinkFabric`.

    Fresh :class:`Link` objects per job keep the per-link counters
    job-local (they land in that job's metrics); the underlying queues
    persist for the life of the pool.
    """

    def __init__(self, base: LinkFabric, router: InboxRouter, seq: int):
        self.base = base
        self.router = router
        self.seq = seq
        self.nprocs = base.nprocs

    def inbox(self, rank: int) -> _JobInbox:
        return _JobInbox(self.router, self.seq)

    def outgoing(self, src: int) -> dict[int, Link]:
        return {
            dst: Link(src, dst, _TaggedQueue(self.base.inboxes[dst], self.seq))
            for dst in range(self.nprocs)
            if dst != src
        }


# ----------------------------------------------------------------------
# Worker-side resident loop
# ----------------------------------------------------------------------
class _PoolWorker:
    """The resident process: runs batches of jobs until told to stop."""

    def __init__(self, rank, fabric, commands, result_queue, poll_s,
                 stall_timeout_s, record_timeline):
        self.rank = rank
        self.fabric = fabric
        self.commands = commands
        self.result_queue = result_queue
        self.poll_s = poll_s
        self.stall_timeout_s = stall_timeout_s
        self.record_timeline = record_timeline
        self.router = InboxRouter(fabric.inbox(rank))
        self.patterns: dict[str, tuple] = {}  # pid -> (context, arena)
        self.done_seen: dict[int, set] = {}
        #: pid -> the Worker of the pattern's last clean factor job,
        #: retained with its factor blocks for warm solve jobs.
        self.resident: dict[str, Worker] = {}

    # -- lifecycle -----------------------------------------------------
    def run(self) -> None:
        try:
            while True:
                cmd = self.commands.get()
                if cmd[0] == "stop":
                    break
                if cmd[0] == "evict":
                    self._evict(cmd[1])
                    continue
                _, epoch, jobs = cmd
                if jobs:
                    self.router.prune(jobs[0].seq)
                    self.done_seen = {
                        s: v for s, v in self.done_seen.items()
                        if s >= jobs[0].seq
                    }
                for job in jobs:
                    self._run_job(job, epoch)
        finally:
            for _, arena in self.patterns.values():
                if arena is not None:
                    arena.close()
            self.result_queue.cancel_join_thread()

    def _evict(self, pattern_ids) -> None:
        for pid in pattern_ids:
            self.resident.pop(pid, None)
            ctx_arena = self.patterns.pop(pid, None)
            if ctx_arena is not None and ctx_arena[1] is not None:
                ctx_arena[1].close()

    def _install(self, context: PatternContext):
        arena = None
        if context.arena_name is not None:
            from repro.runtime.arena import BlockArena

            arena = BlockArena.attach(context.tg, context.arena_name)
        self.patterns[context.pattern_id] = (context, arena)
        return self.patterns[context.pattern_id]

    # -- one job -------------------------------------------------------
    def _run_job(self, job: PoolJob, epoch: float) -> None:
        # Heartbeat: tells the driver this rank is alive and which job it
        # is about to run; rides the result queue under a reserved tag.
        self.result_queue.put(
            (HEARTBEAT_SEQ, (self.rank, job.seq, time.monotonic()))
        )
        if getattr(job, "kind", "factor") == "solve":
            self._run_solve_job(job)
            return
        entry = self.patterns.get(job.pattern_id)
        if job.context is not None:
            entry = self._install(job.context)
        if entry is None:
            self._report_error(
                job.seq,
                f"worker {self.rank} has no context for pattern "
                f"{job.pattern_id!r} (pool protocol breach)",
            )
            return
        context, arena = entry
        if job.wait_for is not None:
            try:
                self._await_done(job.wait_for)
            except RuntimeError:
                import traceback

                self._report_error(job.seq, traceback.format_exc())
                return
        A = sparse.csc_matrix(
            (job.values, context.indices, context.indptr),
            shape=tuple(context.shape),
        )
        worker = Worker(
            self.rank,
            structure=context.structure,
            A=A,
            tg=context.tg,
            owners=context.owners,
            fabric=JobFabric(self.fabric, self.router, job.seq),
            result_queue=_TaggedQueue(self.result_queue, job.seq),
            priorities=context.priorities,
            epoch=epoch,
            poll_s=self.poll_s,
            stall_timeout_s=self.stall_timeout_s,
            record_timeline=self.record_timeline,
            trace_capacity=job.trace_capacity,
            op_fixed_cost=context.op_fixed_cost,
            transport="shm" if arena is not None else "inline",
            arena=arena,
            inline_gather=True,
            fault_plan=job.fault_plan,
            schedule=getattr(context, "schedule", "static"),
            steal_seed=getattr(context, "steal_seed", 0),
        )
        worker.run()
        # Retain the factored worker for warm solve jobs; a failed or
        # aborted factor invalidates any previous resident factor too.
        if worker.metrics.error is None and not worker.metrics.aborted:
            self.resident[job.pattern_id] = worker
        else:
            self.resident.pop(job.pattern_id, None)
        # DONE announcements consumed mid-job by the Worker count toward
        # this job's barrier.
        if worker.done_peers:
            self.done_seen.setdefault(job.seq, set()).update(
                worker.done_peers
            )
        if job.announce:
            self._announce(job.seq)

    def _run_solve_job(self, job: PoolJob) -> None:
        """Warm solve: re-arm the pattern's resident factored worker.

        Only the RHS panel travelled in the job; the factor blocks are
        already in this process (arena slots on shm, local arrays
        inline), so the wire sees RHS fragments and nothing else.
        """
        worker = self.resident.get(job.pattern_id)
        if worker is None:
            self._report_error(
                job.seq,
                f"worker {self.rank} has no resident factor for pattern "
                f"{job.pattern_id!r} (factor before solving, and note "
                f"restarts clear residency)",
            )
            return
        if job.wait_for is not None:
            try:
                self._await_done(job.wait_for)
            except RuntimeError:
                import traceback

                self._report_error(job.seq, traceback.format_exc())
                return
        worker.run_solve(
            job.rhs,
            JobFabric(self.fabric, self.router, job.seq),
            _TaggedQueue(self.result_queue, job.seq),
            trace_capacity=job.trace_capacity,
            fault_plan=job.fault_plan,
        )
        if worker.done_peers:
            self.done_seen.setdefault(job.seq, set()).update(
                worker.done_peers
            )
        if job.announce:
            self._announce(job.seq)

    def _announce(self, seq: int) -> None:
        """Tell every peer this rank is done with job ``seq`` — sent even
        after an error/abort so no peer blocks on a barrier forever."""
        frame = wire.pack_done(self.rank)
        for dst in range(self.fabric.nprocs):
            if dst != self.rank:
                self.fabric.inboxes[dst].put((seq, frame))

    def _await_done(self, seq: int) -> None:
        """Block until every peer announced completion of job ``seq``.

        ABORT frames for ``seq`` count as completion — the erroring peer
        will never send DONE, but it *is* finished with the arena.
        """
        peers = set(range(self.fabric.nprocs)) - {self.rank}
        seen = self.done_seen.setdefault(seq, set())
        deadline = time.monotonic() + self.stall_timeout_s
        while not peers <= seen:
            try:
                item = self.router.get(seq, timeout=self.poll_s)
            except queue_mod.Empty:
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"worker {self.rank} barrier timeout: peers "
                        f"{sorted(peers - seen)} never finished job {seq}"
                    )
                continue
            for frame in item if isinstance(item, list) else [item]:
                try:
                    msg = wire.unpack(frame, copy=False)
                except wire.WireError:
                    continue
                if msg.kind in (wire.DONE, wire.ABORT):
                    seen.add(msg.src)

    def _report_error(self, seq: int, text: str) -> None:
        from repro.runtime.metrics import WorkerMetrics

        metrics = WorkerMetrics(rank=self.rank)
        metrics.error = text
        self.result_queue.put(
            (seq, WorkerResult(self.rank, metrics, []))
        )


def pool_worker_main(rank: int, kwargs: dict) -> None:
    """Process entry point (module-level for the spawn start method)."""
    _PoolWorker(rank, **kwargs).run()


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
class WorkerPool:
    """A long-lived crew of factorization workers.

    Usage::

        pool = WorkerPool(nprocs=4).start()
        outcomes = pool.run_batch([PoolJob(...), ...])
        pool.close()

    The pool tracks which pattern ids this incarnation has shipped
    (:attr:`seen_patterns`); callers include a :class:`PatternContext` on
    a job exactly when its pattern is not in that set. :meth:`restart`
    replaces dead processes with a fresh fabric and clears the set, so
    contexts are re-shipped lazily.
    """

    def __init__(
        self,
        nprocs: int,
        start_method: str | None = None,
        poll_s: float = 0.002,
        stall_timeout_s: float = 30.0,
        record_timeline: bool = False,
    ):
        if nprocs < 1:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        #: The width the pool was configured with. :meth:`heal` shrinks
        #: :attr:`nprocs` below this after process deaths; :meth:`regrow`
        #: restores it once the crew is quiescent again.
        self.configured_nprocs = nprocs
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self.start_method = start_method
        self.poll_s = poll_s
        self.stall_timeout_s = stall_timeout_s
        self.record_timeline = record_timeline
        self.seen_patterns: set[str] = set()
        self.generation = 0
        #: Why the last :meth:`run_batch` broke the pool (None when it
        #: ran clean). Callers use this to distinguish per-job failures
        #: from pool-level breakage that warrants retrying jobs.
        self.last_error: str | None = None
        #: rank -> last heartbeat instant (``time.monotonic``), updated
        #: as batches run; survives restarts for post-mortem inspection.
        self.last_heartbeats: dict[int, float] = {}
        self._procs: list = []
        self._commands: list = []
        self._results = None
        self._fabric: LinkFabric | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        return bool(self._procs)

    @property
    def alive(self) -> bool:
        return bool(self._procs) and all(p.is_alive() for p in self._procs)

    def dead_ranks(self) -> list[int]:
        """Ranks whose process is no longer alive (empty when healthy)."""
        return [
            rank for rank, p in enumerate(self._procs) if not p.is_alive()
        ]

    def start(self) -> "WorkerPool":
        if self.running:
            return self
        ctx = mp.get_context(self.start_method)
        self._fabric = LinkFabric(self.nprocs, ctx)
        self._commands = [ctx.Queue() for _ in range(self.nprocs)]
        self._results = ctx.Queue()
        self._procs = []
        self.generation += 1
        for rank in range(self.nprocs):
            kwargs = dict(
                fabric=self._fabric,
                commands=self._commands[rank],
                result_queue=self._results,
                poll_s=self.poll_s,
                stall_timeout_s=self.stall_timeout_s,
                record_timeline=self.record_timeline,
            )
            p = ctx.Process(
                target=pool_worker_main,
                args=(rank, kwargs),
                name=f"repro-pool-{self.generation}-{rank}",
            )
            p.daemon = True
            p.start()
            self._procs.append(p)
        return self

    def close(self) -> None:
        """Stop the workers and release every queue. Idempotent."""
        if not self.running:
            return
        for q in self._commands:
            try:
                q.put(("stop",))
            except Exception:  # pragma: no cover - closed/broken queue
                pass
        _reap(self._procs)
        self._procs = []
        if self._fabric is not None:
            self._fabric.shutdown()
            self._fabric = None
        for q in self._commands:
            q.cancel_join_thread()
            q.close()
        self._commands = []
        if self._results is not None:
            self._results.cancel_join_thread()
            self._results.close()
            self._results = None
        self.seen_patterns.clear()

    def restart(self) -> "WorkerPool":
        """Tear down (terminating stragglers) and bring up a fresh crew."""
        self.close()
        return self.start()

    def heal(self) -> "WorkerPool":
        """Restart on ``P - f`` workers, where ``f`` is the number of
        dead processes (floor 1). Mutates :attr:`nprocs`: callers must
        re-plan owners for any pattern planned for the old crew size
        (contexts are re-shipped anyway because ``seen_patterns`` is
        cleared). With no dead processes this is a plain restart — the
        cure for a stalled-but-alive crew."""
        dead = len(self.dead_ranks())
        self.close()
        if dead:
            self.nprocs = max(1, self.nprocs - dead)
        return self.start()

    def regrow(self) -> "WorkerPool":
        """Restore a healed (shrunken) pool to its configured width with
        a fresh crew. Safe only between batches — the restart clears
        ``seen_patterns``, so contexts re-ship lazily and callers re-plan
        owners for the full width exactly as they re-planned for the
        shrink. No-op while the pool is already at full width."""
        if self.nprocs >= self.configured_nprocs:
            return self
        self.close()
        self.nprocs = self.configured_nprocs
        return self.start()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- pattern bookkeeping -------------------------------------------
    def evict(self, pattern_ids) -> None:
        """Drop cached pattern contexts (and arena attachments) on every
        worker. The caller owns (and destroys) the arena segments."""
        pattern_ids = [
            pid for pid in pattern_ids if pid in self.seen_patterns
        ]
        if not pattern_ids or not self.running:
            return
        for q in self._commands:
            q.put(("evict", list(pattern_ids)))
        self.seen_patterns.difference_update(pattern_ids)

    # -- dispatch ------------------------------------------------------
    def abort_job(self, seq: int) -> None:
        """Inject a seq-tagged ABORT into every worker inbox.

        The ABORT's src is ``self.nprocs`` — outside the rank range — so
        it can never masquerade as a real peer in a DONE barrier. Workers
        abort exactly job ``seq`` (whether mid-run or not yet started)
        and report an aborted result; the rest of the batch is untouched.
        """
        if self._fabric is None:
            return
        frame = wire.pack_abort(self.nprocs)
        for dst in range(self.nprocs):
            self._fabric.inboxes[dst].put((seq, frame))

    def run_batch(
        self, jobs: list[PoolJob], timeout_s: float = 300.0
    ) -> dict[int, JobOutcome]:
        """Run ``jobs`` back to back on the resident crew.

        Returns one :class:`JobOutcome` per job seq. A job whose workers
        errored or aborted is reported failed but does not poison the
        rest of the batch; a job past its ``deadline`` is seq-aborted and
        reported ``expired``, likewise without poisoning the batch. A
        dead worker process or a global timeout heals the pool (restart
        on ``P - f`` workers) and fails every uncollected job;
        :attr:`last_error` records why.
        """
        if not jobs:
            return {}
        if not self.running:
            self.start()
        self.last_error = None
        epoch = time.perf_counter()
        t0 = time.monotonic()
        for q in self._commands:
            q.put(("batch", epoch, jobs))
        for job in jobs:
            if job.context is not None:
                self.seen_patterns.add(job.pattern_id)
        outcomes = {
            job.seq: JobOutcome(seq=job.seq) for job in jobs
        }
        pending = {job.seq: self.nprocs for job in jobs}
        job_deadlines = {
            job.seq: job.deadline for job in jobs if job.deadline is not None
        }
        deadline = t0 + timeout_s
        broken: str | None = None
        while pending:
            now = time.monotonic()
            if now - t0 > timeout_s:
                broken = (
                    f"pool batch timeout after {timeout_s:.0f}s: "
                    f"{len(pending)} job(s) incomplete"
                )
                break
            # Per-job deadlines: abort exactly the expired job. Workers
            # that already shipped results for it are unaffected; the
            # outcome stays failed even if stragglers later succeed.
            wait = min(0.1, deadline - now)
            for seq in [s for s in job_deadlines if s not in pending]:
                del job_deadlines[seq]
            for seq, dl in job_deadlines.items():
                out = outcomes[seq]
                if now > dl and not out.expired:
                    out.expired = True
                    if out.error is None:
                        out.error = (
                            f"job {seq} deadline exceeded "
                            f"({now - dl:.3f}s past)"
                        )
                    self.abort_job(seq)
                if not out.expired:
                    wait = min(wait, max(dl - now, 0.005))
            try:
                seq, res = self._results.get(timeout=max(wait, 0.001))
            except queue_mod.Empty:
                if not self.alive:
                    dead = [
                        p.name for p in self._procs if not p.is_alive()
                    ]
                    broken = f"pool worker process(es) died: {dead}"
                    break
                continue
            if seq == HEARTBEAT_SEQ:
                rank, _jseq, t = res
                self.last_heartbeats[rank] = t
                continue
            out = outcomes.get(seq)
            if out is None:  # pragma: no cover - stale result
                continue
            out.results[res.rank] = res
            if res.metrics.error is not None and out.error is None:
                out.error = res.metrics.error
            if res.metrics.aborted:
                out.aborted = True
            pending[seq] -= 1
            if pending[seq] == 0:
                out.wall_s = time.monotonic() - t0
                del pending[seq]
        if broken is not None:
            for seq in pending:
                out = outcomes[seq]
                if out.error is None:
                    out.error = broken
            self.last_error = broken
            self.heal()
        return outcomes
