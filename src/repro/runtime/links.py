"""Per-link message channels standing in for the interconnect.

The fabric owns one multiprocessing inbox queue per worker (its NIC receive
port). A :class:`Link` is a directed ``src -> dst`` virtual channel over the
destination's inbox; each worker instantiates its row of outgoing links
inside its own process, so the per-link message/byte counters are local,
race-free, and shipped home with the worker's metrics. Summed over links,
the counters reproduce exactly what the static predictor
(:func:`repro.analysis.comm_volume.communication_volume`) counts.
"""

from __future__ import annotations


class Link:
    """Directed ``src -> dst`` channel with traffic counters.

    Data frames (:meth:`send`) and control frames (:meth:`send_control`)
    are counted separately: the ``messages``/``bytes`` counters track only
    block traffic, so they stay directly comparable to the static
    communication-volume predictor even when the recovery protocol
    exchanges NACK/DONE control frames on the side.
    """

    __slots__ = ("src", "dst", "queue", "messages", "bytes",
                 "control_messages", "retransmits")

    def __init__(self, src: int, dst: int, queue):
        self.src = src
        self.dst = dst
        self.queue = queue
        self.messages = 0
        self.bytes = 0
        self.control_messages = 0
        self.retransmits = 0

    def send(self, frame: bytes) -> None:
        """Put one data (block) frame on the link (never blocks: queues
        are unbounded, buffered by a feeder thread)."""
        self.queue.put(frame)
        self.messages += 1
        self.bytes += len(frame)

    def send_control(self, frame: bytes) -> None:
        """Put one control frame (NACK/DONE/ABORT) on the link; counted
        apart from data traffic."""
        self.queue.put(frame)
        self.control_messages += 1

    def resend(self, frame: bytes) -> None:
        """Retransmit a data frame (recovery path): real traffic, counted
        both on the link and in the retransmit tally."""
        self.send(frame)
        self.retransmits += 1

    def flush(self) -> None:
        """Release any internally held frames (no-op on a plain link;
        fault-injecting links override this to deliver delayed frames)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Link({self.src}->{self.dst}, msgs={self.messages}, "
            f"bytes={self.bytes})"
        )


class LinkFabric:
    """The all-to-all interconnect of an ``nprocs``-worker runtime.

    Created in the driver process (the queues must exist before fork/spawn)
    and shipped to every worker; a worker then asks for its
    :meth:`outgoing` links and its own :meth:`inbox`.
    """

    def __init__(self, nprocs: int, ctx):
        if nprocs < 1:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        self.inboxes = [ctx.Queue() for _ in range(nprocs)]

    def inbox(self, rank: int):
        return self.inboxes[rank]

    def outgoing(self, src: int) -> dict[int, Link]:
        """Links from ``src`` to every other worker (call in the worker)."""
        return {
            dst: Link(src, dst, self.inboxes[dst])
            for dst in range(self.nprocs)
            if dst != src
        }

    def shutdown(self) -> None:
        """Drain and release the queues (driver-side cleanup)."""
        for q in self.inboxes:
            try:
                while True:
                    q.get_nowait()
            except Exception:
                pass
            q.close()
            q.cancel_join_thread()
