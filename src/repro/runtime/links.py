"""Per-link message channels standing in for the interconnect.

The fabric owns one multiprocessing inbox queue per worker (its NIC receive
port). A :class:`Link` is a directed ``src -> dst`` virtual channel over the
destination's inbox; each worker instantiates its row of outgoing links
inside its own process, so the per-link message/byte counters are local,
race-free, and shipped home with the worker's metrics. Summed over links,
the ``messages``/``bytes`` counters reproduce exactly what the static
predictor (:func:`repro.analysis.comm_volume.communication_volume`) counts.

Two byte ledgers per link:

``bytes``
    *Logical* traffic — the frame bytes the wire contract charges
    (``header + 8 * block_words``), identical across transports and equal
    to the static prediction. This is what validation reconciles.
``wire_bytes``
    *Transported* traffic — ``len(frame)`` actually put on the queue.
    Equal to ``bytes`` on the inline transport; collapses to 64 bytes per
    message on the shared-memory transport (header-only descriptors).

Coalescing: with ``coalesce`` enabled (the shm transport), data frames
accumulate in a per-link pending batch and ship as **one** queue put per
drain (:meth:`flush_pending`) — one pickling round-trip per ``(src, dst)``
burst instead of one per block. Control frames flush the batch first so
data-before-control ordering is preserved.
"""

from __future__ import annotations

#: Auto-flush threshold for coalesced batches; bounds receiver latency
#: when a producer emits a long run of blocks between drains.
COALESCE_MAX = 16


class Link:
    """Directed ``src -> dst`` channel with traffic counters.

    Data frames (:meth:`send`) and control frames (:meth:`send_control`)
    are counted separately: the ``messages``/``bytes`` counters track only
    block traffic, so they stay directly comparable to the static
    communication-volume predictor even when the recovery protocol
    exchanges NACK/DONE control frames on the side.
    """

    __slots__ = ("src", "dst", "queue", "messages", "bytes", "wire_bytes",
                 "control_messages", "retransmits", "steal_messages",
                 "steal_bytes", "solve_messages", "solve_bytes",
                 "coalesce", "_pending")

    def __init__(self, src: int, dst: int, queue):
        self.src = src
        self.dst = dst
        self.queue = queue
        self.messages = 0
        self.bytes = 0
        self.wire_bytes = 0
        self.control_messages = 0
        self.retransmits = 0
        self.steal_messages = 0
        self.steal_bytes = 0
        self.solve_messages = 0
        self.solve_bytes = 0
        self.coalesce = False
        self._pending: list[bytes] = []

    def _count(self, frame: bytes, nbytes: int | None) -> None:
        self.messages += 1
        self.bytes += len(frame) if nbytes is None else int(nbytes)
        self.wire_bytes += len(frame)

    def _put(self, frame: bytes) -> None:
        if self.coalesce:
            self._pending.append(frame)
            if len(self._pending) >= COALESCE_MAX:
                self.flush_pending()
        else:
            self.queue.put(frame)

    def send(self, frame: bytes, nbytes: int | None = None) -> None:
        """Put one data (block) frame on the link (never blocks: queues
        are unbounded, buffered by a feeder thread).

        ``nbytes`` is the frame's *logical* byte size; it defaults to
        ``len(frame)``, which is exact for the inline transport.
        """
        self._count(frame, nbytes)
        self._put(frame)

    def send_control(self, frame: bytes) -> None:
        """Put one control frame (NACK/DONE/ABORT) on the link; counted
        apart from data traffic. Flushes any coalesced data first so the
        receiver never sees control overtake the data it refers to."""
        self.flush_pending()
        self.queue.put(frame)
        self.control_messages += 1

    def send_steal(self, frame: bytes) -> None:
        """Put one work-stealing frame (REQ/GRANT/DENY/SHIP/RESULT) on
        the link. Stealing rides a *reliable* plane outside the data
        ledgers: it is never coalesced, never fault-injected (the kinds
        are outside ``wire.DATA_KINDS``), and counted in its own steal
        ledger so ``messages``/``bytes`` keep reconciling exactly with
        the static communication-volume predictor. Flushes coalesced
        data first so a grant never overtakes the blocks it refers to."""
        self.flush_pending()
        self.queue.put(frame)
        self.steal_messages += 1
        self.steal_bytes += len(frame)

    def send_solve(self, frame: bytes) -> None:
        """Put one triangular-solve frame (Y/FUP/X/BUP) on the link.

        The solve phase moves right-hand sides, not factor blocks, so
        these frames ride their own ledger outside the data counters —
        the factor-phase ``messages``/``bytes`` stay exactly equal to the
        static predictor, and the solve ledger reconciles against the
        solve predictor. RHS fragments always ship inline (even on the
        shm transport), so logical bytes equal ``len(frame)``. Flushes
        coalesced data first to preserve ordering."""
        self.flush_pending()
        self.queue.put(frame)
        self.solve_messages += 1
        self.solve_bytes += len(frame)

    def resend(self, frame: bytes, nbytes: int | None = None) -> None:
        """Retransmit a data frame (recovery path): real traffic, counted
        both on the link and in the retransmit tally. Flushed immediately
        — the NACKing peer is stalled waiting for it."""
        self.send(frame, nbytes)
        self.flush_pending()
        self.retransmits += 1

    def flush_pending(self) -> None:
        """Ship the coalesced batch as a single queue put (a lone frame
        ships bare, so receivers see the same item types either way)."""
        if self._pending:
            batch, self._pending = self._pending, []
            self.queue.put(batch if len(batch) > 1 else batch[0])

    def flush(self) -> None:
        """Release everything the link holds back: the coalesced batch
        here, plus fault-injected delayed frames in the faulty subclass."""
        self.flush_pending()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Link({self.src}->{self.dst}, msgs={self.messages}, "
            f"bytes={self.bytes})"
        )


class LinkFabric:
    """The all-to-all interconnect of an ``nprocs``-worker runtime.

    Created in the driver process (the queues must exist before fork/spawn)
    and shipped to every worker; a worker then asks for its
    :meth:`outgoing` links and its own :meth:`inbox`.
    """

    def __init__(self, nprocs: int, ctx):
        if nprocs < 1:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        self.inboxes = [ctx.Queue() for _ in range(nprocs)]

    def inbox(self, rank: int):
        return self.inboxes[rank]

    def outgoing(self, src: int) -> dict[int, Link]:
        """Links from ``src`` to every other worker (call in the worker)."""
        return {
            dst: Link(src, dst, self.inboxes[dst])
            for dst in range(self.nprocs)
            if dst != src
        }

    def shutdown(self) -> None:
        """Drain and release the queues (driver-side cleanup)."""
        for q in self.inboxes:
            try:
                while True:
                    q.get_nowait()
            except Exception:
                pass
            q.close()
            q.cancel_join_thread()
