"""Serialized block wire format for the message-passing runtime.

Every message on a link is one *frame*: a fixed 64-byte header followed by
the block payload as little-endian float64 words. The header size equals
``MachineParams.header_bytes`` and diagonal blocks travel as their packed
lower triangle (``w*(w+1)/2`` words — the only significant part of
``L_KK``), so a frame's byte length is exactly the
``machine.message_bytes(block_words)`` that the static predictor
:func:`repro.analysis.comm_volume.communication_volume` charges. Measured
and predicted communication volume are therefore directly comparable,
message for message and byte for byte.

Frame kinds
-----------
``BLOCK``
    A completed factor block fanned out to a consumer (or gathered to the
    driver at shutdown). ``block`` is the global block index; ``rows`` /
    ``cols`` are the dense block shape.
``ABORT``
    A worker hit an error; peers should stop promptly. Payload-free.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

#: Frame kinds.
BLOCK, ABORT = 1, 2

#: Wire header: magic, kind, src rank, block id, rows, cols, payload words.
_HEADER = struct.Struct("<4sBiiiiq")
#: Fixed frame header size — matches ``MachineParams.header_bytes``.
HEADER_BYTES = 64
_MAGIC = b"RSB1"
_PAD = b"\0" * (HEADER_BYTES - _HEADER.size)


@dataclass(frozen=True)
class WireMessage:
    """A decoded frame."""

    kind: int
    src: int
    block: int
    rows: int
    cols: int
    payload: np.ndarray | None

    @property
    def nbytes(self) -> int:
        words = 0 if self.payload is None else self.payload.size
        return HEADER_BYTES + 8 * words


def pack_block(
    src: int, block: int, I: int, J: int, array: np.ndarray
) -> bytes:
    """Serialize factor block ``(I, J)`` (global index ``block``).

    Diagonal blocks (``I == J``) ship only the lower triangle; subdiagonal
    blocks ship the full dense ``rows x cols`` array.
    """
    arr = np.ascontiguousarray(array, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("block payload must be a 2-D array")
    rows, cols = arr.shape
    if I == J:
        if rows != cols:
            raise ValueError("diagonal block must be square")
        words = arr[np.tril_indices(rows)]
    else:
        words = arr.ravel()
    header = _HEADER.pack(
        _MAGIC, BLOCK, src, block, rows, cols, words.shape[0]
    )
    return b"".join((header, _PAD, words.tobytes()))


def pack_abort(src: int) -> bytes:
    """Serialize a payload-free ABORT frame."""
    return _HEADER.pack(_MAGIC, ABORT, src, -1, 0, 0, 0) + _PAD


def unpack(frame: bytes) -> WireMessage:
    """Decode one frame back into a :class:`WireMessage`.

    Diagonal payloads are unpacked from the packed triangle into a full
    square array with an explicitly zero upper triangle.
    """
    if len(frame) < HEADER_BYTES:
        raise ValueError("frame shorter than the wire header")
    magic, kind, src, block, rows, cols, nwords = _HEADER.unpack_from(frame)
    if magic != _MAGIC:
        raise ValueError(f"bad frame magic {magic!r}")
    if kind == ABORT:
        return WireMessage(ABORT, src, block, 0, 0, None)
    if kind != BLOCK:
        raise ValueError(f"unknown frame kind {kind}")
    words = np.frombuffer(frame, dtype="<f8", count=nwords, offset=HEADER_BYTES)
    if nwords == rows * (rows + 1) // 2 and rows == cols and nwords != rows * cols:
        payload = np.zeros((rows, cols))
        payload[np.tril_indices(rows)] = words
    elif rows == cols and nwords == rows * cols == rows * (rows + 1) // 2:
        # 1x1 (and degenerate) diagonal blocks: triangle == full array.
        payload = words.reshape(rows, cols).copy()
    elif nwords == rows * cols:
        payload = words.reshape(rows, cols).copy()
    else:
        raise ValueError(
            f"payload size {nwords} matches neither full ({rows}x{cols}) "
            "nor packed-triangular storage"
        )
    return WireMessage(BLOCK, src, block, rows, cols, payload)
