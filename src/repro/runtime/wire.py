"""Serialized block wire format for the message-passing runtime.

Every message on a link is one *frame*: a fixed 64-byte header followed by
the block payload as little-endian float64 words. The header size equals
``MachineParams.header_bytes`` and diagonal blocks travel as their packed
lower triangle (``w*(w+1)/2`` words — the only significant part of
``L_KK``), so a frame's byte length is exactly the
``machine.message_bytes(block_words)`` that the static predictor
:func:`repro.analysis.comm_volume.communication_volume` charges. Measured
and predicted communication volume are therefore directly comparable,
message for message and byte for byte.

Integrity: the header carries a CRC32 over the header fields and the
payload words. :func:`unpack` recomputes it, so a flipped bit anywhere in
the frame is detected as :class:`CorruptFrameError` instead of silently
landing in the factor. Malformed frames of any kind raise the typed
:class:`WireError` (a :class:`ValueError`) — callers never see a raw
``struct.error``.

Frame kinds
-----------
``BLOCK``
    A completed factor block fanned out to a consumer (or gathered to the
    driver at shutdown). ``block`` is the global block index; ``rows`` /
    ``cols`` are the dense block shape.
``BLOCK_REF``
    Shared-memory transport descriptor: a fixed 64-byte header-only frame
    naming a completed block's arena slot instead of carrying the payload.
    The prefix is identical to ``BLOCK`` (``nwords`` still holds the
    *logical* payload words, so logical byte accounting is transport
    independent); the pad region carries the slot byte offset and a CRC32
    of the slot contents, both covered by the frame CRC. Consumers map the
    slot read-only via :class:`repro.runtime.arena.BlockArena`.
``ABORT``
    A worker hit an unrecoverable error; peers should stop promptly.
    Payload-free.
``NACK``
    Recovery control: "please (re)send block ``block``" — emitted when a
    receiver rejects a corrupt frame or renegotiates a block it is still
    missing after a stall. Payload-free.
``DONE``
    Recovery control: the sender finished all of its tasks and is
    lingering only to serve retransmits. Payload-free.
``STEAL_REQ`` / ``STEAL_DENY``
    Work-stealing control (``schedule="dynamic"``): an idle thief asks a
    victim for one ready task / the victim has nothing grantable.
    Payload-free; ``block`` carries the thief's steal round.
``STEAL_GRANT`` / ``STEAL_RESULT``
    Work-stealing data: the victim ships a granted task's *destination
    block state* (``block`` carries the task id, the payload the partial
    block, triangle-packed when diagonal); the thief runs the identical
    kernel on those bytes and ships the resulting state back. Because the
    same kernel sees the same input bytes in the same canonical
    accumulation position, the factor stays bitwise identical to a static
    run.
``STEAL_SHIP``
    Work-stealing data: a final source block a granted task needs,
    prepended to the grant on the inline transport (shm thieves read
    sources from the arena instead). Laid out exactly like ``BLOCK`` but
    applied without dependency bookkeeping at the thief.

Steal frames ride a *reliable* plane: they are not in ``DATA_KINDS``, so
the fault injector never drops/corrupts them, and they are counted in a
separate steal ledger so ``messages``/``bytes`` stay exactly equal to
the static communication-volume prediction.

``SOLVE_Y`` / ``SOLVE_X``
    Triangular-solve phase: a solved right-hand-side panel fanned out to
    the owners of the blocks that consume it (forward / backward
    respectively). ``block`` carries the *panel* index; the payload is the
    full ``w x nrhs`` panel. Factor blocks never ride these frames — the
    solve phase reads them where they already live.
``SOLVE_FUP`` / ``SOLVE_BUP``
    Triangular-solve phase: one block's update contribution shipped to the
    destination panel's diagonal owner (forward / backward). ``block``
    carries the global *block* index so the receiver can place the update
    in the canonical accumulation order.

Solve frames form their own ledger (``SOLVE_KINDS``): like the steal
plane they are outside ``DATA_KINDS`` (the solve phase moves right-hand
sides, not factor blocks), and their logical bytes always equal their
wire bytes — RHS panels are small and never get arena slots, so even the
shm transport ships them inline.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

#: Frame kinds.
BLOCK, ABORT, NACK, DONE, BLOCK_REF = 1, 2, 3, 4, 5
STEAL_REQ, STEAL_GRANT, STEAL_DENY, STEAL_SHIP, STEAL_RESULT = 6, 7, 8, 9, 10
SOLVE_Y, SOLVE_FUP, SOLVE_X, SOLVE_BUP = 11, 12, 13, 14

#: Payload-free control kinds (never fault-injected, never CRC-protected
#: payloads — there is no payload).
CONTROL_KINDS = (ABORT, NACK, DONE, STEAL_REQ, STEAL_DENY)

#: Kinds that carry (or reference) factor-block data — the fault
#: injector's targets, and the frames counted as data traffic.
DATA_KINDS = (BLOCK, BLOCK_REF)

#: Work-stealing plane (control + migrated task state). Kept out of
#: ``DATA_KINDS`` so the injector leaves them alone and the data ledgers
#: stay equal to the static predictor.
STEAL_KINDS = (STEAL_REQ, STEAL_GRANT, STEAL_DENY, STEAL_SHIP, STEAL_RESULT)

#: Steal kinds that carry a block-state payload (framed like ``BLOCK``).
_STEAL_PAYLOAD_KINDS = (STEAL_GRANT, STEAL_SHIP, STEAL_RESULT)

#: Triangular-solve plane: RHS panel fragments and update contributions.
#: Outside ``DATA_KINDS`` (no factor blocks ride here) and counted in
#: their own solve ledger; logical bytes == wire bytes on every transport.
SOLVE_KINDS = (SOLVE_Y, SOLVE_FUP, SOLVE_X, SOLVE_BUP)

#: Wire header prefix: magic, kind, src rank, block id, rows, cols,
#: payload words. The CRC32 field follows immediately after.
_PREFIX = struct.Struct("<4sBiiiiq")
_CRC = struct.Struct("<I")
#: Fixed frame header size — matches ``MachineParams.header_bytes``.
HEADER_BYTES = 64
_MAGIC = b"RSB2"
_PAD = b"\0" * (HEADER_BYTES - _PREFIX.size - _CRC.size)

#: BLOCK_REF slot metadata, packed into the pad region right after the
#: CRC field: arena slot byte offset (q) + CRC32 of the slot bytes (I).
_REF = struct.Struct("<qI")
#: Byte offset of the slot metadata inside a BLOCK_REF frame — also the
#: region the fault injector bit-flips to emulate payload corruption.
REF_REGION_START = _PREFIX.size + _CRC.size
REF_REGION_LEN = _REF.size
_REF_PAD = b"\0" * (HEADER_BYTES - REF_REGION_START - _REF.size)


class WireError(ValueError):
    """A frame could not be decoded (truncated, bad magic, bad shape)."""


class CorruptFrameError(WireError):
    """The frame parsed but its CRC32 check failed.

    ``src`` and ``block`` carry the header's (best-effort, possibly
    corrupted themselves) values so a receiver can NACK the presumed
    sender for a retransmit.
    """

    def __init__(self, message: str, src: int = -1, block: int = -1):
        super().__init__(message)
        self.src = src
        self.block = block


@dataclass(frozen=True)
class WireMessage:
    """A decoded frame.

    ``words`` is the *logical* payload size in float64 words (the packed
    triangle for diagonal blocks) — what the static predictor charges —
    regardless of how the payload traveled. For ``BLOCK_REF`` descriptors
    ``payload`` is ``None`` until :meth:`BlockArena.resolve` swaps in the
    read-only slot view; ``offset``/``payload_crc`` carry the descriptor's
    slot metadata.
    """

    kind: int
    src: int
    block: int
    rows: int
    cols: int
    payload: np.ndarray | None
    words: int = 0
    offset: int = -1
    payload_crc: int = 0

    @property
    def nbytes(self) -> int:
        """Logical frame bytes — equals ``machine.message_bytes(words)``."""
        words = self.words
        if not words and self.payload is not None:
            words = self.payload.size
        return HEADER_BYTES + 8 * words


def _frame(kind: int, src: int, block: int, rows: int, cols: int,
           payload: bytes = b"") -> bytes:
    prefix = _PREFIX.pack(
        _MAGIC, kind, src, block, rows, cols, len(payload) // 8
    )
    crc = zlib.crc32(payload, zlib.crc32(prefix))
    return b"".join((prefix, _CRC.pack(crc), _PAD, payload))


def pack_block(
    src: int, block: int, I: int, J: int, array: np.ndarray
) -> bytes:
    """Serialize factor block ``(I, J)`` (global index ``block``).

    Diagonal blocks (``I == J``) ship only the lower triangle; subdiagonal
    blocks ship the full dense ``rows x cols`` array.
    """
    arr = np.ascontiguousarray(array, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("block payload must be a 2-D array")
    rows, cols = arr.shape
    if I == J:
        if rows != cols:
            raise ValueError("diagonal block must be square")
        words = arr[np.tril_indices(rows)]
    else:
        words = arr.ravel()
    return _frame(BLOCK, src, block, rows, cols, words.tobytes())


def pack_block_ref(
    src: int, block: int, rows: int, cols: int, words: int,
    offset: int, payload_crc: int,
) -> bytes:
    """Serialize a shared-memory descriptor for block ``block``.

    ``words`` is the logical payload word count (``tg.block_words``),
    ``offset`` the slot's byte offset in the arena, ``payload_crc`` a
    CRC32 of the slot bytes at send time. The frame CRC covers the prefix
    and the slot metadata, so in-flight corruption of either is detected
    exactly like inline-frame corruption.
    """
    prefix = _PREFIX.pack(_MAGIC, BLOCK_REF, src, block, rows, cols, words)
    extra = _REF.pack(offset, payload_crc)
    crc = zlib.crc32(extra, zlib.crc32(prefix))
    return b"".join((prefix, _CRC.pack(crc), extra, _REF_PAD))


def pack_abort(src: int) -> bytes:
    """Serialize a payload-free ABORT frame."""
    return _frame(ABORT, src, -1, 0, 0)


def pack_nack(src: int, block: int) -> bytes:
    """Serialize a NACK: ``src`` asks the receiver to (re)send ``block``."""
    return _frame(NACK, src, block, 0, 0)


def pack_done(src: int) -> bytes:
    """Serialize a DONE frame: ``src`` finished its own task list."""
    return _frame(DONE, src, -1, 0, 0)


def _pack_state(kind: int, src: int, ref: int, square: bool,
                array: np.ndarray) -> bytes:
    """Frame a block-state payload for the steal plane (triangle-packed
    when ``square`` — bit-exact for the significant lower triangle, same
    byte accounting as ``BLOCK``)."""
    arr = np.ascontiguousarray(array, dtype=np.float64)
    rows, cols = arr.shape
    if square:
        words = arr[np.tril_indices(rows)]
    else:
        words = arr.ravel()
    return _frame(kind, src, ref, rows, cols, words.tobytes())


def pack_steal_req(src: int, round_: int) -> bytes:
    """Serialize a STEAL_REQ: thief ``src`` asks for one ready task.
    ``block`` carries the thief's steal round (diagnostic only)."""
    return _frame(STEAL_REQ, src, round_, 0, 0)


def pack_steal_deny(src: int, round_: int) -> bytes:
    """Serialize a STEAL_DENY: victim ``src`` has nothing grantable."""
    return _frame(STEAL_DENY, src, round_, 0, 0)


def pack_steal_grant(src: int, tid: int, diagonal: bool,
                     state: np.ndarray) -> bytes:
    """Serialize a STEAL_GRANT: victim ``src`` migrates task ``tid``
    (carried in the ``block`` field) with its destination block's current
    partial state as the payload."""
    return _pack_state(STEAL_GRANT, src, tid, diagonal, state)


def pack_steal_result(src: int, tid: int, diagonal: bool,
                      state: np.ndarray) -> bytes:
    """Serialize a STEAL_RESULT: thief ``src`` returns task ``tid``'s
    post-execution destination block state."""
    return _pack_state(STEAL_RESULT, src, tid, diagonal, state)


def pack_steal_ship(src: int, block: int, I: int, J: int,
                    array: np.ndarray) -> bytes:
    """Serialize a STEAL_SHIP: a final source block a granted task needs,
    laid out exactly like ``BLOCK`` but applied without bookkeeping."""
    return _pack_state(STEAL_SHIP, src, block, I == J, array)


def _pack_solve(kind: int, src: int, ref: int, array: np.ndarray) -> bytes:
    """Frame a solve-phase payload: always the full ``rows x nrhs``
    fragment (never triangle-packed — these are right-hand sides)."""
    arr = np.ascontiguousarray(array, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("solve payload must be a 2-D array")
    rows, cols = arr.shape
    return _frame(kind, src, ref, rows, cols, arr.ravel().tobytes())


def pack_solve_y(src: int, panel: int, array: np.ndarray) -> bytes:
    """Serialize a SOLVE_Y: forward-solved panel ``panel`` fanned out to
    the owners of the subdiagonal blocks in its column."""
    return _pack_solve(SOLVE_Y, src, panel, array)


def pack_solve_fup(src: int, block: int, array: np.ndarray) -> bytes:
    """Serialize a SOLVE_FUP: block ``block``'s forward update shipped to
    its destination panel's diagonal owner."""
    return _pack_solve(SOLVE_FUP, src, block, array)


def pack_solve_x(src: int, panel: int, array: np.ndarray) -> bytes:
    """Serialize a SOLVE_X: backward-solved panel ``panel`` fanned out to
    the owners of the blocks in its row."""
    return _pack_solve(SOLVE_X, src, panel, array)


def pack_solve_bup(src: int, block: int, array: np.ndarray) -> bytes:
    """Serialize a SOLVE_BUP: block ``block``'s backward update shipped to
    its source panel's diagonal owner."""
    return _pack_solve(SOLVE_BUP, src, block, array)


def unpack(frame: bytes, verify: bool = True, copy: bool = True) -> WireMessage:
    """Decode one frame back into a :class:`WireMessage`.

    Diagonal payloads are unpacked from the packed triangle into a full
    square array with an explicitly zero upper triangle. With
    ``copy=False`` a full (subdiagonal) payload is returned as a read-only
    zero-copy view over the frame bytes — safe whenever the caller owns
    the frame buffer and only reads the block, which is every runtime
    consumer (``bmod``/``bdiv`` sources are never written). Raises
    :class:`WireError` on malformed input and :class:`CorruptFrameError`
    when ``verify`` (the default) finds a CRC mismatch.
    """
    if len(frame) < HEADER_BYTES:
        raise WireError("frame shorter than the wire header")
    try:
        magic, kind, src, block, rows, cols, nwords = _PREFIX.unpack_from(
            frame
        )
        (crc,) = _CRC.unpack_from(frame, _PREFIX.size)
    except struct.error as exc:  # pragma: no cover - length checked above
        raise WireError(f"undecodable frame header: {exc}") from exc
    if magic != _MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if kind == BLOCK_REF:
        # Header-only descriptor: nwords is the *logical* payload size;
        # no payload bytes follow. The CRC covers prefix + slot metadata.
        offset, payload_crc = _REF.unpack_from(frame, REF_REGION_START)
        if verify:
            region = frame[REF_REGION_START:REF_REGION_START + _REF.size]
            expect = zlib.crc32(region, zlib.crc32(frame[: _PREFIX.size]))
            if crc != expect:
                raise CorruptFrameError(
                    f"CRC mismatch on BLOCK_REF descriptor (src={src}, "
                    f"block={block}): stored {crc:#010x}, "
                    f"computed {expect:#010x}",
                    src=src,
                    block=block,
                )
        if nwords < 0 or rows < 0 or cols < 0 or offset < 0:
            raise WireError("malformed BLOCK_REF descriptor")
        return WireMessage(BLOCK_REF, src, block, rows, cols, None,
                           words=nwords, offset=offset,
                           payload_crc=payload_crc)
    if nwords < 0 or HEADER_BYTES + 8 * nwords > len(frame):
        raise WireError(
            f"frame truncated: header promises {nwords} payload words, "
            f"{len(frame) - HEADER_BYTES} bytes follow"
        )
    if verify:
        payload_bytes = frame[HEADER_BYTES : HEADER_BYTES + 8 * nwords]
        expect = zlib.crc32(payload_bytes, zlib.crc32(frame[: _PREFIX.size]))
        if crc != expect:
            raise CorruptFrameError(
                f"CRC mismatch on frame (kind={kind}, src={src}, "
                f"block={block}): stored {crc:#010x}, "
                f"computed {expect:#010x}",
                src=src,
                block=block,
            )
    if kind in CONTROL_KINDS:
        return WireMessage(kind, src, block, 0, 0, None)
    if (
        kind != BLOCK
        and kind not in _STEAL_PAYLOAD_KINDS
        and kind not in SOLVE_KINDS
    ):
        raise WireError(f"unknown frame kind {kind}")
    words = np.frombuffer(frame, dtype="<f8", count=nwords, offset=HEADER_BYTES)
    if nwords == rows * (rows + 1) // 2 and rows == cols and nwords != rows * cols:
        payload = np.zeros((rows, cols))
        payload[np.tril_indices(rows)] = words
    elif rows == cols and nwords == rows * cols == rows * (rows + 1) // 2:
        # 1x1 (and degenerate) diagonal blocks: triangle == full array.
        payload = words.reshape(rows, cols).copy()
    elif nwords == rows * cols and rows >= 0 and cols >= 0:
        # np.frombuffer over bytes is already read-only, so the no-copy
        # view cannot be mutated behind the frame's back.
        payload = words.reshape(rows, cols)
        if copy:
            payload = payload.copy()
    else:
        raise WireError(
            f"payload size {nwords} matches neither full ({rows}x{cols}) "
            "nor packed-triangular storage"
        )
    return WireMessage(kind, src, block, rows, cols, payload, words=nwords)


def frame_kind(frame: bytes) -> int:
    """Cheap peek at a frame's kind byte without full decoding."""
    if len(frame) <= 4:
        raise WireError("frame shorter than the kind byte")
    return frame[4]


def frame_block(frame: bytes) -> int:
    """Cheap peek at a frame's block id without full decoding."""
    if len(frame) < _PREFIX.size:
        raise WireError("frame shorter than the wire header prefix")
    return int.from_bytes(frame[9:13], "little", signed=True)
