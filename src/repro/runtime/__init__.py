"""Real message-passing block fan-out runtime.

Where :mod:`repro.fanout.simulator` *predicts* how the block fan-out method
behaves on a message-passing machine, this package *executes* it: N worker
processes each own the blocks a :class:`~repro.mapping.base.BlockMap`
assigns to them, run BFAC/BDIV/BMOD locally per §2.3's protocol, and fan
completed blocks out as serialized messages over per-link channels. The
metrics layer records per-worker busy/idle/comm timelines and per-link
traffic, so the paper's remapping heuristics can be judged on measured
wall-clock load distribution, and the validation harness pins the runtime
against the sequential factorization, the static communication-volume
predictor, and the work model.

Layers: :mod:`~repro.runtime.wire` (block serialization, CRC32 integrity),
:mod:`~repro.runtime.arena` (the zero-copy shared-memory block transport),
:mod:`~repro.runtime.links` (the interconnect stand-in, frame coalescing),
:mod:`~repro.runtime.scheduler` (per-worker ready queues),
:mod:`~repro.runtime.worker` (the event loop),
:mod:`~repro.runtime.engine` (process orchestration),
:mod:`~repro.runtime.pool` (persistent worker pool for :mod:`repro.service`),
:mod:`~repro.runtime.faults` (deterministic chaos injection),
:mod:`~repro.runtime.recovery` (checkpoint/restart + sequential fallback),
:mod:`~repro.runtime.trace` (always-available structured event tracing),
:mod:`~repro.runtime.metrics` and :mod:`~repro.runtime.validation`.
"""

from repro.runtime.arena import (
    TRANSPORTS,
    ArenaLayout,
    BlockArena,
    resolve_transport,
    shm_available,
)
from repro.runtime.engine import (
    DeadWorkerError,
    FanoutError,
    MPRuntimeResult,
    RuntimeTimeoutError,
    WorkerError,
    mp_block_cholesky,
    plan_owners,
    run_mp_fanout,
)
from repro.runtime.faults import (
    FAULT_CLASSES,
    CrashSpec,
    FaultInjector,
    FaultPlan,
    FaultyLink,
)
from repro.runtime.links import Link, LinkFabric
from repro.runtime.metrics import RuntimeMetrics, WorkerMetrics
from repro.runtime.pool import (
    JobOutcome,
    PatternContext,
    PoolError,
    PoolJob,
    PoolTimeoutError,
    WorkerPool,
)
from repro.runtime.recovery import (
    FailedAttempt,
    FailureReport,
    run_with_recovery,
)
from repro.runtime.scheduler import ReadyScheduler
from repro.runtime.trace import (
    RunTrace,
    TraceEvent,
    TraceRecorder,
    WorkerTrace,
)
from repro.runtime.validation import (
    ValidationError,
    ValidationReport,
    validate_runtime,
)
from repro.runtime.wire import CorruptFrameError, WireError
from repro.runtime.worker import Worker, WorkerResult

__all__ = [
    "TRANSPORTS",
    "ArenaLayout",
    "BlockArena",
    "resolve_transport",
    "shm_available",
    "DeadWorkerError",
    "FanoutError",
    "MPRuntimeResult",
    "RuntimeTimeoutError",
    "WorkerError",
    "mp_block_cholesky",
    "plan_owners",
    "run_mp_fanout",
    "FAULT_CLASSES",
    "CrashSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultyLink",
    "Link",
    "LinkFabric",
    "RuntimeMetrics",
    "WorkerMetrics",
    "FailedAttempt",
    "FailureReport",
    "run_with_recovery",
    "ReadyScheduler",
    "RunTrace",
    "TraceEvent",
    "TraceRecorder",
    "WorkerTrace",
    "ValidationError",
    "ValidationReport",
    "validate_runtime",
    "CorruptFrameError",
    "WireError",
    "Worker",
    "WorkerResult",
    "JobOutcome",
    "PatternContext",
    "PoolError",
    "PoolJob",
    "PoolTimeoutError",
    "WorkerPool",
]
