"""Symbolic factorization: elimination trees, column counts, supernodes.

This layer computes everything about the factor L that does not depend on
numerical values: the elimination tree, the nonzero count of every column,
the (relaxed) supernode partition, and each supernode's row structure. The
block layer is built directly on the supernodal structure.
"""

from repro.symbolic.etree import elimination_tree, etree_postorder, tree_depths
from repro.symbolic.colcounts import column_counts, factor_ops_from_counts
from repro.symbolic.supernodes import detect_supernodes, supernode_parents
from repro.symbolic.amalgamation import amalgamate_supernodes
from repro.symbolic.structure import SymbolicFactor, symbolic_factor

__all__ = [
    "elimination_tree",
    "etree_postorder",
    "tree_depths",
    "column_counts",
    "factor_ops_from_counts",
    "detect_supernodes",
    "supernode_parents",
    "amalgamate_supernodes",
    "SymbolicFactor",
    "symbolic_factor",
]
