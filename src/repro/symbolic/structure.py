"""The :class:`SymbolicFactor` object and the symbolic-analysis driver."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.ordering.base import Ordering, permute_spd
from repro.symbolic.amalgamation import AmalgamationParams, amalgamate_supernodes
from repro.symbolic.colcounts import (
    column_counts,
    factor_nnz_from_counts,
    factor_ops_from_counts,
)
from repro.symbolic.etree import elimination_tree, etree_postorder, tree_depths
from repro.symbolic.supernodes import (
    detect_supernodes,
    snode_of_column,
    supernode_parents,
)
from repro.util.arrays import INDEX_DTYPE, union_sorted


@dataclass
class SymbolicFactor:
    """Complete symbolic analysis of a permuted SPD matrix.

    Attributes
    ----------
    A:
        The *permuted* matrix (postordered fill-reducing order applied).
    ordering:
        The composed permutation (fill-reducing ∘ postorder).
    parent, depth, cc:
        Elimination-tree parents, node depths, and column counts of L.
    snode_ptr:
        Supernode column boundaries after amalgamation, length S+1.
    snode_rows:
        For each supernode, the sorted row indices strictly below it. The
        supernode's columns themselves form a dense lower triangle.
    """

    A: sparse.csc_matrix
    ordering: Ordering
    parent: np.ndarray
    depth: np.ndarray
    cc: np.ndarray
    snode_ptr: np.ndarray
    snode_rows: list[np.ndarray]
    meta: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def nsupernodes(self) -> int:
        return self.snode_ptr.shape[0] - 1

    @property
    def col2snode(self) -> np.ndarray:
        return snode_of_column(self.snode_ptr, self.n)

    @property
    def factor_nnz(self) -> int:
        """nnz(L) of the simplicial factor (the paper's Table 1 column)."""
        return factor_nnz_from_counts(self.cc)

    @property
    def factor_ops(self) -> int:
        """Simplicial factorization flop count (the paper's "Ops to factor")."""
        return factor_ops_from_counts(self.cc)

    @property
    def supernodal_nnz(self) -> int:
        """Stored nonzeros of the (amalgamated) supernodal factor."""
        total = 0
        for s in range(self.nsupernodes):
            w = int(self.snode_ptr[s + 1] - self.snode_ptr[s])
            total += w * (w + 1) // 2 + w * self.snode_rows[s].shape[0]
        return total

    def snode_width(self, s: int) -> int:
        return int(self.snode_ptr[s + 1] - self.snode_ptr[s])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SymbolicFactor(n={self.n}, supernodes={self.nsupernodes}, "
            f"nnz(L)={self.factor_nnz}, ops={self.factor_ops})"
        )


def supernode_structures(
    A: sparse.csc_matrix,
    snode_ptr: np.ndarray,
    sparent: np.ndarray,
) -> list[np.ndarray]:
    """Row structure below each supernode, by bottom-up union.

    struct(s) = rows of A in s's columns below s, unioned with each child
    supernode's struct filtered below s. Supernodes are processed in
    ascending (= topological) order, pushing each result to its parent.
    """
    nsup = snode_ptr.shape[0] - 1
    indptr, indices = A.indptr, A.indices
    pending: list[list[np.ndarray]] = [[] for _ in range(nsup)]
    out: list[np.ndarray] = []
    for s in range(nsup):
        a, b = int(snode_ptr[s]), int(snode_ptr[s + 1])
        cols = np.unique(indices[indptr[a] : indptr[b]])
        rows = cols[cols >= b]
        for child_rows in pending[s]:
            rows = union_sorted(rows, child_rows[child_rows >= b])
        pending[s] = []  # free
        out.append(np.ascontiguousarray(rows, dtype=INDEX_DTYPE))
        p = sparent[s]
        if p != -1:
            pending[int(p)].append(rows)
    return out


def symbolic_factor(
    A: sparse.spmatrix,
    ordering: Ordering | np.ndarray | None = None,
    amalgamate: bool = True,
    amalg_params: AmalgamationParams | None = None,
) -> SymbolicFactor:
    """Run the full symbolic pipeline on SPD matrix ``A``.

    1. apply the fill-reducing ordering (identity when None);
    2. compute the elimination tree, postorder it, and compose the
       permutations so supernodes are contiguous;
    3. column counts, supernode detection, supernodal row structure;
    4. relaxed amalgamation (on by default, as in the paper).
    """
    A = A.tocsc()
    n = A.shape[0]
    if ordering is None:
        perm = np.arange(n, dtype=INDEX_DTYPE)
    elif isinstance(ordering, Ordering):
        perm = ordering.perm
    else:
        perm = np.asarray(ordering, dtype=INDEX_DTYPE)

    A1 = permute_spd(A, perm)
    parent = elimination_tree(A1)
    post = etree_postorder(parent)
    if not np.array_equal(post, np.arange(n)):
        perm = perm[post]
        A1 = permute_spd(A, perm)
        parent = elimination_tree(A1)

    cc = column_counts(A1, parent)
    depth = tree_depths(parent)
    snode_ptr = detect_supernodes(parent, cc)
    sparent = supernode_parents(snode_ptr, parent)
    structs = supernode_structures(A1, snode_ptr, sparent)
    if amalgamate:
        snode_ptr, structs = amalgamate_supernodes(
            snode_ptr, structs, sparent, amalg_params
        )
    return SymbolicFactor(
        A=A1,
        ordering=Ordering(perm, method="composed"),
        parent=parent,
        depth=depth,
        cc=cc,
        snode_ptr=snode_ptr,
        snode_rows=structs,
    )
