"""Elimination tree computation and tree utilities (Liu 1990).

The elimination tree is the dependency skeleton of sparse Cholesky: column j's
parent is the row index of the first subdiagonal nonzero of L(:,j). It drives
supernode detection, the Increasing-Depth mapping heuristic, and the domain
decomposition of the block fan-out method.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.util.arrays import INDEX_DTYPE


def elimination_tree(A: sparse.spmatrix) -> np.ndarray:
    """Parent array of the elimination tree of SPD matrix ``A``.

    Liu's algorithm with path compression (virtual ancestors); roots have
    parent -1. Works on the upper-triangular pattern column by column.
    """
    A = A.tocsc()
    n = A.shape[0]
    parent = np.full(n, -1, dtype=INDEX_DTYPE)
    ancestor = np.full(n, -1, dtype=INDEX_DTYPE)
    indptr, indices = A.indptr, A.indices
    for j in range(n):
        for p in range(indptr[j], indptr[j + 1]):
            i = indices[p]
            if i >= j:
                continue
            # Walk from i to the root of its current virtual tree, compressing.
            while True:
                anc = ancestor[i]
                if anc == j:
                    break
                ancestor[i] = j
                if anc == -1:
                    parent[i] = j
                    break
                i = anc
    return parent


def etree_postorder(parent: np.ndarray) -> np.ndarray:
    """Postorder permutation of the tree: ``post[k]`` = k-th node visited.

    Children are visited before parents; each subtree occupies a contiguous
    index range in the postorder. Iterative DFS (no recursion limit issues).
    """
    parent = np.asarray(parent)
    n = parent.shape[0]
    # Build child lists as head/next arrays; prepend so that child lists come
    # out in increasing order when traversed (stable, deterministic).
    head = np.full(n, -1, dtype=INDEX_DTYPE)
    nxt = np.full(n, -1, dtype=INDEX_DTYPE)
    for v in range(n - 1, -1, -1):
        p = parent[v]
        if p != -1:
            nxt[v] = head[p]
            head[p] = v
    post = np.empty(n, dtype=INDEX_DTYPE)
    k = 0
    stack: list[int] = []
    for root in range(n):
        if parent[root] != -1:
            continue
        stack.append(root)
        while stack:
            v = stack[-1]
            c = head[v]
            if c == -1:
                post[k] = v
                k += 1
                stack.pop()
            else:
                head[v] = nxt[c]  # consume child
                stack.append(int(c))
    if k != n:
        raise ValueError("parent array is not a forest (cycle detected)")
    return post


def tree_depths(parent: np.ndarray) -> np.ndarray:
    """Depth of every node (roots at depth 0).

    Assumes ``parent[j] > j`` or -1 (true after etree postordering), so a
    single reverse sweep suffices.
    """
    parent = np.asarray(parent)
    n = parent.shape[0]
    depth = np.zeros(n, dtype=INDEX_DTYPE)
    for j in range(n - 1, -1, -1):
        p = parent[j]
        if p != -1:
            if p <= j:
                raise ValueError("tree_depths requires a postordered etree")
            depth[j] = depth[p] + 1
    return depth


def subtree_sizes(parent: np.ndarray) -> np.ndarray:
    """Number of nodes in each node's subtree (postordered etree required)."""
    parent = np.asarray(parent)
    n = parent.shape[0]
    size = np.ones(n, dtype=INDEX_DTYPE)
    for j in range(n):
        p = parent[j]
        if p != -1:
            if p <= j:
                raise ValueError("subtree_sizes requires a postordered etree")
            size[p] += size[j]
    return size
