"""Column counts of the Cholesky factor, and the paper's operation count.

``column_counts`` computes ``cc[j] = |struct(L(:,j))|`` (including the
diagonal) by the row-subtree marking algorithm: the nonzeros of row i of L
are exactly the nodes of the subtree of the elimination tree spanned by
``{k : A[i,k] != 0, k < i}`` and rooted at i. Walking each such path and
stopping at already-marked nodes touches every nonzero of L exactly once,
so the cost is O(nnz(L)).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.util.arrays import INDEX_DTYPE


def column_counts(A: sparse.spmatrix, parent: np.ndarray) -> np.ndarray:
    """Nonzero count of every column of L (diagonal included)."""
    A = A.tocsr()
    n = A.shape[0]
    cc = np.ones(n, dtype=INDEX_DTYPE)  # diagonals
    mark = np.full(n, -1, dtype=INDEX_DTYPE)
    indptr, indices = A.indptr, A.indices
    parent = np.asarray(parent)
    for i in range(n):
        mark[i] = i
        for p in range(indptr[i], indptr[i + 1]):
            k = indices[p]
            if k >= i:
                continue
            # Walk the path k -> ... -> i in the etree, marking row i's
            # subtree; each new node j on the path gains row i in column j.
            j = k
            while mark[j] != i:
                mark[j] = i
                cc[j] += 1
                j = parent[j]
                if j == -1:  # disconnected structure; row subtree truncated
                    break
    return cc


def factor_ops_from_counts(cc: np.ndarray) -> int:
    """Floating-point operations of simplicial sparse Cholesky.

    Per column with ``c`` subdiagonal nonzeros: 1 sqrt, ``c`` divisions, and
    ``c(c+1)`` multiply-adds for the outer-product update. For a dense matrix
    this evaluates to (n^3 - n)/3 + n(n+1)/2 + ... ≈ n^3/3, matching the
    paper's Table 1 entry for DENSE1024 (358.4M ops).
    """
    c = np.asarray(cc, dtype=np.int64) - 1
    return int(np.sum(1 + c + c * (c + 1)))


def factor_nnz_from_counts(cc: np.ndarray) -> int:
    """Nonzeros in L (diagonal included), as reported in the paper's Table 1."""
    return int(np.sum(cc))


def row_counts(A: sparse.spmatrix, parent: np.ndarray) -> np.ndarray:
    """Nonzero count of every *row* of L (diagonal included).

    Row i's count is the size of its row subtree in the elimination tree —
    the number of ``cmod`` updates column-oriented methods apply to column i,
    plus one. Same marking walk as :func:`column_counts`.
    """
    A = A.tocsr()
    n = A.shape[0]
    rc = np.ones(n, dtype=INDEX_DTYPE)
    mark = np.full(n, -1, dtype=INDEX_DTYPE)
    indptr, indices = A.indptr, A.indices
    parent = np.asarray(parent)
    for i in range(n):
        mark[i] = i
        for p in range(indptr[i], indptr[i + 1]):
            k = indices[p]
            if k >= i:
                continue
            j = k
            while mark[j] != i:
                mark[j] = i
                rc[i] += 1
                j = parent[j]
                if j == -1:
                    break
    return rc
