"""Supernode detection.

A supernode is a maximal set of adjacent columns [a..b] such that
``struct(L(:,j+1)) = struct(L(:,j)) \\ {j}`` for all j in [a..b-1] — a dense
lower-triangular diagonal block with identical row structure below it. With a
postordered elimination tree, columns j and j+1 belong to the same supernode
iff ``parent[j] == j+1`` and ``cc[j+1] == cc[j] - 1``.
"""

from __future__ import annotations

import numpy as np

from repro.util.arrays import INDEX_DTYPE


def detect_supernodes(parent: np.ndarray, cc: np.ndarray) -> np.ndarray:
    """Supernode boundaries: returns ``snode_ptr`` with S+1 entries.

    Supernode s spans columns ``snode_ptr[s] .. snode_ptr[s+1]-1``.
    """
    parent = np.asarray(parent)
    cc = np.asarray(cc)
    n = parent.shape[0]
    if n == 0:
        return np.zeros(1, dtype=INDEX_DTYPE)
    # new_start[j] == True when column j begins a supernode.
    prev = np.arange(n - 1)
    same = (parent[prev] == prev + 1) & (cc[prev + 1] == cc[prev] - 1)
    starts = np.concatenate([[True], ~same])
    boundaries = np.flatnonzero(starts)
    return np.concatenate([boundaries, [n]]).astype(INDEX_DTYPE)


def snode_of_column(snode_ptr: np.ndarray, n: int) -> np.ndarray:
    """Map each column to its supernode index."""
    snode_ptr = np.asarray(snode_ptr)
    out = np.zeros(n, dtype=INDEX_DTYPE)
    out[snode_ptr[1:-1]] = 1
    return np.cumsum(out) if n else out


def supernode_parents(
    snode_ptr: np.ndarray, parent: np.ndarray
) -> np.ndarray:
    """Parent supernode of each supernode (-1 for roots).

    The parent supernode contains ``parent[last column of s]``.
    """
    snode_ptr = np.asarray(snode_ptr)
    parent = np.asarray(parent)
    n = parent.shape[0]
    col2s = snode_of_column(snode_ptr, n)
    nsup = snode_ptr.shape[0] - 1
    sparent = np.full(nsup, -1, dtype=INDEX_DTYPE)
    for s in range(nsup):
        last = snode_ptr[s + 1] - 1
        p = parent[last]
        if p != -1:
            sparent[s] = col2s[p]
    return sparent
