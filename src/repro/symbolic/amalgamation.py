"""Relaxed supernode amalgamation (Ashcraft & Grimes 1989).

Merges a supernode into its parent when the two are contiguous in the
(postordered) column order and the merge introduces only a small fraction of
explicit zeros. Amalgamation trades a little extra storage/arithmetic for
larger, more regular blocks — the paper uses it in all experiments (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.arrays import INDEX_DTYPE, union_sorted


@dataclass(frozen=True)
class AmalgamationParams:
    """Merge thresholds.

    ``small_width``: supernodes at most this wide merge under the looser
    ``frac_small`` zero-fraction bound; wider ones must satisfy ``frac``.
    """

    small_width: int = 8
    frac_small: float = 0.30
    frac: float = 0.05


def _sn_nnz(width: int, nbelow: int) -> int:
    """Dense nonzeros a supernode of ``width`` cols and ``nbelow`` rows stores."""
    return width * (width + 1) // 2 + width * nbelow


def amalgamate_supernodes(
    snode_ptr: np.ndarray,
    structs: list[np.ndarray],
    sparent: np.ndarray,
    params: AmalgamationParams | None = None,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Merge supernodes; returns the new ``(snode_ptr, structs)``.

    ``structs[s]`` is the sorted array of row indices strictly below
    supernode s; merged supernodes absorb rows falling inside the parent's
    column range into the dense triangle.
    """
    params = params or AmalgamationParams()
    snode_ptr = np.asarray(snode_ptr)
    nsup = snode_ptr.shape[0] - 1
    if nsup == 0:
        return snode_ptr.astype(INDEX_DTYPE), []
    # Mutable group state; group of s is found by chasing `merged_into`.
    start = snode_ptr[:-1].copy()
    end = snode_ptr[1:].copy()  # exclusive
    rows: list[np.ndarray] = [np.asarray(r, dtype=INDEX_DTYPE) for r in structs]
    parent_group = sparent.copy()
    merged_into = np.full(nsup, -1, dtype=INDEX_DTYPE)

    def find(s: int) -> int:
        while merged_into[s] != -1:
            s = int(merged_into[s])
        return s

    for s in range(nsup):
        g = find(s)
        if g != s:
            continue
        p = parent_group[g]
        if p == -1:
            continue
        p = find(int(p))
        if start[p] != end[g]:
            continue  # not contiguous: g is not the last child of p
        w_c = int(end[g] - start[g])
        w_p = int(end[p] - start[p])
        w = w_c + w_p
        child_tail = rows[g][rows[g] >= end[p]]
        merged_rows = union_sorted(child_tail, rows[p])
        new_nnz = _sn_nnz(w, merged_rows.shape[0])
        old_nnz = _sn_nnz(w_c, rows[g].shape[0]) + _sn_nnz(w_p, rows[p].shape[0])
        zeros = new_nnz - old_nnz
        limit = params.frac_small if w_c <= params.small_width else params.frac
        if zeros > 0 and zeros > limit * new_nnz:
            continue
        # Merge g into p (p keeps its identity; its column range grows down).
        start[p] = start[g]
        rows[p] = merged_rows
        merged_into[g] = p

    keep = np.flatnonzero(merged_into == -1)
    new_ptr = np.concatenate([start[keep], [end[keep[-1]]]]).astype(INDEX_DTYPE)
    new_structs = [rows[int(s)] for s in keep]
    return new_ptr, new_structs
