"""The :class:`ProblemMatrix` container passed between pipeline stages."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse


@dataclass
class ProblemMatrix:
    """A named SPD test problem.

    Attributes
    ----------
    name:
        Identifier used in tables (e.g. ``"GRID150"``).
    A:
        Full (both triangles stored) symmetric positive definite matrix in
        CSC format.
    coords:
        Optional ``n x d`` array of geometric vertex coordinates. Present for
        grid/cube problems where it enables geometric nested dissection; the
        vertex coordinate of equation ``i`` is ``coords[vertex_of[i]]`` when
        ``vertex_of`` is given (multi-dof problems), else ``coords[i]``.
    recommended_ordering:
        The ordering the paper used for this problem family: ``"nd"`` for
        grid problems (nested dissection), ``"mmd"`` for irregular matrices
        (multiple minimum degree), ``"natural"`` for dense.
    """

    name: str
    A: sparse.csc_matrix
    coords: np.ndarray | None = None
    recommended_ordering: str = "mmd"
    meta: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def nnz(self) -> int:
        return self.A.nnz

    def __post_init__(self) -> None:
        if not sparse.issparse(self.A):
            raise TypeError("A must be a scipy sparse matrix")
        self.A = self.A.tocsc()
        if self.A.shape[0] != self.A.shape[1]:
            raise ValueError("A must be square")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProblemMatrix({self.name!r}, n={self.n}, nnz={self.nnz})"
