"""Benchmark matrix generators and I/O.

The paper's evaluation uses dense matrices, regular 2-D/3-D grid problems and
irregular Harwell-Boeing / application matrices (Tables 1 and 6). The regular
problems are generated exactly; the proprietary/irregular ones are replaced by
synthetic stand-ins with matching order and qualitatively matching structure
(see DESIGN.md, "Substitutions").
"""

from repro.matrices.generators import cube3d_matrix, dense_matrix, grid2d_matrix
from repro.matrices.problem import ProblemMatrix
from repro.matrices.registry import (
    BENCHMARK_SUITE,
    LARGE_SUITE,
    get_problem,
    problem_names,
)
from repro.matrices.spd import is_symmetric_pattern, make_spd, random_spd_sparse
from repro.matrices.synthetic import (
    bcsstk_like_matrix,
    copter_like_matrix,
    fleet_like_matrix,
)
from repro.matrices.io import read_matrix_market, write_matrix_market

__all__ = [
    "ProblemMatrix",
    "dense_matrix",
    "grid2d_matrix",
    "cube3d_matrix",
    "bcsstk_like_matrix",
    "copter_like_matrix",
    "fleet_like_matrix",
    "make_spd",
    "random_spd_sparse",
    "is_symmetric_pattern",
    "read_matrix_market",
    "write_matrix_market",
    "BENCHMARK_SUITE",
    "LARGE_SUITE",
    "get_problem",
    "problem_names",
]
