"""Harwell-Boeing (RSA/PSA) file I/O.

The paper's irregular benchmarks (BCSSTK15/29/31/33) ship in the
Harwell-Boeing exchange format [Duff, Grimes & Lewis 1989]; a user with the
real files can load them with :func:`read_harwell_boeing` and run every
experiment on the authentic matrices instead of the synthetic stand-ins.

Supported: assembled real/pattern symmetric ("RSA"/"PSA") and unsymmetric
("RUA"/"PUA") matrices; Fortran edit descriptors of the forms ``(nIw)``,
``(nEw.d)``, ``(nDw.d)``, ``(nFw.d)`` with optional ``mP`` scale prefixes.
"""

from __future__ import annotations

import re

import numpy as np
from scipy import sparse

_FMT_RE = re.compile(
    r"""\(\s*(?:\d+\s*P\s*,?\s*)?      # optional scale factor, e.g. 1P,
        (\d+)?\s*                      # repeat count
        ([IEDFG])\s*                   # descriptor letter
        (\d+)                          # field width
        (?:\.\d+)?                     # optional precision
        (?:[ED]\d+)?\s*\)              # optional exponent width
    """,
    re.IGNORECASE | re.VERBOSE,
)


def parse_fortran_format(fmt: str) -> tuple[int, int, str]:
    """Parse a Fortran edit descriptor: returns (per_line, width, kind)."""
    m = _FMT_RE.match(fmt.strip())
    if not m:
        raise ValueError(f"unsupported Fortran format {fmt!r}")
    count = int(m.group(1) or 1)
    kind = m.group(2).upper()
    width = int(m.group(3))
    return count, width, kind


def _read_fixed(lines: list[str], start: int, nlines: int, count: int,
                width: int, total: int, numeric=int):
    """Read ``total`` fixed-width fields from ``nlines`` lines."""
    out = []
    for li in range(start, start + nlines):
        line = lines[li].rstrip("\n")
        for f in range(count):
            if len(out) >= total:
                break
            field = line[f * width : (f + 1) * width]
            if field.strip() == "":
                continue
            out.append(numeric(field.replace("D", "E").replace("d", "e")))
    if len(out) != total:
        raise ValueError(
            f"expected {total} fields, found {len(out)} "
            f"(lines {start}..{start + nlines})"
        )
    return out


def read_harwell_boeing(path) -> sparse.csc_matrix:
    """Read a Harwell-Boeing file into a full (both triangles) CSC matrix."""
    with open(path, "r") as fh:
        lines = fh.readlines()
    if len(lines) < 4:
        raise ValueError("file too short for a Harwell-Boeing header")

    card2 = lines[1].split()
    totcrd, ptrcrd, indcrd, valcrd = (int(x) for x in card2[:4])
    rhscrd = int(card2[4]) if len(card2) > 4 else 0

    mxtype = lines[2][:3].upper()
    if mxtype[1] not in ("S", "U"):
        raise ValueError(f"unsupported matrix type {mxtype!r}")
    if mxtype[0] not in ("R", "P"):
        raise ValueError(f"unsupported value type {mxtype!r}")
    fields3 = lines[2][14:].split()
    nrow, ncol, nnzero = int(fields3[0]), int(fields3[1]), int(fields3[2])

    fmts = lines[3]
    ptrfmt = fmts[0:16]
    indfmt = fmts[16:32]
    valfmt = fmts[32:52]

    data_start = 4 + (1 if rhscrd > 0 else 0)
    pc, pw, _ = parse_fortran_format(ptrfmt)
    ic, iw, _ = parse_fortran_format(indfmt)

    colptr = _read_fixed(lines, data_start, ptrcrd, pc, pw, ncol + 1, int)
    rowind = _read_fixed(lines, data_start + ptrcrd, indcrd, ic, iw, nnzero, int)
    if mxtype[0] == "R":
        vc, vw, _ = parse_fortran_format(valfmt)
        values = _read_fixed(
            lines, data_start + ptrcrd + indcrd, valcrd, vc, vw, nnzero, float
        )
    else:
        values = [1.0] * nnzero

    indptr = np.asarray(colptr, dtype=np.int64) - 1
    indices = np.asarray(rowind, dtype=np.int64) - 1
    data = np.asarray(values, dtype=np.float64)
    M = sparse.csc_matrix((data, indices, indptr), shape=(nrow, ncol))
    if mxtype[1] == "S":
        off = M.copy()
        off.setdiag(0.0)
        M = M + off.T
    M = M.tocsc()
    M.sum_duplicates()
    return M


def write_harwell_boeing(
    path, A: sparse.spmatrix, title: str = "repro matrix", key: str = "REPRO"
) -> None:
    """Write the lower triangle of symmetric ``A`` as an RSA file."""
    A = sparse.tril(A.tocsc()).tocsc()
    nrow, ncol = A.shape
    nnz = A.nnz

    ptr_per, ptr_w = 8, 10
    ind_per, ind_w = 8, 10
    val_per, val_w = 3, 26

    def pack(vals, per, fmt):
        out = []
        for i in range(0, len(vals), per):
            out.append("".join(fmt(v) for v in vals[i : i + per]))
        return out

    ptr_lines = pack(
        (A.indptr + 1).tolist(), ptr_per, lambda v: f"{v:{ptr_w}d}"
    )
    ind_lines = pack(
        (A.indices + 1).tolist(), ind_per, lambda v: f"{v:{ind_w}d}"
    )
    val_lines = pack(
        A.data.tolist(), val_per, lambda v: f"{v:{val_w}.16E}"
    )
    total = len(ptr_lines) + len(ind_lines) + len(val_lines)
    with open(path, "w") as fh:
        fh.write(f"{title:<72.72s}{key:<8.8s}\n")
        fh.write(
            f"{total:14d}{len(ptr_lines):14d}{len(ind_lines):14d}"
            f"{len(val_lines):14d}{0:14d}\n"
        )
        fh.write(f"{'RSA':<14s}{nrow:14d}{ncol:14d}{nnz:14d}{0:14d}\n")
        fh.write(
            f"{f'({ptr_per}I{ptr_w})':<16s}{f'({ind_per}I{ind_w})':<16s}"
            f"{f'({val_per}E{val_w}.16)':<20s}{'':<20s}\n"
        )
        for line in ptr_lines + ind_lines + val_lines:
            fh.write(line + "\n")
