"""Synthetic stand-ins for the paper's proprietary/irregular matrices.

The Harwell-Boeing BCSSTK* matrices are structural-engineering stiffness
matrices (3-D frames/shells, several degrees of freedom per mesh node);
COPTER2 is an unstructured helicopter-rotor-blade mesh; 10FLEET is the normal
equation pattern of an airline fleet-assignment LP. None of these files ship
with this repository, so we generate synthetic matrices from the same problem
families. The mapping heuristics under study only see the block structure of
the factor, which these generators reproduce qualitatively: many small-to-
medium supernodes from the mesh interior plus large separator supernodes
(BCSSTK/COPTER), and the broad, irregular supernode distribution of an
interior-point normal-equations pattern (10FLEET). See DESIGN.md.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.spatial import cKDTree

from repro.matrices.problem import ProblemMatrix
from repro.matrices.spd import make_spd


def _knn_graph(points: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric k-nearest-neighbour edge list over ``points``."""
    tree = cKDTree(points)
    _, nbrs = tree.query(points, k=k + 1)
    src = np.repeat(np.arange(points.shape[0]), k)
    dst = nbrs[:, 1:].ravel()
    mask = src != dst
    return src[mask], dst[mask]


def _expand_dof(
    src: np.ndarray, dst: np.ndarray, nnodes: int, dof: int, n: int
) -> sparse.csr_matrix:
    """Expand a node graph into a multi-dof equation pattern.

    Each mesh node owns ``dof`` consecutive equations; connected nodes couple
    through dense ``dof x dof`` blocks (as element stiffness assembly does).
    The result is truncated to ``n`` equations.
    """
    # All (a, b) node pairs, plus self-couplings for the diagonal blocks.
    all_src = np.concatenate([src, np.arange(nnodes)])
    all_dst = np.concatenate([dst, np.arange(nnodes)])
    d = np.arange(dof)
    di, dj = np.meshgrid(d, d, indexing="ij")
    rows = (all_src[:, None] * dof + di.ravel()[None, :]).ravel()
    cols = (all_dst[:, None] * dof + dj.ravel()[None, :]).ravel()
    keep = (rows < n) & (cols < n) & (rows != cols)
    rows, cols = rows[keep], cols[keep]
    vals = -np.ones(rows.shape[0])
    M = sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    M.sum_duplicates()
    return M


def bcsstk_like_matrix(
    n: int,
    dof: int = 3,
    neighbors: int = 8,
    aspect: tuple[float, float, float] = (4.0, 2.0, 1.0),
    seed: int = 0,
    name: str | None = None,
) -> ProblemMatrix:
    """Synthetic structural-stiffness-like SPD matrix with ``n`` equations.

    Mesh nodes are sampled in an anisotropic 3-D box (structures are rarely
    cubes) and joined to their nearest neighbours; each node carries ``dof``
    displacement unknowns coupled by dense blocks.
    """
    rng = np.random.default_rng(seed)
    nnodes = (n + dof - 1) // dof
    points = rng.random((nnodes, 3)) * np.asarray(aspect)
    src, dst = _knn_graph(points, neighbors)
    M = _expand_dof(src, dst, nnodes, dof, n)
    A = make_spd(M, shift=1.0)
    coords = np.repeat(points, dof, axis=0)[:n]
    return ProblemMatrix(
        name=name or f"BCSSTK-like(n={n})",
        A=A,
        coords=coords,
        recommended_ordering="mmd",
    )


def copter_like_matrix(
    n: int,
    dof: int = 3,
    neighbors: int = 12,
    seed: int = 0,
    name: str | None = None,
) -> ProblemMatrix:
    """Synthetic rotor-blade-like mesh matrix: elongated, tapered,
    unstructured.

    A rotor blade is an elongated tapered solid; calibrated (span 3:1 with
    taper, 12 neighbours, 3 dof) so that at the published n = 55,476 the
    factor statistics land near the paper's Table 6 entry for COPTER2
    (13.5M nonzeros, 11.4 Gflops).
    """
    rng = np.random.default_rng(seed)
    nnodes = (n + dof - 1) // dof
    # Blade: long in x, tapering cross-section along the span.
    x = rng.random(nnodes)
    taper = 1.0 - 0.5 * x
    y = (rng.random(nnodes) - 0.5) * 1.0 * taper
    z = (rng.random(nnodes) - 0.5) * 0.5 * taper
    points = np.column_stack([x * 3.0, y, z])
    src, dst = _knn_graph(points, neighbors)
    M = _expand_dof(src, dst, nnodes, dof, n)
    A = make_spd(M, shift=1.0)
    coords = np.repeat(points, dof, axis=0)[:n]
    return ProblemMatrix(
        name=name or f"COPTER-like(n={n})",
        A=A,
        coords=coords,
        recommended_ordering="mmd",
    )


def fleet_like_matrix(
    n: int,
    vars_per_constraint: float = 5.0,
    nonzeros_per_var: int = 6,
    window: int = 200,
    hub_fraction: float = 0.004,
    hub_probability: float = 0.3,
    seed: int = 0,
    name: str | None = None,
) -> ProblemMatrix:
    """Synthetic fleet-assignment LP normal-equations pattern (``A A^T``).

    Fleet assignment LPs have a time-space network structure: each variable
    (a flight/fleet assignment) touches several constraints — the flight
    coverage row plus flow-balance rows within a time window at its endpoint
    stations — and a small set of hub stations appears in a disproportionate
    share of variables. The SPD system interior-point methods factor is
    ``A D A^T``, whose pattern is ``A A^T``; we generate ``A`` with that
    structure and form the pattern. The defaults are calibrated so the
    published n = 11,222 lands near the paper's Table 6 entry for 10FLEET
    (4.8M factor nonzeros, 7.5 Gflops).
    """
    rng = np.random.default_rng(seed)
    m = n  # constraints == equations of the normal system
    nvars = int(vars_per_constraint * m)
    nhubs = max(1, int(hub_fraction * m))
    window = max(2, min(window, m))

    # Every variable hits `nonzeros_per_var` constraints: mostly local (a
    # contiguous time window at one station), occasionally a hub row.
    base = rng.integers(0, m, size=nvars)
    offsets = rng.integers(1, window, size=(nvars, nonzeros_per_var - 1))
    rows = [base]
    for j in range(nonzeros_per_var - 1):
        rows.append((base + offsets[:, j]) % m)
    row_idx = np.concatenate(rows)
    col_idx = np.tile(np.arange(nvars), nonzeros_per_var)

    # Hub rows: a subset of variables additionally touches a random hub.
    hub_vars = rng.random(nvars) < hub_probability
    hub_rows = rng.integers(0, nhubs, size=int(hub_vars.sum()))
    row_idx = np.concatenate([row_idx, hub_rows])
    col_idx = np.concatenate([col_idx, np.arange(nvars)[hub_vars]])

    data = np.ones(row_idx.shape[0])
    Amat = sparse.coo_matrix((data, (row_idx, col_idx)), shape=(m, nvars)).tocsr()
    AAT = (Amat @ Amat.T).tocsr()
    AAT.sum_duplicates()
    A = make_spd(AAT, shift=1.0)
    return ProblemMatrix(
        name=name or f"FLEET-like(n={n})",
        A=A,
        coords=None,
        recommended_ordering="mmd",
    )
