"""Named benchmark suites mirroring the paper's Table 1 and Table 6.

Each entry records the generator, per-scale parameters, and the statistics the
paper published (equations, nonzeros in L, operations to factor) so that the
Table 1/6 experiments can print paper-vs-measured columns side by side.

Scales
------
``paper``   the published problem sizes (up to n = 90,000);
``medium``  reduced sizes that keep every experiment's qualitative shape but
            run in seconds — the default for the benchmark harness;
``small``   tiny instances for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.matrices.generators import cube3d_matrix, dense_matrix, grid2d_matrix
from repro.matrices.problem import ProblemMatrix
from repro.matrices.synthetic import (
    bcsstk_like_matrix,
    copter_like_matrix,
    fleet_like_matrix,
)

SCALES = ("paper", "medium", "small")


@dataclass(frozen=True)
class PaperStats:
    """Statistics from the paper's Table 1 / Table 6."""

    equations: int
    nnz_factor: int
    factor_ops_millions: float


@dataclass(frozen=True)
class ProblemSpec:
    name: str
    build: Callable[[str], ProblemMatrix]
    paper: PaperStats
    suite: str  # "table1" or "table6"


def _dense(name: str, sizes: dict[str, int]) -> Callable[[str], ProblemMatrix]:
    return lambda scale: dense_matrix(sizes[scale], name=name)


def _grid(name: str, sizes: dict[str, int]) -> Callable[[str], ProblemMatrix]:
    return lambda scale: grid2d_matrix(sizes[scale], name=name)


def _cube(name: str, sizes: dict[str, int]) -> Callable[[str], ProblemMatrix]:
    return lambda scale: cube3d_matrix(sizes[scale], name=name)


def _bcsstk(
    name: str, sizes: dict[str, int], seed: int, **kw
) -> Callable[[str], ProblemMatrix]:
    return lambda scale: bcsstk_like_matrix(sizes[scale], seed=seed, name=name, **kw)


def _copter(name: str, sizes: dict[str, int], seed: int) -> Callable[[str], ProblemMatrix]:
    return lambda scale: copter_like_matrix(sizes[scale], seed=seed, name=name)


def _fleet(name: str, sizes: dict[str, int], seed: int) -> Callable[[str], ProblemMatrix]:
    return lambda scale: fleet_like_matrix(sizes[scale], seed=seed, name=name)


_SPECS: list[ProblemSpec] = [
    # ---- Table 1 suite -------------------------------------------------
    ProblemSpec(
        "DENSE1024",
        _dense("DENSE1024", {"paper": 1024, "medium": 384, "small": 96}),
        PaperStats(1_024, 523_776, 358.4),
        "table1",
    ),
    ProblemSpec(
        "DENSE2048",
        _dense("DENSE2048", {"paper": 2048, "medium": 512, "small": 128}),
        PaperStats(2_048, 2_096_128, 2_865.4),
        "table1",
    ),
    ProblemSpec(
        "GRID150",
        _grid("GRID150", {"paper": 150, "medium": 64, "small": 16}),
        PaperStats(22_500, 656_027, 56.5),
        "table1",
    ),
    ProblemSpec(
        "GRID300",
        _grid("GRID300", {"paper": 300, "medium": 96, "small": 24}),
        PaperStats(90_000, 3_266_773, 482.0),
        "table1",
    ),
    ProblemSpec(
        "CUBE30",
        _cube("CUBE30", {"paper": 30, "medium": 14, "small": 7}),
        PaperStats(27_000, 6_233_404, 3_904.3),
        "table1",
    ),
    ProblemSpec(
        "CUBE35",
        _cube("CUBE35", {"paper": 35, "medium": 16, "small": 8}),
        PaperStats(42_875, 12_093_814, 10_114.7),
        "table1",
    ),
    # BCSSTK* generator parameters are calibrated against the published
    # factor statistics (see EXPERIMENTS.md, "stand-in calibration").
    ProblemSpec(
        "BCSSTK15",
        _bcsstk(
            "BCSSTK15",
            {"paper": 3_948, "medium": 1_500, "small": 330},
            seed=15,
            neighbors=13,
            aspect=(1.8, 1.3, 1.0),
        ),
        PaperStats(3_948, 647_274, 165.0),
        "table1",
    ),
    ProblemSpec(
        "BCSSTK29",
        _bcsstk(
            "BCSSTK29",
            {"paper": 13_992, "medium": 2_400, "small": 420},
            seed=29,
            neighbors=7,
            aspect=(5.0, 2.0, 1.0),
        ),
        PaperStats(13_992, 1_680_804, 393.1),
        "table1",
    ),
    ProblemSpec(
        "BCSSTK31",
        _bcsstk(
            "BCSSTK31",
            {"paper": 35_588, "medium": 3_600, "small": 510},
            seed=31,
            neighbors=6,
            aspect=(6.0, 3.0, 1.0),
        ),
        PaperStats(35_588, 5_272_659, 2_551.0),
        "table1",
    ),
    ProblemSpec(
        "BCSSTK33",
        _bcsstk(
            "BCSSTK33",
            {"paper": 8_738, "medium": 1_800, "small": 360},
            seed=33,
            neighbors=14,
            aspect=(1.5, 1.5, 1.0),
        ),
        PaperStats(8_738, 2_538_064, 1_203.5),
        "table1",
    ),
    # ---- Table 6 suite (larger problems) -------------------------------
    ProblemSpec(
        "DENSE4096",
        _dense("DENSE4096", {"paper": 4096, "medium": 768, "small": 160}),
        PaperStats(4_096, 8_386_560, 22_915.0),
        "table6",
    ),
    ProblemSpec(
        "CUBE40",
        _cube("CUBE40", {"paper": 40, "medium": 18, "small": 9}),
        PaperStats(64_000, 21_408_189, 23_084.0),
        "table6",
    ),
    ProblemSpec(
        "COPTER2",
        _copter("COPTER2", {"paper": 55_476, "medium": 4_500, "small": 600}, seed=2),
        PaperStats(55_476, 13_501_253, 11_377.0),
        "table6",
    ),
    ProblemSpec(
        "10FLEET",
        _fleet("10FLEET", {"paper": 11_222, "medium": 2_000, "small": 400}, seed=10),
        PaperStats(11_222, 4_782_460, 7_450.0),
        "table6",
    ),
]

REGISTRY: dict[str, ProblemSpec] = {spec.name: spec for spec in _SPECS}
BENCHMARK_SUITE: tuple[str, ...] = tuple(s.name for s in _SPECS if s.suite == "table1")
LARGE_SUITE: tuple[str, ...] = tuple(s.name for s in _SPECS if s.suite == "table6")

# Table 7 factors these six problems on 144/196 nodes.
TABLE7_SUITE: tuple[str, ...] = (
    "CUBE35",
    "CUBE40",
    "DENSE4096",
    "BCSSTK31",
    "COPTER2",
    "10FLEET",
)


def problem_names(suite: str = "table1") -> tuple[str, ...]:
    """Names in a suite: ``"table1"``, ``"table6"``, ``"table7"`` or ``"all"``."""
    if suite == "table1":
        return BENCHMARK_SUITE
    if suite == "table6":
        return LARGE_SUITE
    if suite == "table7":
        return TABLE7_SUITE
    if suite == "all":
        return BENCHMARK_SUITE + LARGE_SUITE
    raise KeyError(f"unknown suite {suite!r}")


def get_problem(name: str, scale: str = "medium") -> ProblemMatrix:
    """Build benchmark problem ``name`` at ``scale``; attaches paper stats."""
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; expected one of {SCALES}")
    spec = REGISTRY.get(name)
    if spec is None:
        raise KeyError(f"unknown problem {name!r}; known: {sorted(REGISTRY)}")
    problem = spec.build(scale)
    problem.meta["paper_stats"] = spec.paper
    problem.meta["scale"] = scale
    return problem
