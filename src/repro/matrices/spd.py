"""Utilities for building and checking symmetric positive definite matrices."""

from __future__ import annotations

import numpy as np
from scipy import sparse


def is_symmetric_pattern(A: sparse.spmatrix, tol: float = 0.0) -> bool:
    """True when ``A`` has a structurally and numerically symmetric pattern."""
    A = A.tocsr()
    diff = (A - A.T).tocoo()
    if diff.nnz == 0:
        return True
    return bool(np.max(np.abs(diff.data)) <= tol)


def make_spd(A: sparse.spmatrix, shift: float = 1.0) -> sparse.csc_matrix:
    """Return a strictly diagonally dominant (hence SPD) version of ``A``.

    The pattern is symmetrized (``A + A.T``), off-diagonal magnitudes are
    preserved, and the diagonal is set to ``rowsum(|offdiag|) + shift``.
    Diagonal dominance is the standard trick for turning an arbitrary
    symmetric pattern into an SPD test matrix without changing its structure.
    """
    A = A.tocsr()
    S = (A + A.T) * 0.5
    S = S.tolil()
    S.setdiag(0.0)
    S = S.tocsr()
    rowsums = np.asarray(np.abs(S).sum(axis=1)).ravel()
    D = sparse.diags(rowsums + shift)
    return (S + D).tocsc()


def random_spd_sparse(
    n: int,
    density: float = 0.05,
    seed: int = 0,
    shift: float = 1.0,
) -> sparse.csc_matrix:
    """Random sparse SPD matrix with a symmetric pattern (for tests).

    ``density`` controls the expected off-diagonal fill of one triangle.
    """
    rng = np.random.default_rng(seed)
    nnz_target = max(0, int(density * n * (n - 1) / 2))
    rows = rng.integers(0, n, size=nnz_target * 2)
    cols = rng.integers(0, n, size=nnz_target * 2)
    mask = rows > cols
    rows, cols = rows[mask][:nnz_target], cols[mask][:nnz_target]
    vals = rng.standard_normal(rows.shape[0])
    L = sparse.coo_matrix((vals, (rows, cols)), shape=(n, n))
    return make_spd(L + L.T, shift=shift)
