"""Minimal MatrixMarket coordinate I/O.

Only the subset needed for sparse symmetric benchmark matrices is supported:
``matrix coordinate real {general|symmetric}`` and
``matrix coordinate pattern {general|symmetric}``. Harwell-Boeing matrices
are widely redistributed in this format, so a user with the real BCSSTK files
can drop them in and bypass the synthetic stand-ins.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse


def read_matrix_market(path) -> sparse.csc_matrix:
    """Read a MatrixMarket coordinate file into a full symmetric CSC matrix.

    Symmetric files are expanded to both triangles. 1-based indices are
    converted to 0-based.
    """
    with open(path, "r") as fh:
        header = fh.readline().strip().split()
        if len(header) < 4 or header[0] != "%%MatrixMarket" or header[1] != "matrix":
            raise ValueError(f"not a MatrixMarket matrix file: {path}")
        fmt, field = header[2], header[3]
        symmetry = header[4] if len(header) > 4 else "general"
        if fmt != "coordinate":
            raise ValueError(f"unsupported MatrixMarket format {fmt!r}")
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported MatrixMarket field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"unsupported MatrixMarket symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows, ncols, nnz = (int(tok) for tok in line.split())

        data = np.loadtxt(fh, ndmin=2) if nnz else np.empty((0, 3))

    if data.shape[0] != nnz:
        raise ValueError(f"expected {nnz} entries, found {data.shape[0]}")
    rows = data[:, 0].astype(np.int64) - 1
    cols = data[:, 1].astype(np.int64) - 1
    if field == "pattern":
        vals = np.ones(nnz)
    else:
        vals = data[:, 2].astype(np.float64)

    M = sparse.coo_matrix((vals, (rows, cols)), shape=(nrows, ncols))
    if symmetry == "symmetric":
        off = M.copy()
        off.setdiag(0.0)
        M = M + off.T
    out = M.tocsc()
    out.sum_duplicates()
    return out


def write_matrix_market(path, A: sparse.spmatrix, symmetric: bool = True) -> None:
    """Write ``A`` as MatrixMarket coordinate real (lower triangle if symmetric)."""
    M = A.tocoo()
    if symmetric:
        mask = M.row >= M.col
        rows, cols, vals = M.row[mask], M.col[mask], M.data[mask]
        sym = "symmetric"
    else:
        rows, cols, vals = M.row, M.col, M.data
        sym = "general"
    with open(path, "w") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
        fh.write(f"{M.shape[0]} {M.shape[1]} {rows.shape[0]}\n")
        for r, c, v in zip(rows, cols, vals):
            fh.write(f"{r + 1} {c + 1} {v:.17g}\n")
