"""Exact generators for the paper's regular benchmark problems.

``DENSE*`` are dense SPD matrices; ``GRID*`` are 2-D k x k grid problems with
a 9-point stencil; ``CUBE*`` are 3-D k x k x k grid problems with a 27-point
stencil. The 9/27-point stencils correspond to bilinear/trilinear finite
elements, the standard source of such benchmark matrices, and produce the
clique structure nested dissection analysis assumes.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.matrices.problem import ProblemMatrix
from repro.matrices.spd import make_spd


def dense_matrix(n: int, seed: int = 0, name: str | None = None) -> ProblemMatrix:
    """Dense SPD matrix of order ``n`` stored sparsely (every entry nonzero)."""
    rng = np.random.default_rng(seed)
    B = rng.standard_normal((n, n)) * 0.1
    A = B @ B.T + n * np.eye(n)
    return ProblemMatrix(
        name=name or f"DENSE{n}",
        A=sparse.csc_matrix(A),
        coords=None,
        recommended_ordering="natural",
    )


def _grid_offsets(dim: int, full: bool = True) -> np.ndarray:
    """Nonzero offsets of the grid stencil.

    ``full=True`` gives the {-1,0,1}^dim box stencil (9-point in 2-D,
    27-point in 3-D, bilinear/trilinear elements); ``full=False`` gives the
    star stencil (5-point / 7-point finite differences).
    """
    ranges = [(-1, 0, 1)] * dim
    mesh = np.array(np.meshgrid(*ranges, indexing="ij")).reshape(dim, -1).T
    mesh = mesh[np.any(mesh != 0, axis=1)]
    if not full:
        mesh = mesh[np.sum(np.abs(mesh), axis=1) == 1]
    return mesh


def _grid_matrix(
    shape: tuple[int, ...], name: str, full_stencil: bool = True
) -> ProblemMatrix:
    dims = len(shape)
    n = int(np.prod(shape))
    idx = np.arange(n).reshape(shape)
    coords = np.stack(
        np.meshgrid(*[np.arange(s) for s in shape], indexing="ij"), axis=-1
    ).reshape(n, dims)

    rows_list, cols_list = [], []
    for off in _grid_offsets(dims, full_stencil):
        src_slices, dst_slices = [], []
        for d in range(dims):
            o = int(off[d])
            if o == 0:
                src_slices.append(slice(None))
                dst_slices.append(slice(None))
            elif o == 1:
                src_slices.append(slice(0, shape[d] - 1))
                dst_slices.append(slice(1, shape[d]))
            else:
                src_slices.append(slice(1, shape[d]))
                dst_slices.append(slice(0, shape[d] - 1))
        rows_list.append(idx[tuple(src_slices)].ravel())
        cols_list.append(idx[tuple(dst_slices)].ravel())
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = -np.ones(rows.shape[0])
    off = sparse.coo_matrix((vals, (rows, cols)), shape=(n, n))
    A = make_spd(off.tocsr(), shift=1.0)
    return ProblemMatrix(name=name, A=A, coords=coords, recommended_ordering="nd")


def grid2d_matrix(
    k: int, name: str | None = None, stencil: int = 9
) -> ProblemMatrix:
    """2-D ``k x k`` grid problem, ``n = k^2`` equations.

    ``stencil`` is 9 (bilinear elements, the paper's benchmark family) or 5
    (finite differences).
    """
    if stencil not in (5, 9):
        raise ValueError("2-D stencil must be 5 or 9")
    return _grid_matrix((k, k), name or f"GRID{k}", full_stencil=stencil == 9)


def cube3d_matrix(
    k: int, name: str | None = None, stencil: int = 27
) -> ProblemMatrix:
    """3-D ``k x k x k`` grid problem, ``n = k^3``.

    ``stencil`` is 27 (trilinear elements, the paper's family) or 7
    (finite differences).
    """
    if stencil not in (7, 27):
        raise ValueError("3-D stencil must be 7 or 27")
    return _grid_matrix(
        (k, k, k), name or f"CUBE{k}", full_stencil=stencil == 27
    )
