"""Elimination-tree and supernode shape statistics.

These summarize the structural properties that drive the paper's story: tree
height (a critical-path proxy), the supernode size distribution (block
regularity), and the work profile by depth (why the Increasing-Depth
heuristic is the natural sparse-aware ordering key).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symbolic.structure import SymbolicFactor


@dataclass(frozen=True)
class TreeStats:
    height: int
    nleaves: int
    mean_depth: float
    nsupernodes: int
    max_supernode: int
    mean_supernode: float
    supernodes_ge_blocksize: int

    def as_rows(self) -> list[tuple[str, float]]:
        return [
            ("etree height", self.height),
            ("leaves", self.nleaves),
            ("mean depth", round(self.mean_depth, 2)),
            ("supernodes", self.nsupernodes),
            ("max supernode width", self.max_supernode),
            ("mean supernode width", round(self.mean_supernode, 2)),
        ]


def tree_statistics(sf: SymbolicFactor, block_size: int = 48) -> TreeStats:
    parent = sf.parent
    n = parent.shape[0]
    has_child = np.zeros(n, dtype=bool)
    valid = parent >= 0
    has_child[parent[valid]] = True
    widths = np.diff(sf.snode_ptr)
    return TreeStats(
        height=int(sf.depth.max()) if n else 0,
        nleaves=int((~has_child).sum()),
        mean_depth=float(sf.depth.mean()) if n else 0.0,
        nsupernodes=sf.nsupernodes,
        max_supernode=int(widths.max()) if widths.size else 0,
        mean_supernode=float(widths.mean()) if widths.size else 0.0,
        supernodes_ge_blocksize=int((widths >= block_size).sum()),
    )


def work_by_depth(sf: SymbolicFactor, nbins: int = 10) -> np.ndarray:
    """Fraction of simplicial factor work per depth decile (root = bin 0).

    Shows the ID heuristic's premise: column work correlates with
    elimination-tree depth far better than with column number — it is
    concentrated at shallow-to-middle depths (the separator supernodes) and
    vanishes at the deepest leaves, so considering rows in depth order feeds
    the greedy partitioner its heavy items early.
    """
    c = sf.cc.astype(np.float64) - 1
    work = 1 + c + c * (c + 1)
    depth = sf.depth
    max_d = int(depth.max()) + 1 if depth.size else 1
    bins = np.minimum((depth * nbins) // max_d, nbins - 1)
    out = np.bincount(bins, weights=work, minlength=nbins)
    return out / out.sum()
