"""Utilization profiles from simulator traces.

The paper instrumented its code to find that "most of the processor time not
spent performing useful factorization work is spent idle, waiting for the
arrival of data" (§5). ``utilization_profile`` recovers that view from a
recorded trace: the fraction of processors busy in each time bin, plus the
per-kind work split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fanout.tasks import BDIV, BFAC, BMOD


@dataclass(frozen=True)
class UtilizationReport:
    """Busy-fraction time series and aggregate splits."""

    bin_edges: np.ndarray  # nbins + 1 times
    busy_fraction: np.ndarray  # nbins values in [0, 1]
    kind_seconds: dict  # {"BFAC": s, "BDIV": s, "BMOD": s}
    mean_utilization: float

    def tail_utilization(self, fraction: float = 0.25) -> float:
        """Mean busy fraction over the last ``fraction`` of the runtime —
        the end-of-factorization starvation the paper attributes to the
        shrinking root portion."""
        k = max(1, int(self.busy_fraction.shape[0] * fraction))
        return float(self.busy_fraction[-k:].mean())


def utilization_profile(
    trace: list,
    P: int,
    t_end: float,
    nbins: int = 50,
) -> UtilizationReport:
    """Build a utilization report from a ``record_trace=True`` simulation."""
    if t_end <= 0:
        raise ValueError("t_end must be positive")
    edges = np.linspace(0.0, t_end, nbins + 1)
    busy = np.zeros(nbins)
    kind_seconds = {BFAC: 0.0, BDIV: 0.0, BMOD: 0.0}
    for rank, start, end, kind, _block in trace:
        kind_seconds[kind] += end - start
        lo = np.searchsorted(edges, start, side="right") - 1
        hi = np.searchsorted(edges, end, side="left")
        for i in range(max(0, lo), min(nbins, hi)):
            overlap = min(end, edges[i + 1]) - max(start, edges[i])
            if overlap > 0:
                busy[i] += overlap
    widths = np.diff(edges)
    busy_fraction = busy / (widths * P)
    total_busy = sum(kind_seconds.values())
    return UtilizationReport(
        bin_edges=edges,
        busy_fraction=np.clip(busy_fraction, 0.0, 1.0),
        kind_seconds={
            "BFAC": kind_seconds[BFAC],
            "BDIV": kind_seconds[BDIV],
            "BMOD": kind_seconds[BMOD],
        },
        mean_utilization=float(total_busy / (P * t_end)),
    )
