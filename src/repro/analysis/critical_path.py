"""Critical-path analysis of the block task DAG.

The critical path is the longest dependency chain through the BFAC/BDIV/BMOD
DAG, measured in task time with communication ignored and unlimited
processors — a coarse lower bound on parallel runtime and hence an upper
bound on useful parallelism (§5 uses it to show the post-remapping gap is a
scheduling problem, not a concurrency shortage).

BMODs targeting the same block are treated as concurrent (each needs only
its sources), which makes the bound optimistic, i.e. still a valid lower
bound on runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fanout.tasks import TaskGraph
from repro.machine.params import PARAGON, MachineParams


@dataclass(frozen=True)
class CriticalPathReport:
    length_seconds: float
    t_sequential: float

    @property
    def max_speedup(self) -> float:
        """Upper bound on speedup: ``t_seq / critical_path``."""
        return self.t_sequential / self.length_seconds

    def max_efficiency(self, P: int) -> float:
        """Upper bound on efficiency at P processors from the path alone."""
        return min(1.0, self.max_speedup / P)


def critical_path(
    tg: TaskGraph, machine: MachineParams = PARAGON
) -> CriticalPathReport:
    """Longest chain through the task DAG, in seconds of task time."""
    wm = tg.workmodel
    structure = wm.structure
    N = tg.npanels
    key = wm._key_lookup
    widths = structure.partition.widths.astype(np.int64)

    avail = np.zeros(tg.nblocks)  # completion time of each block
    mod_ready = np.zeros(tg.nblocks)  # latest BMOD finish per destination

    def dur(flops):
        return (flops + machine.op_fixed_flops) / machine.flop_rate

    from repro.blocks.workmodel import chol_flops

    for k in range(N):
        w = int(widths[k])
        diag_b = key[k * N + k]
        avail[diag_b] = mod_ready[diag_b] + dur(chol_flops(w))
        brows = structure.block_rows[k]
        counts = structure.block_counts[k].astype(np.int64)
        m = brows.shape[0]
        if m == 0:
            continue
        bid = np.fromiter(
            (key[int(i) * N + k] for i in brows), count=m, dtype=np.int64
        )
        avail[bid] = (
            np.maximum(mod_ready[bid], avail[diag_b]) + dur(counts * w * w)
        )
        ii, jj = np.tril_indices(m)
        bmod_flops = np.where(
            ii == jj,
            counts[ii] * (counts[ii] + 1) * w,
            2 * counts[ii] * counts[jj] * w,
        )
        finish = np.maximum(avail[bid[ii]], avail[bid[jj]]) + dur(bmod_flops)
        dest = np.fromiter(
            (
                key[int(brows[a]) * N + int(brows[b])]
                for a, b in zip(ii, jj)
            ),
            count=ii.shape[0],
            dtype=np.int64,
        )
        np.maximum.at(mod_ready, dest, finish)

    t_seq = float(np.sum(tg.task_flops + machine.op_fixed_flops) / machine.flop_rate)
    return CriticalPathReport(
        length_seconds=float(avail.max()) if avail.size else 0.0,
        t_sequential=t_seq,
    )
