"""Static communication-volume accounting for a block mapping.

Counts, without running the simulator, every message the fan-out method
sends under a given ownership: diagonal blocks go to the owners of their
panel's subdiagonal blocks; each subdiagonal block goes to the owners of the
BMOD destinations it feeds. Used for the §5 subtree-to-subcube study, where
the paper observed up to 30% lower volume at the price of worse balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fanout.tasks import TaskGraph
from repro.machine.params import PARAGON, MachineParams


@dataclass(frozen=True)
class CommReport:
    messages: int
    bytes: int
    max_fanout: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.messages} messages, {self.bytes / 1e6:.2f} MB, "
            f"max fan-out {self.max_fanout}"
        )


def communication_volume(
    tg: TaskGraph,
    owners: np.ndarray,
    machine: MachineParams = PARAGON,
) -> CommReport:
    """Total messages/bytes the fan-out method sends under ``owners``."""
    owners = np.asarray(owners)
    task_owner = owners[tg.task_block]
    total_msgs = 0
    total_bytes = 0
    max_fanout = 0

    # Diagonal-block broadcasts (BFAC -> BDIV owners).
    diag_mask = tg.block_I == tg.block_J
    for b in np.flatnonzero(diag_mask):
        k = int(tg.block_J[b])
        sub = tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]]
        if sub.size == 0:
            continue
        dests = np.unique(owners[sub])
        dests = dests[dests != owners[b]]
        n = int(dests.shape[0])
        total_msgs += n
        total_bytes += n * machine.message_bytes(float(tg.block_words[b]))
        max_fanout = max(max_fanout, n)

    # Subdiagonal-block fan-out (BDIV -> BMOD owners).
    for b in np.flatnonzero(~diag_mask):
        deps = tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]
        if deps.size == 0:
            continue
        dests = np.unique(task_owner[deps])
        dests = dests[dests != owners[b]]
        n = int(dests.shape[0])
        total_msgs += n
        total_bytes += n * machine.message_bytes(float(tg.block_words[b]))
        max_fanout = max(max_fanout, n)

    return CommReport(messages=total_msgs, bytes=total_bytes, max_fanout=max_fanout)
