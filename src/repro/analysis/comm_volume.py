"""Static communication-volume accounting for a block mapping.

Counts, without running the simulator, every message the fan-out method
sends under a given ownership: diagonal blocks go to the owners of their
panel's subdiagonal blocks; each subdiagonal block goes to the owners of the
BMOD destinations it feeds. Used for the §5 subtree-to-subcube study, where
the paper observed up to 30% lower volume at the price of worse balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fanout.tasks import TaskGraph
from repro.machine.params import PARAGON, MachineParams


@dataclass(frozen=True)
class CommReport:
    messages: int
    bytes: int
    max_fanout: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.messages} messages, {self.bytes / 1e6:.2f} MB, "
            f"max fan-out {self.max_fanout}"
        )


def communication_volume(
    tg: TaskGraph,
    owners: np.ndarray,
    machine: MachineParams = PARAGON,
) -> CommReport:
    """Total messages/bytes the fan-out method sends under ``owners``."""
    owners = np.asarray(owners)
    task_owner = owners[tg.task_block]
    total_msgs = 0
    total_bytes = 0
    max_fanout = 0

    # Diagonal-block broadcasts (BFAC -> BDIV owners).
    diag_mask = tg.block_I == tg.block_J
    for b in np.flatnonzero(diag_mask):
        k = int(tg.block_J[b])
        sub = tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]]
        if sub.size == 0:
            continue
        dests = np.unique(owners[sub])
        dests = dests[dests != owners[b]]
        n = int(dests.shape[0])
        total_msgs += n
        total_bytes += n * machine.message_bytes(float(tg.block_words[b]))
        max_fanout = max(max_fanout, n)

    # Subdiagonal-block fan-out (BDIV -> BMOD owners).
    for b in np.flatnonzero(~diag_mask):
        deps = tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]
        if deps.size == 0:
            continue
        dests = np.unique(task_owner[deps])
        dests = dests[dests != owners[b]]
        n = int(dests.shape[0])
        total_msgs += n
        total_bytes += n * machine.message_bytes(float(tg.block_words[b]))
        max_fanout = max(max_fanout, n)

    return CommReport(messages=total_msgs, bytes=total_bytes, max_fanout=max_fanout)


@dataclass(frozen=True)
class SolveCommReport:
    """Predicted solve-phase traffic, split by frame kind.

    Solve frames always travel inline (a fixed 64-byte header plus the
    full float64 fragment), so these byte counts are exact on every
    transport — the runtime's solve ledger must match them integer for
    integer on a fault-free run.
    """

    y_messages: int
    y_bytes: int
    fup_messages: int
    fup_bytes: int
    x_messages: int
    x_bytes: int
    bup_messages: int
    bup_bytes: int

    @property
    def messages(self) -> int:
        return (self.y_messages + self.fup_messages
                + self.x_messages + self.bup_messages)

    @property
    def bytes(self) -> int:
        return self.y_bytes + self.fup_bytes + self.x_bytes + self.bup_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.messages} solve messages, {self.bytes / 1e6:.3f} MB "
            f"(Y {self.y_messages}, FUP {self.fup_messages}, "
            f"X {self.x_messages}, BUP {self.bup_messages})"
        )


def solve_communication_volume(
    tg: TaskGraph,
    owners: np.ndarray,
    nrhs: int = 1,
) -> SolveCommReport:
    """Messages/bytes the distributed triangular solve sends under
    ``owners`` for an ``nrhs``-column right-hand side.

    Four traffic classes, mirroring the four solve frame kinds:

    * ``SOLVE_Y`` — each forward-solved panel ``K`` is broadcast to the
      distinct owners of column ``K``'s subdiagonal blocks;
    * ``SOLVE_FUP`` — each subdiagonal block whose owner differs from its
      destination panel's diagonal owner ships one update fragment;
    * ``SOLVE_X`` — each backward-solved panel ``I`` is broadcast to the
      distinct owners of the blocks in row ``I``;
    * ``SOLVE_BUP`` — each block whose owner differs from its source
      panel's diagonal owner ships one update fragment.

    A frame costs ``64 + 8 * rows * nrhs`` bytes (header + full float64
    fragment; solve payloads are never triangle-packed and never ride the
    arena).
    """
    owners = np.asarray(owners)
    widths = np.asarray(tg.workmodel.structure.partition.widths,
                        dtype=np.int64)
    diag_mask = tg.block_I == tg.block_J
    diag_ids = np.flatnonzero(diag_mask)
    diag_owner = np.full(tg.npanels, -1, dtype=np.int64)
    diag_owner[tg.block_J[diag_ids]] = owners[diag_ids]

    y_msgs = y_bytes = 0
    for b in diag_ids:
        k = int(tg.block_J[b])
        sub = tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]]
        if sub.size == 0:
            continue
        dests = np.unique(owners[sub])
        dests = dests[dests != owners[b]]
        n = int(dests.shape[0])
        y_msgs += n
        y_bytes += n * (64 + 8 * int(widths[k]) * nrhs)

    sub_ids = np.flatnonzero(~diag_mask)
    fup_msgs = fup_bytes = 0
    bup_msgs = bup_bytes = 0
    for b in sub_ids:
        I = int(tg.block_I[b])
        K = int(tg.block_J[b])
        w = int(widths[K])
        rows = int(tg.block_words[b]) // w
        if int(owners[b]) != int(diag_owner[I]):
            fup_msgs += 1
            fup_bytes += 64 + 8 * rows * nrhs
        if int(owners[b]) != int(diag_owner[K]):
            bup_msgs += 1
            bup_bytes += 64 + 8 * w * nrhs

    x_msgs = x_bytes = 0
    row_owners: dict[int, set] = {}
    for b in sub_ids:
        row_owners.setdefault(int(tg.block_I[b]), set()).add(int(owners[b]))
    for i, dests in row_owners.items():
        n = len(dests - {int(diag_owner[i])})
        x_msgs += n
        x_bytes += n * (64 + 8 * int(widths[i]) * nrhs)

    return SolveCommReport(
        y_messages=y_msgs, y_bytes=y_bytes,
        fup_messages=fup_msgs, fup_bytes=fup_bytes,
        x_messages=x_msgs, x_bytes=x_bytes,
        bup_messages=bup_msgs, bup_bytes=bup_bytes,
    )
