"""Per-processor memory accounting under a block ownership.

The Paragon nodes of the paper's experiments have 32 MB each (§3.1), so the
factor must not only be load-balanced but *storage*-balanced. This module
accounts, per processor:

* resident factor storage (the dense blocks it owns), and
* peak receive buffering (the largest set of remote source blocks a
  processor may need simultaneously is bounded above by every remote block
  it ever receives; we report that bound).

One of this reproduction's own observations (an ablation, not in the paper):
the remapping heuristics balance *work*, which correlates with but does not
equal storage — the memory ratio is reported so users can check both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fanout.tasks import TaskGraph
from repro.machine.params import PARAGON, MachineParams


@dataclass(frozen=True)
class MemoryReport:
    """Bytes per processor: owned factor storage and received-copy bound."""

    owned_bytes: np.ndarray
    received_bound_bytes: np.ndarray

    @property
    def max_owned(self) -> int:
        return int(self.owned_bytes.max())

    @property
    def storage_balance(self) -> float:
        """total / (P * max): 1.0 = perfectly storage-balanced."""
        total = float(self.owned_bytes.sum())
        if total == 0:
            return 1.0
        return total / (self.owned_bytes.shape[0] * self.owned_bytes.max())

    @property
    def worst_case_bytes(self) -> int:
        """Upper bound on any node's footprint: owned + everything received."""
        return int((self.owned_bytes + self.received_bound_bytes).max())

    def fits(self, node_bytes: int = 32 * 2**20) -> bool:
        """Would the factorization fit in ``node_bytes`` per node (default:
        the Paragon's 32 MB)?"""
        return self.worst_case_bytes <= node_bytes


def memory_usage(
    tg: TaskGraph,
    owners: np.ndarray,
    P: int,
    machine: MachineParams = PARAGON,
) -> MemoryReport:
    """Account factor storage and received-copy bounds per processor."""
    owners = np.asarray(owners)
    word = machine.word_bytes
    owned = np.bincount(
        owners, weights=tg.block_words * word, minlength=P
    ).astype(np.int64)

    received = np.zeros(P, dtype=np.int64)
    task_owner = owners[tg.task_block]
    diag_mask = tg.block_I == tg.block_J
    # Diagonal blocks received for BDIV.
    for b in np.flatnonzero(diag_mask):
        k = int(tg.block_J[b])
        sub = tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]]
        if sub.size == 0:
            continue
        dests = np.unique(owners[sub])
        dests = dests[dests != owners[b]]
        received[dests] += int(tg.block_words[b]) * word
    # Subdiagonal blocks received for BMOD.
    for b in np.flatnonzero(~diag_mask):
        deps = tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]
        if deps.size == 0:
            continue
        dests = np.unique(task_owner[deps])
        dests = dests[dests != owners[b]]
        received[dests] += int(tg.block_words[b]) * word

    return MemoryReport(owned_bytes=owned, received_bound_bytes=received)
