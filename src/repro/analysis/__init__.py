"""Analysis tools: critical paths and communication volumes.

These implement the diagnostics of §5: the critical-path bound that shows
there is concurrency left after the remapping heuristics are applied, and
the static communication-volume accounting used to evaluate
subtree-to-subcube mappings.
"""

from repro.analysis.blocking import (
    arena_padding_stats,
    blocking_report,
    dgemm_tile_stats,
)
from repro.analysis.critical_path import critical_path
from repro.analysis.comm_volume import (
    communication_volume,
    solve_communication_volume,
)
from repro.analysis.memory import memory_usage
from repro.analysis.trace_replay import (
    TraceReplay,
    TraceValidationError,
    TraceValidationReport,
    replay_trace,
    validate_trace,
)
from repro.analysis.tree_stats import tree_statistics, work_by_depth
from repro.analysis.utilization import utilization_profile

__all__ = [
    "arena_padding_stats",
    "blocking_report",
    "dgemm_tile_stats",
    "critical_path",
    "communication_volume",
    "solve_communication_volume",
    "memory_usage",
    "TraceReplay",
    "TraceValidationError",
    "TraceValidationReport",
    "replay_trace",
    "validate_trace",
    "tree_statistics",
    "work_by_depth",
    "utilization_profile",
]
