"""Blocking-policy diagnostics: dgemm tile shapes and arena padding.

The payoff of structure-aware variable blocking is geometric, so these
metrics measure geometry directly:

* :func:`dgemm_tile_stats` — per BMOD task, the update it performs is
  ``L(I,K) @ L(J,K)^T``: an ``m x k`` by ``k x n`` product where
  ``m``/``n`` are the dense row counts of the two source blocks and ``k``
  is panel K's width. Median/max ``m * n`` (the tile area the fused kernel
  sweeps) is the "bigger dgemm tiles" half of the blocking win; wider
  panels also raise ``k``, the reuse dimension.
* :func:`arena_padding_stats` — the shm arena stores each block's logical
  payload in a :data:`~repro.runtime.arena.SLOT_ALIGN`-aligned slot, so
  its only dead space is per-slot tail padding. Fewer, wider panels mean
  fewer slots and a smaller padded fraction; this is the "less padding
  waste" half.

:func:`blocking_report` bundles both with the partition's width profile —
the dict the bench sweep records per (problem, policy).
"""

from __future__ import annotations

import numpy as np

from repro.fanout.tasks import BMOD
from repro.runtime.arena import ArenaLayout

__all__ = ["dgemm_tile_stats", "arena_padding_stats", "blocking_report"]


def _block_extents(tg) -> tuple[np.ndarray, np.ndarray]:
    """Per-block (rows, cols) logical extents, mirroring ``ArenaLayout``."""
    part = tg.workmodel.structure.partition
    widths = np.asarray(part.widths, dtype=np.int64)
    J = np.asarray(tg.block_J, dtype=np.int64)
    diag = np.asarray(tg.block_I, dtype=np.int64) == J
    cols = widths[J]
    words = np.asarray(tg.block_words, dtype=np.int64)
    rows = np.where(diag, cols, words // np.maximum(cols, 1))
    return rows, cols


def dgemm_tile_stats(tg) -> dict:
    """Shape statistics of the BMOD update tiles a task graph performs.

    For ``BMOD(I, J, K)`` with sources ``(I, K)`` and ``(J, K)``, the tile
    is ``m x n`` with inner dimension ``k``: ``m = rows(I, K)``,
    ``n = rows(J, K)``, ``k = width(K)``. All statistics are unweighted
    over BMOD tasks (each task is one kernel invocation).
    """
    rows, cols = _block_extents(tg)
    mask = np.asarray(tg.task_kind) == BMOD
    s1 = np.asarray(tg.task_src1)[mask]
    s2 = np.asarray(tg.task_src2)[mask]
    if s1.size == 0:
        return {
            "bmod_tasks": 0,
            "median_tile_mn": 0.0,
            "max_tile_mn": 0,
            "median_tile_k": 0.0,
            "mean_tile_mn": 0.0,
        }
    m = rows[s1]
    n = rows[s2]
    k = cols[s1]
    area = m * n
    return {
        "bmod_tasks": int(s1.size),
        "median_tile_mn": float(np.median(area)),
        "max_tile_mn": int(area.max()),
        "median_tile_k": float(np.median(k)),
        "mean_tile_mn": float(area.mean()),
    }


def arena_padding_stats(tg) -> dict:
    """Dead-space accounting of the shm arena layout ``tg`` implies."""
    lay = ArenaLayout(tg)
    pct = (
        100.0 * lay.padding_bytes / lay.total_bytes if lay.total_bytes else 0.0
    )
    return {
        "nblocks": lay.nblocks,
        "payload_bytes": lay.payload_bytes,
        "padding_bytes": lay.padding_bytes,
        "total_bytes": lay.total_bytes,
        "padding_pct": pct,
    }


def blocking_report(tg) -> dict:
    """Per-policy geometry summary: widths + tiles + padding."""
    part = tg.workmodel.structure.partition
    widths = np.asarray(part.widths, dtype=np.int64)
    return {
        "block_policy": getattr(part, "policy_name", "uniform"),
        "npanels": int(widths.size),
        "width_min": int(widths.min()) if widths.size else 0,
        "width_median": float(np.median(widths)) if widths.size else 0.0,
        "width_max": int(widths.max()) if widths.size else 0,
        "tiles": dgemm_tile_stats(tg),
        "arena": arena_padding_stats(tg),
    }
