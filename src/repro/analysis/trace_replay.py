"""Trace replay: recompute run statistics from the structured trace alone.

The structured trace (:mod:`repro.runtime.trace`) mirrors the metrics
timeline event for event, so everything
:class:`~repro.runtime.metrics.RuntimeMetrics` reports — per-worker
busy/comm/idle time, executed work, message counts and bytes — can be
*recomputed from the trace* and cross-checked. On a fault-free run the
reconciliation is exact (bit-identical float sums, integer-equal
counters); the same replay also recomputes the paper's §3.2 balance
statistics (overall, row, column, diagonal — realized, not modeled) from
the per-rank work and the processor grid recorded in the trace metadata.

:func:`replay_trace` produces the per-worker profile;
:func:`validate_trace` layers the cross-checks:

* structural: monotone per-worker timestamps, every task exactly once
  per attempt, no ring overflow;
* against :class:`RuntimeMetrics`: busy/comm/idle seconds exact,
  work/messages/bytes integer-equal, balance within tolerance;
* against the static models: per-worker work equals the
  :class:`~repro.blocks.workmodel.WorkModel` share of the ownership,
  message/byte totals equal
  :func:`~repro.analysis.comm_volume.communication_volume`, and the
  replayed overall balance matches
  :func:`~repro.mapping.balance.overall_balance_from_owners` to 1e-9.

Work stealing (``schedule="dynamic"``) is reconciled exactly, not
waived: a stolen task's span carries a ``stolen_from`` arg, so the replay
splits executed work into owned and migrated portions per worker and
checks the *migration-adjusted* identity
``executed - migrated_in + migrated_away == WorkModel owner share``
to the integer. Steal protocol time lands in ``"steal"`` spans (bucketed
as comm), giving the static-vs-dynamic idle/overhead comparison its
denominators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.comm_volume import (
    communication_volume,
    solve_communication_volume,
)
from repro.mapping.balance import overall_balance_from_owners


def _balance(values: np.ndarray) -> float:
    """The paper's statistic: ``total / (P * max)`` (1.0 is perfect)."""
    m = float(values.max(initial=0.0))
    if m <= 0:
        return 1.0
    return float(values.sum() / (values.shape[0] * m))


@dataclass
class TraceReplay:
    """Per-worker profile recomputed from a trace (one attempt)."""

    attempt: int
    nprocs: int
    grid: tuple[int, int] | None
    busy_s: np.ndarray
    comm_s: np.ndarray
    idle_s: np.ndarray
    work: np.ndarray
    flops: np.ndarray
    tasks: np.ndarray
    task_counts: list[dict[str, int]]
    messages_sent: np.ndarray
    bytes_sent: np.ndarray
    messages_received: np.ndarray
    bytes_received: np.ndarray
    #: Transported bytes (``wire_bytes`` span args): what actually crossed
    #: the queues. Falls back to the logical ``bytes`` for traces recorded
    #: before the transport split, so inline traces reconcile either way.
    wire_bytes_sent: np.ndarray
    wire_bytes_received: np.ndarray
    retransmits: np.ndarray
    duplicates: np.ndarray
    marks: dict[str, int]
    #: Work stealing (zero everywhere on static runs): time spent in the
    #: steal protocol (part of comm), per-worker migrated task/work flows
    #: (``in`` = executed here for another owner, ``away`` = granted to a
    #: thief), and the protocol frame counts.
    steal_s: np.ndarray = None
    migrated_in_tasks: np.ndarray = None
    migrated_away_tasks: np.ndarray = None
    migrated_in_work: np.ndarray = None
    migrated_away_work: np.ndarray = None
    steal_reqs: np.ndarray = None
    steal_grants: np.ndarray = None
    steal_denies: np.ndarray = None
    #: Solve phase (zero everywhere on factor-only runs): replayed
    #: busy/comm/idle seconds, per-worker solve tasks/work, and the solve
    #: plane's message/byte ledger (logical == wire for solve frames).
    solve_busy_s: np.ndarray = None
    solve_comm_s: np.ndarray = None
    solve_idle_s: np.ndarray = None
    solve_tasks: np.ndarray = None
    solve_work: np.ndarray = None
    solve_task_counts: list = None
    solve_messages_sent: np.ndarray = None
    solve_bytes_sent: np.ndarray = None
    solve_messages_received: np.ndarray = None
    solve_bytes_received: np.ndarray = None

    @property
    def solved(self) -> bool:
        """True when this attempt ran a distributed solve phase."""
        return bool(self.solve_tasks.sum())

    # ------------------------------------------------------------------
    @property
    def migrated(self) -> bool:
        """True when any task ran away from its owner (dynamic schedule)."""
        return bool(self.migrated_in_tasks.sum())

    @property
    def owner_work(self) -> np.ndarray:
        """Migration-adjusted work: what each worker's *owned* tasks cost,
        wherever they ran — equals the static WorkModel share exactly."""
        return self.work - self.migrated_in_work + self.migrated_away_work

    @property
    def measured_balance(self) -> float:
        """Balance of replayed busy seconds."""
        return _balance(self.busy_s)

    @property
    def work_balance(self) -> float:
        """Overall balance of replayed work units (§3.2 'overall')."""
        return _balance(self.work.astype(float))

    def _grid_work(self) -> tuple[np.ndarray, int, int]:
        if self.grid is None:
            raise ValueError("trace metadata carries no processor grid")
        Pr, Pc = self.grid
        if Pr * Pc != self.nprocs:
            raise ValueError(
                f"grid {Pr}x{Pc} does not cover {self.nprocs} workers"
            )
        return self.work.astype(float), Pr, Pc

    @property
    def row_balance(self) -> float:
        """Realized row balance: work aggregated per grid row."""
        w, Pr, Pc = self._grid_work()
        rows = np.arange(self.nprocs) // Pc
        row_work = np.bincount(rows, weights=w, minlength=Pr)
        m = float(row_work.max(initial=0.0))
        if m <= 0:
            return 1.0
        return float(w.sum() / (self.nprocs * m / Pc))

    @property
    def column_balance(self) -> float:
        """Realized column balance: work aggregated per grid column."""
        w, Pr, Pc = self._grid_work()
        cols = np.arange(self.nprocs) % Pc
        col_work = np.bincount(cols, weights=w, minlength=Pc)
        m = float(col_work.max(initial=0.0))
        if m <= 0:
            return 1.0
        return float(w.sum() / (self.nprocs * m / Pr))

    @property
    def diagonal_balance(self) -> float | None:
        """Realized diagonal balance (square grids only, like §3.2)."""
        w, Pr, Pc = self._grid_work()
        if Pr != Pc:
            return None
        ranks = np.arange(self.nprocs)
        d = (ranks // Pc - ranks % Pc) % Pr
        diag_work = np.bincount(d, weights=w, minlength=Pr)
        m = float(diag_work.max(initial=0.0))
        if m <= 0:
            return 1.0
        return float(w.sum() / (self.nprocs * m / Pr))


def replay_trace(trace, attempt: int | None = None) -> TraceReplay:
    """Recompute the per-worker execution profile from a trace.

    ``attempt`` picks one attempt of a multi-attempt (recovery) trace;
    default is the final one. Sums are accumulated per worker in event
    order, which reproduces the worker's own float summation exactly.
    """
    attempts = trace.attempts
    if attempt is None:
        attempt = attempts[-1] if attempts else 0
    nprocs = trace.nprocs
    grid = trace.meta.get("grid")
    grid = (int(grid[0]), int(grid[1])) if grid else None

    busy = np.zeros(nprocs)
    comm = np.zeros(nprocs)
    idle = np.zeros(nprocs)
    work = np.zeros(nprocs, dtype=np.int64)
    flops = np.zeros(nprocs, dtype=np.int64)
    tasks = np.zeros(nprocs, dtype=np.int64)
    task_counts = [
        {"BFAC": 0, "BDIV": 0, "BMOD": 0} for _ in range(nprocs)
    ]
    msent = np.zeros(nprocs, dtype=np.int64)
    bsent = np.zeros(nprocs, dtype=np.int64)
    mrecv = np.zeros(nprocs, dtype=np.int64)
    brecv = np.zeros(nprocs, dtype=np.int64)
    wsent = np.zeros(nprocs, dtype=np.int64)
    wrecv = np.zeros(nprocs, dtype=np.int64)
    retrans = np.zeros(nprocs, dtype=np.int64)
    dups = np.zeros(nprocs, dtype=np.int64)
    marks: dict[str, int] = {}
    steal_s = np.zeros(nprocs)
    mig_in_t = np.zeros(nprocs, dtype=np.int64)
    mig_away_t = np.zeros(nprocs, dtype=np.int64)
    mig_in_w = np.zeros(nprocs, dtype=np.int64)
    mig_away_w = np.zeros(nprocs, dtype=np.int64)
    sreqs = np.zeros(nprocs, dtype=np.int64)
    sgrants = np.zeros(nprocs, dtype=np.int64)
    sdenies = np.zeros(nprocs, dtype=np.int64)
    sv_busy = np.zeros(nprocs)
    sv_comm = np.zeros(nprocs)
    sv_idle = np.zeros(nprocs)
    sv_tasks = np.zeros(nprocs, dtype=np.int64)
    sv_work = np.zeros(nprocs, dtype=np.int64)
    sv_counts = [
        {"FSOLVE": 0, "FUPD": 0, "BSOLVE": 0, "BUPD": 0}
        for _ in range(nprocs)
    ]
    sv_msent = np.zeros(nprocs, dtype=np.int64)
    sv_bsent = np.zeros(nprocs, dtype=np.int64)
    sv_mrecv = np.zeros(nprocs, dtype=np.int64)
    sv_brecv = np.zeros(nprocs, dtype=np.int64)

    for e in trace.events:
        if e.attempt != attempt:
            continue
        r = e.rank
        if e.cat == "task":
            busy[r] += e.t1 - e.t0
            tasks[r] += 1
            kind = e.name.partition("(")[0]
            if kind in task_counts[r]:
                task_counts[r][kind] += 1
            if e.args:
                w = int(e.args.get("work", 0))
                work[r] += w
                flops[r] += int(e.args.get("flops", 0))
                victim = e.args.get("stolen_from")
                if victim is not None:
                    mig_in_t[r] += 1
                    mig_in_w[r] += w
                    if 0 <= int(victim) < nprocs:
                        mig_away_t[int(victim)] += 1
                        mig_away_w[int(victim)] += w
        elif e.cat == "send":
            comm[r] += e.t1 - e.t0
            if e.args:
                n = len(e.args.get("targets", ()))
                nb = int(e.args.get("bytes", 0))
                msent[r] += n
                bsent[r] += n * nb
                wsent[r] += n * int(e.args.get("wire_bytes", nb))
        elif e.cat == "recv":
            comm[r] += e.t1 - e.t0
            mrecv[r] += 1
            if e.args:
                nb = int(e.args.get("bytes", 0))
                brecv[r] += nb
                wrecv[r] += int(e.args.get("wire_bytes", nb))
            if e.name == "duplicate":
                dups[r] += 1
        elif e.cat == "comm":
            comm[r] += e.t1 - e.t0
        elif e.cat == "steal":
            comm[r] += e.t1 - e.t0
            steal_s[r] += e.t1 - e.t0
            if e.name == "steal_req":
                sreqs[r] += 1
            elif e.name == "steal_grant":
                sgrants[r] += 1
            elif e.name == "steal_deny":
                sdenies[r] += 1
        elif e.cat == "idle":
            idle[r] += e.t1 - e.t0
        elif e.cat == "solve_task":
            sv_busy[r] += e.t1 - e.t0
            sv_tasks[r] += 1
            kind = e.name.partition("(")[0]
            if kind in sv_counts[r]:
                sv_counts[r][kind] += 1
            if e.args:
                sv_work[r] += int(e.args.get("work", 0))
        elif e.cat == "solve_send":
            sv_comm[r] += e.t1 - e.t0
            if e.args:
                n = len(e.args.get("targets", ()))
                sv_msent[r] += n
                sv_bsent[r] += n * int(e.args.get("bytes", 0))
        elif e.cat == "solve_recv":
            sv_comm[r] += e.t1 - e.t0
            sv_mrecv[r] += 1
            if e.args:
                sv_brecv[r] += int(e.args.get("bytes", 0))
        elif e.cat == "solve_idle":
            sv_idle[r] += e.t1 - e.t0
        elif e.cat == "mark":
            marks[e.name] = marks.get(e.name, 0) + 1
            if e.name == "retransmit":
                retrans[r] += 1
                msent[r] += 1
                if e.args:
                    nb = int(e.args.get("bytes", 0))
                    bsent[r] += nb
                    wsent[r] += int(e.args.get("wire_bytes", nb))

    return TraceReplay(
        attempt=attempt, nprocs=nprocs, grid=grid,
        busy_s=busy, comm_s=comm, idle_s=idle,
        work=work, flops=flops, tasks=tasks, task_counts=task_counts,
        messages_sent=msent, bytes_sent=bsent,
        messages_received=mrecv, bytes_received=brecv,
        wire_bytes_sent=wsent, wire_bytes_received=wrecv,
        retransmits=retrans, duplicates=dups, marks=marks,
        steal_s=steal_s,
        migrated_in_tasks=mig_in_t, migrated_away_tasks=mig_away_t,
        migrated_in_work=mig_in_w, migrated_away_work=mig_away_w,
        steal_reqs=sreqs, steal_grants=sgrants, steal_denies=sdenies,
        solve_busy_s=sv_busy, solve_comm_s=sv_comm, solve_idle_s=sv_idle,
        solve_tasks=sv_tasks, solve_work=sv_work,
        solve_task_counts=sv_counts,
        solve_messages_sent=sv_msent, solve_bytes_sent=sv_bsent,
        solve_messages_received=sv_mrecv, solve_bytes_received=sv_brecv,
    )


@dataclass
class TraceValidationReport:
    """Outcome of :func:`validate_trace`."""

    replay: TraceReplay
    checks: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        rep = self.replay
        lines = [
            f"trace replay (attempt {rep.attempt}, P={rep.nprocs}): "
            f"{'OK' if self.ok else 'FAILED'}",
            f"  busy={rep.busy_s.sum():.4f}s idle={rep.idle_s.sum():.4f}s "
            f"comm={rep.comm_s.sum():.4f}s tasks={int(rep.tasks.sum())}",
            f"  messages={int(rep.messages_sent.sum())} "
            f"({int(rep.bytes_sent.sum())} bytes)",
            f"  balance: measured={rep.measured_balance:.4f} "
            f"overall={rep.work_balance:.4f}",
        ]
        if rep.grid is not None:
            diag = rep.diagonal_balance
            lines.append(
                f"  row={rep.row_balance:.4f} col={rep.column_balance:.4f} "
                f"diag={'n/a' if diag is None else f'{diag:.4f}'}"
            )
        if rep.solved:
            lines.append(
                f"  solve: {int(rep.solve_tasks.sum())} tasks "
                f"({int(rep.solve_work.sum())} work), "
                f"{int(rep.solve_messages_sent.sum())} messages "
                f"({int(rep.solve_bytes_sent.sum())} bytes), "
                f"busy={rep.solve_busy_s.sum():.4f}s "
                f"comm={rep.solve_comm_s.sum():.4f}s "
                f"idle={rep.solve_idle_s.sum():.4f}s"
            )
        if rep.migrated:
            lines.append(
                f"  steals: {int(rep.migrated_in_tasks.sum())} tasks "
                f"({int(rep.migrated_in_work.sum())} work) migrated, "
                f"{int(rep.steal_reqs.sum())} requests / "
                f"{int(rep.steal_grants.sum())} grants / "
                f"{int(rep.steal_denies.sum())} denies, "
                f"overhead {rep.steal_s.sum():.4f}s"
            )
        lines.extend(f"  pass: {c}" for c in self.checks)
        lines.extend(f"  FAIL: {f}" for f in self.failures)
        return "\n".join(lines)


class TraceValidationError(AssertionError):
    """The trace disagreed with the metrics or the static models."""


def validate_trace(
    trace,
    metrics=None,
    tg=None,
    owners=None,
    attempt: int | None = None,
    tolerance: float = 1e-9,
    faulty: bool = False,
    strict: bool = False,
) -> TraceValidationReport:
    """Replay ``trace`` and cross-check it against everything we know.

    ``metrics`` (a :class:`~repro.runtime.metrics.RuntimeMetrics`) enables
    the exact runtime reconciliation; ``tg`` + ``owners`` enable the
    static-model checks (WorkModel shares, communication volume, overall
    balance). ``faulty`` relaxes the exact accounting checks the same way
    :func:`repro.runtime.validation.validate_runtime` does — retransmits,
    duplicates, and checkpoint-skipped tasks legitimately perturb them.
    With ``strict``, failures raise :class:`TraceValidationError`.
    """
    rep = replay_trace(trace, attempt=attempt)
    checks: list[str] = []
    failures: list[str] = []

    # ------------------------------------------------------------------
    # Structural invariants.
    # ------------------------------------------------------------------
    if trace.total_dropped:
        failures.append(
            f"ring overflow dropped {trace.total_dropped} events; "
            "replay is incomplete"
        )
    # Events are appended when they *close* (spans at t1, marks at their
    # instant), so per worker the end times are non-decreasing in recorded
    # order — even when a mark fires inside a span still being measured.
    for rank, events in sorted(trace.per_worker(rep.attempt).items()):
        prev = -np.inf
        for e in events:
            if e.t1 < e.t0:
                failures.append(
                    f"worker {rank}: event {e.name!r} ends before it "
                    f"starts ({e.t1} < {e.t0})"
                )
                break
            if e.t1 < prev:
                failures.append(
                    f"worker {rank}: non-monotone event order at "
                    f"{e.name!r} (ends {e.t1}, earlier than {prev})"
                )
                break
            prev = e.t1
    if not any(f.startswith("worker") for f in failures):
        checks.append("per-worker timestamps monotone")

    seen_tids: dict[int, int] = {}
    for e in trace.events:
        if e.attempt != rep.attempt or e.cat != "task" or not e.args:
            continue
        tid = e.args.get("tid")
        if tid is not None:
            seen_tids[tid] = seen_tids.get(tid, 0) + 1
    repeated = {t: c for t, c in seen_tids.items() if c > 1}
    if repeated:
        failures.append(
            f"{len(repeated)} tasks executed more than once in attempt "
            f"{rep.attempt} (e.g. {sorted(repeated)[:5]})"
        )
    else:
        checks.append("every task executed at most once per attempt")

    # Balance sanity: overall can never exceed the marginal statistics.
    if rep.grid is not None and rep.work.sum() > 0:
        margins = [rep.row_balance, rep.column_balance]
        if rep.diagonal_balance is not None:
            margins.append(rep.diagonal_balance)
        if rep.work_balance > min(margins) + 1e-12:
            failures.append(
                f"overall balance {rep.work_balance:.6f} exceeds a "
                f"marginal balance (min {min(margins):.6f})"
            )
        else:
            checks.append("overall <= row/column/diagonal balance")

    # ------------------------------------------------------------------
    # Against the measured RuntimeMetrics (exact on fault-free runs).
    # ------------------------------------------------------------------
    if metrics is not None:
        workers = sorted(metrics.workers, key=lambda w: w.rank)
        for w in workers:
            r = w.rank
            for label, got, want in (
                ("busy_s", rep.busy_s[r], w.busy_s),
                ("comm_s", rep.comm_s[r], w.comm_s),
                ("idle_s", rep.idle_s[r], w.idle_s),
            ):
                if got != want:
                    failures.append(
                        f"worker {r}: replayed {label} {got!r} != "
                        f"metrics {want!r}"
                    )
            if rep.tasks[r] != w.tasks_executed:
                failures.append(
                    f"worker {r}: replayed {int(rep.tasks[r])} tasks, "
                    f"metrics say {w.tasks_executed}"
                )
            if rep.work[r] != w.work_executed:
                failures.append(
                    f"worker {r}: replayed work {int(rep.work[r])} != "
                    f"metrics {w.work_executed}"
                )
            if rep.task_counts[r] != w.task_counts:
                failures.append(
                    f"worker {r}: replayed task kinds "
                    f"{rep.task_counts[r]} != metrics {w.task_counts}"
                )
            if not faulty:
                if (rep.messages_sent[r] != w.messages_sent
                        or rep.bytes_sent[r] != w.bytes_sent):
                    failures.append(
                        f"worker {r}: replayed sends "
                        f"{int(rep.messages_sent[r])}/"
                        f"{int(rep.bytes_sent[r])}B != metrics "
                        f"{w.messages_sent}/{w.bytes_sent}B"
                    )
                if (rep.messages_received[r] != w.messages_received
                        or rep.bytes_received[r] != w.bytes_received):
                    failures.append(
                        f"worker {r}: replayed recvs "
                        f"{int(rep.messages_received[r])}/"
                        f"{int(rep.bytes_received[r])}B != metrics "
                        f"{w.messages_received}/{w.bytes_received}B"
                    )
                # Transported bytes reconcile too — but only when the
                # metrics carry the split (older serialized metrics
                # predate it and report zero).
                wsent = getattr(w, "wire_bytes_sent", 0)
                wrecv = getattr(w, "wire_bytes_received", 0)
                if (wsent or wrecv) and (
                    rep.wire_bytes_sent[r] != wsent
                    or rep.wire_bytes_received[r] != wrecv
                ):
                    failures.append(
                        f"worker {r}: replayed wire bytes "
                        f"{int(rep.wire_bytes_sent[r])}/"
                        f"{int(rep.wire_bytes_received[r])} != metrics "
                        f"{wsent}/{wrecv}"
                    )
                # Migration accounting reconciles exactly: the thief's
                # stolen spans and the victims they name must match both
                # sides' steal tallies task for task, work unit for work
                # unit.
                # The solve plane reconciles exactly too: replayed
                # busy/comm/idle seconds bit-equal the worker's own
                # timeline sums, and the solve ledger integer-equals the
                # link counters.
                for label, got, want in (
                    ("solve_busy_s", rep.solve_busy_s[r],
                     getattr(w, "solve_busy_s", 0.0)),
                    ("solve_comm_s", rep.solve_comm_s[r],
                     getattr(w, "solve_comm_s", 0.0)),
                    ("solve_idle_s", rep.solve_idle_s[r],
                     getattr(w, "solve_idle_s", 0.0)),
                ):
                    if got != want:
                        failures.append(
                            f"worker {r}: replayed {label} {got!r} != "
                            f"metrics {want!r}"
                        )
                for label, got, want in (
                    ("solve tasks", rep.solve_tasks[r],
                     getattr(w, "solve_tasks_executed", 0)),
                    ("solve work", rep.solve_work[r],
                     getattr(w, "solve_work_executed", 0)),
                    ("solve messages sent", rep.solve_messages_sent[r],
                     getattr(w, "solve_messages_sent", 0)),
                    ("solve bytes sent", rep.solve_bytes_sent[r],
                     getattr(w, "solve_bytes_sent", 0)),
                    ("solve messages received",
                     rep.solve_messages_received[r],
                     getattr(w, "solve_messages_received", 0)),
                    ("solve bytes received", rep.solve_bytes_received[r],
                     getattr(w, "solve_bytes_received", 0)),
                ):
                    if int(got) != int(want):
                        failures.append(
                            f"worker {r}: replayed {label} {int(got)} "
                            f"!= metrics {int(want)}"
                        )
                sv_counts = getattr(w, "solve_task_counts", None)
                if sv_counts and rep.solve_task_counts[r] != sv_counts:
                    failures.append(
                        f"worker {r}: replayed solve task kinds "
                        f"{rep.solve_task_counts[r]} != metrics "
                        f"{sv_counts}"
                    )
                for label, got, want in (
                    ("steal requests", rep.steal_reqs[r],
                     getattr(w, "steal_reqs_sent", 0)),
                    ("steal grants", rep.steal_grants[r],
                     getattr(w, "steal_grants", 0)),
                    ("steal denies", rep.steal_denies[r],
                     getattr(w, "steal_denies", 0)),
                    ("tasks stolen", rep.migrated_in_tasks[r],
                     getattr(w, "tasks_stolen", 0)),
                    ("tasks shipped", rep.migrated_away_tasks[r],
                     getattr(w, "tasks_shipped", 0)),
                    ("work stolen", rep.migrated_in_work[r],
                     getattr(w, "work_stolen", 0)),
                    ("work shipped", rep.migrated_away_work[r],
                     getattr(w, "work_shipped", 0)),
                ):
                    if int(got) != int(want):
                        failures.append(
                            f"worker {r}: replayed {label} {int(got)} "
                            f"!= metrics {int(want)}"
                        )
        if abs(rep.measured_balance - metrics.measured_balance) > tolerance:
            failures.append(
                f"replayed measured balance {rep.measured_balance!r} != "
                f"metrics {metrics.measured_balance!r}"
            )
        if abs(rep.work_balance - metrics.work_balance) > tolerance:
            failures.append(
                f"replayed work balance {rep.work_balance!r} != "
                f"metrics {metrics.work_balance!r}"
            )
        if not any("metrics" in f or "worker" in f for f in failures):
            checks.append("replay reconciles with RuntimeMetrics")

    # ------------------------------------------------------------------
    # Against the static models (fault-free runs only).
    # ------------------------------------------------------------------
    if tg is not None and owners is not None and not faulty:
        owners = np.asarray(owners)
        wm = tg.workmodel
        work_pred = np.bincount(
            owners, weights=wm.work, minlength=rep.nprocs
        ).astype(np.int64)
        # Under work stealing a worker's *executed* work legitimately
        # differs from its owner share; the migration-adjusted identity
        # (executed - stolen in + shipped away) must still hold exactly.
        work_adj = rep.owner_work
        if not np.array_equal(work_adj, work_pred):
            failures.append(
                "replayed per-worker work (migration-adjusted) differs "
                "from the WorkModel share by up to "
                f"{np.abs(work_adj - work_pred).max()}"
            )
        elif rep.migrated:
            checks.append(
                "migration-adjusted per-worker work equals the "
                "WorkModel share exactly"
            )
        else:
            checks.append("per-worker work equals the WorkModel share")
        if rep.solved:
            # The solve predictor reconciles exactly: the number of
            # right-hand sides is recorded in the trace metadata, and
            # solve frames are fully inline, so logical == wire bytes.
            nrhs = int(trace.meta.get("nrhs", 1)) or 1
            sv_pred = solve_communication_volume(tg, owners, nrhs=nrhs)
            sv_sent = int(rep.solve_messages_sent.sum())
            sv_recv = int(rep.solve_messages_received.sum())
            sv_bytes = int(rep.solve_bytes_sent.sum())
            sv_rbytes = int(rep.solve_bytes_received.sum())
            if sv_sent != sv_pred.messages or sv_recv != sv_pred.messages:
                failures.append(
                    f"replayed solve messages {sv_sent} sent / "
                    f"{sv_recv} received, predictor says "
                    f"{sv_pred.messages}"
                )
            elif sv_bytes != sv_pred.bytes or sv_rbytes != sv_pred.bytes:
                failures.append(
                    f"replayed solve bytes {sv_bytes} sent / "
                    f"{sv_rbytes} received, predictor says "
                    f"{sv_pred.bytes}"
                )
            else:
                checks.append(
                    "solve messages/bytes equal solve_communication_volume"
                )
        comm_pred = communication_volume(tg, owners)
        if int(rep.messages_sent.sum()) != comm_pred.messages:
            failures.append(
                f"replayed {int(rep.messages_sent.sum())} messages, "
                f"comm_volume predicted {comm_pred.messages}"
            )
        elif int(rep.bytes_sent.sum()) != comm_pred.bytes:
            failures.append(
                f"replayed {int(rep.bytes_sent.sum())} bytes, "
                f"comm_volume predicted {comm_pred.bytes}"
            )
        else:
            checks.append("message counts/bytes equal comm_volume")
        bal_pred = overall_balance_from_owners(wm, owners, rep.nprocs)
        # The owner-share balance prediction applies to the realized work
        # only when no work migrated; under stealing the adjusted work
        # identity above already pins every owner share exactly, and the
        # realized balance is reported rather than asserted.
        if rep.migrated:
            adj_bal = _balance(work_adj.astype(float))
            if abs(adj_bal - bal_pred) > tolerance:
                failures.append(
                    f"migration-adjusted balance {adj_bal:.12f} != "
                    f"WorkModel prediction {bal_pred:.12f}"
                )
            else:
                checks.append(
                    "owner-share balance matches the WorkModel under "
                    "migration"
                )
        elif abs(rep.work_balance - bal_pred) > tolerance:
            failures.append(
                f"replayed overall balance {rep.work_balance:.12f} != "
                f"WorkModel prediction {bal_pred:.12f}"
            )
        else:
            checks.append("overall balance matches the WorkModel to 1e-9")

    report = TraceValidationReport(
        replay=rep, checks=checks, failures=failures
    )
    if strict and failures:
        raise TraceValidationError(report.summary())
    return report
