"""Compressed adjacency structure for matrix graphs."""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.util.arrays import INDEX_DTYPE


class AdjacencyGraph:
    """Undirected graph of a symmetric sparse pattern, CSR-compressed.

    The diagonal is removed; the structure is symmetrized defensively so
    that callers may pass either triangle or the full pattern.
    """

    __slots__ = ("indptr", "indices", "n")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self.indptr = np.ascontiguousarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.n = self.indptr.shape[0] - 1

    @classmethod
    def from_sparse(cls, A: sparse.spmatrix) -> "AdjacencyGraph":
        A = A.tocsr()
        if A.shape[0] != A.shape[1]:
            raise ValueError("adjacency requires a square matrix")
        pattern = A + A.T  # symmetrize structure
        pattern = pattern.tocsr()
        pattern.setdiag(0)
        pattern.eliminate_zeros()
        pattern.sort_indices()
        return cls(pattern.indptr, pattern.indices)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour indices of vertex ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.shape[0] // 2)

    def subgraph(self, vertices: np.ndarray) -> tuple["AdjacencyGraph", np.ndarray]:
        """Induced subgraph; returns (graph, original-vertex-ids).

        ``vertices`` need not be sorted; local vertex ``i`` corresponds to
        ``vertices[i]`` in the parent graph.
        """
        vertices = np.asarray(vertices, dtype=INDEX_DTYPE)
        local = np.full(self.n, -1, dtype=INDEX_DTYPE)
        local[vertices] = np.arange(vertices.shape[0], dtype=INDEX_DTYPE)

        counts = np.zeros(vertices.shape[0] + 1, dtype=INDEX_DTYPE)
        chunks = []
        for i, v in enumerate(vertices):
            nbrs = local[self.neighbors(v)]
            nbrs = nbrs[nbrs >= 0]
            counts[i + 1] = nbrs.shape[0]
            chunks.append(nbrs)
        indptr = np.cumsum(counts)
        indices = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=INDEX_DTYPE)
        )
        return AdjacencyGraph(indptr, indices), vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdjacencyGraph(n={self.n}, edges={self.num_edges})"
