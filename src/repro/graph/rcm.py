"""Reverse Cuthill-McKee ordering (bandwidth-reducing baseline).

Included as a comparison ordering; the paper itself uses nested dissection and
multiple minimum degree, but RCM is the classic profile method and makes a
useful "bad for parallelism" baseline in the examples.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.traversal import pseudo_peripheral_node
from repro.util.arrays import INDEX_DTYPE


def reverse_cuthill_mckee(graph: AdjacencyGraph) -> np.ndarray:
    """Return the RCM permutation ``perm`` (perm[k] = k-th vertex in new order)."""
    n = graph.n
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=INDEX_DTYPE)
    pos = 0
    degrees = graph.degrees

    while pos < n:
        seeds = np.flatnonzero(~visited)
        start = int(seeds[np.argmin(degrees[seeds])])
        mask = ~visited
        root, _ = pseudo_peripheral_node(graph, start, mask=mask)

        visited[root] = True
        order[pos] = root
        head = pos
        pos += 1
        while head < pos:
            v = order[head]
            head += 1
            nbrs = graph.neighbors(int(v))
            nbrs = nbrs[~visited[nbrs]]
            if nbrs.size:
                nbrs = nbrs[np.argsort(degrees[nbrs], kind="stable")]
                visited[nbrs] = True
                order[pos : pos + nbrs.shape[0]] = nbrs
                pos += nbrs.shape[0]
    return order[::-1].copy()
