"""Graph substrate: adjacency structures, traversals, separators.

The ordering layer (nested dissection, minimum degree, RCM) works on the
undirected adjacency graph of the matrix pattern; this package provides that
graph and the traversal primitives.
"""

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.traversal import bfs_levels, connected_components, pseudo_peripheral_node
from repro.graph.separators import vertex_separator_from_levels
from repro.graph.refinement import refine_separator
from repro.graph.rcm import reverse_cuthill_mckee

__all__ = [
    "AdjacencyGraph",
    "bfs_levels",
    "connected_components",
    "pseudo_peripheral_node",
    "vertex_separator_from_levels",
    "refine_separator",
    "reverse_cuthill_mckee",
]
