"""Vertex-separator refinement (Fiduccia-Mattheyses style).

Level-set separators are quick but crude; this pass shrinks and re-balances
a separator by moving vertices between the separator and the two parts,
one best-gain move at a time with a small hill-climbing allowance. Used by
nested dissection when ``refine=True``; better separators mean smaller
separator supernodes and less fill.

The move model is the standard one for *vertex* separators: only separator
vertices move (into the smaller part); moving ``v`` into part A forces v's
neighbours in B into the separator. The gain of the move is
``1 - |N(v) ∩ B \\ S|``; the pass greedily applies best-gain moves with
tie-breaking toward balance, keeps the best state seen, and stops after a
bounded number of non-improving moves.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import AdjacencyGraph

#: Which side a vertex is on during refinement.
PART_A, PART_B, SEP = 0, 1, 2


def refine_separator(
    graph: AdjacencyGraph,
    part_a: np.ndarray,
    separator: np.ndarray,
    part_b: np.ndarray,
    max_passes: int = 2,
    patience: int = 32,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Improve (part_a, separator, part_b); returns the refined triple.

    The result is guaranteed to still be a valid vertex separator and to
    have a separator no larger than the input's.
    """
    side = np.full(graph.n, -1, dtype=np.int8)
    side[part_a] = PART_A
    side[part_b] = PART_B
    side[separator] = SEP
    active = side >= 0

    def sep_size(s):
        return int((s == SEP).sum())

    best = side.copy()
    best_score = _score(side)

    for _ in range(max_passes):
        improved = False
        stall = 0
        moved = np.zeros(graph.n, dtype=bool)
        while stall < patience:
            sep_vertices = np.flatnonzero((side == SEP) & ~moved)
            if sep_vertices.size == 0:
                break
            sizes = np.bincount(side[active], minlength=3)
            target = PART_A if sizes[PART_A] <= sizes[PART_B] else PART_B
            other = PART_B if target == PART_A else PART_A
            # Gain of moving v from SEP into `target`: the separator loses
            # v but gains v's `other`-side neighbours.
            best_v, best_gain = -1, None
            for v in sep_vertices:
                nbrs = graph.neighbors(int(v))
                pulled = int((side[nbrs] == other).sum())
                gain = 1 - pulled
                if best_gain is None or gain > best_gain:
                    best_v, best_gain = int(v), gain
            if best_v < 0:
                break
            nbrs = graph.neighbors(best_v)
            side[best_v] = target
            moved[best_v] = True
            pulled = nbrs[side[nbrs] == other]
            side[pulled] = SEP
            score = _score(side)
            if score > best_score:
                best_score = score
                best = side.copy()
                improved = True
                stall = 0
            else:
                stall += 1
        side = best.copy()
        if not improved:
            break

    new_a = np.flatnonzero(best == PART_A)
    new_s = np.flatnonzero(best == SEP)
    new_b = np.flatnonzero(best == PART_B)
    return new_a, new_s, new_b


def _score(side: np.ndarray) -> float:
    """Higher is better: small separator first, then balance."""
    sizes = np.bincount(side[side >= 0], minlength=3)
    na, nb, ns = int(sizes[PART_A]), int(sizes[PART_B]), int(sizes[SEP])
    total = max(1, na + nb)
    balance = 1.0 - abs(na - nb) / total
    return -ns + 0.25 * balance


def separator_is_valid(
    graph: AdjacencyGraph,
    part_a: np.ndarray,
    part_b: np.ndarray,
) -> bool:
    """True when no edge joins part_a and part_b."""
    in_a = np.zeros(graph.n, dtype=bool)
    in_a[part_a] = True
    for v in part_b:
        if in_a[graph.neighbors(int(v))].any():
            return False
    return True
