"""Breadth-first traversals: level structures, components, pseudo-peripheral nodes."""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import AdjacencyGraph
from repro.util.arrays import INDEX_DTYPE


def bfs_levels(
    graph: AdjacencyGraph, root: int, mask: np.ndarray | None = None
) -> np.ndarray:
    """Level (distance) of every vertex from ``root``; unreachable = -1.

    ``mask`` restricts traversal to vertices where ``mask`` is True.
    Implemented frontier-at-a-time with numpy set operations, not a Python
    queue, per the vectorization guide.
    """
    levels = np.full(graph.n, -1, dtype=INDEX_DTYPE)
    if mask is not None and not mask[root]:
        raise ValueError("root excluded by mask")
    levels[root] = 0
    frontier = np.array([root], dtype=INDEX_DTYPE)
    depth = 0
    while frontier.size:
        depth += 1
        starts, stops = graph.indptr[frontier], graph.indptr[frontier + 1]
        total = int((stops - starts).sum())
        if total == 0:
            break
        nxt = np.empty(total, dtype=INDEX_DTYPE)
        pos = 0
        for s, t in zip(starts, stops):
            cnt = int(t - s)
            nxt[pos : pos + cnt] = graph.indices[s:t]
            pos += cnt
        nxt = np.unique(nxt)
        nxt = nxt[levels[nxt] == -1]
        if mask is not None:
            nxt = nxt[mask[nxt]]
        levels[nxt] = depth
        frontier = nxt
    return levels


def connected_components(
    graph: AdjacencyGraph, mask: np.ndarray | None = None
) -> list[np.ndarray]:
    """Vertex sets of the connected components (restricted to ``mask``)."""
    if mask is None:
        mask = np.ones(graph.n, dtype=bool)
    remaining = mask.copy()
    comps: list[np.ndarray] = []
    while True:
        seeds = np.flatnonzero(remaining)
        if seeds.size == 0:
            break
        levels = bfs_levels(graph, int(seeds[0]), mask=remaining)
        comp = np.flatnonzero(levels >= 0)
        comps.append(comp)
        remaining[comp] = False
    return comps


def pseudo_peripheral_node(
    graph: AdjacencyGraph, start: int, mask: np.ndarray | None = None
) -> tuple[int, np.ndarray]:
    """George-Liu pseudo-peripheral node search.

    Repeatedly roots a BFS at a minimum-degree vertex of the deepest level
    until eccentricity stops growing. Returns (node, its level array).
    """
    node = start
    levels = bfs_levels(graph, node, mask=mask)
    ecc = int(levels.max())
    while True:
        last = np.flatnonzero(levels == ecc)
        if last.size == 0:
            return node, levels
        cand = last[np.argmin(graph.degrees[last])]
        new_levels = bfs_levels(graph, int(cand), mask=mask)
        new_ecc = int(new_levels.max())
        if new_ecc <= ecc:
            return node, levels
        node, levels, ecc = int(cand), new_levels, new_ecc
