"""Vertex separators from BFS level structures.

General-graph nested dissection uses the classic level-set separator: build a
level structure from a pseudo-peripheral node, cut at the median-work level,
and take as separator the smaller-side boundary vertices of the cut level.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.traversal import pseudo_peripheral_node


def vertex_separator_from_levels(
    graph: AdjacencyGraph,
    vertices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``vertices`` (one connected component) into (part_a, separator, part_b).

    The separator is a true vertex separator: no edge joins ``part_a`` and
    ``part_b`` in the induced subgraph. Either part may be empty for tiny or
    pathological components; callers treat that as "stop recursing".
    """
    vertices = np.asarray(vertices)
    if vertices.size <= 2:
        return vertices, np.empty(0, dtype=vertices.dtype), np.empty(0, dtype=vertices.dtype)

    mask = np.zeros(graph.n, dtype=bool)
    mask[vertices] = True
    _, levels = pseudo_peripheral_node(graph, int(vertices[0]), mask=mask)
    if (levels[vertices] < 0).any():
        raise ValueError(
            "vertex_separator_from_levels requires a connected vertex set"
        )

    max_level = int(levels.max())
    if max_level < 2:
        # Graph too shallow for a level cut; fall back to a degree-based cut:
        # take the highest-degree vertex as separator.
        local_deg = graph.degrees[vertices]
        sep_v = vertices[np.argmax(local_deg)]
        rest = vertices[vertices != sep_v]
        half = rest.shape[0] // 2
        return rest[:half], np.array([sep_v], dtype=vertices.dtype), rest[half:]

    # Choose the cut level so the vertex counts on each side are balanced.
    counts = np.bincount(levels[vertices], minlength=max_level + 1)
    below = np.cumsum(counts)
    total = below[-1]
    # candidate separator levels 1..max_level-1
    imbalance = np.abs(2 * below[:-1] - total)
    cut = 1 + int(np.argmin(imbalance[1:max_level]))

    in_sep_level = levels == cut
    lower = vertices[levels[vertices] < cut]
    upper = vertices[levels[vertices] > cut]

    # Shrink the separator: only cut-level vertices adjacent to the lower side
    # must be kept; the rest join the upper part.
    sep_candidates = vertices[in_sep_level[vertices]]
    keep = np.zeros(sep_candidates.shape[0], dtype=bool)
    lower_mask = np.zeros(graph.n, dtype=bool)
    lower_mask[lower] = True
    for i, v in enumerate(sep_candidates):
        nbrs = graph.neighbors(v)
        if lower_mask[nbrs].any():
            keep[i] = True
    separator = sep_candidates[keep]
    upper = np.concatenate([upper, sep_candidates[~keep]])
    return lower, separator, upper


def geometric_separator(
    vertices: np.ndarray, coords: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Coordinate-bisection separator for mesh problems.

    Cuts the widest coordinate axis at its median; the separator is the slab
    of vertices at the median plane coordinate (one grid plane for regular
    grids, which is the asymptotically optimal nested-dissection cut).
    """
    pts = coords[vertices]
    spans = pts.max(axis=0) - pts.min(axis=0)
    axis = int(np.argmax(spans))
    vals = pts[:, axis]
    median = np.median(vals)
    # Snap to the nearest actual plane coordinate ≥ median.
    plane_vals = np.unique(vals)
    plane = plane_vals[np.searchsorted(plane_vals, median)]
    lower = vertices[vals < plane]
    sep = vertices[vals == plane]
    upper = vertices[vals > plane]
    if lower.size == 0 or upper.size == 0:
        # Degenerate (all on one plane): split arbitrarily in half.
        half = vertices.shape[0] // 2
        return (
            vertices[:half],
            np.empty(0, dtype=vertices.dtype),
            vertices[half:],
        )
    return lower, sep, upper
