"""The 1-D column fan-out baseline.

Two artifacts:

* :func:`oned_block_owners` — 1-D block-column ownership (panel K's entire
  column, all blocks, on processor ``K mod P``). Running the regular block
  fan-out simulator under this ownership is the *block-column* variant of
  the classic column fan-out method; under it a completed block must reach
  every processor owning a destination column, so per-column fan-out grows
  with min(P, |struct|) — the linear-in-P communication the paper cites [7].

* :func:`oned_column_critical_path` — the critical path of the classic
  *column-level* task decomposition (cdiv/cmod), in which the cmods into a
  column serialize at its owner. For a k x k grid this path is O(k^2),
  versus O(k) for the 2-D block decomposition — the second limitation of
  1-D methods (§1, citing [11]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fanout.tasks import TaskGraph
from repro.machine.params import PARAGON, MachineParams
from repro.symbolic.colcounts import row_counts
from repro.symbolic.structure import SymbolicFactor


def oned_block_owners(tg: TaskGraph, P: int) -> np.ndarray:
    """Ownership of the 1-D block-column mapping: block (I, J) on J mod P."""
    if P < 1:
        raise ValueError("P must be positive")
    return (tg.block_J % P).astype(np.int64)


def oned_column_comm_volume(
    sf: SymbolicFactor, P: int, machine: MachineParams = PARAGON
) -> int:
    """Communication bytes of the classic *column* fan-out method.

    Column j, once complete, is sent to every processor owning a column of
    ``struct(L(:, j))`` (cyclic 1-D ownership). The paper's point [7]: the
    distinct-owner count saturates at P, so total volume grows linearly in P
    until saturation — versus O(sqrt(P)) for 2-D block mappings.

    Computed analytically from the supernodal structure (column j of
    supernode s with columns a..b-1 has struct ``{j+1..b-1} ∪ R_s``).
    """
    if P < 1:
        raise ValueError("P must be positive")
    total_bytes = 0
    ptr = sf.snode_ptr
    for s in range(sf.nsupernodes):
        a, b = int(ptr[s]), int(ptr[s + 1])
        rows = sf.snode_rows[s]
        row_owners = np.unique(rows % P) if rows.size else np.empty(0, int)
        # Columns of the supernode, last to first: struct grows by one
        # in-supernode column each step.
        for j in range(b - 1, a - 1, -1):
            intra = np.arange(j + 1, b) % P
            owners = np.union1d(row_owners, intra)
            owners = owners[owners != (j % P)]
            nwords = (b - 1 - j) + rows.shape[0]  # subdiagonal length
            if owners.size and nwords:
                total_bytes += owners.shape[0] * machine.message_bytes(nwords)
    return total_bytes


def oned_column_flops(cc: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-column (cdiv, cmod) flop costs of simplicial column Cholesky.

    ``cdiv[j]`` = 1 sqrt + (cc[j]-1) divisions; a ``cmod(j, k)`` applying
    column k to column j costs ``2 * cc_below`` multiply-adds where
    ``cc_below`` is the overlap length; we charge the standard upper bound
    ``2 * cc[j]`` per cmod, which preserves the asymptotics.
    """
    cc = np.asarray(cc, dtype=np.int64)
    cdiv = cc  # 1 + (cc - 1)
    cmod = 2 * cc
    return cdiv, cmod


@dataclass(frozen=True)
class OnedCriticalPath:
    length_seconds: float
    t_sequential: float

    @property
    def max_speedup(self) -> float:
        return self.t_sequential / self.length_seconds

    def max_efficiency(self, P: int) -> float:
        return min(1.0, self.max_speedup / P)


def oned_column_critical_path(
    sf: SymbolicFactor,
    machine: MachineParams = PARAGON,
) -> OnedCriticalPath:
    """Critical path of the column task decomposition.

    ``finish(j) = max over children k of finish(k) + nmods(j) * cmod_time(j)
    + cdiv_time(j)``; the cmods into column j serialize because they all
    update the same column vector at its owner — exactly the task structure
    of the column fan-out method.

    Column-level tasks are far finer than block tasks, so the per-task fixed
    overhead is the BLAS-1 call cost; we charge 10% of the block operation's
    fixed cost, which favors the 1-D method (the conclusion — a much longer
    path — only strengthens under heavier overheads).
    """
    parent = sf.parent
    n = parent.shape[0]
    nmods = row_counts(sf.A, parent) - 1  # cmods into each column
    cdiv, cmod = oned_column_flops(sf.cc)
    fixed = machine.op_fixed_flops / 10

    rate = machine.flop_rate
    finish = np.zeros(n)
    # parent[j] > j after postordering: single ascending sweep, pushing each
    # column's finish time to its parent.
    ready = np.zeros(n)
    for j in range(n):
        t = (
            ready[j]
            + (nmods[j] * (cmod[j] + fixed) + cdiv[j] + fixed) / rate
        )
        finish[j] = t
        p = parent[j]
        if p != -1 and t > ready[p]:
            ready[p] = t

    t_seq = float(
        np.sum(nmods * (cmod + fixed) + cdiv + fixed) / rate
    )
    return OnedCriticalPath(
        length_seconds=float(finish.max()) if n else 0.0,
        t_sequential=t_seq,
    )
