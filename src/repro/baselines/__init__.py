"""Baseline methods the paper argues against.

§1 motivates 2-D block mappings by comparison with the traditional 1-D
column mapping: linear-in-P communication volume and an O(k^2) critical path
for k x k grids (vs O(sqrt(P)) and O(k) for 2-D blocks). This package
implements that 1-D baseline so the comparison can be regenerated.
"""

from repro.baselines.oned import (
    oned_block_owners,
    oned_column_comm_volume,
    oned_column_critical_path,
    oned_column_flops,
)

__all__ = [
    "oned_block_owners",
    "oned_column_comm_volume",
    "oned_column_critical_path",
    "oned_column_flops",
]
