#!/usr/bin/env python
"""The high-level API: factor, solve, and plan parallel execution in a few
lines, then look inside the machine with the utilization profile.

Run:  python examples/solver_api.py
"""

import numpy as np

import repro
from repro.fanout import block_owners, simulate_fanout
from repro.mapping import heuristic_map, square_grid
from repro.solver import SparseCholesky


def main() -> None:
    # One object, three calls: symbolic analysis happens at construction,
    # ordering is picked automatically (mesh-like -> nested dissection).
    problem = repro.cube3d_matrix(10)
    chol = SparseCholesky(problem.A).factor()

    rng = np.random.default_rng(7)
    b = rng.standard_normal(problem.n)
    x = chol.solve(b)
    print(f"n={problem.n}, solve residual {np.max(np.abs(problem.A @ x - b)):.2e}")

    # Planning: how would this factorization run on a 64-node machine?
    print(f"\n{'mapping':>8s} {'Mflops':>8s} {'eff':>6s} {'bound':>6s} {'MB':>6s}")
    for name, plan in chol.compare_mappings(64).items():
        print(
            f"{name:>8s} {plan.mflops:8.1f} {plan.efficiency:6.2f} "
            f"{plan.balance_bound:6.2f} {plan.comm_megabytes:6.1f}"
        )

    # Where does the time go? Trace the heuristic run and bin utilization.
    wm, tg = chol.workmodel, chol.taskgraph
    grid = repro.square_grid(64)
    cmap = heuristic_map(wm, grid, "ID", "CY")
    owners = block_owners(tg, cmap, repro.assign_domains(wm, 64))
    res = simulate_fanout(tg, owners, 64, record_trace=True)
    prof = repro.utilization_profile(res.trace, 64, res.t_parallel, nbins=10)
    print(f"\nutilization over time (10 bins): "
          + " ".join(f"{u:.2f}" for u in prof.busy_fraction))
    print(f"tail utilization (last quarter): {prof.tail_utilization():.2f}")
    k = prof.kind_seconds
    total = sum(k.values()) or 1.0
    print(
        "work split: "
        + ", ".join(f"{name} {100 * sec / total:.0f}%" for name, sec in k.items())
    )
    print("\nthe tail starvation is the paper's Sec. 5 observation: idle time")
    print("waiting for data, not lack of total work.")


if __name__ == "__main__":
    main()
