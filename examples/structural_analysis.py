#!/usr/bin/env python
"""Domain scenario: factoring a structural-analysis stiffness matrix.

The paper's irregular benchmarks (BCSSTK*) are finite-element stiffness
matrices from structural engineering — the workload its introduction
motivates. This example builds a synthetic 3-D frame with three unknowns per
node, orders it with multiple minimum degree (as the paper does for
irregular problems), and studies how the mapping choice changes the balance
statistics and the simulated factorization rate as the machine grows.

Run:  python examples/structural_analysis.py [n_equations]
"""

import sys

import numpy as np

import repro


def prepare(n_equations: int):
    problem = repro.bcsstk_like_matrix(n_equations, dof=3, seed=42)
    ordering = repro.order_problem(problem, "mmd")
    sf = repro.symbolic_factor(problem.A, ordering)
    partition = repro.BlockPartition(sf, block_size=48)
    wm = repro.WorkModel(repro.BlockStructure(partition))
    return problem, sf, partition, wm


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    problem, sf, partition, wm = prepare(n)
    print(
        f"stiffness matrix: n={problem.n}, nnz(A)={problem.nnz:,}, "
        f"nnz(L)={sf.factor_nnz:,}, ops={sf.factor_ops / 1e6:.0f}M"
    )

    # --- balance anatomy on 64 processors (the paper's Table 2/3 view) ---
    grid = repro.square_grid(64)
    print(f"\nbalance anatomy on a {grid} grid:")
    print(f"{'mapping':>12s} {'row':>6s} {'col':>6s} {'diag':>6s} {'overall':>8s}")
    maps = {
        "cyclic": repro.cyclic_map(partition.npanels, grid),
        "DW/DW": repro.heuristic_map(wm, grid, "DW", "DW"),
        "ID/CY": repro.heuristic_map(wm, grid, "ID", "CY"),
        "procaware": repro.processor_aware_row_map(wm, grid),
    }
    for label, cmap in maps.items():
        bal = repro.balance_metrics(wm, cmap)
        d = f"{bal.diagonal:6.2f}" if bal.diagonal is not None else "   n/a"
        print(
            f"{label:>12s} {bal.row:6.2f} {bal.column:6.2f} {d} "
            f"{bal.overall:8.2f}"
        )

    # --- scaling study: Mflops vs machine size, cyclic vs heuristic ------
    tg = repro.TaskGraph(wm)
    print("\nsimulated factorization rate (Mflops):")
    print(f"{'P':>5s} {'cyclic':>9s} {'heuristic':>10s} {'gain':>6s}")
    for P in (16, 36, 64, 100):
        grid = repro.square_grid(P)
        domains = repro.assign_domains(wm, P)
        cyc = repro.run_fanout(
            tg, repro.cyclic_map(partition.npanels, grid),
            domains=domains, factor_ops=sf.factor_ops,
        ).mflops
        heur = repro.run_fanout(
            tg, repro.heuristic_map(wm, grid, "ID", "CY"),
            domains=domains, factor_ops=sf.factor_ops,
        ).mflops
        print(f"{P:5d} {cyc:9.1f} {heur:10.1f} {100 * (heur / cyc - 1):+5.0f}%")

    # --- where does the remaining time go? -------------------------------
    grid = repro.square_grid(64)
    cp = repro.critical_path(tg)
    res = repro.run_fanout(
        tg, repro.heuristic_map(wm, grid, "ID", "CY"),
        domains=repro.assign_domains(wm, 64), factor_ops=sf.factor_ops,
    )
    print(
        f"\nat P=64: efficiency {res.efficiency:.2f}, "
        f"critical-path bound {cp.max_efficiency(64):.2f}, "
        f"idle fraction {res.idle_fraction:.2f}"
    )
    print("the gap between achieved and bound is scheduling + communication,")
    print("exactly the paper's post-remapping diagnosis (Sec. 5).")


if __name__ == "__main__":
    main()
