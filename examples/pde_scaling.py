#!/usr/bin/env python
"""PDE workload: scaling a 3-D Poisson-type solve across machine sizes.

The paper's motivation is large PDE/engineering workloads whose sparse
Cholesky factorization is the bottleneck. This example treats a 3-D cube
(27-point stencil, nested-dissection ordered) as the model PDE problem and:

* verifies the numeric path end to end (factor + solve, residual check);
* sweeps the simulated machine from 4 to 196 processors, comparing the
  cyclic and heuristic mappings — showing where each stops scaling;
* reports communication volume growth, which for a 2-D block mapping grows
  like sqrt(P) per processor (the asymptotic argument of §1).

Run:  python examples/pde_scaling.py [k]   (cube is k x k x k, default 12)
"""

import sys

import numpy as np

import repro


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    problem = repro.cube3d_matrix(k)
    sf = repro.symbolic_factor(problem.A, repro.order_problem(problem, "nd"))
    part = repro.BlockPartition(sf, block_size=48)
    structure = repro.BlockStructure(part)
    wm = repro.WorkModel(structure)
    tg = repro.TaskGraph(wm)
    print(
        f"CUBE{k}: n={problem.n}, nnz(L)={sf.factor_nnz:,}, "
        f"ops={sf.factor_ops / 1e6:.0f}M, panels={part.npanels}"
    )

    # --- numeric verification on the actual matrix ------------------------
    chol = repro.BlockCholesky(structure, sf.A).factor()
    L = chol.to_csc()
    b = np.ones(problem.n)
    x = repro.solve_with_factor(L, b, sf.ordering)
    print(f"solve residual: {np.max(np.abs(problem.A @ x - b)):.2e}")

    # --- strong-scaling sweep ---------------------------------------------
    print(
        f"\n{'P':>5s} {'grid':>7s} {'cyclic':>8s} {'heur':>8s} {'gain':>6s} "
        f"{'eff(heur)':>10s} {'MB/proc':>8s}"
    )
    for P in (4, 16, 36, 64, 100, 144, 196):
        grid = repro.square_grid(P)
        domains = repro.assign_domains(wm, P)
        cyc = repro.run_fanout(
            tg, repro.cyclic_map(part.npanels, grid),
            domains=domains, factor_ops=sf.factor_ops,
        )
        heur = repro.run_fanout(
            tg, repro.heuristic_map(wm, grid, "ID", "CY"),
            domains=domains, factor_ops=sf.factor_ops,
        )
        gain = 100 * (heur.mflops / cyc.mflops - 1)
        print(
            f"{P:5d} {str(grid):>7s} {cyc.mflops:8.0f} {heur.mflops:8.0f} "
            f"{gain:+5.0f}% {heur.efficiency:10.2f} "
            f"{heur.comm_bytes / 1e6 / P:8.2f}"
        )

    print(
        "\nnotes: gains grow with P (imbalance hurts more as the machine "
        "grows);\nper-processor communication grows sublinearly — the 2-D "
        "mapping's O(sqrt(P)) advantage."
    )


if __name__ == "__main__":
    main()
