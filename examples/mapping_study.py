#!/usr/bin/env python
"""Mapping anatomy: why cyclic fails and what each heuristic fixes.

Reproduces the paper's §3/§4 reasoning end to end on one matrix:

* shows workI (block-row work) growing with row index — the cause of row
  imbalance under cyclic row mapping;
* shows diagonal concentration — the cause of diagonal imbalance for any
  symmetric Cartesian mapping;
* runs all 25 row x column heuristic combinations and prints the balance
  and simulated-performance matrix (a one-matrix Table 4 + Table 5);
* demonstrates the relatively-prime-grid shortcut.

Run:  python examples/mapping_study.py [problem] [scale]
      e.g. python examples/mapping_study.py BCSSTK33 medium
"""

import sys

import numpy as np

import repro
from repro.experiments.pipeline import prepare_problem
from repro.mapping.heuristics import HEURISTICS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "BCSSTK33"
    scale = sys.argv[2] if len(sys.argv) > 2 else "medium"
    prep = prepare_problem(name, scale)
    wm, part, tg, sf = prep.workmodel, prep.partition, prep.taskgraph, prep.symbolic
    print(f"{name} ({scale}): n={prep.problem.n}, N={part.npanels} panels")

    # --- 1. row work grows with row index --------------------------------
    N = part.npanels
    thirds = np.array_split(wm.workI, 3)
    print("\nblock-row work by matrix third (cause of cyclic row imbalance):")
    for label, chunk in zip(("top", "middle", "bottom"), thirds):
        print(f"  {label:>6s} third: mean work {chunk.mean() / 1e6:8.2f}M")

    # --- 2. diagonal concentration ---------------------------------------
    grid = repro.square_grid(64)
    cyc = repro.cyclic_map(N, grid)
    diag_work = wm.work[wm.dest_I == wm.dest_J].sum()
    sub = wm.dest_I == wm.dest_J + 1
    subdiag_work = wm.work[sub].sum()
    print(
        f"\ndiagonal blocks hold {100 * diag_work / wm.total_work:.0f}% and "
        f"first subdiagonal {100 * subdiag_work / wm.total_work:.0f}% of all "
        f"work,\nbut cyclic maps them onto only {grid.Pr} of {grid.P} "
        f"processors (the grid diagonal)."
    )

    # --- 3. the full 5x5 study -------------------------------------------
    domains = repro.assign_domains(wm, grid.P)
    base_perf = repro.run_fanout(
        tg, cyc, domains=domains, factor_ops=sf.factor_ops
    ).mflops
    base_bal = repro.balance_metrics(wm, cyc).overall
    print(f"\ncyclic baseline: balance {base_bal:.2f}, {base_perf:.0f} Mflops")
    print("\nrows = row heuristic, cols = column heuristic")
    print("cell = balance improvement % / performance improvement %")
    header = "      " + "".join(f"{c:>12s}" for c in HEURISTICS)
    print(header)
    for rh in HEURISTICS:
        cells = []
        for ch in HEURISTICS:
            m = repro.heuristic_map(wm, grid, rh, ch)
            bal = repro.balance_metrics(wm, m).overall
            perf = repro.run_fanout(
                tg, m, domains=domains, factor_ops=sf.factor_ops
            ).mflops
            cells.append(
                f"{100 * (bal / base_bal - 1):+4.0f}/{100 * (perf / base_perf - 1):+4.0f}"
            )
        print(f"{rh:>5s} " + "".join(f"{c:>12s}" for c in cells))

    # --- 4. the prime-grid shortcut --------------------------------------
    g63 = repro.best_grid(63)
    prime = repro.run_fanout(
        tg, repro.cyclic_map(N, g63),
        domains=repro.assign_domains(wm, 63), factor_ops=sf.factor_ops,
    ).mflops
    print(
        f"\ncyclic on a relatively-prime {g63} grid (63 procs): "
        f"{prime:.0f} Mflops = {100 * (prime / base_perf - 1):+.0f}% vs 64-proc"
        " cyclic\n(one fewer processor, no remapping — the Sec. 4.2 trick)"
    )


if __name__ == "__main__":
    main()
