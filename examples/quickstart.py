#!/usr/bin/env python
"""Quickstart: factor a sparse SPD matrix and see the paper's effect.

This walks the full pipeline on one problem:

1. generate a 2-D grid problem and order it with nested dissection;
2. symbolic factorization (elimination tree, supernodes, amalgamation);
3. partition into B-column blocks and compute the paper's work model;
4. numerically factor (sequential block fan-out) and solve ``A x = b``;
5. simulate the parallel block fan-out on a 64-node Paragon with the
   traditional 2-D cyclic mapping and with the paper's heuristic remapping,
   and compare.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # ---- 1. problem + ordering ------------------------------------------
    problem = repro.grid2d_matrix(64)  # 4096 equations, 9-point stencil
    ordering = repro.order_problem(problem, "nd")
    print(f"problem: {problem.name}, n={problem.n}, nnz(A)={problem.nnz}")

    # ---- 2. symbolic factorization --------------------------------------
    sf = repro.symbolic_factor(problem.A, ordering)
    print(
        f"factor: nnz(L)={sf.factor_nnz:,}, ops={sf.factor_ops / 1e6:.1f}M, "
        f"supernodes={sf.nsupernodes}"
    )

    # ---- 3. blocks + work model (B = 48, as in the paper) ---------------
    partition = repro.BlockPartition(sf, block_size=48)
    structure = repro.BlockStructure(partition)
    wm = repro.WorkModel(structure)
    print(f"blocks: N={partition.npanels} panels, {structure.num_blocks} blocks")

    # ---- 4. numeric factorization + solve -------------------------------
    chol = repro.BlockCholesky(structure, sf.A).factor()
    L = chol.to_csc()
    rng = np.random.default_rng(0)
    b = rng.standard_normal(problem.n)
    x = repro.solve_with_factor(L, b, sf.ordering)
    print(f"solve: residual |Ax-b| = {np.max(np.abs(problem.A @ x - b)):.2e}")

    # ---- 5. parallel simulation: cyclic vs heuristic mapping ------------
    grid = repro.square_grid(64)
    tg = repro.TaskGraph(wm)
    domains = repro.assign_domains(wm, grid.P)

    cyclic = repro.run_fanout(
        tg,
        repro.cyclic_map(partition.npanels, grid),
        domains=domains,
        factor_ops=sf.factor_ops,
    )
    heuristic = repro.run_fanout(
        tg,
        repro.heuristic_map(wm, grid, "ID", "CY"),
        domains=domains,
        factor_ops=sf.factor_ops,
    )
    print(f"\nsimulated Intel Paragon, P={grid.P}:")
    print(
        f"  2-D cyclic mapping : {cyclic.mflops:7.1f} Mflops "
        f"(efficiency {cyclic.efficiency:.2f})"
    )
    print(
        f"  ID/CY heuristic    : {heuristic.mflops:7.1f} Mflops "
        f"(efficiency {heuristic.efficiency:.2f})"
    )
    gain = 100 * (heuristic.mflops / cyclic.mflops - 1)
    print(f"  improvement        : {gain:+.0f}%  (paper: ~20%)")


if __name__ == "__main__":
    main()
