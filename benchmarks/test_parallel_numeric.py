"""Real multicore speedup of the shared-memory parallel factorization.

The host analogue of the paper's experiment: the same task DAG the Paragon
simulator schedules, executed by a thread pool with GIL-releasing BLAS.
Speedups here depend on the host's cores and the problem's block-level
concurrency; we assert correctness and report the timing.
"""

import pytest

from repro.experiments.pipeline import prepare_problem
from repro.numeric.parallel import parallel_block_cholesky


@pytest.fixture(scope="module")
def prepared(scale):
    return prepare_problem("CUBE30", scale if scale != "paper" else "medium")


@pytest.mark.parametrize("nthreads", [1, 2, 4])
def test_parallel_factor(benchmark, prepared, nthreads):
    bs, sf, tg = prepared.structure, prepared.symbolic, prepared.taskgraph
    res = benchmark.pedantic(
        lambda: parallel_block_cholesky(bs, sf.A, tg, nthreads=nthreads),
        rounds=1,
        iterations=1,
    )
    assert res.tasks_executed == tg.ntasks
