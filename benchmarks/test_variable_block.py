"""Regenerates the §5 variable-block-size study."""

import numpy as np

from repro.experiments.variable_block import run


def test_variable_block(run_experiment, scale):
    res = run_experiment(run, scale)
    # Paper finding: stage-varying B does not improve overall balance on
    # average, and it does not beat fixed B's performance on average.
    bal_fixed = np.mean([d["fixed"]["balance"] for d in res.data.values()])
    bal_var = np.mean([d["varying"]["balance"] for d in res.data.values()])
    perf_fixed = np.mean([d["fixed"]["mflops"] for d in res.data.values()])
    perf_var = np.mean([d["varying"]["mflops"] for d in res.data.values()])
    print(f"\nbalance fixed {bal_fixed:.2f} vs varying {bal_var:.2f}; "
          f"Mflops fixed {perf_fixed:.0f} vs varying {perf_var:.0f}")
    assert bal_var <= bal_fixed + 0.1
