"""Regenerates Table 4: mean overall-balance improvement, 5x5 heuristics."""

from repro.experiments.table4 import run
from repro.mapping.heuristics import HEURISTICS


def test_table4(run_experiment, scale):
    res = run_experiment(run, scale, floatfmt="{:.0f}")
    for P, means in res.data.items():
        assert means[("CY", "CY")] == 0.0
        # every row-remapped configuration improves on pure cyclic
        for rh in ("DW", "DN", "ID"):
            for ch in HEURISTICS:
                assert means[(rh, ch)] > 0, (P, rh, ch)
