"""Ordering-quality benchmark: fill and operation counts of every ordering
this repository implements, on one irregular and one grid problem.

Not a paper table — a substrate-quality check: MMD should dominate on the
irregular matrix, ND on the grid (the paper's per-family choices)."""

import time

import pytest

from repro.graph import AdjacencyGraph
from repro.matrices import get_problem
from repro.ordering import minimum_degree, nested_dissection
from repro.graph.rcm import reverse_cuthill_mckee
from repro.symbolic import symbolic_factor
from repro.util.formatting import format_table


def _survey(problem):
    g = AdjacencyGraph.from_sparse(problem.A)
    orderings = {
        "natural": None,
        "rcm": reverse_cuthill_mckee(g),
        "nd": nested_dissection(g, coords=problem.coords),
        "nd-refined": nested_dissection(g, refine=True),
        "mmd": minimum_degree(g),
        "amd-approx": minimum_degree(g, approximate=True),
    }
    rows = []
    for name, perm in orderings.items():
        t0 = time.perf_counter()
        sf = symbolic_factor(problem.A, perm)
        rows.append(
            (name, sf.factor_nnz, sf.factor_ops / 1e6,
             time.perf_counter() - t0)
        )
    return rows


def test_ordering_quality_irregular(benchmark, scale):
    problem = get_problem("BCSSTK15", scale if scale != "paper" else "medium")
    rows = benchmark.pedantic(lambda: _survey(problem), rounds=1, iterations=1)
    print()
    print(format_table(("ordering", "nnz(L)", "ops (M)", "sym s"), rows,
                       title=f"ordering quality, {problem.name}"))
    stats = {r[0]: r[1] for r in rows}
    assert stats["mmd"] < stats["natural"]
    assert stats["mmd"] < stats["rcm"]


def test_ordering_quality_grid(benchmark, scale):
    problem = get_problem("GRID150", scale if scale != "paper" else "medium")
    rows = benchmark.pedantic(lambda: _survey(problem), rounds=1, iterations=1)
    print()
    print(format_table(("ordering", "nnz(L)", "ops (M)", "sym s"), rows,
                       title=f"ordering quality, {problem.name}"))
    stats = {r[0]: r[2] for r in rows}
    assert stats["nd"] < stats["natural"]
