"""Benchmark configuration.

Scale selection: set ``REPRO_SCALE=small|medium|paper`` (default ``medium``).
Each benchmark runs its experiment once per round (the experiments are
deterministic; timing variance comes only from the host) and attaches the
rendered table to the benchmark's ``extra_info``.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "medium")


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment function under pytest-benchmark and print it."""

    def _run(fn, *args, floatfmt="{:.2f}", **kwargs):
        result = benchmark.pedantic(
            lambda: fn(*args, **kwargs), rounds=1, iterations=1
        )
        rendered = result.render(floatfmt)
        print()
        print(rendered)
        benchmark.extra_info["table"] = rendered
        return result

    return _run
