"""Ablation benches: block size, domains, zero-communication machine,
receiver contention."""

import numpy as np

from repro.experiments.ablations import (
    run_block_size,
    run_contention,
    run_domains_ablation,
    run_zero_comm,
)


def test_block_size(run_experiment, scale):
    res = run_experiment(run_block_size, scale)
    panels = [row[1] for row in res.rows]
    assert panels == sorted(panels, reverse=True)  # smaller B -> more panels


def test_domains(run_experiment, scale):
    res = run_experiment(run_domains_ablation, scale)
    fewer = sum(
        1 for d in res.data.values() if d["bytes_with"] <= d["bytes_without"]
    )
    assert fewer >= len(res.data) * 0.7  # domains cut volume almost always


def test_zero_comm(run_experiment, scale):
    res = run_experiment(run_zero_comm, scale, floatfmt="{:.3f}")
    for name, eff, bound, gap in res.rows:
        assert gap >= -1e-9


def test_contention(run_experiment, scale):
    res = run_experiment(run_contention, scale)
    gains = [d["gain_under_contention"] for d in res.data.values()]
    assert np.mean(gains) > 0  # the heuristic's win survives congestion
