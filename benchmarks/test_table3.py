"""Regenerates Table 3: per-heuristic balance on the BCSSTK31 stand-in."""

from repro.experiments.table3 import run


def test_table3(run_experiment, scale):
    res = run_experiment(run, scale, P=64)
    overall = {row[0]: row[4] for row in res.rows}
    diag = {row[0]: row[3] for row in res.rows}
    # Every remapping heuristic beats cyclic overall, and all of them
    # relieve the diagonal imbalance (paper §4.1). At the tiny "small"
    # scale there are too few panels per processor for the weakest
    # heuristic (IN) to be reliable, so allow it slack there.
    slack = 0.5 if scale == "small" else 1.0
    for h in ("DW", "IN", "DN", "ID"):
        assert overall[h] >= overall["CY"] * slack, h
        assert diag[h] >= diag["CY"] - 0.05, h
    for h in ("DW", "DN", "ID"):
        assert overall[h] >= overall["CY"], h
