"""Regenerates Table 5: mean simulated-performance improvement, 5x5
heuristics, full fan-out simulation with domains (the heavyweight bench).

Shape assertions: remapping helps, but by less than it helps balance
(Table 4) — the paper's central observation.
"""

import numpy as np

from repro.experiments.table4 import overall_balance_grid
from repro.experiments.table5 import run
from repro.matrices.registry import problem_names


def test_table5(run_experiment, scale):
    res = run_experiment(run, scale, floatfmt="{:.0f}")
    for P, means in res.data.items():
        assert means[("CY", "CY")] == 0.0
        remapped = [means[(rh, "CY")] for rh in ("DW", "DN", "ID")]
        assert np.mean(remapped) > 0  # heuristics win on average


def test_performance_gains_smaller_than_balance_gains(scale, benchmark):
    """Paper §4.1: Table 5 improvements are much smaller than Table 4's."""
    matrices = problem_names("table1")

    def compute():
        bal = overall_balance_grid(scale, 64, matrices)
        from repro.experiments.table5 import performance_grid

        perf = performance_grid(scale, 64, matrices)
        return bal, perf

    bal, perf = benchmark.pedantic(compute, rounds=1, iterations=1)
    keys = [(rh, ch) for rh in ("DW", "DN", "ID") for ch in ("CY", "DW", "ID")]
    mean_bal = np.mean([bal[k] for k in keys])
    mean_perf = np.mean([perf[k] for k in keys])
    print(f"\nmean balance improvement {mean_bal:.0f}% "
          f"vs mean performance improvement {mean_perf:.0f}%")
    assert mean_bal > mean_perf
