"""Regenerates §4.2(b): relatively-prime grids vs square cyclic and the
remapping heuristic."""

from repro.experiments.prime_grids import run


def test_prime_grids(run_experiment, scale):
    res = run_experiment(run, scale, floatfmt="{:.0f}")
    prime = res.data["mean_prime_improvement"]
    heur = res.data["mean_heuristic_improvement"]
    for P in prime:
        print(f"\nP={P}: prime-grid {prime[P]:.0f}% vs heuristic {heur[P]:.0f}%")
        assert prime[P] > 0  # prime grids beat square cyclic
