"""Regenerates the §5 discussion studies: critical-path headroom,
subtree-to-subcube columns, and the priority-scheduling refinement."""

import numpy as np

from repro.experiments.discussion import (
    run_critical_path,
    run_priority_scheduling,
    run_subcube,
)


def test_critical_path_headroom(run_experiment, scale):
    res = run_experiment(run_critical_path, scale, floatfmt="{:.3f}")
    for name, stats in res.data.items():
        # the DAG admits more parallelism than is achieved (paper: 30-50%)
        assert stats["cp_max_efficiency"] >= stats["achieved_efficiency"]


def test_subcube_tradeoff(run_experiment, scale):
    res = run_experiment(run_subcube, scale)
    deltas = [d["volume_change_pct"] for d in res.data.values()]
    # subtree-to-subcube reduces volume on average (paper: up to -30%)
    assert np.mean(deltas) < 5.0


def test_priority_scheduling(run_experiment, scale):
    res = run_experiment(run_priority_scheduling, scale, floatfmt="{:.1f}")
    assert len(res.rows) == 10
