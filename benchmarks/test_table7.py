"""Regenerates Table 7: cyclic vs ID/CY heuristic on 144 and 196 nodes.

Shape assertion: the heuristic mapping wins on (nearly) every large problem,
as in the paper (~20% mean improvement).
"""

import numpy as np

from repro.experiments.table7 import run


def test_table7(run_experiment, scale):
    res = run_experiment(run, scale, floatfmt="{:.0f}")
    improvements = np.array([row[4] for row in res.rows], dtype=float)
    assert (improvements > 0).mean() >= 0.75
    print(f"\nmean improvement {improvements.mean():.0f}% (paper: ~20%)")
