"""Regenerates the §5 closing question: dense problems, cyclic vs remapped."""

import numpy as np

from repro.experiments.dense_study import run


def test_dense_study(run_experiment, scale):
    res = run_experiment(run, scale, floatfmt="{:.0f}")
    gains = [row[4] for row in res.rows]
    # The heuristic never loses to the specialized-dense (cyclic) config.
    assert np.mean(gains) >= -1.0