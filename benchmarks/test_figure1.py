"""Regenerates Figure 1: efficiency and overall balance, cyclic mapping."""

from repro.experiments.figure1 import run


def test_figure1(run_experiment, scale):
    res = run_experiment(run, scale, floatfmt="{:.3f}")
    for name, P, eff, bal in res.rows:
        assert eff <= bal + 1e-9, name
        assert 0 < eff < 1
