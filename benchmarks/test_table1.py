"""Regenerates Table 1: benchmark matrix statistics."""

from repro.experiments.table1 import run


def test_table1(run_experiment, scale):
    res = run_experiment(run, scale, floatfmt="{:.1f}")
    assert len(res.rows) == 10
