"""Host-machine numeric factorization benchmarks.

Races the three sequential organizations — simplicial, block fan-out
(right-looking), and multifrontal — over the same symbolic structure, the
comparison the paper's companion work [13] studies. Each result is verified
against A before timing counts.
"""

import numpy as np
import pytest

from repro.blocks import BlockPartition, BlockStructure
from repro.experiments.pipeline import prepare_problem
from repro.numeric import BlockCholesky, MultifrontalCholesky, simplicial_cholesky


@pytest.fixture(scope="module")
def prepared(scale):
    # medium-scale BCSSTK15 stand-in: ~1.5k equations at the default scale.
    prep = prepare_problem("BCSSTK15", scale if scale != "paper" else "medium")
    return prep


def test_block_fanout_numeric(benchmark, prepared):
    sf, bs = prepared.symbolic, prepared.structure

    def run():
        return BlockCholesky(bs, sf.A).factor().to_csc()

    L = benchmark(run)
    assert abs(L @ L.T - sf.A).max() < 1e-7


def test_multifrontal_numeric(benchmark, prepared):
    sf = prepared.symbolic

    def run():
        return MultifrontalCholesky(sf).factor().to_csc()

    L = benchmark(run)
    assert abs(L @ L.T - sf.A).max() < 1e-7


def test_simplicial_numeric(benchmark, prepared):
    sf = prepared.symbolic
    L = benchmark.pedantic(
        lambda: simplicial_cholesky(sf.A), rounds=1, iterations=1
    )
    assert abs(L @ L.T - sf.A).max() < 1e-7


def test_scipy_dense_reference(benchmark, prepared):
    """Dense LAPACK on the same (permuted) matrix — an upper-bound
    comparator for the small benchmark sizes."""
    sf = prepared.symbolic
    if sf.n > 4000:
        pytest.skip("dense reference too large at this scale")
    Ad = sf.A.toarray()
    L = benchmark(np.linalg.cholesky, Ad)
    assert L.shape == Ad.shape
