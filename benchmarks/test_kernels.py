"""Microbenchmarks of the numeric substrate (host-BLAS analogue of the
paper's §3.1 "20-40 Mflops per node" kernel measurement) and of the
discrete-event simulator's throughput."""

import numpy as np

from repro.experiments.pipeline import prepare_problem
from repro.fanout import block_owners, simulate_fanout
from repro.mapping import cyclic_map, square_grid
from repro.numeric import bdiv_kernel, bfac_kernel, bmod_kernel


def test_bfac_kernel_48(benchmark):
    rng = np.random.default_rng(0)
    B = rng.standard_normal((48, 48))
    D = B @ B.T + 48 * np.eye(48)
    L, flops = benchmark(bfac_kernel, D)
    assert L.shape == (48, 48)


def test_bdiv_kernel_48(benchmark):
    rng = np.random.default_rng(1)
    B = rng.standard_normal((48, 48))
    L = np.linalg.cholesky(B @ B.T + 48 * np.eye(48))
    X = rng.standard_normal((192, 48))
    out, flops = benchmark(bdiv_kernel, X, L)
    assert out.shape == X.shape


def test_bmod_kernel_48(benchmark):
    rng = np.random.default_rng(2)
    A = rng.standard_normal((192, 48))
    B = rng.standard_normal((96, 48))
    U, flops = benchmark(bmod_kernel, A, B)
    assert U.shape == (192, 96)


def test_des_throughput(benchmark, scale):
    """Events per second of the fan-out simulator on a mid-size graph."""
    prep = prepare_problem("BCSSTK15", scale)
    tg = prep.taskgraph
    g = square_grid(64)
    owners = block_owners(tg, cyclic_map(tg.npanels, g))
    result = benchmark(simulate_fanout, tg, owners, g.P)
    assert result.events > 0
