"""Regenerates §4.2(a): the processor-aware alternative heuristic.

Shape: balance improves beyond the basic heuristic, performance roughly
does not (the paper's evidence that balance stops being the bottleneck).
"""

from repro.experiments.alt_heuristic import run


def test_alt_heuristic(run_experiment, scale):
    res = run_experiment(run, scale)
    mean_bal = res.data["mean_balance_improvement"]
    mean_perf = res.data["mean_performance_improvement"]
    print(f"\nbalance improvement {mean_bal:.1f}% vs "
          f"performance improvement {mean_perf:.1f}%")
    assert mean_bal > mean_perf - 2.0
