"""Regenerates Table 6: large benchmark matrix statistics."""

from repro.experiments.table6 import run


def test_table6(run_experiment, scale):
    res = run_experiment(run, scale, floatfmt="{:.1f}")
    assert len(res.rows) == 4
