"""Regenerates the §1 baseline comparison: 1-D column vs 2-D block methods."""

from repro.experiments.oned_comparison import (
    run_critical_path_scaling,
    run_performance,
    run_volume_scaling,
)


def test_volume_scaling(run_experiment, scale):
    res = run_experiment(run_volume_scaling, scale)
    ratios = [row[4] for row in res.rows]
    assert ratios[-1] > ratios[0] > 1.0  # 1-D moves more data, gap widens


def test_critical_path_scaling(run_experiment, scale):
    res = run_experiment(run_critical_path_scaling)
    ratios = [row[3] for row in res.rows]
    assert ratios[-1] > 2 * ratios[0]  # ~O(k^2) vs ~O(k)


def test_performance(run_experiment, scale):
    res = run_experiment(run_performance, scale, floatfmt="{:.1f}")
    wins = sum(1 for row in res.rows if row[2] > row[1])
    assert wins >= len(res.rows) // 2  # 2-D wins broadly