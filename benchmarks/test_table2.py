"""Regenerates Table 2: balance statistics of the 2-D cyclic mapping.

Shape assertions: on average the diagonal balance is the most depressed
(the paper's §3.2 finding) and overall balance is below each decomposed
balance for every matrix.
"""

import numpy as np

from repro.experiments.table2 import run


def test_table2(run_experiment, scale):
    res = run_experiment(run, scale, P=64)
    rows = np.array([[r[1], r[2], r[3], r[4]] for r in res.rows])
    row_b, col_b, diag_b, overall = rows.T
    assert (overall <= np.minimum(np.minimum(row_b, col_b), diag_b) + 1e-9).all()
    # Diagonal imbalance is the most severe on average (paper §3.2).
    assert diag_b.mean() <= col_b.mean() + 0.05
