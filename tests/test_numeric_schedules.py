import numpy as np

from repro.numeric import BlockCholesky
from repro.numeric.schedules import leftlooking_schedule, rightlooking_schedule


class TestSchedules:
    def test_both_are_permutations_of_tasks(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        for sched in (rightlooking_schedule(tg), leftlooking_schedule(tg)):
            assert sorted(sched.tolist()) == list(range(tg.ntasks))

    def test_rightlooking_factorizes(self, grid12_pipeline):
        _, sf, _, bs, _, tg = grid12_pipeline
        L = (
            BlockCholesky(bs, sf.A)
            .run_schedule(tg, rightlooking_schedule(tg).tolist())
            .to_csc()
        )
        assert abs(L @ L.T - sf.A).max() < 1e-10

    def test_leftlooking_factorizes(self, grid12_pipeline):
        _, sf, _, bs, _, tg = grid12_pipeline
        L = (
            BlockCholesky(bs, sf.A)
            .run_schedule(tg, leftlooking_schedule(tg).tolist())
            .to_csc()
        )
        assert abs(L @ L.T - sf.A).max() < 1e-10

    def test_same_arithmetic_both_directions(self, grid12_pipeline):
        """Left- and right-looking execute the identical operation set."""
        _, sf, _, bs, _, tg = grid12_pipeline
        right = BlockCholesky(bs, sf.A).run_schedule(
            tg, rightlooking_schedule(tg).tolist()
        )
        left = BlockCholesky(bs, sf.A).run_schedule(
            tg, leftlooking_schedule(tg).tolist()
        )
        assert right.flops == left.flops
        assert abs(right.to_csc() - left.to_csc()).max() < 1e-12

    def test_random_matrix(self, random_spd_pipeline):
        _, sf, _, bs, _, tg = random_spd_pipeline
        L = (
            BlockCholesky(bs, sf.A)
            .run_schedule(tg, leftlooking_schedule(tg).tolist())
            .to_csc()
        )
        assert abs(L @ L.T - sf.A).max() < 1e-10
