import numpy as np
import pytest
from scipy import sparse

from repro.matrices import grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.numeric import simplicial_cholesky
from repro.symbolic import symbolic_factor


class TestSimplicialCholesky:
    def test_reconstructs_grid(self):
        p = grid2d_matrix(7)
        L = simplicial_cholesky(p.A)
        assert abs(L @ L.T - p.A).max() < 1e-10

    def test_reconstructs_random(self):
        A = random_spd_sparse(60, density=0.08, seed=0)
        L = simplicial_cholesky(A)
        assert abs(L @ L.T - A).max() < 1e-10

    def test_matches_dense(self):
        A = random_spd_sparse(30, density=0.15, seed=1)
        L = simplicial_cholesky(A).toarray()
        assert np.allclose(L, np.linalg.cholesky(A.toarray()), atol=1e-10)

    def test_nnz_matches_symbolic_prediction(self):
        """The factor's structural nnz equals the column-count prediction."""
        A = random_spd_sparse(50, density=0.1, seed=2)
        sf = symbolic_factor(A, None)
        L = simplicial_cholesky(sf.A)
        assert L.nnz == sf.factor_nnz

    def test_rejects_indefinite(self):
        A = sparse.eye(4).tocsc() * -1.0
        with pytest.raises(np.linalg.LinAlgError):
            simplicial_cholesky(A)

    def test_diagonal_matrix(self):
        A = sparse.diags([4.0, 9.0, 16.0]).tocsc()
        L = simplicial_cholesky(A)
        assert np.allclose(L.diagonal(), [2, 3, 4])
