import numpy as np
import pytest

from repro.blocks import BlockPartition, BlockStructure, WorkModel
from repro.fanout import TaskGraph
from repro.matrices import cube3d_matrix, grid2d_matrix
from repro.numeric import BlockCholesky
from repro.numeric.parallel import parallel_block_cholesky
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor


class TestParallelBlockCholesky:
    def test_reconstructs_grid(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = parallel_block_cholesky(bs, sf.A, tg, nthreads=4)
        L = res.to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-10
        assert res.tasks_executed == tg.ntasks

    def test_single_thread_matches_sequential(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        par = parallel_block_cholesky(bs, sf.A, tg, nthreads=1).to_csc()
        seq = BlockCholesky(bs, sf.A).factor().to_csc()
        assert abs(par - seq).max() < 1e-12

    def test_many_threads_deterministic_result(self, grid12_pipeline):
        """Floating-point result is identical regardless of thread count:
        every BMOD is an exact subtraction into a locked block and the set
        of operations is fixed... note additions into one block may reorder,
        so allow rounding-level differences only."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        a = parallel_block_cholesky(bs, sf.A, tg, nthreads=2).to_csc()
        b = parallel_block_cholesky(bs, sf.A, tg, nthreads=8).to_csc()
        assert abs(a - b).max() < 1e-9

    def test_random_problem(self, random_spd_pipeline):
        _, sf, _, bs, wm, tg = random_spd_pipeline
        L = parallel_block_cholesky(bs, sf.A, tg, nthreads=4).to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-9

    def test_larger_mesh(self):
        p = cube3d_matrix(7)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        bs = BlockStructure(BlockPartition(sf, 16))
        tg = TaskGraph(WorkModel(bs))
        L = parallel_block_cholesky(bs, sf.A, tg, nthreads=4).to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-8

    def test_rejects_zero_threads(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        with pytest.raises(ValueError):
            parallel_block_cholesky(bs, sf.A, tg, nthreads=0)

    def test_indefinite_matrix_raises(self):
        """A numeric failure in a worker must propagate, not deadlock."""
        from scipy import sparse

        p = grid2d_matrix(8)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        bs = BlockStructure(BlockPartition(sf, 8))
        tg = TaskGraph(WorkModel(bs))
        bad = (sf.A - sparse.eye(sf.n) * 1e6).tocsc()  # indefinite
        with pytest.raises(np.linalg.LinAlgError):
            parallel_block_cholesky(bs, bad, tg, nthreads=4)
