"""The message-passing runtime end to end: correctness vs the sequential
factorization, communication accounting vs the static predictor, load
distribution vs the work model, and clean shutdown on worker failure."""

import multiprocessing as mp

import numpy as np
import pytest
from scipy import sparse

from repro.analysis.comm_volume import communication_volume
from repro.mapping.balance import overall_balance_from_owners
from repro.numeric import BlockCholesky
from repro.runtime import (
    WorkerError,
    mp_block_cholesky,
    plan_owners,
    run_mp_fanout,
    validate_runtime,
)
from repro.runtime.validation import ValidationError


def _no_orphans():
    for p in mp.active_children():
        p.join(timeout=5)
    return all(not p.is_alive() for p in mp.active_children())


class TestCorrectness:
    @pytest.mark.parametrize("mapping", ["cyclic", "DW/CY"])
    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_matches_sequential_factor(self, grid12_pipeline, mapping, nprocs):
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = mp_block_cholesky(bs, sf.A, tg, nprocs=nprocs, mapping=mapping)
        L = res.to_csc()
        seq = BlockCholesky(bs, sf.A).factor().to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-10
        assert abs(L - seq).max() < 1e-10
        assert res.metrics.tasks_total == tg.ntasks

    def test_single_worker(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = mp_block_cholesky(bs, sf.A, tg, nprocs=1, mapping="cyclic")
        assert abs(res.to_csc() @ res.to_csc().T - sf.A).max() < 1e-10
        assert res.metrics.messages_total == 0

    def test_irregular_problem(self, random_spd_pipeline):
        _, sf, _, bs, wm, tg = random_spd_pipeline
        res = mp_block_cholesky(bs, sf.A, tg, nprocs=4, mapping="ID/CY")
        assert abs(res.to_csc() @ res.to_csc().T - sf.A).max() < 1e-9

    def test_priority_policy(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = mp_block_cholesky(
            bs, sf.A, tg, nprocs=2, mapping="DW/CY", policy="bottom_level"
        )
        assert abs(res.to_csc() @ res.to_csc().T - sf.A).max() < 1e-10

    def test_domains_ownership(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = mp_block_cholesky(
            bs, sf.A, tg, nprocs=4, mapping="DW/CY", use_domains=True
        )
        assert abs(res.to_csc() @ res.to_csc().T - sf.A).max() < 1e-10

    def test_rejects_bad_arguments(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        owners, _ = plan_owners(wm, tg, 4, "cyclic")
        with pytest.raises(ValueError):
            run_mp_fanout(bs, sf.A, tg, owners[:-1], 4)
        with pytest.raises(ValueError):
            run_mp_fanout(bs, sf.A, tg, owners, 0)
        with pytest.raises(ValueError):
            run_mp_fanout(bs, sf.A, tg, owners, 2)  # owner 3 out of range


class TestAccounting:
    @pytest.mark.parametrize("mapping", ["cyclic", "DW/CY"])
    def test_messages_match_comm_volume(self, grid12_pipeline, mapping):
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = mp_block_cholesky(bs, sf.A, tg, nprocs=4, mapping=mapping)
        predicted = communication_volume(tg, res.owners)
        assert res.metrics.messages_total == predicted.messages
        assert res.metrics.bytes_total == predicted.bytes
        # Link matrix carries the same totals, link by link.
        assert res.metrics.link_matrix().sum() == predicted.messages

    def test_work_matches_workmodel(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = mp_block_cholesky(bs, sf.A, tg, nprocs=4, mapping="DW/CY")
        measured = np.array(
            [w.work_executed for w in res.metrics.workers], dtype=np.int64
        )
        predicted = np.bincount(
            res.owners, weights=wm.work, minlength=4
        ).astype(np.int64)
        np.testing.assert_array_equal(measured, predicted)
        assert res.metrics.work_balance == pytest.approx(
            overall_balance_from_owners(wm, res.owners, 4)
        )

    def test_dw_work_imbalance_not_worse_than_cyclic(self, grid12_pipeline):
        """The paper's claim on real execution: the DW remap's measured
        per-worker work distribution beats (or ties) cyclic."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        runs = {
            m: mp_block_cholesky(bs, sf.A, tg, nprocs=4, mapping=m)
            for m in ("cyclic", "DW/CY")
        }
        assert (
            runs["DW/CY"].metrics.work_imbalance
            <= runs["cyclic"].metrics.work_imbalance
        )

    def test_validation_harness_passes(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        rep = validate_runtime(
            bs, sf.A, tg, nprocs=4, mapping="DW/CY", problem="grid12"
        )
        assert rep.ok
        assert rep.messages_measured == rep.messages_predicted
        assert "OK" in rep.summary()

    def test_validation_harness_catches_lies(self, grid12_pipeline):
        """Validating a result against ownership it did not run under must
        fail the communication check."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = mp_block_cholesky(bs, sf.A, tg, nprocs=4, mapping="cyclic")
        other, _ = plan_owners(wm, tg, 4, "DW/CY")
        if communication_volume(tg, other).messages == \
                communication_volume(tg, res.owners).messages:
            pytest.skip("mappings coincide on this tiny problem")
        res.owners = other
        with pytest.raises(ValidationError):
            validate_runtime(bs, sf.A, tg, result=res)

    def test_metrics_timelines_recorded(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = mp_block_cholesky(bs, sf.A, tg, nprocs=2, mapping="cyclic")
        for w in res.metrics.workers:
            assert w.tasks_executed > 0
            assert w.busy_s > 0
            assert w.timeline, "timeline should be recorded by default"
            cats = {seg[0] for seg in w.timeline}
            assert cats <= {"busy", "comm", "idle"}
        assert res.metrics.wall_s > 0
        # Render and JSON never crash on real data.
        res.metrics.render()
        res.metrics.to_json()


class TestShutdown:
    def test_injected_worker_failure_raises_and_reaps(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        with pytest.raises(WorkerError, match="injected failure"):
            mp_block_cholesky(
                bs, sf.A, tg, nprocs=4, mapping="cyclic",
                inject_failure=(1, 3), stall_timeout_s=10, timeout_s=60,
            )
        assert _no_orphans()

    def test_numeric_failure_propagates_without_hang(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        bad = (sf.A - sparse.eye(sf.A.shape[0]) * 1e6).tocsc()
        with pytest.raises(WorkerError, match="LinAlgError"):
            mp_block_cholesky(
                bs, bad, tg, nprocs=4, mapping="cyclic",
                stall_timeout_s=10, timeout_s=60,
            )
        assert _no_orphans()

    def test_success_leaves_no_orphans(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        mp_block_cholesky(bs, sf.A, tg, nprocs=2, mapping="cyclic")
        assert _no_orphans()

    def test_worker_error_ships_remote_traceback(self, grid12_pipeline):
        """The driver's exception carries the failing worker's full remote
        traceback, its rank, and the original error text — enough to debug
        without attaching to a child process."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        with pytest.raises(WorkerError) as info:
            mp_block_cholesky(
                bs, sf.A, tg, nprocs=4, mapping="cyclic",
                inject_failure=(2, 3), stall_timeout_s=10, timeout_s=60,
            )
        exc = info.value
        text = str(exc)
        assert "Traceback (most recent call last)" in text
        assert "injected failure on worker 2" in text
        assert exc.rank == 2
        assert exc.failed_ranks == [2]
        assert _no_orphans()

    def test_abort_fans_out_to_all_peers(self, grid12_pipeline):
        """One failing worker ABORTs the others: every surviving rank
        still reports home (results salvaged on the exception) and at
        least one of them saw the ABORT control frame."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        with pytest.raises(WorkerError) as info:
            mp_block_cholesky(
                bs, sf.A, tg, nprocs=4, mapping="cyclic",
                inject_failure=(1, 3), stall_timeout_s=10, timeout_s=60,
            )
        exc = info.value
        assert set(exc.results) == {0, 1, 2, 3}
        survivors = [r for rank, r in exc.results.items() if rank != 1]
        assert any(
            r.metrics.aborted or r.metrics.tasks_executed
            for r in survivors
        )
        assert exc.results[1].metrics.error is not None
        assert _no_orphans()


class TestSolverBackends:
    @pytest.mark.parametrize("mapping", ["cyclic", "DW/CY"])
    def test_mp_backend(self, mapping):
        from repro.matrices import grid2d_matrix
        from repro.solver import SparseCholesky

        A = grid2d_matrix(12).A
        chol = SparseCholesky(
            A, block_size=8, backend="mp", nprocs=4, mapping=mapping
        ).factor()
        assert abs(chol.L @ chol.L.T - chol.symbolic.A).max() < 1e-10
        assert chol.runtime_metrics is not None
        assert chol.runtime_metrics.nprocs == 4
        b = np.ones(A.shape[0])
        assert np.max(np.abs(A @ chol.solve(b) - b)) < 1e-8

    def test_threads_backend(self):
        from repro.matrices import grid2d_matrix
        from repro.solver import SparseCholesky

        A = grid2d_matrix(12).A
        chol = SparseCholesky(
            A, block_size=8, backend="threads", nprocs=2
        ).factor()
        assert abs(chol.L @ chol.L.T - chol.symbolic.A).max() < 1e-10

    def test_unknown_backend_rejected(self):
        from repro.matrices import grid2d_matrix
        from repro.solver import SparseCholesky

        with pytest.raises(KeyError):
            SparseCholesky(grid2d_matrix(8).A, backend="mpi")


class TestBenchRealCLI:
    def test_bench_real_reports(self, capsys):
        from repro.cli import main

        rc = main([
            "bench-real", "GRID150", "--scale", "small", "-p", "2",
            "--mappings", "cyclic,DW/CY", "--validate",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wall clock" in out
        assert "balance" in out
        assert "measured" in out and "predicted" in out
        assert "mapping comparison" in out
        assert "validate" in out and "FAILED" not in out

    def test_bench_real_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bench.json"
        rc = main([
            "bench-real", "GRID150", "--scale", "small", "-p", "2",
            "--mappings", "DW/CY", "--json", str(path),
        ])
        capsys.readouterr()
        assert rc == 0
        import json

        payload = json.loads(path.read_text())
        assert "DW/CY" in payload
        assert payload["DW/CY"]["nprocs"] == 2
        assert payload["DW/CY"]["workers"]

    def test_bench_real_timeout_flags(self, capsys):
        """--timeout / --stall-timeout reach the runtime watchdogs; ample
        values leave a healthy run untouched."""
        from repro.cli import main

        rc = main([
            "bench-real", "GRID150", "--scale", "small", "-p", "2",
            "--mappings", "DW/CY",
            "--timeout", "120", "--stall-timeout", "20",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wall clock" in out
