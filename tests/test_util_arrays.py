import numpy as np
import pytest

from repro.util.arrays import (
    as_index_array,
    invert_permutation,
    is_permutation,
    union_sorted,
)


class TestAsIndexArray:
    def test_converts_list(self):
        out = as_index_array([3, 1, 2])
        assert out.dtype == np.int64
        assert out.tolist() == [3, 1, 2]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            as_index_array(np.zeros((2, 2)))


class TestIsPermutation:
    def test_identity(self):
        assert is_permutation(np.arange(10))

    def test_shuffled(self):
        assert is_permutation([2, 0, 1])

    def test_duplicate(self):
        assert not is_permutation([0, 0, 2])

    def test_out_of_range(self):
        assert not is_permutation([0, 1, 3])

    def test_negative(self):
        assert not is_permutation([-1, 0, 1])

    def test_empty(self):
        assert is_permutation(np.empty(0, dtype=int))


class TestInvertPermutation:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        perm = rng.permutation(50)
        inv = invert_permutation(perm)
        assert np.array_equal(inv[perm], np.arange(50))
        assert np.array_equal(perm[inv], np.arange(50))

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            invert_permutation([0, 0, 1])


class TestUnionSorted:
    def test_disjoint(self):
        a = np.array([1, 3], dtype=np.int64)
        b = np.array([2, 4], dtype=np.int64)
        assert union_sorted(a, b).tolist() == [1, 2, 3, 4]

    def test_overlap(self):
        a = np.array([1, 2, 5], dtype=np.int64)
        b = np.array([2, 5, 9], dtype=np.int64)
        assert union_sorted(a, b).tolist() == [1, 2, 5, 9]

    def test_empty_sides(self):
        a = np.array([1, 2], dtype=np.int64)
        e = np.empty(0, dtype=np.int64)
        assert union_sorted(a, e).tolist() == [1, 2]
        assert union_sorted(e, a).tolist() == [1, 2]
        assert union_sorted(e, e).size == 0

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            a = np.unique(rng.integers(0, 40, rng.integers(0, 30)))
            b = np.unique(rng.integers(0, 40, rng.integers(0, 30)))
            assert np.array_equal(union_sorted(a, b), np.union1d(a, b))
