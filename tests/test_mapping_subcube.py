import numpy as np

from repro.analysis import communication_volume
from repro.fanout import block_owners
from repro.mapping import (
    heuristic_map,
    square_grid,
    subtree_to_subcube_column_map,
)


class TestSubtreeToSubcube:
    def test_valid_map(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        g = square_grid(9)
        m = subtree_to_subcube_column_map(wm, g)
        assert m.mapJ.min() >= 0 and m.mapJ.max() < g.Pc
        assert m.mapI.min() >= 0 and m.mapI.max() < g.Pr

    def test_disjoint_subtrees_use_disjoint_columns(self, grid12_pipeline):
        """Sibling subtrees under the root must get disjoint processor-column
        ranges (when enough columns are available)."""
        _, sf, part, _, wm, _ = grid12_pipeline
        g = square_grid(9)
        m = subtree_to_subcube_column_map(wm, g)
        # top-level separator panels cycle over all columns; deep subtrees
        # are confined: check that some panel uses a range smaller than Pc
        used_by_depth = {}
        depths = part.panel_depths()
        for k in range(part.npanels):
            used_by_depth.setdefault(int(depths[k]), set()).add(int(m.mapJ[k]))
        if len(used_by_depth) > 2:
            deepest = used_by_depth[max(used_by_depth)]
            assert len(deepest) <= g.Pc

    def test_reduces_communication_volume(self, grid12_pipeline):
        """The point of the scheme (§5): less volume than the heuristic map."""
        wm, tg = grid12_pipeline[4], grid12_pipeline[5]
        g = square_grid(9)
        heur = heuristic_map(wm, g, "ID", "CY")
        sub = subtree_to_subcube_column_map(wm, g, "ID")
        v_h = communication_volume(tg, block_owners(tg, heur)).bytes
        v_s = communication_volume(tg, block_owners(tg, sub)).bytes
        assert v_s <= v_h

    def test_deterministic(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        g = square_grid(9)
        a = subtree_to_subcube_column_map(wm, g).mapJ
        b = subtree_to_subcube_column_map(wm, g).mapJ
        assert np.array_equal(a, b)
