import pytest

from repro.fanout import run_fanout
from repro.machine.params import PARAGON, MachineParams
from repro.mapping import cyclic_map, square_grid


class TestRxContention:
    def test_params_helpers(self):
        assert not PARAGON.has_rx_contention
        assert PARAGON.rx_time(1000) == 0.0
        m = MachineParams(rx_bandwidth=40e6)
        assert m.has_rx_contention
        assert m.rx_time(1000) == pytest.approx((8000 + 64) / 40e6)

    def test_contention_never_faster(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(9))
        free = run_fanout(tg, cmap, machine=PARAGON)
        congested = run_fanout(
            tg, cmap, machine=MachineParams(rx_bandwidth=40e6)
        )
        assert congested.t_parallel >= free.t_parallel - 1e-12

    def test_tight_rx_hurts_more(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(9))
        mild = run_fanout(
            tg, cmap, machine=MachineParams(rx_bandwidth=40e6)
        ).t_parallel
        harsh = run_fanout(
            tg, cmap, machine=MachineParams(rx_bandwidth=4e6)
        ).t_parallel
        assert harsh >= mild

    def test_completes_and_deterministic(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(9))
        m = MachineParams(rx_bandwidth=10e6)
        a = run_fanout(tg, cmap, machine=m)
        b = run_fanout(tg, cmap, machine=m)
        assert a.t_parallel == b.t_parallel

    def test_infinite_rx_matches_default(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(9))
        base = run_fanout(tg, cmap, machine=PARAGON)
        explicit = run_fanout(
            tg, cmap, machine=MachineParams(rx_bandwidth=float("inf"))
        )
        assert base.t_parallel == pytest.approx(explicit.t_parallel)
