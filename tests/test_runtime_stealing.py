"""The dynamic schedule (work stealing): factors bitwise identical to the
static schedule on both transports, exact migration-adjusted accounting,
steal-aware trace replay, crash recovery, and pool regrowth after heal."""

import numpy as np
import pytest

from repro.analysis.trace_replay import replay_trace, validate_trace
from repro.numeric import BlockCholesky
from repro.runtime import (
    plan_owners,
    run_mp_fanout,
    shm_available,
    validate_runtime,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.recovery import run_with_recovery

TRANSPORTS = ["inline"] + (["shm"] if shm_available() else [])


def _run(pipe, schedule, transport, nprocs=4, **kw):
    _, sf, _, bs, wm, tg = pipe
    owners, name = plan_owners(wm, tg, nprocs, "DW/CY")
    return run_mp_fanout(
        bs, sf.A, tg, owners, nprocs, mapping=name,
        schedule=schedule, transport=transport, **kw
    )


def _bitwise(L, ref):
    return (
        np.array_equal(L.indptr, ref.indptr)
        and np.array_equal(L.indices, ref.indices)
        and np.array_equal(L.data, ref.data)
    )


class TestBitwiseIdentity:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_dynamic_matches_static_bitwise(self, grid12_pipeline, transport):
        """The core determinism contract: stealing moves *where* a task
        runs, never *what* it computes — same kernel, same input bytes,
        same canonical accumulation slot."""
        _, sf, _, bs, *_ = grid12_pipeline
        st = _run(grid12_pipeline, "static", transport)
        dy = _run(grid12_pipeline, "dynamic", transport)
        L_st, L_dy = st.to_csc(), dy.to_csc()
        assert _bitwise(L_dy, L_st)
        seq = BlockCholesky(bs, sf.A).factor().to_csc()
        assert abs(L_dy - seq).max() < 1e-10
        assert dy.metrics.schedule == "dynamic"
        assert dy.metrics.tasks_total == st.metrics.tasks_total

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_dynamic_under_throttle_bitwise(self, grid12_pipeline, transport):
        """A throttled worker forces real migrations; the factor still
        matches an unfaulted static run bitwise."""
        st = _run(grid12_pipeline, "static", transport)
        plan = FaultPlan.scenario("slow", rank=0, slow_s=0.005, seed=3)
        dy = _run(
            grid12_pipeline, "dynamic", transport,
            fault_plan=plan, recovery=False,
        )
        assert _bitwise(dy.to_csc(), st.to_csc())
        assert dy.metrics.tasks_stolen_total > 0

    def test_steal_seed_changes_victims_not_factor(self, grid12_pipeline):
        st = _run(grid12_pipeline, "static", "inline")
        for seed in (0, 7):
            dy = _run(grid12_pipeline, "dynamic", "inline", steal_seed=seed)
            assert _bitwise(dy.to_csc(), st.to_csc())

    def test_rejects_unknown_schedule(self, grid12_pipeline):
        with pytest.raises(ValueError):
            _run(grid12_pipeline, "stochastic", "inline")


class TestAccounting:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_migration_adjusted_work_is_exact(
        self, grid12_pipeline, transport
    ):
        """executed - stolen_in + shipped_away == the WorkModel owner
        share, integer for integer; message/byte counters stay on the
        static prediction because steal traffic rides its own ledger."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = _run(grid12_pipeline, "dynamic", transport)
        rep = validate_runtime(
            bs, sf.A, tg, problem="grid12", result=res, strict=True,
        )
        assert rep.ok

    def test_steal_ledger_is_consistent(self, grid12_pipeline):
        plan = FaultPlan.scenario("slow", rank=0, slow_s=0.005, seed=3)
        res = _run(
            grid12_pipeline, "dynamic", "inline",
            fault_plan=plan, recovery=False,
        )
        m = res.metrics
        stolen = sum(w.tasks_stolen for w in m.workers)
        shipped = sum(w.tasks_shipped for w in m.workers)
        assert stolen == shipped == m.tasks_stolen_total > 0
        assert sum(w.work_stolen for w in m.workers) == sum(
            w.work_shipped for w in m.workers
        )
        grants = sum(w.steal_grants for w in m.workers)
        assert grants == stolen

    def test_static_run_has_zero_steal_counters(self, grid12_pipeline):
        m = _run(grid12_pipeline, "static", "inline").metrics
        assert m.tasks_stolen_total == 0
        assert m.steal_reqs_total == 0
        assert m.steal_bytes_total == 0


class TestTraceConformance:
    def test_fault_free_dynamic_trace_validates(self, grid12_pipeline):
        """Replay reconciles a dynamic trace exactly: steal spans,
        migrated tasks, and the steal counters all line up with the
        runtime metrics and the static models."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = _run(grid12_pipeline, "dynamic", "inline", trace=True)
        rep = validate_trace(
            res.trace, metrics=res.metrics, tg=tg,
            owners=res.owners, strict=True,
        )
        assert rep.ok

    def test_replay_migration_counts_match_metrics(self, grid12_pipeline):
        plan = FaultPlan.scenario("slow", rank=0, slow_s=0.005, seed=3)
        res = _run(
            grid12_pipeline, "dynamic", "inline", trace=True,
            fault_plan=plan, recovery=False,
        )
        rep = replay_trace(res.trace)
        m = res.metrics
        assert rep.migrated
        for r, w in enumerate(m.workers):
            assert rep.migrated_in_tasks[r] == w.tasks_stolen
            assert rep.migrated_away_tasks[r] == w.tasks_shipped
            assert rep.migrated_in_work[r] == w.work_stolen
            assert rep.migrated_away_work[r] == w.work_shipped
        # Folding the migration back out conserves total work.
        assert rep.owner_work.sum() == rep.work.sum()


class TestRecovery:
    def test_crash_recovers_under_dynamic(self, grid12_pipeline):
        """A worker crash with schedule="dynamic" still recovers to the
        sequential factor — stealing defers to the recovery machinery."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        plan = FaultPlan.scenario("crash", rank=1, after_tasks=3)
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=4, mapping="DW/CY", fault_plan=plan,
            max_restarts=2, schedule="dynamic",
        )
        rep = res.failure_report
        assert rep.ok or rep.degraded
        seq = BlockCholesky(bs, sf.A).factor().to_csc()
        assert abs(res.to_csc() - seq).max() < 1e-8

    def test_single_worker_degrades_to_static(self, grid12_pipeline):
        """P=1 has no peers to steal from; the dynamic flag must be a
        clean no-op."""
        res = _run(grid12_pipeline, "dynamic", "inline", nprocs=1)
        m = res.metrics
        assert m.tasks_stolen_total == 0
        assert m.steal_reqs_total == 0


class TestPoolRegrow:
    def test_heal_then_regrow_restores_width_bitwise(self, grid12_pipeline):
        """A healed (shrunken) pool grows back to its configured width
        and the regrown crew factors bitwise identically."""
        import os
        import signal

        from repro.matrices import grid2d_matrix
        from repro.service import FactorService

        A = grid2d_matrix(12).A.tocsc()
        svc = FactorService(nprocs=2, block_size=8, transport="inline")
        svc.start()
        try:
            ref = svc.factor(A).L
            os.kill(svc.pool._procs[1].pid, signal.SIGKILL)
            healed = svc.factor(A)  # heals onto the survivor mid-batch
            assert _bitwise(healed.L, ref)
            assert svc.pool.nprocs < svc.pool.configured_nprocs
            regrown = svc.factor(A)  # next batch regrows to full width
            assert svc.pool.nprocs == svc.pool.configured_nprocs == 2
            assert _bitwise(regrown.L, ref)
            assert svc.health()["status"] == "ok"
        finally:
            svc.close()
