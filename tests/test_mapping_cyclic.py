import numpy as np

from repro.mapping import ProcessorGrid, cyclic_map, square_grid


class TestCyclicMap:
    def test_definition(self):
        g = ProcessorGrid(3, 4)
        m = cyclic_map(24, g)
        for I in range(24):
            for J in range(0, 24, 5):
                assert m.owner(I, J) == g.rank(I % 3, J % 4)

    def test_is_sc_on_square_grid(self):
        m = cyclic_map(20, square_grid(16))
        assert m.is_symmetric_cartesian

    def test_diagonal_concentration_square(self):
        """On a square grid, diagonal blocks land only on diagonal procs."""
        g = square_grid(16)
        m = cyclic_map(40, g)
        owners = {m.owner(I, I) for I in range(40)}
        diag_procs = {g.rank(i, i) for i in range(4)}
        assert owners <= diag_procs

    def test_diagonal_scatter_prime_grid(self):
        """On a relatively-prime grid the diagonal visits every processor
        (the §4.2 observation)."""
        g = ProcessorGrid(3, 4)
        m = cyclic_map(12 * 4, g)
        owners = {m.owner(I, I) for I in range(48)}
        assert len(owners) == g.P
