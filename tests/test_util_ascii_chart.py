import pytest

from repro.util.ascii_chart import bar_chart


class TestBarChart:
    def test_basic(self):
        out = bar_chart(["a", "b"], {"x": [0.5, 1.0]}, width=10)
        lines = out.splitlines()
        assert "# = x" in lines[0]
        assert "|##########|" in out  # full bar for the max
        assert "|#####" in out  # half bar

    def test_two_series_fills(self):
        out = bar_chart(["m"], {"eff": [0.4], "bal": [0.8]}, width=10)
        assert "#" in out and "o" in out

    def test_vmax_override(self):
        out = bar_chart(["a"], {"x": [0.5]}, width=10, vmax=0.5)
        assert "|##########|" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a", "b"], {"x": [1.0]})

    def test_empty_series(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], {})

    def test_zero_values(self):
        out = bar_chart(["a"], {"x": [0.0]}, width=10)
        assert "0.000" in out
