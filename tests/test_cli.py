import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "GRID150"])
        assert args.P == 64
        assert args.mapping == "ID/CY"
        assert args.scale == "medium"


class TestCommands:
    def test_info(self, capsys):
        rc = main(["info", "GRID150", "--scale", "small"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "GRID150" in out and "nnz(L)" in out

    def test_factor(self, capsys):
        rc = main(["factor", "BCSSTK15", "--scale", "small",
                   "--block-size", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "solve residual" in out

    def test_simulate_cyclic(self, capsys):
        rc = main(["simulate", "GRID150", "--scale", "small", "-P", "16",
                   "--mapping", "cyclic"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "efficiency" in out and "cyclic" in out

    def test_simulate_heuristic_nonsquare_p(self, capsys):
        rc = main(["simulate", "GRID150", "--scale", "small", "-P", "15",
                   "--mapping", "DW/ID"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DW/ID" in out

    def test_simulate_priority_no_domains(self, capsys):
        rc = main(["simulate", "BCSSTK15", "--scale", "small", "-P", "16",
                   "--priority", "--no-domains"])
        assert rc == 0

    def test_experiment_table3(self, capsys):
        rc = main(["experiment", "table3", "--scale", "small"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 3" in out

    def test_experiment_unknown(self, capsys):
        rc = main(["experiment", "tableX", "--scale", "small"])
        assert rc == 2

    def test_analyze(self, capsys):
        rc = main(["analyze", "BCSSTK15", "--scale", "small", "-P", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "etree height" in out and "critical path" in out
        assert "Paragon node" in out

    def test_experiment_dense_study(self, capsys):
        rc = main(["experiment", "dense_study", "--scale", "small"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "dense problems" in out
