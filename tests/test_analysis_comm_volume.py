import numpy as np
import pytest

from repro.analysis import communication_volume
from repro.fanout import assign_domains, block_owners, run_fanout
from repro.mapping import ProcessorGrid, cyclic_map, square_grid


class TestCommunicationVolume:
    def test_zero_on_single_processor(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        owners = np.zeros(tg.nblocks, dtype=int)
        rep = communication_volume(tg, owners)
        assert rep.messages == 0 and rep.bytes == 0

    def test_matches_simulator_exactly(self, grid12_pipeline):
        """Static accounting must agree with the DES's message counters."""
        tg = grid12_pipeline[5]
        for P in (4, 9):
            cmap = cyclic_map(tg.npanels, square_grid(P))
            owners = block_owners(tg, cmap)
            static = communication_volume(tg, owners)
            dynamic = run_fanout(tg, cmap)
            assert static.messages == dynamic.comm_messages
            assert static.bytes == dynamic.comm_bytes

    def test_matches_simulator_with_domains(self, random_spd_pipeline):
        wm, tg = random_spd_pipeline[4], random_spd_pipeline[5]
        g = square_grid(4)
        cmap = cyclic_map(tg.npanels, g)
        dom = assign_domains(wm, g.P)
        owners = block_owners(tg, cmap, dom)
        static = communication_volume(tg, owners)
        dynamic = run_fanout(tg, cmap, domains=dom)
        assert static.messages == dynamic.comm_messages
        assert static.bytes == dynamic.comm_bytes

    def test_cp_fanout_bound(self, grid12_pipeline):
        """Under a CP map no block is sent to more than Pr + Pc processors."""
        tg = grid12_pipeline[5]
        g = ProcessorGrid(3, 3)
        owners = block_owners(tg, cyclic_map(tg.npanels, g))
        rep = communication_volume(tg, owners)
        assert rep.max_fanout <= g.Pr + g.Pc

    def test_more_processors_more_volume(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        v4 = communication_volume(
            tg, block_owners(tg, cyclic_map(tg.npanels, square_grid(4)))
        ).bytes
        v16 = communication_volume(
            tg, block_owners(tg, cyclic_map(tg.npanels, square_grid(16)))
        ).bytes
        assert v16 >= v4
