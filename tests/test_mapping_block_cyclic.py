import numpy as np
import pytest

from repro.mapping import balance_metrics, cyclic_map, square_grid
from repro.mapping.block_cyclic import block_cyclic_map


class TestBlockCyclicMap:
    def test_factor_one_is_cyclic(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        g = square_grid(9)
        bc = block_cyclic_map(tg.npanels, g, 1)
        cy = cyclic_map(tg.npanels, g)
        assert np.array_equal(bc.mapI, cy.mapI)
        assert np.array_equal(bc.mapJ, cy.mapJ)

    def test_definition(self):
        g = square_grid(4)
        m = block_cyclic_map(12, g, row_factor=3, col_factor=2)
        assert m.mapI.tolist() == [(i // 3) % 2 for i in range(12)]
        assert m.mapJ.tolist() == [(j // 2) % 2 for j in range(12)]

    def test_larger_factor_not_better_balanced(self, grid12_pipeline):
        """Coarser wrapping can only concentrate work further."""
        wm = grid12_pipeline[4]
        g = square_grid(9)
        fine = balance_metrics(wm, block_cyclic_map(wm.npanels, g, 1)).overall
        coarse = balance_metrics(
            wm, block_cyclic_map(wm.npanels, g, 4)
        ).overall
        assert coarse <= fine * 1.25  # rarely better, never dramatically

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            block_cyclic_map(5, square_grid(4), 0)
        with pytest.raises(ValueError):
            block_cyclic_map(5, square_grid(4), 1, 0)
