"""Unit tests of the extended experiment modules at small scale."""

import numpy as np
import pytest

from repro.experiments.ablations import run_contention, run_domains_ablation
from repro.experiments.alt_heuristic import run as alt_run
from repro.experiments.dense_study import run as dense_run
from repro.experiments.discussion import (
    run_critical_path,
    run_priority_scheduling,
    run_subcube,
)
from repro.experiments.oned_comparison import (
    run_critical_path_scaling,
    run_volume_scaling,
)
from repro.experiments.prime_grids import run as prime_run
from repro.experiments.variable_block import run as vb_run


class TestDiscussionExperiments:
    def test_critical_path_rows(self):
        res = run_critical_path("small", P=16, matrices=("BCSSTK15",))
        assert len(res.rows) == 1
        name, P, eff, cp_eff, headroom = res.rows[0]
        assert cp_eff >= eff - 1e-9

    def test_subcube_volume_nonincreasing_on_sparse(self):
        res = run_subcube("small", P=16)
        sparse_rows = [r for r in res.rows if not r[0].startswith("DENSE")]
        deltas = [r[3] for r in sparse_rows]
        assert np.mean(deltas) <= 5.0

    def test_scheduling_policies_rows(self):
        res = run_priority_scheduling(
            "small", P=16, policies=("fifo", "bottom_level")
        )
        assert len(res.headers) == 3
        for row in res.rows:
            assert row[1] > 0 and row[2] > 0


class TestAblationsAndStudies:
    def test_contention_has_ten_rows(self):
        res = run_contention("small", P=16)
        assert len(res.rows) == 10

    def test_domains_data_keys(self):
        res = run_domains_ablation("small", P=16)
        for d in res.data.values():
            assert {"bytes_with", "bytes_without"} <= set(d)

    def test_dense_study_rows(self):
        res = dense_run("small", P=16)
        assert [r[0] for r in res.rows] == [
            "DENSE1024", "DENSE2048", "DENSE4096",
        ]

    def test_variable_block_subset(self):
        res = vb_run("small", P=16, matrices=("GRID150",))
        assert len(res.rows) == 1
        d = res.data["GRID150"]
        assert d["fixed"]["mflops"] > 0 and d["varying"]["mflops"] > 0

    def test_alt_heuristic_means_present(self):
        res = alt_run("small", P=16)
        assert "mean_balance_improvement" in res.data
        assert "mean_performance_improvement" in res.data

    def test_prime_grids_means(self):
        res = prime_run("small", Ps=(16,))
        assert 16 in res.data["mean_prime_improvement"]


class TestOnedExperiments:
    def test_volume_scaling_monotone(self):
        res = run_volume_scaling("small", matrix="GRID150", Ps=(16, 64))
        assert res.data[64]["oned_mb"] >= res.data[16]["oned_mb"]

    def test_cp_scaling_ratio_grows(self):
        res = run_critical_path_scaling(ks=(12, 24))
        assert res.data[24]["ratio"] > res.data[12]["ratio"]
