"""End-to-end integration tests: the paper's qualitative claims on small
instances, plus full pipeline (generate -> order -> factor -> solve) runs."""

import numpy as np
import pytest

from repro.blocks import BlockPartition, BlockStructure, WorkModel
from repro.fanout import TaskGraph, assign_domains, block_owners, run_fanout, simulate_fanout
from repro.machine.params import PARAGON
from repro.mapping import (
    balance_metrics,
    best_grid,
    cyclic_map,
    heuristic_map,
    square_grid,
)
from repro.matrices import get_problem
from repro.numeric import BlockCholesky, solve_with_factor
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor


@pytest.fixture(scope="module")
def small_suite():
    """Three prepared problems of different families at small scale."""
    out = {}
    for name in ("GRID150", "CUBE30", "BCSSTK15"):
        p = get_problem(name, "small")
        sf = symbolic_factor(p.A, order_problem(p))
        part = BlockPartition(sf, 16)
        wm = WorkModel(BlockStructure(part))
        out[name] = (p, sf, part, wm, TaskGraph(wm))
    return out


class TestFullPipeline:
    def test_factor_and_solve_every_family(self, small_suite):
        for name, (p, sf, part, wm, tg) in small_suite.items():
            bs = wm.structure
            L = BlockCholesky(bs, sf.A).factor().to_csc()
            rng = np.random.default_rng(1)
            b = rng.standard_normal(p.n)
            x = solve_with_factor(L, b, sf.ordering)
            assert np.max(np.abs(p.A @ x - b)) < 1e-6, name

    def test_parallel_schedule_numerically_valid(self, small_suite):
        p, sf, part, wm, tg = small_suite["BCSSTK15"]
        g = square_grid(16)
        owners = block_owners(
            tg, cyclic_map(tg.npanels, g), assign_domains(wm, g.P)
        )
        r = simulate_fanout(tg, owners, g.P, record_schedule=True)
        L = (
            BlockCholesky(wm.structure, sf.A)
            .run_schedule(tg, r.schedule)
            .to_csc()
        )
        assert abs(L @ L.T - sf.A).max() < 1e-8


class TestPaperClaims:
    """The qualitative shape of the paper's findings at reduced scale."""

    def test_heuristics_improve_overall_balance(self, small_suite):
        g = square_grid(16)
        for name, (p, sf, part, wm, tg) in small_suite.items():
            cyc = balance_metrics(wm, cyclic_map(wm.npanels, g)).overall
            heur = balance_metrics(wm, heuristic_map(wm, g, "ID", "CY")).overall
            assert heur > cyc, name

    def test_diagonal_imbalance_removed_by_nonsymmetric_maps(self, small_suite):
        """All remapping heuristics break the SC diagonal concentration."""
        g = square_grid(16)
        for name, (p, sf, part, wm, tg) in small_suite.items():
            cyc = balance_metrics(wm, cyclic_map(wm.npanels, g))
            for rh in ("DW", "DN", "ID"):
                bal = balance_metrics(wm, heuristic_map(wm, g, rh, rh))
                assert bal.diagonal >= cyc.diagonal * 0.95, (name, rh)

    def test_heuristic_improves_simulated_performance(self, small_suite):
        g = square_grid(16)
        wins = 0
        for name, (p, sf, part, wm, tg) in small_suite.items():
            dom = assign_domains(wm, g.P)
            cyc = run_fanout(tg, cyclic_map(tg.npanels, g), domains=dom,
                             factor_ops=sf.factor_ops).mflops
            heur = run_fanout(tg, heuristic_map(wm, g, "ID", "CY"),
                              domains=dom, factor_ops=sf.factor_ops).mflops
            wins += heur > cyc
        assert wins >= 2  # majority at this tiny scale

    def test_efficiency_below_balance_bound(self, small_suite):
        from repro.mapping.balance import overall_balance_from_owners

        g = square_grid(16)
        for name, (p, sf, part, wm, tg) in small_suite.items():
            dom = assign_domains(wm, g.P)
            cmap = cyclic_map(tg.npanels, g)
            owners = block_owners(tg, cmap, dom)
            r = simulate_fanout(tg, owners, g.P)
            bound = overall_balance_from_owners(wm, owners, g.P)
            assert r.efficiency <= bound + 1e-9, name

    def test_prime_grid_beats_square_cyclic(self, small_suite):
        """P-1 relatively-prime cyclic usually beats P square cyclic."""
        wins = 0
        for name, (p, sf, part, wm, tg) in small_suite.items():
            sq = run_fanout(
                tg, cyclic_map(tg.npanels, square_grid(16)),
                domains=assign_domains(wm, 16), factor_ops=sf.factor_ops,
            ).mflops
            pr = run_fanout(
                tg, cyclic_map(tg.npanels, best_grid(15)),
                domains=assign_domains(wm, 15), factor_ops=sf.factor_ops,
            ).mflops
            wins += pr > sq
        assert wins >= 2

    def test_communication_under_20_percent(self, small_suite):
        """§5: on the Paragon, comm costs < 20% of runtime. Check that the
        simulated wire time is a modest fraction of the parallel runtime."""
        g = square_grid(16)
        for name, (p, sf, part, wm, tg) in small_suite.items():
            dom = assign_domains(wm, g.P)
            r = run_fanout(tg, heuristic_map(wm, g, "ID", "CY"), domains=dom)
            wire_seconds = (
                r.comm_messages * PARAGON.latency
                + r.comm_bytes / PARAGON.bandwidth
            )
            # aggregate wire time spread over P processors
            assert wire_seconds / (g.P * r.t_parallel) < 0.5, name
