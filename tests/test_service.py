"""The factorization service: pattern cache behavior, warm-path bitwise
correctness, admission control, typed errors, the TCP client/server
pair, the solver facade's ``backend="service"``, and the seeded load
generator."""

import threading

import numpy as np
import pytest

from repro.matrices import grid2d_matrix
from repro.service import (
    AdmissionRejected,
    FactorService,
    JobFailed,
    JobQueue,
    LoadgenConfig,
    PatternCache,
    PatternEntry,
    ServiceClient,
    ServiceClosed,
    ServiceServer,
    UnknownPatternError,
    pattern_digest,
    run_loadgen,
)
from repro.solver import SparseCholesky

SVC_KW = dict(nprocs=2, ordering="nd", block_size=8, batch_timeout_s=120)


@pytest.fixture(scope="module")
def grid_A():
    return grid2d_matrix(10).A.tocsc()


@pytest.fixture(scope="module")
def grid_A2(grid_A):
    A2 = grid_A.copy()
    A2.setdiag(A2.diagonal() + 1.25)
    return A2


def _cold_L(A, block_size=8):
    return SparseCholesky(A, ordering="nd", block_size=block_size).factor().L


def _bitwise(L, ref):
    return (
        np.array_equal(L.indptr, ref.indptr)
        and np.array_equal(L.indices, ref.indices)
        and np.array_equal(L.data, ref.data)
    )


class TestFactorService:
    def test_cold_then_warm_bitwise(self, grid_A, grid_A2):
        """Miss, then hit on the same pattern; both factors bitwise equal
        a cold sequential factor of the same values."""
        with FactorService(**SVC_KW) as svc:
            r1 = svc.factor(grid_A)
            r2 = svc.factor(grid_A2)
            assert (r1.cache, r2.cache) == ("miss", "hit")
            assert r1.pattern_id == r2.pattern_id
            assert _bitwise(r1.L, _cold_L(grid_A))
            assert _bitwise(r2.L, _cold_L(grid_A2))
            # warm jobs skip symbolic analysis entirely
            assert r1.record.setup_s > 0.0
            assert r2.record.setup_s == 0.0

    def test_values_only_warm_path(self, grid_A, grid_A2):
        """(pattern_id, values) resubmission — no hashing, no full
        matrix — still bitwise identical to the cold factor."""
        with FactorService(**SVC_KW) as svc:
            r1 = svc.factor(grid_A)
            r2 = svc.factor(pattern_id=r1.pattern_id, values=grid_A2.data)
            assert r2.cache == "hit"
            assert _bitwise(r2.L, _cold_L(grid_A2))
            x = r2.solve(np.ones(grid_A2.shape[0]))
            res = np.linalg.norm(grid_A2 @ x - 1.0)
            assert res < 1e-8

    def test_validate_mode(self, grid_A, grid_A2):
        with FactorService(validate=True, **SVC_KW) as svc:
            r = svc.factor(grid_A)
            assert r.cache == "miss"
            r2 = svc.factor(pattern_id=r.pattern_id, values=grid_A2.data)
            assert r2.cache == "hit"

    def test_unknown_pattern_is_typed(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            svc.factor(grid_A)
            with pytest.raises(UnknownPatternError):
                svc.factor(pattern_id="deadbeefdeadbeef",
                           values=grid_A.data)
            # the failed lookup must not count as a buildable miss
            assert svc.cache.stats()["misses"] == 1

    def test_wrong_values_length_is_typed(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            r = svc.factor(grid_A)
            with pytest.raises(JobFailed):
                svc.factor(pattern_id=r.pattern_id,
                           values=grid_A.data[:-3])

    def test_job_metrics_carry_service_context(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            r = svc.factor(grid_A)
            extra = r.metrics.extra["service"]
            assert extra["job_id"] == r.job_id
            assert extra["cache"] == "miss"
            assert extra["batch_size"] >= 1
            d = r.metrics.to_dict()
            assert d["extra"]["service"]["job_id"] == r.job_id

    def test_batched_submissions_one_round(self, grid_A, grid_A2):
        """Handles submitted together complete in one pool batch."""
        with FactorService(batch_wait_s=0.05, **SVC_KW) as svc:
            svc.factor(grid_A)  # warm the pattern first
            handles = [
                svc.submit(pattern_id=None, A=M)
                for M in (grid_A, grid_A2, grid_A)
            ]
            results = [h.result(120) for h in handles]
            assert all(r.cache == "hit" for r in results)
            assert max(r.record.batch_size for r in results) >= 2
            assert _bitwise(results[1].L, _cold_L(grid_A2))

    def test_stats_shape(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            svc.factor(grid_A)
            s = svc.stats()
            assert s["queue"]["admitted"] == 1
            assert s["pattern_cache"]["entries"] == 1
            assert s["service"]["jobs"]["completed"] == 1

    def test_closed_service_is_typed(self, grid_A):
        svc = FactorService(**SVC_KW)
        svc.start()
        svc.factor(grid_A)
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(ServiceClosed):
            svc.submit(grid_A)

    def test_eviction_destroys_arena(self, grid_A):
        """LRU eviction releases the pattern's arena after the batch."""
        destroyed = []

        class _Arena:
            """Delegating sentinel: records the destroy, then releases
            the real arena (None on the inline transport)."""

            def __init__(self, real):
                self.real = real
                self.name = "fake" if real is None else real.name

            def destroy(self):
                destroyed.append("destroyed")
                if self.real is not None:
                    self.real.destroy()

        with FactorService(cache_capacity=2, **SVC_KW) as svc:
            pats = [grid2d_matrix(k).A.tocsc() for k in (6, 7, 8)]
            svc.factor(pats[0])
            first = next(iter(svc.cache._entries.values()))
            first.arena = _Arena(first.arena)
            svc.factor(pats[1])
            svc.factor(pats[2])  # capacity 2: evicts the first pattern
            assert svc.cache.stats()["evictions"] == 1
            assert destroyed == ["destroyed"]
            # the evicted pattern rebuilds transparently
            r = svc.factor(pats[0])
            assert r.cache == "miss"
            assert _bitwise(r.L, _cold_L(pats[0]))


class TestPatternCacheUnit:
    def _entry(self, pid, arena=None):
        return PatternEntry(
            pattern_id=pid, symbolic=None, structure=None, tg=None,
            owners=None, mapping_name="t", perm=None, arena=arena,
        )

    def test_digest_covers_pattern_and_knobs(self, grid_A, grid_A2):
        knobs = ("nd", 8, 2, "DW/CY", False, "inline")
        # same pattern, different values -> same digest
        assert pattern_digest(grid_A, knobs) == pattern_digest(
            grid_A2, knobs
        )
        other = grid2d_matrix(11).A.tocsc()
        assert pattern_digest(grid_A, knobs) != pattern_digest(
            other, knobs
        )
        assert pattern_digest(grid_A, knobs) != pattern_digest(
            grid_A, ("nd", 16, 2, "DW/CY", False, "inline")
        )

    def test_lru_order_and_counters(self):
        cache = PatternCache(2)
        cache.put(self._entry("a"))
        cache.put(self._entry("b"))
        assert cache.lookup("a") is not None  # refreshes a
        evicted = cache.put(self._entry("c"))  # b is now LRU
        assert [e.pattern_id for e in evicted] == ["b"]
        assert cache.lookup("b") is None
        assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 1)

    def test_protect_survives_insertion(self):
        cache = PatternCache(2)
        cache.put(self._entry("a"))
        cache.put(self._entry("b"))
        evicted = cache.put(self._entry("c"), protect={"a", "b"})
        # nothing evictable: every resident pattern is protected
        assert evicted == []
        assert len(cache) == 3
        assert cache.peek("a") is not None and cache.peek("b") is not None


class TestAdmission:
    """The admission controller never hangs: every full-queue outcome is
    a typed exception, and a seeded load trace drains deterministically."""

    def test_reject_policy_is_immediate_and_typed(self):
        q = JobQueue(capacity=2, policy="reject")
        q.put("a")
        q.put("b")
        with pytest.raises(AdmissionRejected) as exc:
            q.put("c")
        assert exc.value.reason == "queue_full"
        assert q.stats.rejected == 1
        assert len(q) == 2

    def test_block_policy_times_out_typed(self):
        q = JobQueue(capacity=1, policy="block")
        q.put("a")
        with pytest.raises(AdmissionRejected) as exc:
            q.put("b", timeout=0.05)
        assert exc.value.reason == "backpressure_timeout"
        assert q.stats.timed_out == 1

    def test_block_policy_backpressure_releases(self):
        q = JobQueue(capacity=1, policy="block")
        q.put("a")
        admitted = threading.Event()

        def submitter():
            q.put("b", timeout=10.0)
            admitted.set()

        t = threading.Thread(target=submitter, daemon=True)
        t.start()
        assert not admitted.wait(0.05)  # genuinely blocked
        assert q.get_batch(1) == ["a"]  # free a slot
        assert admitted.wait(5.0)
        assert q.get_batch(1) == ["b"]
        t.join()

    def test_shed_policy_drops_oldest(self):
        q = JobQueue(capacity=2, policy="shed")
        q.put("a")
        q.put("b")
        assert q.put("c") == "a"
        assert q.stats.shed == 1
        assert q.get_batch(4) == ["b", "c"]

    def test_closed_queue_is_typed(self):
        q = JobQueue(capacity=2, policy="block")
        q.close()
        with pytest.raises(ServiceClosed):
            q.put("a")

    def test_get_batch_window(self):
        q = JobQueue(capacity=8, policy="block")
        for item in "abc":
            q.put(item)
        assert q.get_batch(2, batch_wait_s=0) == ["a", "b"]
        assert q.get_batch(2, batch_wait_s=0) == ["c"]

    @pytest.mark.parametrize("policy", ["reject", "block", "shed"])
    def test_seeded_trace_drains_deterministically(self, policy):
        """Same seeded arrival trace, same capacity, same policy →
        identical admit/reject/shed decisions and final counters, with a
        consumer draining concurrently in fixed-size gulps."""

        def run_once():
            rng = np.random.default_rng(7)
            q = JobQueue(capacity=4, policy=policy)
            decisions = []
            # deterministic interleave: after every 3 arrivals the
            # consumer takes one batch of up to 2
            for i in range(30):
                try:
                    shed = q.put(i, timeout=0)
                    decisions.append(("admit", i, shed))
                except AdmissionRejected as exc:
                    decisions.append(("reject", i, exc.reason))
                if rng.random() < 0.4 and len(q):
                    for item in q.get_batch(2, batch_wait_s=0):
                        decisions.append(("served", item, None))
            decisions.append(("drained", tuple(q.drain()), None))
            return decisions, q.stats.to_dict()

        first = run_once()
        second = run_once()
        assert first == second
        stats = first[1]
        assert stats["submitted"] == 30
        assert stats["admitted"] == stats["submitted"] - stats["rejected"]

    def test_service_backpressure_drains(self, grid_A):
        """Tiny queue + block policy: every submission eventually admits
        and completes — backpressure, not loss."""
        with FactorService(queue_capacity=2, admission="block",
                           max_batch=2, **SVC_KW) as svc:
            svc.factor(grid_A)  # warm the pattern
            handles = []
            for i in range(6):
                A = grid_A.copy()
                A.setdiag(A.diagonal() + 0.1 * (i + 1))
                handles.append(svc.submit(A, timeout=60))
            results = [h.result(120) for h in handles]
            assert all(r.cache == "hit" for r in results)
            assert svc.queue.stats.rejected == 0
            assert svc.queue.stats.admitted == 7

    def test_service_reject_policy_is_typed_not_a_hang(self, grid_A):
        """A full service queue under ``reject`` raises immediately."""
        svc = FactorService(queue_capacity=2, admission="reject",
                            **SVC_KW)
        # fill the queue before the dispatcher exists: the typed
        # rejection must come from admission, not from a timeout
        rejected = 0
        for i in range(4):
            A = grid_A.copy()
            A.setdiag(A.diagonal() + 0.5 * (i + 1))
            try:
                svc.queue.put(object())  # placeholder load
            except AdmissionRejected as exc:
                rejected += 1
                assert exc.reason == "queue_full"
        assert rejected == 2
        svc.queue.drain()
        svc.close()


class TestClientServer:
    def test_tcp_round_trip(self, grid_A, grid_A2):
        """Cold + warm values-only over the socket, typed remote errors,
        stats, clean shutdown."""
        with FactorService(**SVC_KW) as svc:
            server = ServiceServer(svc, port=0)
            server.start_background()
            try:
                with ServiceClient(address=server.address) as client:
                    assert client.ping()
                    r1 = client.factor(grid_A)
                    assert r1.cache == "miss"
                    r2 = client.factor(
                        pattern_id=r1.pattern_id, values=grid_A2.data
                    )
                    assert r2.cache == "hit"
                    assert _bitwise(r2.L, _cold_L(grid_A2))
                    x = r2.solve(np.ones(grid_A2.shape[0]))
                    assert np.linalg.norm(grid_A2 @ x - 1.0) < 1e-8
                    with pytest.raises(UnknownPatternError):
                        client.factor(pattern_id="ffffffffffffffff",
                                      values=grid_A.data)
                    stats = client.stats()
                    assert stats["pattern_cache"]["hits"] >= 1
                    client.shutdown_server()
                    assert server.shutdown_requested
            finally:
                server.close()

    def test_in_process_client_same_api(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            with ServiceClient(service=svc) as client:
                r = client.factor(grid_A)
                assert r.cache == "miss"
                assert _bitwise(r.L, _cold_L(grid_A))

    def test_client_needs_exactly_one_target(self):
        with pytest.raises(ValueError):
            ServiceClient()
        with pytest.raises(ValueError):
            ServiceClient(service=object(), address=("h", 1))


class TestSolverServiceBackend:
    def test_facade_routes_through_service(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            chol = SparseCholesky(
                grid_A, backend="service", service=svc
            ).factor()
            assert chol.service_pattern_id
            assert _bitwise(chol.L, _cold_L(grid_A, block_size=8))
            x = chol.solve(np.ones(grid_A.shape[0]))
            assert np.linalg.norm(grid_A @ x - 1.0) < 1e-8
            # second facade on the same pattern hits the cache
            chol2 = SparseCholesky(
                grid_A, backend="service", service=svc
            ).factor()
            assert chol2.service_record.cache == "hit"

    def test_service_backend_requires_service(self, grid_A):
        with pytest.raises(ValueError):
            SparseCholesky(grid_A, backend="service")

    def test_plan_cache_counters_in_metrics(self, grid_A):
        """Satellite: plan_cache_hits/misses are observable in
        ``runtime_metrics.extra["plan_cache"]`` after an mp run."""
        chol = SparseCholesky(
            grid_A, ordering="nd", block_size=8, backend="mp", nprocs=2
        )
        chol.factor()
        pc = chol.runtime_metrics.extra["plan_cache"]
        assert pc == {"hits": 0, "misses": 1}
        chol.factor()
        pc = chol.runtime_metrics.extra["plan_cache"]
        assert pc == {"hits": 1, "misses": 1}
        assert pc == chol.runtime_metrics.to_dict()["extra"]["plan_cache"]


class TestLoadgen:
    def test_seeded_run_hits_cache_and_validates(self):
        """The acceptance sweep in miniature: ≥50% repeat traffic over a
        validating service shows warm jobs (cache hits) and zero
        failures; the schedule itself is deterministic in the seed."""
        from repro.service.loadgen import build_schedule

        cfg = LoadgenConfig(
            jobs=8, patterns=2, repeat_ratio=0.6, mode="closed",
            concurrency=1, seed=3, n=6, timeout=120.0,
        )
        schedule = build_schedule(cfg)
        assert [s.pattern for s in schedule] == [
            s.pattern for s in build_schedule(cfg)
        ]
        distinct = len({s.pattern for s in schedule})
        with FactorService(validate=True, **SVC_KW) as svc:
            report = run_loadgen(lambda: ServiceClient(service=svc), cfg)
        d = report.to_dict()
        assert d["jobs"]["failed"] == 0
        assert d["jobs"]["ok"] == 8
        assert d["cache"]["hit"] > 0
        assert d["cache"]["hit"] + d["cache"]["miss"] == 8
        assert d["cache"]["miss"] == distinct  # one cold job per pattern
        # warm jobs skip symbolic analysis + planning + spawn
        assert d["setup_s"]["warm"]["max"] <= d["setup_s"]["cold"]["p50"]
