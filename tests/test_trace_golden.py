"""Golden end-to-end trace test.

A seeded GRID problem (12x12 grid, nd ordering, B=8) factored on P=2
workers with the DW/CY mapping produces a deterministic *trace skeleton*:
which tasks ran on which rank, which blocks each rank sent and received,
and which event categories appeared. Timestamps and the interleaving of
events *across* workers are timing-dependent and are deliberately NOT
part of the skeleton; per-rank dependency ordering is checked
programmatically instead (BMODs into a block before its BFAC/BDIV, a
diagonal's BFAC before any same-rank BDIV under it).

The skeleton is checked in at ``tests/golden/trace_skeleton_grid12_p2.json``.
Regenerate after an intentional protocol change with::

    PYTHONPATH=src python tests/test_trace_golden.py --regen
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.runtime import mp_block_cholesky, plan_owners

GOLDEN = Path(__file__).parent / "golden" / "trace_skeleton_grid12_p2.json"

_COORD = re.compile(r"^(BFAC|BDIV|BMOD|recv|send)\((\d+),(\d+)\)$")


def _run_traced(pipeline):
    _, sf, _, bs, wm, tg = pipeline
    res = mp_block_cholesky(
        bs, sf.A, tg, nprocs=2, mapping="DW/CY", trace=True
    )
    return res, tg


def _skeleton(trace) -> dict:
    """The deterministic shape of a trace: per-rank sorted task/send/recv
    names, the category inventory, and the run identity — no timestamps,
    no cross-worker interleaving."""
    per_rank: dict[str, dict[str, list[str]]] = {}
    categories = set()
    for e in trace.events:
        categories.add(e.cat)
        if e.cat not in ("task", "send", "recv"):
            continue
        lane = per_rank.setdefault(str(e.rank), {
            "task": [], "send": [], "recv": [],
        })
        lane[e.cat].append(e.name)
    for lane in per_rank.values():
        for names in lane.values():
            names.sort()
    return {
        "problem": "GRID12 nd B=8",
        "nprocs": trace.meta.get("nprocs"),
        "mapping": trace.meta.get("mapping"),
        "grid": trace.meta.get("grid"),
        # Only the deterministic categories: idle/comm presence depends
        # on scheduling timing and must not fail the golden comparison.
        "categories": sorted(categories & {"task", "send", "recv"}),
        "per_rank": per_rank,
    }


@pytest.fixture(scope="module")
def golden_run(grid12_pipeline):
    return _run_traced(grid12_pipeline)


def test_skeleton_matches_golden(golden_run):
    res, tg = golden_run
    assert GOLDEN.exists(), (
        f"golden skeleton missing; regenerate with "
        f"PYTHONPATH=src python {__file__} --regen"
    )
    want = json.loads(GOLDEN.read_text())
    got = _skeleton(res.trace)
    assert got == want


def test_chrome_export_matches_golden_tasks(golden_run):
    """The Chrome export carries the same deterministic task inventory,
    keyed by (pid=attempt, tid=rank)."""
    res, tg = golden_run
    want = json.loads(GOLDEN.read_text())
    doc = res.trace.to_chrome()
    per_tid: dict[str, list[str]] = {}
    thread_names = set()
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "M" and ev["name"] == "thread_name":
            thread_names.add(ev["args"]["name"])
        if ev.get("ph") == "X" and ev.get("cat") == "task":
            assert ev["pid"] == 0
            per_tid.setdefault(str(ev["tid"]), []).append(ev["name"])
    for names in per_tid.values():
        names.sort()
    assert thread_names == {f"worker {r}" for r in want["per_rank"]}
    assert per_tid == {
        r: lane["task"] for r, lane in want["per_rank"].items()
    }


def test_per_rank_dependency_order(golden_run):
    """Within each worker's recorded order: every BMOD into a block comes
    before the block's own BFAC/BDIV, and a diagonal's BFAC comes before
    any BDIV under that diagonal on the same rank."""
    res, tg = golden_run
    for rank, events in res.trace.per_worker(0).items():
        tasks = [e.name for e in events if e.cat == "task"]
        position = {name: i for i, name in enumerate(tasks)}
        for i, name in enumerate(tasks):
            kind, I, J = _COORD.match(name).group(1, 2, 3)
            if kind == "BMOD":
                target = (
                    f"BFAC({I},{J})" if I == J else f"BDIV({I},{J})"
                )
                if target in position:
                    assert i < position[target], (
                        f"w{rank}: {name} after {target}"
                    )
            elif kind == "BDIV":
                fac = f"BFAC({J},{J})"
                if fac in position:
                    assert position[fac] < i, (
                        f"w{rank}: {fac} after {name}"
                    )


def test_sends_and_recvs_are_disjoint_per_block(golden_run):
    """A rank never receives a block it sent (it owns what it sends), and
    every received block name is sent by exactly one other rank."""
    res, tg = golden_run
    sent: dict[int, set[str]] = {}
    recvd: dict[int, set[str]] = {}
    for e in res.trace.events:
        coords = _COORD.match(e.name)
        if e.cat == "send":
            sent.setdefault(e.rank, set()).add(coords.group(2, 3))
        elif e.cat == "recv" and coords:
            recvd.setdefault(e.rank, set()).add(coords.group(2, 3))
    for rank, blocks in recvd.items():
        assert not (blocks & sent.get(rank, set()))
        for b in blocks:
            senders = [r for r, s in sent.items() if b in s]
            assert len(senders) == 1


def _regen() -> None:
    from repro.blocks import BlockPartition, BlockStructure, WorkModel
    from repro.fanout import TaskGraph
    from repro.matrices import grid2d_matrix
    from repro.ordering import order_problem
    from repro.symbolic import symbolic_factor

    problem = grid2d_matrix(12)
    sf = symbolic_factor(problem.A, order_problem(problem, "nd"))
    part = BlockPartition(sf, 8)
    bs = BlockStructure(part)
    wm = WorkModel(bs)
    tg = TaskGraph(wm)
    res, _ = _run_traced((problem, sf, part, bs, wm, tg))
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(json.dumps(_skeleton(res.trace), indent=2) + "\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
