import numpy as np
import pytest

from repro.mapping import ProcessorGrid, heuristic_map, square_grid
from repro.mapping.heuristics import (
    HEURISTICS,
    _consider_order,
    greedy_partition,
    heuristic_vector,
)


class TestGreedyPartition:
    def test_balances_equal_items(self):
        work = np.ones(12)
        a = greedy_partition(work, np.arange(12), 4)
        loads = np.bincount(a, weights=work, minlength=4)
        assert (loads == 3).all()

    def test_lpt_classic(self):
        """Decreasing-order greedy on {7,6,5,4,3,2,1} over 2 bins: max 14."""
        work = np.array([7, 6, 5, 4, 3, 2, 1], dtype=float)
        order = np.argsort(-work)
        a = greedy_partition(work, order, 2)
        loads = np.bincount(a, weights=work, minlength=2)
        assert loads.max() == 14

    def test_deterministic_tie_break(self):
        work = np.ones(6)
        a = greedy_partition(work, np.arange(6), 3)
        b = greedy_partition(work, np.arange(6), 3)
        assert np.array_equal(a, b)


class TestConsiderOrder:
    def test_dw(self):
        w = np.array([3.0, 9.0, 1.0])
        assert _consider_order("DW", w, None).tolist() == [1, 0, 2]

    def test_in_dn(self):
        w = np.zeros(4)
        assert _consider_order("IN", w, None).tolist() == [0, 1, 2, 3]
        assert _consider_order("DN", w, None).tolist() == [3, 2, 1, 0]

    def test_id_requires_depth(self):
        with pytest.raises(ValueError):
            _consider_order("ID", np.ones(3), None)

    def test_id_sorts_by_depth(self):
        depth = np.array([2, 0, 1])
        assert _consider_order("ID", np.ones(3), depth).tolist() == [1, 2, 0]

    def test_unknown(self):
        with pytest.raises(KeyError):
            _consider_order("XX", np.ones(2), None)


class TestHeuristicVector:
    def test_cy_is_cyclic(self):
        v = heuristic_vector("CY", np.ones(10), 4)
        assert v.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_range(self):
        for h in HEURISTICS:
            v = heuristic_vector(h, np.arange(20, dtype=float), 5,
                                 depth=np.arange(20))
            assert v.min() >= 0 and v.max() < 5


class TestPartitionLowerBound:
    def test_trivial_bounds(self):
        from repro.mapping.heuristics import partition_lower_bound

        assert partition_lower_bound(np.array([3.0, 3.0]), 2) == 3.0
        assert partition_lower_bound(np.array([10.0, 1.0]), 2) == 10.0
        assert partition_lower_bound(np.empty(0), 4) == 0.0

    def test_greedy_respects_bound(self, grid12_pipeline):
        from repro.mapping.heuristics import (
            greedy_partition,
            partition_lower_bound,
        )

        wm = grid12_pipeline[4]
        w = wm.workI.astype(float)
        bound = partition_lower_bound(w, 3)
        assign = greedy_partition(w, np.argsort(-w), 3)
        loads = np.bincount(assign, weights=w, minlength=3)
        assert loads.max() >= bound - 1e-9
        # Greedy guarantee: max load <= mean + max item <= 2 * bound.
        assert loads.max() <= 2 * bound + 1e-9


class TestHeuristicMap:
    def test_improves_row_balance(self, grid12_pipeline):
        from repro.mapping import balance_metrics, cyclic_map

        wm = grid12_pipeline[4]
        g = square_grid(9)
        cyc = balance_metrics(wm, cyclic_map(wm.npanels, g))
        for h in ("DW", "DN", "ID"):
            bal = balance_metrics(wm, heuristic_map(wm, g, h, "CY"))
            assert bal.row >= cyc.row

    def test_breaks_symmetry(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        m = heuristic_map(wm, square_grid(9), "DW", "DW")
        # DW applied to workI and workJ independently rarely coincides
        assert not m.is_symmetric_cartesian or np.array_equal(m.mapI, m.mapJ)

    def test_label(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        m = heuristic_map(wm, square_grid(4), "ID", "CY")
        assert m.name == "ID/CY"
