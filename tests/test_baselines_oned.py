import numpy as np
import pytest

from repro.analysis import communication_volume, critical_path
from repro.baselines import (
    oned_block_owners,
    oned_column_critical_path,
    oned_column_flops,
)
from repro.blocks import BlockPartition, BlockStructure, WorkModel
from repro.fanout import TaskGraph, block_owners, simulate_fanout
from repro.mapping import heuristic_map, square_grid
from repro.matrices import grid2d_matrix
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor


class TestOnedOwners:
    def test_column_locality(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        owners = oned_block_owners(tg, 4)
        assert np.array_equal(owners, tg.block_J % 4)

    def test_simulation_completes_and_correct(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        owners = oned_block_owners(tg, 4)
        r = simulate_fanout(tg, owners, 4, record_schedule=True)
        from repro.numeric import BlockCholesky

        L = BlockCholesky(bs, sf.A).run_schedule(tg, r.schedule).to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-9

    def test_rejects_bad_p(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        with pytest.raises(ValueError):
            oned_block_owners(tg, 0)

    def test_column_method_more_volume_than_2d(self):
        """The paper's core §1 claim at fixed P (column granularity)."""
        from repro.baselines import oned_column_comm_volume

        p = grid2d_matrix(24)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        wm = WorkModel(BlockStructure(BlockPartition(sf, 12)))
        tg = TaskGraph(wm)
        P = 16
        v1 = oned_column_comm_volume(sf, P)
        owners2 = block_owners(
            tg, heuristic_map(wm, square_grid(P), "ID", "CY")
        )
        v2 = communication_volume(tg, owners2).bytes
        assert v1 > v2

    def test_volume_ratio_grows_with_p(self):
        """1-D volume grows ~linearly in P, 2-D ~sqrt(P): ratio increases."""
        from repro.baselines import oned_column_comm_volume

        p = grid2d_matrix(24)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        wm = WorkModel(BlockStructure(BlockPartition(sf, 12)))
        tg = TaskGraph(wm)
        ratios = []
        for P in (4, 16, 64):
            v1 = oned_column_comm_volume(sf, P)
            owners2 = block_owners(
                tg, heuristic_map(wm, square_grid(P), "ID", "CY")
            )
            v2 = communication_volume(tg, owners2).bytes
            ratios.append(v1 / max(1, v2))
        assert ratios[-1] > ratios[0]

    def test_column_volume_monotone_in_p(self):
        from repro.baselines import oned_column_comm_volume

        p = grid2d_matrix(16)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        vols = [oned_column_comm_volume(sf, P) for P in (2, 8, 32)]
        assert vols[0] <= vols[1] <= vols[2]


class TestOnedCriticalPath:
    def test_flops_model(self):
        cdiv, cmod = oned_column_flops(np.array([5, 3, 1]))
        assert cdiv.tolist() == [5, 3, 1]
        assert cmod.tolist() == [10, 6, 2]

    def test_path_bounded_by_sequential(self, grid12_pipeline):
        _, sf, *_ = grid12_pipeline
        cp = oned_column_critical_path(sf)
        assert 0 < cp.length_seconds <= cp.t_sequential
        assert cp.max_efficiency(10**9) < 1e-3

    def test_longer_than_block_path(self, grid12_pipeline):
        """Column tasks serialize cmods: the 1-D path must exceed the block
        DAG's (which lets updates into a block proceed concurrently)."""
        _, sf, _, _, _, tg = grid12_pipeline
        cp1 = oned_column_critical_path(sf)
        cp2 = critical_path(tg)
        assert cp1.length_seconds > cp2.length_seconds * 0.5

    def test_ratio_grows_with_grid_size(self):
        """O(k^2) vs O(k): the path ratio grows with k."""
        ratios = []
        for k in (10, 20, 30):
            p = grid2d_matrix(k)
            sf = symbolic_factor(p.A, order_problem(p, "nd"))
            tg = TaskGraph(WorkModel(BlockStructure(BlockPartition(sf, 8))))
            r = (
                oned_column_critical_path(sf).length_seconds
                / critical_path(tg).length_seconds
            )
            ratios.append(r)
        assert ratios[-1] > ratios[0]
