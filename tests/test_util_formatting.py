import pytest

from repro.util.formatting import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "2.50" in lines[2]
        assert "3.25" not in lines[2]

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_custom_floatfmt(self):
        out = format_table(["v"], [[1.23456]], floatfmt="{:.4f}")
        assert "1.2346" in out
