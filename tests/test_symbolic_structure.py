import numpy as np

from repro.matrices import grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor


class TestSymbolicFactor:
    def test_postordered_parent(self):
        """After the driver, parent[j] > j for all non-roots."""
        A = random_spd_sparse(70, density=0.06, seed=0)
        sf = symbolic_factor(A, None)
        nonroot = sf.parent != -1
        assert (sf.parent[nonroot] > np.flatnonzero(nonroot)).all()

    def test_cc_matches_dense_after_permutation(self):
        p = grid2d_matrix(8)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        L = np.linalg.cholesky(sf.A.toarray())
        cc_true = (np.abs(L) > 1e-13).sum(axis=0)
        assert np.array_equal(cc_true, sf.cc)

    def test_factor_nnz_and_ops_consistent(self):
        A = random_spd_sparse(50, density=0.1, seed=1)
        sf = symbolic_factor(A, None)
        assert sf.factor_nnz == int(sf.cc.sum())
        assert sf.factor_ops > sf.factor_nnz  # ops dominate nnz

    def test_supernodal_nnz_at_least_simplicial(self):
        A = random_spd_sparse(60, density=0.08, seed=2)
        sf = symbolic_factor(A, None)
        assert sf.supernodal_nnz >= sf.factor_nnz

    def test_ordering_composed_is_permutation(self):
        from repro.util.arrays import is_permutation

        p = grid2d_matrix(6)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        assert is_permutation(sf.ordering.perm)

    def test_permuted_matrix_matches_ordering(self):
        p = grid2d_matrix(5)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        expect = p.A.toarray()[np.ix_(sf.ordering.perm, sf.ordering.perm)]
        assert np.allclose(sf.A.toarray(), expect)

    def test_snode_rows_sorted_unique_below(self):
        A = random_spd_sparse(90, density=0.05, seed=3)
        sf = symbolic_factor(A, None)
        for s in range(sf.nsupernodes):
            rows = sf.snode_rows[s]
            b = int(sf.snode_ptr[s + 1])
            assert (np.diff(rows) > 0).all() if rows.size > 1 else True
            assert (rows >= b).all()

    def test_depth_consistent_with_parent(self):
        A = random_spd_sparse(40, density=0.1, seed=4)
        sf = symbolic_factor(A, None)
        for j, p_ in enumerate(sf.parent):
            if p_ != -1:
                assert sf.depth[j] == sf.depth[p_] + 1
