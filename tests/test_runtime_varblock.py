"""Variable-block (supernodal policy) runtime conformance.

The whole validation story must hold when panel widths are heterogeneous:
factors and solves bitwise-identical to the sequential baseline, measured
messages/bytes equal to the static predictors, and strict trace replay —
across inline/shm transports, static/dynamic schedules, and P in
{1, 2, 4}. The fixture problem is chosen so the supernodal partition is
genuinely non-uniform (distinct panel widths), not a relabeled uniform
one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comm_volume import (
    communication_volume,
    solve_communication_volume,
)
from repro.analysis.trace_replay import validate_trace
from repro.blocks import BlockStructure, WorkModel, make_partition
from repro.fanout import TaskGraph
from repro.matrices import grid2d_matrix
from repro.numeric import BlockCholesky
from repro.numeric.solve import block_solve_permuted
from repro.ordering import order_problem
from repro.runtime.arena import shm_available
from repro.runtime.engine import plan_owners, run_mp_fanout
from repro.runtime.validation import validate_runtime
from repro.service.cache import pattern_digest
from repro.symbolic import symbolic_factor

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)

P_SWEEP = (1, 2, 4)


@pytest.fixture(scope="module")
def varblock_ref():
    """A 20x20 grid under the supernodal policy, plus sequential
    factor/solve references."""
    problem = grid2d_matrix(20)
    sf = symbolic_factor(problem.A, order_problem(problem, "nd"))
    part = make_partition(
        sf, "supernodal", block_size=4, min_width=2, max_width=8
    )
    # The point of the suite: the partition must be genuinely variable.
    assert np.unique(part.widths).size > 1
    bs = BlockStructure(part)
    wm = WorkModel(bs)
    tg = TaskGraph(wm)
    chol = BlockCholesky(bs, sf.A).factor()
    rng = np.random.default_rng(42)
    rhs = rng.standard_normal((sf.A.shape[0], 3))
    x_ref = block_solve_permuted(chol, rhs)
    return {
        "sf": sf, "part": part, "bs": bs, "wm": wm, "tg": tg,
        "L_ref": chol.to_csc(), "rhs": rhs, "x_ref": x_ref,
    }


def _transports():
    return ("inline", "shm") if shm_available() else ("inline",)


class TestConformanceMatrix:
    """Bitwise + predictor + trace invariants per configuration cell."""

    @pytest.mark.parametrize("nprocs", P_SWEEP)
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_cell(self, varblock_ref, nprocs, schedule):
        r = varblock_ref
        owners, name = plan_owners(r["wm"], r["tg"], nprocs, "DW/CY")
        predicted = communication_volume(r["tg"], owners)
        spred = solve_communication_volume(r["tg"], owners, nrhs=3)
        for transport in _transports():
            res = run_mp_fanout(
                r["bs"], r["sf"].A, r["tg"], owners, nprocs,
                mapping=name, trace=True, transport=transport,
                schedule=schedule, rhs=r["rhs"],
            )
            met = res.metrics
            assert res.meta["block_policy"] == "supernodal"
            # Factor and solve land bitwise on the sequential baseline.
            L = res.to_csc()
            assert (L != r["L_ref"]).nnz == 0
            assert np.array_equal(L.data, r["L_ref"].data)
            assert np.array_equal(res.solution, r["x_ref"])
            # Static schedules must reconcile exactly with the
            # predictors; dynamic runs may replace sends with steal
            # traffic, so validate_runtime (which knows the rules)
            # arbitrates instead of a raw equality.
            if schedule == "static":
                assert met.messages_total == predicted.messages
                assert met.bytes_total == predicted.bytes
                assert met.solve_messages_total == spred.messages
                assert met.solve_bytes_total == spred.bytes
            validate_runtime(
                r["bs"], r["sf"].A, r["tg"], result=res, strict=True
            )
            validate_trace(res.trace, met, strict=True)


@needs_shm
class TestTransportBitwiseEquality:
    def test_inline_and_shm_agree(self, varblock_ref):
        r = varblock_ref
        owners, name = plan_owners(r["wm"], r["tg"], 2, "cyclic")
        data = []
        for transport in ("inline", "shm"):
            res = run_mp_fanout(
                r["bs"], r["sf"].A, r["tg"], owners, 2, mapping=name,
                transport=transport, rhs=r["rhs"],
            )
            data.append((res.to_csc().data, res.solution))
        assert np.array_equal(data[0][0], data[1][0])
        assert np.array_equal(data[0][1], data[1][1])


class TestServiceDigestSeparation:
    """Uniform and supernodal plans for one csc pattern never collide in
    the pattern cache (the same treatment ``schedule`` got in PR 8)."""

    def _knobs(self, **kw):
        from repro.service import FactorService

        svc = FactorService(nprocs=1, **kw)
        try:
            return svc._knobs()
        finally:
            svc.close()

    def test_digests_differ_across_policies(self):
        A = grid2d_matrix(8).A.tocsc()
        k_uni = self._knobs(block_policy="uniform")
        k_sup = self._knobs(block_policy="supernodal")
        assert k_uni != k_sup
        assert pattern_digest(A, k_uni) != pattern_digest(A, k_sup)

    def test_digests_differ_across_clamps(self):
        A = grid2d_matrix(8).A.tocsc()
        a = self._knobs(block_policy="supernodal", min_width=8)
        b = self._knobs(block_policy="supernodal", min_width=16)
        assert pattern_digest(A, a) != pattern_digest(A, b)

    def test_entry_records_policy(self):
        from repro.service import FactorService

        svc = FactorService(nprocs=1, block_policy="supernodal")
        try:
            A = grid2d_matrix(8).A.tocsc()
            entry = svc._build_entry("pid-test", A)
            assert entry.block_policy == "supernodal"
            assert (
                entry.structure.partition.policy_name == "supernodal"
            )
        finally:
            svc.close()

    def test_invalid_policy_rejected(self):
        from repro.service import FactorService

        with pytest.raises(ValueError, match="block_policy"):
            FactorService(nprocs=1, block_policy="variable")
