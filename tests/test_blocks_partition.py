import numpy as np

from repro.blocks import BlockPartition
from repro.matrices import dense_matrix, grid2d_matrix
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor
import pytest


class TestBlockPartition:
    def test_covers_all_columns(self, grid12_pipeline):
        _, sf, part, *_ = grid12_pipeline
        assert part.panel_ptr[0] == 0
        assert part.panel_ptr[-1] == sf.n
        assert (np.diff(part.panel_ptr) > 0).all()

    def test_respects_block_size(self, grid12_pipeline):
        _, _, part, *_ = grid12_pipeline
        assert part.widths.max() <= part.block_size

    def test_panels_within_supernodes(self, grid12_pipeline):
        """Column subsets are always subsets of supernodes (paper §3.2)."""
        _, sf, part, *_ = grid12_pipeline
        for k in range(part.npanels):
            s = int(part.panel_snode[k])
            assert sf.snode_ptr[s] <= part.panel_ptr[k]
            assert part.panel_ptr[k + 1] <= sf.snode_ptr[s + 1]

    def test_even_split_of_wide_supernode(self):
        p = dense_matrix(100)  # one supernode of width 100
        sf = symbolic_factor(p.A, None)
        part = BlockPartition(sf, 48)
        # 100 -> 3 panels of widths as close to even as possible
        assert part.npanels == 3
        assert sorted(part.widths.tolist()) == [33, 33, 34]

    def test_panel_of_col_inverse(self, grid12_pipeline):
        _, sf, part, *_ = grid12_pipeline
        for k in range(part.npanels):
            cols = np.arange(part.panel_ptr[k], part.panel_ptr[k + 1])
            assert (part.panel_of_col[cols] == k).all()

    def test_depths_nonincreasing_along_parents(self, grid12_pipeline):
        """Deeper panels have larger ID-heuristic keys than their ancestors."""
        _, sf, part, *_ = grid12_pipeline
        depths = part.panel_depths()
        assert depths.min() == 0  # a root panel exists

    def test_rejects_bad_block_size(self, grid12_pipeline):
        _, sf, *_ = grid12_pipeline
        with pytest.raises(ValueError):
            BlockPartition(sf, 0)

    def test_block_size_one(self):
        p = grid2d_matrix(5)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        part = BlockPartition(sf, 1)
        assert part.npanels == p.n
