import math

import pytest

from repro.mapping import ProcessorGrid, best_grid, square_grid


class TestProcessorGrid:
    def test_rank_coords_roundtrip(self):
        g = ProcessorGrid(3, 5)
        for r in range(3):
            for c in range(5):
                assert g.coords(g.rank(r, c)) == (r, c)

    def test_P(self):
        assert ProcessorGrid(4, 7).P == 28

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ProcessorGrid(0, 3)

    def test_is_square(self):
        assert ProcessorGrid(4, 4).is_square
        assert not ProcessorGrid(4, 5).is_square


class TestSquareGrid:
    def test_64(self):
        g = square_grid(64)
        assert (g.Pr, g.Pc) == (8, 8)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            square_grid(63)


class TestBestGrid:
    def test_63_is_7x9(self):
        g = best_grid(63)
        assert {g.Pr, g.Pc} == {7, 9}
        assert math.gcd(g.Pr, g.Pc) == 1  # relatively prime (paper §4.2)

    def test_99_is_9x11(self):
        g = best_grid(99)
        assert {g.Pr, g.Pc} == {9, 11}

    def test_perfect_square(self):
        g = best_grid(100)
        assert (g.Pr, g.Pc) == (10, 10)

    def test_prime(self):
        g = best_grid(13)
        assert (g.Pr, g.Pc) == (1, 13)
