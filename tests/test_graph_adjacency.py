import numpy as np
from scipy import sparse

from repro.graph import AdjacencyGraph
from repro.matrices import grid2d_matrix


def path_graph(n):
    rows = np.arange(n - 1)
    cols = rows + 1
    A = sparse.coo_matrix((np.ones(n - 1), (rows, cols)), shape=(n, n))
    return AdjacencyGraph.from_sparse(A + A.T + sparse.eye(n))


class TestFromSparse:
    def test_diagonal_removed(self):
        g = path_graph(5)
        for v in range(5):
            assert v not in g.neighbors(v)

    def test_symmetrized_from_triangle(self):
        # lower triangle only
        A = sparse.coo_matrix(([1.0], ([3], [1])), shape=(4, 4))
        g = AdjacencyGraph.from_sparse(A)
        assert 1 in g.neighbors(3)
        assert 3 in g.neighbors(1)

    def test_degrees(self):
        g = path_graph(4)
        assert g.degrees.tolist() == [1, 2, 2, 1]

    def test_num_edges(self):
        g = path_graph(6)
        assert g.num_edges == 5

    def test_neighbors_sorted(self):
        p = grid2d_matrix(5)
        g = AdjacencyGraph.from_sparse(p.A)
        for v in range(g.n):
            nb = g.neighbors(v)
            assert np.all(np.diff(nb) > 0)


class TestSubgraph:
    def test_induced_edges(self):
        g = path_graph(6)
        sub, verts = g.subgraph(np.array([0, 1, 2, 4]))
        assert sub.n == 4
        # local 0-1-2 path, 4 isolated
        assert sub.degrees.tolist() == [1, 2, 1, 0]

    def test_vertex_order_preserved(self):
        g = path_graph(5)
        sub, verts = g.subgraph(np.array([3, 1, 2]))
        assert verts.tolist() == [3, 1, 2]
        # local ids: 0=3, 1=1, 2=2: edges 3-2 and 1-2
        assert set(sub.neighbors(2).tolist()) == {0, 1}
