import numpy as np

from repro.matrices import dense_matrix, grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.ordering import order_problem
from repro.symbolic import (
    column_counts,
    detect_supernodes,
    elimination_tree,
    etree_postorder,
    supernode_parents,
    symbolic_factor,
)
from repro.symbolic.supernodes import snode_of_column


def prep(A):
    parent = elimination_tree(A)
    post = etree_postorder(parent)
    assert np.array_equal(post, np.arange(A.shape[0])) or True
    cc = column_counts(A, parent)
    return parent, cc


class TestDetectSupernodes:
    def test_dense_single_supernode(self):
        p = dense_matrix(16)
        parent, cc = prep(p.A)
        ptr = detect_supernodes(parent, cc)
        assert ptr.tolist() == [0, 16]

    def test_diagonal_all_singletons(self):
        from scipy import sparse

        A = sparse.eye(6).tocsc()
        parent, cc = prep(A)
        ptr = detect_supernodes(parent, cc)
        assert len(ptr) == 7

    def test_partition_is_contiguous_cover(self):
        p = grid2d_matrix(9)
        sf = symbolic_factor(p.A, order_problem(p, "nd"), amalgamate=False)
        ptr = sf.snode_ptr
        assert ptr[0] == 0 and ptr[-1] == p.n
        assert (np.diff(ptr) > 0).all()

    def test_supernode_columns_share_structure(self):
        """Within a (non-amalgamated) supernode, struct(j+1) == struct(j)-{j}."""
        p = grid2d_matrix(7)
        sf = symbolic_factor(p.A, order_problem(p, "nd"), amalgamate=False)
        L = np.linalg.cholesky(sf.A.toarray())
        nz = [set(np.flatnonzero(np.abs(L[:, j]) > 1e-13).tolist()) for j in range(p.n)]
        ptr = sf.snode_ptr
        for s in range(sf.nsupernodes):
            for j in range(int(ptr[s]), int(ptr[s + 1]) - 1):
                assert nz[j + 1] == nz[j] - {j}


class TestSnodeOfColumn:
    def test_mapping(self):
        ptr = np.array([0, 3, 5, 9])
        col2s = snode_of_column(ptr, 9)
        assert col2s.tolist() == [0, 0, 0, 1, 1, 2, 2, 2, 2]


class TestSupernodeParents:
    def test_parents_above(self):
        A = random_spd_sparse(60, density=0.07, seed=4)
        sf = symbolic_factor(A, None, amalgamate=False)
        sparent = supernode_parents(sf.snode_ptr, sf.parent)
        for s, p in enumerate(sparent):
            if p != -1:
                assert p > s

    def test_root_supernode(self):
        p = dense_matrix(10)
        sf = symbolic_factor(p.A, None, amalgamate=False)
        sparent = supernode_parents(sf.snode_ptr, sf.parent)
        assert sparent[-1] == -1
