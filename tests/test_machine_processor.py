from repro.machine import SimProcessor


class TestSimProcessorFifo:
    def test_fifo_order(self):
        p = SimProcessor(0)
        for t in ("a", "b", "c"):
            p.push(t)
        assert [p.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_has_work(self):
        p = SimProcessor(0)
        assert not p.has_work()
        p.push("x")
        assert p.has_work()
        p.pop()
        assert not p.has_work()


class TestSimProcessorPriority:
    def test_priority_order(self):
        p = SimProcessor(0, priority_mode=True)
        p.push("low", priority=10.0)
        p.push("high", priority=1.0)
        p.push("mid", priority=5.0)
        assert [p.pop() for _ in range(3)] == ["high", "mid", "low"]

    def test_stable_at_equal_priority(self):
        p = SimProcessor(0, priority_mode=True)
        p.push("first", priority=1.0)
        p.push("second", priority=1.0)
        assert p.pop() == "first"
