import pytest

from repro.machine import DiscreteEventSimulator


class TestDiscreteEventSimulator:
    def test_time_order(self):
        sim = DiscreteEventSimulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append("b"))
        sim.schedule_at(1.0, lambda: seen.append("a"))
        sim.schedule_at(3.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_at_equal_times(self):
        sim = DiscreteEventSimulator()
        seen = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_cascading_events(self):
        sim = DiscreteEventSimulator()
        seen = []

        def fire(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule_after(1.0, lambda: fire(depth + 1))

        sim.schedule_at(0.0, lambda: fire(0))
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_rejects_past(self):
        sim = DiscreteEventSimulator()
        sim.schedule_at(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_run_until(self):
        sim = DiscreteEventSimulator()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.pending == 1

    def test_events_processed_counter(self):
        sim = DiscreteEventSimulator()
        for t in range(4):
            sim.schedule_at(float(t), lambda: None)
        sim.run()
        assert sim.events_processed == 4
