import numpy as np
import pytest

from repro.fanout import TaskGraph, assign_domains, block_owners, run_fanout, simulate_fanout
from repro.machine.params import PARAGON, ZERO_COMM, MachineParams
from repro.mapping import ProcessorGrid, cyclic_map, heuristic_map, square_grid
from repro.mapping.balance import overall_balance_from_owners


class TestSimulateFanout:
    def test_single_processor_equals_sequential(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        r = run_fanout(tg, cyclic_map(tg.npanels, ProcessorGrid(1, 1)))
        assert r.t_parallel == pytest.approx(r.t_sequential)
        assert r.efficiency == pytest.approx(1.0)
        assert r.comm_messages == 0

    def test_all_tasks_complete(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        owners = block_owners(tg, cyclic_map(tg.npanels, square_grid(4)))
        r2 = simulate_fanout(tg, owners, 16, record_schedule=True)
        assert len(r2.schedule) == tg.ntasks
        assert len(set(r2.schedule)) == tg.ntasks

    def test_schedule_respects_dependencies(self, grid12_pipeline):
        """Every BMOD must complete after both its source blocks' BDIVs."""
        tg = grid12_pipeline[5]
        owners = block_owners(tg, cyclic_map(tg.npanels, square_grid(4)))
        r = simulate_fanout(tg, owners, 16, record_schedule=True)
        pos = {tid: i for i, tid in enumerate(r.schedule)}
        from repro.fanout.tasks import BDIV, BFAC, BMOD

        completion_task = {}
        for tid in range(tg.ntasks):
            kind = tg.task_kind[tid]
            if kind in (BFAC, BDIV):
                completion_task[int(tg.task_block[tid])] = tid
        for tid in range(tg.ntasks):
            if tg.task_kind[tid] == BMOD:
                for src in (tg.task_src1[tid], tg.task_src2[tid]):
                    if src >= 0:
                        assert pos[completion_task[int(src)]] < pos[tid]

    def test_efficiency_bounded_by_balance(self, grid12_pipeline):
        wm, tg = grid12_pipeline[4], grid12_pipeline[5]
        for P, rh in ((4, "CY"), (9, "ID"), (16, "DW")):
            g = square_grid(P)
            cmap = (
                cyclic_map(tg.npanels, g)
                if rh == "CY"
                else heuristic_map(wm, g, rh, "CY")
            )
            owners = block_owners(tg, cmap)
            bound = overall_balance_from_owners(wm, owners, P)
            r = simulate_fanout(tg, owners, P)
            assert r.efficiency <= bound + 1e-9

    def test_deterministic(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(9))
        a = run_fanout(tg, cmap)
        b = run_fanout(tg, cmap)
        assert a.t_parallel == b.t_parallel
        assert a.comm_bytes == b.comm_bytes

    def test_zero_comm_faster(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(9))
        slow = run_fanout(tg, cmap, machine=PARAGON)
        fast = run_fanout(tg, cmap, machine=ZERO_COMM)
        assert fast.t_parallel <= slow.t_parallel

    def test_domains_reduce_messages(self, random_spd_pipeline):
        wm, tg = random_spd_pipeline[4], random_spd_pipeline[5]
        g = square_grid(4)
        cmap = cyclic_map(tg.npanels, g)
        without = run_fanout(tg, cmap)
        with_dom = run_fanout(tg, cmap, domains=assign_domains(wm, g.P))
        assert with_dom.comm_messages <= without.comm_messages

    def test_higher_latency_slower(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(9))
        base = run_fanout(tg, cmap)
        slow_machine = MachineParams(latency=5e-3)
        slow = run_fanout(tg, cmap, machine=slow_machine)
        assert slow.t_parallel > base.t_parallel

    def test_priority_mode_completes(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(9))
        r = run_fanout(tg, cmap, priority_mode=True)
        assert r.t_parallel > 0

    def test_mflops_property(self, grid12_pipeline):
        _, sf, _, _, _, tg = grid12_pipeline
        cmap = cyclic_map(tg.npanels, square_grid(4))
        r = run_fanout(tg, cmap, factor_ops=sf.factor_ops)
        assert r.mflops == pytest.approx(sf.factor_ops / r.t_parallel / 1e6)
        r2 = run_fanout(tg, cmap)
        with pytest.raises(ValueError):
            _ = r2.mflops

    def test_owner_validation(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        bad = np.zeros(tg.nblocks, dtype=int)
        bad[0] = 99
        with pytest.raises(ValueError):
            simulate_fanout(tg, bad, 4)

    def test_busy_time_accounting(self, grid12_pipeline):
        """Busy time >= pure compute time; idle fraction in [0, 1)."""
        wm, tg = grid12_pipeline[4], grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(4))
        r = run_fanout(tg, cmap)
        compute = wm.total_work / PARAGON.flop_rate
        assert r.busy_times.sum() >= compute - 1e-12
        assert 0 <= r.idle_fraction < 1
