import numpy as np

from repro.fanout import assign_domains
from repro.fanout.domains import no_domains
from repro.matrices import dense_matrix
from repro.blocks import BlockPartition, BlockStructure, WorkModel
from repro.symbolic import symbolic_factor
from repro.symbolic.supernodes import supernode_parents


class TestAssignDomains:
    def test_owner_range(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        dom = assign_domains(wm, 4)
        assert dom.panel_owner.min() >= -1
        assert dom.panel_owner.max() < 4

    def test_subtrees_wholly_assigned(self, grid12_pipeline):
        """Every domain panel's supernode subtree has a single owner and the
        panels above domains are root panels."""
        _, sf, part, _, wm, _ = grid12_pipeline
        dom = assign_domains(wm, 4)
        sparent = supernode_parents(sf.snode_ptr, sf.parent)
        # supernode owner = owner of its panels (all panels of a supernode
        # agree because assignment is per-supernode)
        sown = {}
        for k in range(part.npanels):
            s = int(part.panel_snode[k])
            o = int(dom.panel_owner[k])
            assert sown.setdefault(s, o) == o
        for s, o in sown.items():
            p = int(sparent[s])
            if o == -1 and p != -1:
                # root supernode: every ancestor must also be root
                assert sown.get(p, -1) == -1 or True
            if o != -1 and p != -1 and sown.get(p, -1) != -1:
                # interior of a domain: same owner as parent
                assert sown[p] == o

    def test_root_portion_is_ancestor_closed(self, grid12_pipeline):
        """If a panel is in the root portion, its supernode parent is too."""
        _, sf, part, _, wm, _ = grid12_pipeline
        dom = assign_domains(wm, 4)
        sparent = supernode_parents(sf.snode_ptr, sf.parent)
        sown = {
            int(part.panel_snode[k]): int(dom.panel_owner[k])
            for k in range(part.npanels)
        }
        for s, o in sown.items():
            if o == -1:
                p = int(sparent[s])
                if p != -1:
                    assert sown[p] == -1

    def test_dense_matrix_all_root(self):
        """A dense matrix has one giant supernode: no domains possible."""
        p = dense_matrix(60)
        sf = symbolic_factor(p.A, None)
        wm = WorkModel(BlockStructure(BlockPartition(sf, 15)))
        dom = assign_domains(wm, 4)
        assert (dom.panel_owner == -1).all()

    def test_domain_work_balanced(self, random_spd_pipeline):
        """Greedy packing: max domain load <= 2x mean (coarse sanity)."""
        wm = random_spd_pipeline[4]
        P = 3
        dom = assign_domains(wm, P)
        loads = np.zeros(P)
        for k in range(wm.npanels):
            o = int(dom.panel_owner[k])
            if o >= 0:
                loads[o] += wm.workJ[k]
        if loads.sum() > 0:
            assert loads.max() <= 2.5 * loads.sum() / P + wm.workJ.max()

    def test_no_domains_helper(self):
        dom = no_domains(7)
        assert dom.domain_fraction == 0.0
        assert dom.is_root_panel.all()
