"""Units of the runtime's plumbing: wire format, links, scheduler, metrics."""

import json
import multiprocessing as mp

import numpy as np
import pytest

from repro.machine.params import PARAGON
from repro.runtime import wire
from repro.runtime.links import Link, LinkFabric
from repro.runtime.metrics import (
    RuntimeMetrics,
    TimelineRecorder,
    WorkerMetrics,
)
from repro.runtime.scheduler import ReadyScheduler


class TestWireFormat:
    def test_subdiagonal_roundtrip(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(5, 3))
        frame = wire.pack_block(2, 17, 9, 4, arr)
        msg = wire.unpack(frame)
        assert msg.kind == wire.BLOCK
        assert (msg.src, msg.block) == (2, 17)
        assert (msg.rows, msg.cols) == (5, 3)
        np.testing.assert_array_equal(msg.payload, arr)

    def test_diagonal_ships_packed_triangle(self):
        rng = np.random.default_rng(1)
        arr = np.tril(rng.normal(size=(6, 6)))
        frame = wire.pack_block(0, 3, 2, 2, arr)
        # 64-byte header + w*(w+1)/2 words, not w^2.
        assert len(frame) == wire.HEADER_BYTES + 8 * (6 * 7 // 2)
        msg = wire.unpack(frame)
        np.testing.assert_array_equal(msg.payload, arr)
        assert np.array_equal(np.triu(msg.payload, 1), np.zeros((6, 6)))

    def test_diagonal_upper_junk_dropped(self):
        """Only the lower triangle travels; upper garbage must not."""
        arr = np.tril(np.ones((4, 4))) + np.triu(np.full((4, 4), 99.0), 1)
        msg = wire.unpack(wire.pack_block(0, 0, 1, 1, arr))
        np.testing.assert_array_equal(msg.payload, np.tril(np.ones((4, 4))))

    def test_one_by_one_diagonal(self):
        msg = wire.unpack(wire.pack_block(0, 5, 3, 3, np.array([[4.0]])))
        np.testing.assert_array_equal(msg.payload, [[4.0]])

    def test_frame_bytes_match_machine_model(self):
        """Measured frame length == message_bytes(block_words): the wire
        format is byte-compatible with the comm_volume predictor."""
        sub = np.zeros((7, 4))
        frame = wire.pack_block(0, 0, 8, 2, sub)
        assert len(frame) == PARAGON.message_bytes(7 * 4)
        diag = np.zeros((5, 5))
        frame = wire.pack_block(0, 0, 2, 2, diag)
        assert len(frame) == PARAGON.message_bytes(5 * 6 // 2)

    def test_abort_roundtrip(self):
        msg = wire.unpack(wire.pack_abort(3))
        assert msg.kind == wire.ABORT
        assert msg.src == 3
        assert msg.payload is None

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            wire.unpack(b"nope" + b"\0" * 80)
        with pytest.raises(ValueError):
            wire.unpack(b"\0" * 8)
        with pytest.raises(ValueError):
            wire.pack_block(0, 0, 1, 1, np.zeros((3, 2)))  # diag not square
        with pytest.raises(ValueError):
            wire.pack_block(0, 0, 1, 0, np.zeros(3))  # not 2-D


class TestLinks:
    def test_link_counters_and_delivery(self):
        fabric = LinkFabric(3, mp.get_context())
        links = fabric.outgoing(0)
        assert sorted(links) == [1, 2]
        frame = wire.pack_abort(0)
        links[1].send(frame)
        links[1].send(frame)
        assert links[1].messages == 2
        assert links[1].bytes == 2 * len(frame)
        assert links[2].messages == 0
        got = fabric.inbox(1).get(timeout=5)
        assert got == frame
        fabric.shutdown()

    def test_rejects_bad_nprocs(self):
        with pytest.raises(ValueError):
            LinkFabric(0, mp.get_context())


class TestReadyScheduler:
    def test_fifo_order(self):
        s = ReadyScheduler()
        for t in (5, 1, 9):
            s.push(t)
        assert [s.pop() for _ in range(3)] == [5, 1, 9]
        assert not s

    def test_priority_order(self):
        prio = np.array([3.0, 0.5, 2.0, 1.0])
        s = ReadyScheduler(prio)
        for t in (0, 2, 3, 1):
            s.push(t)
        assert [s.pop() for _ in range(4)] == [1, 3, 2, 0]

    def test_priority_ties_arrival_order(self):
        s = ReadyScheduler(np.zeros(4))
        for t in (2, 0, 3):
            s.push(t)
        assert [s.pop() for _ in range(3)] == [2, 0, 3]


class TestTimelineRecorder:
    def test_merges_adjacent_same_category(self):
        tl = TimelineRecorder()
        tl.add("busy", 0.0, 1.0)
        tl.add("busy", 1.0, 2.0)
        tl.add("idle", 2.0, 3.0)
        assert tl.segments == [("busy", 0.0, 2.0), ("idle", 2.0, 3.0)]
        assert tl.totals["busy"] == pytest.approx(2.0)

    def test_disabled_keeps_totals_only(self):
        tl = TimelineRecorder(enabled=False)
        tl.add("comm", 0.0, 0.5)
        assert tl.segments == []
        assert tl.totals["comm"] == pytest.approx(0.5)

    def test_ignores_empty_segments(self):
        tl = TimelineRecorder()
        tl.add("busy", 1.0, 1.0)
        assert tl.segments == []


def _sample_metrics():
    w0 = WorkerMetrics(
        rank=0, tasks_executed=10, busy_s=2.0, comm_s=0.5, idle_s=0.5,
        work_executed=2000, messages_sent=4, bytes_sent=400,
        links={1: [4, 400]}, timeline=[("busy", 0.0, 2.0)],
    )
    w1 = WorkerMetrics(
        rank=1, tasks_executed=6, busy_s=1.0, comm_s=0.25, idle_s=1.75,
        work_executed=1000, messages_sent=2, bytes_sent=200,
        links={0: [2, 200]},
    )
    return RuntimeMetrics(
        nprocs=2, wall_s=3.25, workers=[w1, w0], mapping="DW/CY",
        problem="T",
    )


class TestRuntimeMetrics:
    def test_workers_sorted_and_aggregates(self):
        m = _sample_metrics()
        assert [w.rank for w in m.workers] == [0, 1]
        assert m.messages_total == 6
        assert m.bytes_total == 600
        assert m.tasks_total == 16
        # total/(P*max) with busy = [2, 1]
        assert m.measured_balance == pytest.approx(3.0 / (2 * 2.0))
        assert m.work_balance == pytest.approx(3000 / (2 * 2000))
        assert m.imbalance == pytest.approx(2.0 / 1.5)

    def test_link_matrix(self):
        M = _sample_metrics().link_matrix()
        assert M[0, 1] == 4 and M[1, 0] == 2
        assert M[0, 0] == 0

    def test_json_roundtrip(self):
        m = _sample_metrics()
        back = RuntimeMetrics.from_json(m.to_json())
        assert back.nprocs == m.nprocs
        assert back.wall_s == pytest.approx(m.wall_s)
        assert back.mapping == "DW/CY"
        assert back.workers[0].links == {1: [4, 400]}
        assert back.workers[0].timeline == [("busy", 0.0, 2.0)]
        assert back.measured_balance == pytest.approx(m.measured_balance)
        # to_dict is json-serializable throughout
        json.dumps(m.to_dict())

    def test_render_mentions_every_worker(self):
        text = _sample_metrics().render()
        assert "w0" in text and "w1" in text
        assert "busy" in text and "idle" in text and "comm" in text
        assert "balance" in text

    def test_empty_balance_is_one(self):
        m = RuntimeMetrics(nprocs=1, wall_s=0.0,
                           workers=[WorkerMetrics(rank=0)])
        assert m.measured_balance == 1.0
        assert m.imbalance == 1.0
