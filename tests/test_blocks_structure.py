import numpy as np

from repro.blocks import BlockPartition, BlockStructure
from repro.matrices import dense_matrix
from repro.symbolic import symbolic_factor


class TestBlockStructure:
    def test_rows_below_sorted(self, grid12_pipeline):
        bs = grid12_pipeline[3]
        for k in range(bs.npanels):
            rows = bs.rows_below[k]
            if rows.size > 1:
                assert (np.diff(rows) > 0).all()

    def test_block_rows_strictly_below(self, grid12_pipeline):
        bs = grid12_pipeline[3]
        for k in range(bs.npanels):
            assert (bs.block_rows[k] > k).all()

    def test_counts_sum_to_rows(self, grid12_pipeline):
        bs = grid12_pipeline[3]
        for k in range(bs.npanels):
            assert bs.block_counts[k].sum() == bs.rows_below[k].shape[0]

    def test_row_spans_partition_rows(self, grid12_pipeline):
        bs = grid12_pipeline[3]
        part = bs.partition
        for k in range(bs.npanels):
            for t, bi in enumerate(bs.block_rows[k]):
                span = bs.block_row_span(k, t)
                assert (part.panel_of_col[span] == bi).all()

    def test_dense_block_count(self):
        """A dense matrix with N panels has N(N+1)/2 nonzero blocks."""
        p = dense_matrix(60)
        sf = symbolic_factor(p.A, None)
        part = BlockPartition(sf, 15)
        bs = BlockStructure(part)
        N = part.npanels
        assert N == 4
        assert bs.num_blocks == N * (N + 1) // 2

    def test_matches_dense_factor_pattern(self, grid12_pipeline):
        """Every nonzero of L lies inside some block of the structure."""
        _, sf, part, bs, *_ = grid12_pipeline
        L = np.linalg.cholesky(sf.A.toarray())
        nz_rows, nz_cols = np.nonzero(np.abs(L) > 1e-13)
        below = nz_rows > nz_cols
        for r, c in zip(nz_rows[below], nz_cols[below]):
            k = int(part.panel_of_col[c])
            if part.panel_of_col[r] == k:
                continue  # inside the diagonal block
            assert r in bs.rows_below[k]

    def test_supernodal_nnz_ge_simplicial(self, grid12_pipeline):
        _, sf, _, bs, *_ = grid12_pipeline
        assert bs.supernodal_nnz() >= sf.factor_nnz
