"""Golden regression tests: exact deterministic values of key pipeline
outputs at small scale. These pin down the reproduction's determinism — any
change to ordering, symbolic analysis, the work model, or the simulator's
event order will trip one of these, deliberately.

If a change is *intended* to alter results (e.g. a better separator), update
the constants here and note it in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.experiments.pipeline import prepare_problem
from repro.fanout import assign_domains, run_fanout
from repro.mapping import balance_metrics, cyclic_map, heuristic_map, square_grid


@pytest.fixture(scope="module")
def prep():
    return prepare_problem("BCSSTK15", "small")


class TestGoldenSymbolic:
    def test_problem_fingerprint(self, prep):
        assert prep.problem.n == 330
        # deterministic generator: exact nonzero count
        assert prep.problem.nnz == prep.problem.A.nnz

    def test_symbolic_deterministic(self, prep):
        again = prepare_problem("BCSSTK15", "small", use_cache=False)
        assert again.symbolic.factor_nnz == prep.symbolic.factor_nnz
        assert again.symbolic.factor_ops == prep.symbolic.factor_ops
        assert np.array_equal(
            again.symbolic.ordering.perm, prep.symbolic.ordering.perm
        )

    def test_partition_deterministic(self, prep):
        again = prepare_problem("BCSSTK15", "small", use_cache=False)
        assert np.array_equal(
            again.partition.panel_ptr, prep.partition.panel_ptr
        )


class TestGoldenSimulation:
    def test_simulation_bitwise_reproducible(self, prep):
        g = square_grid(16)
        dom = assign_domains(prep.workmodel, 16)
        results = [
            run_fanout(
                prep.taskgraph,
                cyclic_map(prep.partition.npanels, g),
                domains=dom,
                factor_ops=prep.factor_ops,
            )
            for _ in range(2)
        ]
        assert results[0].t_parallel == results[1].t_parallel
        assert results[0].comm_bytes == results[1].comm_bytes
        assert np.array_equal(results[0].busy_times, results[1].busy_times)

    def test_balance_reproducible(self, prep):
        g = square_grid(16)
        vals = [
            balance_metrics(
                prep.workmodel, heuristic_map(prep.workmodel, g, "ID", "CY")
            ).overall
            for _ in range(2)
        ]
        assert vals[0] == vals[1]

    def test_heuristic_beats_cyclic_here(self, prep):
        """The paper's claim, pinned on this exact instance."""
        g = square_grid(16)
        cyc = balance_metrics(
            prep.workmodel, cyclic_map(prep.partition.npanels, g)
        ).overall
        heu = balance_metrics(
            prep.workmodel, heuristic_map(prep.workmodel, g, "ID", "CY")
        ).overall
        assert heu > cyc
