"""The zero-copy shared-memory transport: descriptor wire format, arena
layout/integrity, frame coalescing, inline-vs-shm equivalence (bitwise
factors, identical logical accounting), chaos parity, and arena cleanup."""

import os

import numpy as np
import pytest

from repro.analysis.comm_volume import communication_volume
from repro.analysis.trace_replay import validate_trace
from repro.runtime import wire
from repro.runtime.arena import (
    SLOT_ALIGN,
    TRANSPORTS,
    ArenaLayout,
    BlockArena,
    resolve_transport,
    shm_available,
)
from repro.runtime.engine import plan_owners, run_mp_fanout
from repro.runtime.faults import CrashSpec, FaultPlan
from repro.runtime.links import Link
from repro.runtime.recovery import run_with_recovery
from repro.runtime.validation import validate_runtime
from repro.runtime.wire import CorruptFrameError, WireError

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def _shm_segments() -> set:
    """Names of the POSIX shared-memory segments currently mapped."""
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# ----------------------------------------------------------------------
# Wire format: BLOCK_REF descriptors
# ----------------------------------------------------------------------
class TestBlockRefWire:
    def test_descriptor_is_header_only(self):
        frame = wire.pack_block_ref(2, 7, 5, 3, 15, 4096, 0xDEADBEEF)
        assert len(frame) == wire.HEADER_BYTES

    def test_roundtrip_fields(self):
        frame = wire.pack_block_ref(1, 9, 4, 4, 10, 800, 12345)
        msg = wire.unpack(frame)
        assert msg.kind == wire.BLOCK_REF
        assert (msg.src, msg.block) == (1, 9)
        assert (msg.rows, msg.cols) == (4, 4)
        assert msg.words == 10
        assert msg.offset == 800
        assert msg.payload_crc == 12345
        assert msg.payload is None

    def test_logical_bytes_ignore_frame_size(self):
        # A descriptor charges the logical payload, not its 64 bytes.
        msg = wire.unpack(wire.pack_block_ref(0, 1, 4, 4, 10, 0, 0))
        assert msg.nbytes == wire.HEADER_BYTES + 8 * 10

    @pytest.mark.parametrize("pos", [9, wire.REF_REGION_START,
                                     wire.REF_REGION_START + 8])
    def test_bit_flip_detected(self, pos):
        frame = bytearray(wire.pack_block_ref(0, 3, 2, 2, 3, 128, 77))
        frame[pos] ^= 0x04
        with pytest.raises(CorruptFrameError):
            wire.unpack(bytes(frame))

    def test_negative_offset_rejected(self):
        import struct
        import zlib

        prefix = struct.Struct("<4sBiiiiq").pack(
            b"RSB2", wire.BLOCK_REF, 0, 1, 2, 2, 3
        )
        extra = struct.Struct("<qI").pack(-8, 0)
        crc = zlib.crc32(extra, zlib.crc32(prefix))
        frame = prefix + struct.pack("<I", crc) + extra
        frame += b"\0" * (wire.HEADER_BYTES - len(frame))
        with pytest.raises(WireError):
            wire.unpack(frame)

    def test_data_kinds_cover_both_block_forms(self):
        assert wire.BLOCK in wire.DATA_KINDS
        assert wire.BLOCK_REF in wire.DATA_KINDS
        assert wire.BLOCK_REF not in wire.CONTROL_KINDS


# ----------------------------------------------------------------------
# Arena layout and slot integrity
# ----------------------------------------------------------------------
class TestArenaLayout:
    def test_slots_disjoint_aligned_and_packed(self, grid12_pipeline):
        _, _, part, _, _, tg = grid12_pipeline
        lay = ArenaLayout(tg)
        assert lay.nblocks == tg.nblocks
        widths = np.asarray(part.widths)
        for b in range(lay.nblocks):
            assert lay.cols[b] == widths[tg.block_J[b]]
            if lay.diag[b]:
                assert lay.rows[b] == lay.cols[b]
            # Slots store exactly the logical words (packed triangle for
            # diagonal blocks), start cache-line aligned, and never overlap.
            assert lay.offsets[b] % SLOT_ALIGN == 0
            span = lay.offsets[b + 1] - lay.offsets[b]
            assert span >= lay.logical_words[b] * 8
            assert span - lay.logical_words[b] * 8 < SLOT_ALIGN
        assert lay.total_bytes == int(lay.offsets[-1])
        assert lay.payload_bytes == int(lay.logical_words.sum()) * 8
        assert lay.padding_bytes == lay.total_bytes - lay.payload_bytes
        assert 0 <= lay.padding_bytes < lay.nblocks * SLOT_ALIGN

    def test_logical_words_match_taskgraph(self, grid12_pipeline):
        _, _, _, _, _, tg = grid12_pipeline
        lay = ArenaLayout(tg)
        np.testing.assert_array_equal(lay.logical_words, tg.block_words)


@needs_shm
class TestBlockArena:
    def test_write_view_resolve_roundtrip(self, grid12_pipeline):
        _, _, _, _, _, tg = grid12_pipeline
        arena = BlockArena.create(tg)
        try:
            b = int(np.flatnonzero(~ArenaLayout(tg).diag)[0])
            rng = np.random.default_rng(0)
            lay = arena.layout
            arr = rng.random((int(lay.rows[b]), int(lay.cols[b])))
            arena.write(b, arr)
            view = arena.view(b)
            np.testing.assert_array_equal(view, arr)
            assert not view.flags.writeable
            msg = wire.unpack(arena.pack_ref(3, b))
            resolved = arena.resolve(msg)
            assert resolved.kind == wire.BLOCK
            np.testing.assert_array_equal(resolved.payload, arr)
            assert resolved.nbytes == wire.HEADER_BYTES + 8 * int(
                tg.block_words[b]
            )
        finally:
            arena.destroy()

    def test_diag_roundtrip_matches_inline_unpack(self, grid12_pipeline):
        """Diagonal slots store the packed triangle but consumers get the
        same C-contiguous zero-upper square the inline transport builds."""
        _, _, _, _, _, tg = grid12_pipeline
        arena = BlockArena.create(tg)
        try:
            lay = arena.layout
            b = int(np.flatnonzero(lay.diag)[0])
            w = int(lay.cols[b])
            rng = np.random.default_rng(7)
            # bfac hands the arena an F-contiguous square; storage packs it.
            arr = np.asfortranarray(np.tril(rng.random((w, w))))
            arena.write(b, arr)
            got = arena.resolve(wire.unpack(arena.pack_ref(1, b))).payload
            inline = wire.unpack(
                wire.pack_block(1, b, int(lay.block_I[b]),
                                int(lay.block_J[b]), arr)
            ).payload
            assert got.flags.c_contiguous
            assert got.tobytes() == inline.tobytes()
            np.testing.assert_array_equal(arena.read(b), inline)
        finally:
            arena.destroy()

    def test_stale_slot_crc_rejected(self, grid12_pipeline):
        _, _, _, _, _, tg = grid12_pipeline
        arena = BlockArena.create(tg)
        try:
            b = 0
            lay = arena.layout
            arena.write(b, np.ones((int(lay.rows[b]), int(lay.cols[b]))))
            msg = wire.unpack(arena.pack_ref(0, b))
            # Slot mutated after the descriptor was built: CRC must fail.
            arena.write(b, np.zeros((int(lay.rows[b]), int(lay.cols[b]))))
            with pytest.raises(CorruptFrameError):
                arena.resolve(msg)
        finally:
            arena.destroy()

    def test_inline_frame_matches_inline_transport(self, grid12_pipeline):
        _, _, _, _, _, tg = grid12_pipeline
        arena = BlockArena.create(tg)
        try:
            lay = arena.layout
            b = int(np.flatnonzero(lay.diag)[0])
            w = int(lay.cols[b])
            rng = np.random.default_rng(1)
            arr = np.tril(rng.random((w, w)))
            arena.write(b, arr)
            inline = arena.inline_frame(arena.pack_ref(2, b))
            expect = wire.pack_block(
                2, b, int(lay.block_I[b]), int(lay.block_J[b]), arr
            )
            assert inline == expect
        finally:
            arena.destroy()

    def test_destroy_is_idempotent_and_unlinks(self, grid12_pipeline):
        _, _, _, _, _, tg = grid12_pipeline
        before = _shm_segments()
        arena = BlockArena.create(tg)
        assert _shm_segments() - before  # segment exists while live
        arena.destroy()
        arena.destroy()
        assert _shm_segments() == before


# ----------------------------------------------------------------------
# Frame coalescing
# ----------------------------------------------------------------------
class _ListQueue:
    def __init__(self):
        self.items = []

    def put(self, item):
        self.items.append(item)


class TestCoalescing:
    def test_batched_frames_ship_as_one_put(self):
        q = _ListQueue()
        link = Link(0, 1, q)
        link.coalesce = True
        frames = [wire.pack_block_ref(0, b, 2, 2, 3, b * 32, 0)
                  for b in range(3)]
        for f in frames:
            link.send(f, nbytes=wire.HEADER_BYTES + 8 * 3)
        assert q.items == []  # nothing ships until a flush
        link.flush_pending()
        assert len(q.items) == 1 and q.items[0] == frames
        assert link.messages == 3
        assert link.bytes == 3 * (wire.HEADER_BYTES + 8 * 3)  # logical
        assert link.wire_bytes == 3 * wire.HEADER_BYTES       # transported

    def test_lone_frame_ships_bare(self):
        q = _ListQueue()
        link = Link(0, 1, q)
        link.coalesce = True
        frame = wire.pack_block_ref(0, 1, 2, 2, 3, 0, 0)
        link.send(frame)
        link.flush_pending()
        assert q.items == [frame]  # not wrapped in a list

    def test_control_frame_flushes_pending_first(self):
        q = _ListQueue()
        link = Link(0, 1, q)
        link.coalesce = True
        data = wire.pack_block_ref(0, 1, 2, 2, 3, 0, 0)
        done = wire.pack_done(0)
        link.send(data)
        link.send_control(done)
        # Ordering preserved: the data batch lands before the control frame.
        assert q.items == [data, done]

    def test_auto_flush_at_cap(self):
        from repro.runtime.links import COALESCE_MAX

        q = _ListQueue()
        link = Link(0, 1, q)
        link.coalesce = True
        for b in range(COALESCE_MAX + 1):
            link.send(wire.pack_block_ref(0, b, 2, 2, 3, 0, 0))
        assert len(q.items) == 1 and len(q.items[0]) == COALESCE_MAX
        link.flush_pending()
        assert len(q.items) == 2

    def test_uncoalesced_link_ships_immediately(self):
        q = _ListQueue()
        link = Link(0, 1, q)
        frame = wire.pack_block_ref(0, 1, 2, 2, 3, 0, 0)
        link.send(frame)
        assert q.items == [frame]


# ----------------------------------------------------------------------
# Transport resolution
# ----------------------------------------------------------------------
class TestTransportResolution:
    def test_inline_always_honored(self):
        assert resolve_transport("inline", 8) == "inline"

    def test_auto_single_worker_stays_inline(self):
        assert resolve_transport("auto", 1) == "inline"

    @needs_shm
    def test_auto_multi_worker_picks_shm(self):
        assert resolve_transport("auto", 2) == "shm"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon", 2)
        assert set(TRANSPORTS) == {"auto", "shm", "inline"}


# ----------------------------------------------------------------------
# End-to-end equivalence
# ----------------------------------------------------------------------
@needs_shm
class TestTransportEquivalence:
    def test_shm_matches_inline_bit_for_bit(self, grid12_pipeline):
        """Same factors (bitwise), same logical accounting (exactly the
        predictor's numbers), header-only transported bytes, and exact
        trace reconciliation — on both transports."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        owners, name = plan_owners(wm, tg, 2, "DW/CY")
        predicted = communication_volume(tg, owners)
        results = {}
        for transport in ("inline", "shm"):
            res = run_mp_fanout(
                bs, sf.A, tg, owners, 2, mapping=name, trace=True,
                transport=transport,
            )
            met = res.metrics
            assert met.transport == transport
            assert res.meta["transport"] == transport
            assert met.messages_total == predicted.messages
            assert met.bytes_total == predicted.bytes
            validate_runtime(bs, sf.A, tg, result=res, strict=True)
            validate_trace(res.trace, met, strict=True)
            results[transport] = res
        inline, shm = results["inline"], results["shm"]
        # Bitwise-identical factors (deterministic BMOD ordering).
        Li, Ls = inline.to_csc(), shm.to_csc()
        assert (Li != Ls).nnz == 0
        assert np.array_equal(Li.data, Ls.data)
        # Transported bytes: full payloads inline, 64/frame descriptors shm.
        assert inline.metrics.wire_bytes_total == inline.metrics.bytes_total
        assert shm.metrics.wire_bytes_total == 64 * shm.metrics.messages_total
        assert shm.metrics.wire_bytes_total < shm.metrics.bytes_total

    def test_equivalence_on_irregular_problem(self, random_spd_pipeline):
        _, sf, _, bs, wm, tg = random_spd_pipeline
        owners, name = plan_owners(wm, tg, 3, "cyclic")
        factors = []
        for transport in ("inline", "shm"):
            res = run_mp_fanout(
                bs, sf.A, tg, owners, 3, mapping=name, transport=transport
            )
            validate_runtime(bs, sf.A, tg, result=res, strict=True)
            factors.append(res.to_csc())
        assert np.array_equal(factors[0].data, factors[1].data)

    def test_runs_are_reproducible(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        owners, name = plan_owners(wm, tg, 2, "cyclic")
        data = [
            run_mp_fanout(bs, sf.A, tg, owners, 2, mapping=name,
                          transport=t).to_csc().data
            for t in ("shm", "shm", "inline")
        ]
        assert np.array_equal(data[0], data[1])
        assert np.array_equal(data[0], data[2])


# ----------------------------------------------------------------------
# Chaos over shm
# ----------------------------------------------------------------------
@needs_shm
class TestChaosOverShm:
    def test_duplicate_fingerprints_match_inline(self, grid12_pipeline):
        """Duplicate injection is timing-independent: both transports must
        inject and suppress exactly the same duplicates."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        plan = FaultPlan(seed=3, duplicate=0.3)
        stats = {}
        for transport in ("inline", "shm"):
            res = run_with_recovery(
                bs, sf.A, tg, nprocs=2, mapping="DW/CY", fault_plan=plan,
                transport=transport, stall_timeout_s=15.0,
            )
            assert res.failure_report.outcome == "clean"
            rep = validate_runtime(
                bs, sf.A, tg, result=res, strict=True, faulty=True
            )
            assert rep.ok
            stats[transport] = (
                res.metrics.faults_injected_total,
                res.metrics.duplicates_total,
            )
        assert stats["inline"] == stats["shm"]
        assert stats["shm"][0].get("duplicate", 0) > 0

    def test_corrupt_descriptors_nack_and_recover(self, grid12_pipeline):
        """Bit-flipped descriptor slot metadata must trip the frame CRC and
        drive the same NACK/retransmit machinery as inline corruption."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        plan = FaultPlan(seed=5, corrupt=0.4)
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=2, mapping="DW/CY", fault_plan=plan,
            transport="shm", stall_timeout_s=15.0,
        )
        met = res.metrics
        assert met.faults_injected_total.get("corrupt", 0) > 0
        assert met.frames_rejected_total > 0
        assert met.retransmits_total > 0
        rep = validate_runtime(
            bs, sf.A, tg, result=res, strict=True, faulty=True
        )
        assert rep.ok

    def test_mixed_chaos_recovers_on_shm(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        plan = FaultPlan(seed=7, drop=0.15, corrupt=0.2, duplicate=0.15)
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=2, mapping="DW/CY", fault_plan=plan,
            transport="shm", stall_timeout_s=15.0,
            renegotiate_base_s=0.05, renegotiate_cap_s=0.5,
        )
        assert res.failure_report.ok
        rep = validate_runtime(
            bs, sf.A, tg, result=res, strict=True, faulty=True
        )
        assert rep.ok


# ----------------------------------------------------------------------
# Arena lifecycle: no leaked segments
# ----------------------------------------------------------------------
@needs_shm
class TestArenaCleanup:
    def test_clean_run_leaves_no_segment(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        owners, name = plan_owners(wm, tg, 2, "cyclic")
        before = _shm_segments()
        run_mp_fanout(bs, sf.A, tg, owners, 2, mapping=name, transport="shm")
        assert _shm_segments() == before

    def test_hard_crash_recovery_leaves_no_segment(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        plan = FaultPlan(
            seed=1, crash=(CrashSpec(rank=1, after_tasks=3, hard=True),)
        )
        before = _shm_segments()
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=2, mapping="DW/CY", fault_plan=plan,
            transport="shm", stall_timeout_s=15.0, dead_grace_s=3.0,
        )
        assert _shm_segments() == before
        assert res.failure_report.ok or res.failure_report.degraded
        L = res.to_csc()
        assert float(abs(L @ L.T - sf.A).max()) < 1e-8

    def test_soft_crash_checkpoint_restart_over_shm(self, grid12_pipeline):
        """Salvaged BLOCK_REF frames are inlined before the arena dies, so
        the restarted attempt can preload them (and serve NACKs for them
        from its own fresh arena)."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        plan = FaultPlan(
            seed=2, crash=(CrashSpec(rank=1, after_tasks=4, hard=False),)
        )
        before = _shm_segments()
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=2, mapping="DW/CY", fault_plan=plan,
            transport="shm", stall_timeout_s=15.0, dead_grace_s=3.0,
        )
        assert _shm_segments() == before
        assert res.failure_report.restarts >= 1
        assert res.failure_report.ok or res.failure_report.degraded
        L = res.to_csc()
        assert float(abs(L @ L.T - sf.A).max()) < 1e-8


# ----------------------------------------------------------------------
# Solver integration: plan cache + transport plumbing
# ----------------------------------------------------------------------
class TestSolverIntegration:
    def test_plan_cache_and_repeat_factor(self, grid12_pipeline):
        from repro.solver import SparseCholesky

        problem, _, _, _, _, _ = grid12_pipeline
        chol = SparseCholesky(
            problem.A, ordering="nd", block_size=8, backend="mp", nprocs=2,
            transport="auto",
        )
        L1 = chol.factor().L.copy()
        assert len(chol._plan_cache) == 1
        t1 = chol.runtime_metrics.transport
        L2 = chol.factor().L
        assert len(chol._plan_cache) == 1  # second factor reused the plan
        assert chol.runtime_metrics.transport == t1
        assert np.array_equal(L1.data, L2.data)

    def test_explicit_inline_transport(self, grid12_pipeline):
        from repro.solver import SparseCholesky

        problem, _, _, _, _, _ = grid12_pipeline
        chol = SparseCholesky(
            problem.A, ordering="nd", block_size=8, backend="mp", nprocs=2,
            transport="inline",
        ).factor()
        met = chol.runtime_metrics
        assert met.transport == "inline"
        assert met.wire_bytes_total == met.bytes_total
