"""Cross-subsystem integration: a Harwell-Boeing file through the full
solver facade, the path a user with the real BCSSTK files would take."""

import numpy as np
import pytest

from repro.matrices import bcsstk_like_matrix
from repro.matrices.hb import read_harwell_boeing, write_harwell_boeing
from repro.solver import SparseCholesky


@pytest.fixture(scope="module")
def hb_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("hb") / "bcsstk_like.rsa"
    problem = bcsstk_like_matrix(240, seed=99)
    write_harwell_boeing(path, problem.A, title="synthetic bcsstk", key="BK99")
    return path, problem


class TestHBSolverPath:
    def test_load_factor_solve(self, hb_file):
        path, problem = hb_file
        A = read_harwell_boeing(path)
        chol = SparseCholesky(A, ordering="mmd").factor()
        rng = np.random.default_rng(0)
        b = rng.standard_normal(A.shape[0])
        x = chol.solve(b)
        assert np.max(np.abs(A @ x - b)) < 1e-7

    def test_loaded_matrix_matches_generated(self, hb_file):
        path, problem = hb_file
        A = read_harwell_boeing(path)
        assert abs(A - problem.A).max() < 1e-12

    def test_plan_from_file(self, hb_file):
        path, _ = hb_file
        A = read_harwell_boeing(path)
        chol = SparseCholesky(A, ordering="mmd")
        plans = chol.compare_mappings(16)
        assert plans["ID/CY"].mflops > 0
        assert plans["cyclic"].balance_bound <= 1.0


class TestResultJson:
    def test_experiment_json_round_trip(self):
        import json

        from repro.experiments.table3 import run

        res = run("small", P=16)
        payload = json.loads(res.to_json())
        assert payload["experiment"].startswith("Table 3")
        assert len(payload["rows"]) == 5
        assert payload["paper_reference"]["ID"] == [0.99, 0.99, 0.96, 0.81]
