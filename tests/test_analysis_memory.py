import numpy as np
import pytest

from repro.analysis import memory_usage
from repro.fanout import block_owners
from repro.machine.params import PARAGON
from repro.mapping import cyclic_map, heuristic_map, square_grid


class TestMemoryUsage:
    def test_owned_totals_conserved(self, grid12_pipeline):
        """Total owned bytes equals the factor's dense storage regardless of
        the mapping."""
        tg = grid12_pipeline[5]
        total = int(tg.block_words.sum()) * PARAGON.word_bytes
        for P in (1, 4, 16):
            owners = block_owners(tg, cyclic_map(tg.npanels, square_grid(P)))
            rep = memory_usage(tg, owners, P)
            assert int(rep.owned_bytes.sum()) == total

    def test_single_processor(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        owners = np.zeros(tg.nblocks, dtype=int)
        rep = memory_usage(tg, owners, 1)
        assert rep.storage_balance == pytest.approx(1.0)
        assert int(rep.received_bound_bytes.sum()) == 0

    def test_balance_in_unit_interval(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        owners = block_owners(tg, cyclic_map(tg.npanels, square_grid(9)))
        rep = memory_usage(tg, owners, 9)
        assert 0 < rep.storage_balance <= 1

    def test_received_bound_positive_when_distributed(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        owners = block_owners(tg, cyclic_map(tg.npanels, square_grid(9)))
        rep = memory_usage(tg, owners, 9)
        assert rep.received_bound_bytes.sum() > 0
        assert rep.worst_case_bytes >= rep.max_owned

    def test_fits_paragon_node(self, grid12_pipeline):
        """The tiny test problem obviously fits a 32 MB node."""
        tg = grid12_pipeline[5]
        owners = block_owners(tg, cyclic_map(tg.npanels, square_grid(4)))
        rep = memory_usage(tg, owners, 4)
        assert rep.fits()
        assert not rep.fits(node_bytes=1)

    def test_heuristic_mapping_storage_reasonable(self, grid12_pipeline):
        """Work-balancing must not catastrophically unbalance storage."""
        wm, tg = grid12_pipeline[4], grid12_pipeline[5]
        g = square_grid(9)
        owners = block_owners(tg, heuristic_map(wm, g, "ID", "CY"))
        rep = memory_usage(tg, owners, 9)
        assert rep.storage_balance > 0.1
