import numpy as np
import pytest

from repro.blocks import BlockPartition, BlockStructure
from repro.matrices import dense_matrix, grid2d_matrix
from repro.numeric import BlockCholesky
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor


def factor_and_check(A, sf, B):
    part = BlockPartition(sf, B)
    bs = BlockStructure(part)
    bc = BlockCholesky(bs, sf.A).factor()
    L = bc.to_csc()
    resid = abs(L @ L.T - sf.A).max()
    return bc, L, resid


class TestBlockCholesky:
    def test_grid_nd(self, grid12_pipeline):
        problem, sf, part, bs, *_ = grid12_pipeline
        bc = BlockCholesky(bs, sf.A).factor()
        L = bc.to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-10

    def test_dense(self):
        p = dense_matrix(40)
        sf = symbolic_factor(p.A, None)
        _, L, resid = factor_and_check(p.A, sf, 12)
        assert resid < 1e-8 * abs(sf.A).max()

    def test_random_mmd(self, random_spd_pipeline):
        problem, sf, part, bs, *_ = random_spd_pipeline
        bc = BlockCholesky(bs, sf.A).factor()
        L = bc.to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-10

    def test_matches_dense_cholesky_values(self, grid12_pipeline):
        _, sf, _, bs, *_ = grid12_pipeline
        L = BlockCholesky(bs, sf.A).factor().to_csc().toarray()
        L_ref = np.linalg.cholesky(sf.A.toarray())
        assert np.allclose(np.tril(L), L_ref, atol=1e-10)

    def test_various_block_sizes(self):
        p = grid2d_matrix(9)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        for B in (1, 3, 5, 100):
            _, _, resid = factor_and_check(p.A, sf, B)
            assert resid < 1e-10, f"B={B}"

    def test_bdiv_before_bfac_rejected(self, grid12_pipeline):
        _, sf, _, bs, *_ = grid12_pipeline
        bc = BlockCholesky(bs, sf.A)
        k = 0
        brows = bs.block_rows[k]
        if brows.size:
            with pytest.raises(RuntimeError):
                bc.bdiv(int(brows[0]), k)

    def test_flop_counter_increases(self, grid12_pipeline):
        _, sf, _, bs, *_ = grid12_pipeline
        bc = BlockCholesky(bs, sf.A)
        assert bc.flops == 0
        bc.factor()
        assert bc.flops > 0
