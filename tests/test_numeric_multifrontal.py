import numpy as np
import pytest

from repro.matrices import dense_matrix, grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.numeric import BlockCholesky
from repro.numeric.multifrontal import MultifrontalCholesky
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor


class TestMultifrontal:
    def test_grid_reconstructs(self, grid12_pipeline):
        _, sf, *_ = grid12_pipeline
        mf = MultifrontalCholesky(sf).factor()
        L = mf.to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-10

    def test_random_reconstructs(self, random_spd_pipeline):
        _, sf, *_ = random_spd_pipeline
        L = MultifrontalCholesky(sf).factor().to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-10

    def test_dense_single_front(self):
        p = dense_matrix(24)
        sf = symbolic_factor(p.A, None)
        mf = MultifrontalCholesky(sf).factor()
        assert mf.peak_front == 24
        L = mf.to_csc().toarray()
        assert np.allclose(np.tril(L), np.linalg.cholesky(sf.A.toarray()))

    def test_matches_block_fanout_values(self, grid12_pipeline):
        """Three drivers, one factor: multifrontal == block fan-out."""
        _, sf, _, bs, *_ = grid12_pipeline
        L_mf = MultifrontalCholesky(sf).factor().to_csc()
        L_bf = BlockCholesky(bs, sf.A).factor().to_csc()
        assert abs(L_mf - L_bf).max() < 1e-10

    def test_requires_factor_before_extract(self, grid12_pipeline):
        _, sf, *_ = grid12_pipeline
        with pytest.raises(RuntimeError):
            MultifrontalCholesky(sf).to_csc()

    def test_peak_front_bounded(self, grid12_pipeline):
        """Front size = supernode width + |R_s| <= n."""
        _, sf, *_ = grid12_pipeline
        mf = MultifrontalCholesky(sf).factor()
        widths = np.diff(sf.snode_ptr)
        expect = max(
            int(widths[s]) + sf.snode_rows[s].shape[0]
            for s in range(sf.nsupernodes)
        )
        assert mf.peak_front == expect <= sf.n

    def test_amalgamation_off_still_works(self):
        A = random_spd_sparse(80, density=0.06, seed=5)
        sf = symbolic_factor(A, None, amalgamate=False)
        L = MultifrontalCholesky(sf).factor().to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-10

    def test_solve_through_factor(self, grid12_pipeline):
        from repro.numeric import solve_with_factor

        problem, sf, *_ = grid12_pipeline
        L = MultifrontalCholesky(sf).factor().to_csc()
        b = np.arange(problem.n, dtype=float)
        x = solve_with_factor(L, b, sf.ordering)
        assert np.max(np.abs(problem.A @ x - b)) < 1e-8
