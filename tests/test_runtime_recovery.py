"""End-to-end fault tolerance: every fault class must end in a correct
factor — recovered in-run, recovered by restart, or degraded to the
sequential backend with a populated FailureReport. Never a hang, an
orphan process, or a silent wrong answer."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.analysis.comm_volume import communication_volume
from repro.numeric import BlockCholesky
from repro.runtime import (
    FanoutError,
    FaultPlan,
    RuntimeTimeoutError,
    WorkerError,
    mp_block_cholesky,
    plan_owners,
    run_mp_fanout,
    run_with_recovery,
    validate_runtime,
)
from repro.runtime import wire

#: Tight-but-safe recovery knobs for the tiny test problems.
FAST = dict(
    renegotiate_base_s=0.05,
    renegotiate_cap_s=0.5,
    max_renegotiations=6,
    dead_grace_s=5.0,
    timeout_s=120.0,
    stall_timeout_s=15.0,
)


def _no_orphans():
    for p in mp.active_children():
        p.join(timeout=5)
    return all(not p.is_alive() for p in mp.active_children())


def _seq_factor(grid12_pipeline):
    _, sf, _, bs, _, _ = grid12_pipeline
    return BlockCholesky(bs, sf.A).factor().to_csc()


class TestEveryFaultClassRecovers:
    """The ISSUE's acceptance bar: for every fault class at P in {2, 4},
    the run either recovers (factor matches the sequential backend) or
    degrades to sequential — with the outcome on record."""

    @pytest.mark.parametrize("nprocs", [2, 4])
    @pytest.mark.parametrize(
        "scenario",
        ["crash", "crash-hard", "drop", "corrupt", "corrupt_header",
         "duplicate", "delay", "slow"],
    )
    def test_recovers_to_correct_factor(
        self, grid12_pipeline, scenario, nprocs
    ):
        _, sf, _, bs, _, tg = grid12_pipeline
        plan = FaultPlan.scenario(
            scenario, seed=3, rate=0.2, rank=min(1, nprocs - 1)
        )
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=nprocs, mapping="DW/CY",
            fault_plan=plan, **FAST,
        )
        rep = res.failure_report
        assert rep is not None and (rep.ok or rep.degraded)
        seq = _seq_factor(grid12_pipeline)
        assert abs(res.to_csc() - seq).max() < 1e-8
        assert _no_orphans()
        # The validation harness agrees, with accounting checks relaxed.
        validate_runtime(
            bs, sf.A, tg, result=res, faulty=True, problem="grid12"
        )


class TestFaultFreeOverhead:
    def test_recovery_mode_is_inert_without_faults(self, grid12_pipeline):
        """recovery=True on a healthy interconnect: zero recovery events
        and the exact message/byte counts the static predictor promised."""
        _, sf, _, bs, _, tg = grid12_pipeline
        res = mp_block_cholesky(
            bs, sf.A, tg, nprocs=4, mapping="DW/CY", recovery=True
        )
        m = res.metrics
        predicted = communication_volume(tg, res.owners)
        assert m.messages_total == predicted.messages
        assert m.bytes_total == predicted.bytes
        assert m.recovery_events_total == 0
        assert m.retransmits_total == 0
        assert m.duplicates_total == 0
        assert m.frames_rejected_total == 0
        assert m.faults_injected_total == {}
        seq = _seq_factor(grid12_pipeline)
        assert abs(res.to_csc() - seq).max() < 1e-10

    def test_empty_fault_plan_reports_clean(self, grid12_pipeline):
        _, sf, _, bs, _, tg = grid12_pipeline
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=2, mapping="cyclic",
            fault_plan=FaultPlan.scenario("none"), **FAST,
        )
        rep = res.failure_report
        assert rep.outcome == "clean"
        assert rep.restarts == 0
        assert rep.recovery_events == 0
        assert rep.faults_injected == {}

    def test_validate_runtime_rejects_unexplained_recovery(
        self, grid12_pipeline
    ):
        """A run that *did* trigger recovery events must fail strict
        (non-faulty) validation — recovery on a healthy fabric is a bug."""
        _, sf, _, bs, _, tg = grid12_pipeline
        plan = FaultPlan.scenario("duplicate", seed=1, rate=0.3)
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=2, mapping="DW/CY",
            fault_plan=plan, **FAST,
        )
        if res.metrics.recovery_events_total == 0:
            pytest.skip("no duplicates materialized at this seed")
        rep = validate_runtime(
            bs, sf.A, tg, result=res, strict=False, problem="grid12"
        )
        assert any("recovery" in f for f in rep.failures)


class TestCrashRestart:
    def test_transient_crash_restarts_on_fewer_workers(
        self, grid12_pipeline
    ):
        _, sf, _, bs, _, tg = grid12_pipeline
        plan = FaultPlan.scenario("crash", seed=0, after_tasks=3)
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=4, mapping="DW/CY",
            fault_plan=plan, **FAST,
        )
        rep = res.failure_report
        assert rep.outcome == "recovered"
        assert rep.restarts == 1
        assert rep.final_nprocs == 3
        assert res.metrics.nprocs == 3
        assert len(rep.attempts) == 1
        assert rep.attempts[0].failed_ranks == [1]
        assert "injected failure" in rep.attempts[0].error
        # The failed attempt's completed work was salvaged and reused.
        assert rep.checkpoint_blocks_used > 0
        assert (
            sum(w.checkpoint_blocks_loaded for w in res.metrics.workers) > 0
        )
        seq = _seq_factor(grid12_pipeline)
        assert abs(res.to_csc() - seq).max() < 1e-8
        assert "recovered" in rep.summary()

    def test_persistent_crash_degrades_to_sequential(self, grid12_pipeline):
        """max_restarts exhausted -> the sequential fallback, clearly
        labelled, still numerically correct."""
        _, sf, _, bs, _, tg = grid12_pipeline
        plan = FaultPlan.scenario("crash-persistent", seed=0)
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=2, mapping="DW/CY",
            fault_plan=plan, max_restarts=0, **FAST,
        )
        rep = res.failure_report
        assert rep.degraded and not rep.ok
        assert rep.outcome == "degraded_sequential"
        assert rep.final_nprocs == 1
        assert res.metrics.mapping == "sequential-fallback"
        assert res.meta.get("fallback") is True
        seq = _seq_factor(grid12_pipeline)
        assert abs(res.to_csc() - seq).max() < 1e-10
        assert _no_orphans()

    def test_no_fallback_reraises_with_report(self, grid12_pipeline):
        _, sf, _, bs, _, tg = grid12_pipeline
        plan = FaultPlan.scenario("crash-persistent", seed=0)
        with pytest.raises(FanoutError) as info:
            run_with_recovery(
                bs, sf.A, tg, nprocs=2, mapping="DW/CY",
                fault_plan=plan, max_restarts=0,
                fallback_sequential=False, **FAST,
            )
        rep = info.value.failure_report
        assert rep.outcome == "degraded_sequential"
        assert len(rep.attempts) == 1
        assert _no_orphans()

    def test_report_serializes(self, grid12_pipeline):
        import json

        _, sf, _, bs, _, tg = grid12_pipeline
        plan = FaultPlan.scenario("crash", seed=0)
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=2, mapping="DW/CY",
            fault_plan=plan, **FAST,
        )
        payload = json.loads(res.failure_report.to_json())
        assert payload["outcome"] == "recovered"
        assert payload["attempts"][0]["failed_ranks"] == [1]


class TestInRunRecovery:
    def test_duplicates_are_suppressed_idempotently(self, grid12_pipeline):
        _, sf, _, bs, _, tg = grid12_pipeline
        plan = FaultPlan.scenario("duplicate", seed=2, rate=0.5)
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=4, mapping="DW/CY",
            fault_plan=plan, **FAST,
        )
        m = res.metrics
        injected = m.faults_injected_total.get("duplicate", 0)
        assert injected > 0
        # Every injected duplicate arrived and was dropped, none applied.
        assert m.duplicates_total == injected
        seq = _seq_factor(grid12_pipeline)
        assert abs(res.to_csc() - seq).max() < 1e-8

    def test_corrupt_frames_rejected_nacked_retransmitted(
        self, grid12_pipeline
    ):
        _, sf, _, bs, _, tg = grid12_pipeline
        plan = FaultPlan.scenario("corrupt", seed=3, rate=0.3)
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=4, mapping="DW/CY",
            fault_plan=plan, **FAST,
        )
        m = res.metrics
        assert m.faults_injected_total.get("corrupt", 0) > 0
        assert m.frames_rejected_total > 0
        assert sum(w.nacks_sent for w in m.workers) > 0
        assert m.retransmits_total > 0
        seq = _seq_factor(grid12_pipeline)
        assert abs(res.to_csc() - seq).max() < 1e-8

    def test_corrupt_frame_without_recovery_aborts(self, grid12_pipeline):
        """No recovery enabled: integrity failures are fail-stop, typed,
        and leak no orphan processes."""
        _, sf, _, bs, _, tg = grid12_pipeline
        plan = FaultPlan.scenario("corrupt", seed=3, rate=0.5)
        with pytest.raises(WorkerError, match="corrupt frame"):
            run_mp_fanout(
                bs, sf.A, tg,
                plan_owners(tg.workmodel, tg, 2, "DW/CY")[0], 2,
                fault_plan=plan, recovery=False,
                stall_timeout_s=10, timeout_s=60,
            )
        assert _no_orphans()

    def test_checkpoint_preload_skips_tasks(self, grid12_pipeline):
        """Feeding a checkpoint of final blocks into a fresh run: they are
        loaded, their tasks skipped, and the factor still exact."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        seq = BlockCholesky(bs, sf.A).factor()
        checkpoint = {}
        for b in range(min(4, tg.nblocks)):
            I, J = int(tg.block_I[b]), int(tg.block_J[b])
            arr = seq.diag[J] if I == J else seq.below[J][I]
            checkpoint[b] = wire.pack_block(0, b, I, J, arr)
        owners, name = plan_owners(wm, tg, 2, "DW/CY")
        res = run_mp_fanout(
            bs, sf.A, tg, owners, 2, mapping=name,
            recovery=True, checkpoint=checkpoint,
        )
        loaded = sum(
            w.checkpoint_blocks_loaded for w in res.metrics.workers
        )
        assert loaded == 2 * len(checkpoint)  # each worker preloads all
        assert res.metrics.tasks_total < tg.ntasks  # tasks were skipped
        assert res.meta["checkpoint_blocks"] == len(checkpoint)
        assert abs(res.to_csc() - seq.to_csc()).max() < 1e-10

    def test_slow_worker_skews_measured_balance(self, grid12_pipeline):
        _, sf, _, bs, _, tg = grid12_pipeline
        plan = FaultPlan.scenario("slow", seed=0, rank=1, slow_s=0.003)
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=2, mapping="DW/CY",
            fault_plan=plan, **FAST,
        )
        m = res.metrics
        assert m.faults_injected_total.get("slow", 0) > 0
        workers = {w.rank: w for w in m.workers}
        assert workers[1].busy_s > workers[0].busy_s
        seq = _seq_factor(grid12_pipeline)
        assert abs(res.to_csc() - seq).max() < 1e-8


class TestDriverWatchdogs:
    def test_global_timeout_raises_timeout_error(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        plan = FaultPlan.scenario("slow", seed=0, rank=0, slow_s=0.25)
        owners, name = plan_owners(wm, tg, 2, "DW/CY")
        with pytest.raises(RuntimeTimeoutError):
            run_mp_fanout(
                bs, sf.A, tg, owners, 2, mapping=name,
                fault_plan=plan, recovery=True,
                timeout_s=1.0, stall_timeout_s=30.0,
            )
        assert _no_orphans()


class TestSolverFacade:
    def test_fault_plan_via_solver(self):
        from repro.matrices import grid2d_matrix
        from repro.solver import SparseCholesky

        A = grid2d_matrix(12).A
        plan = FaultPlan.scenario("drop", seed=1, rate=0.2)
        chol = SparseCholesky(
            A, block_size=8, backend="mp", nprocs=2, mapping="DW/CY",
            fault_plan=plan.to_dict(),
        ).factor()
        assert chol.failure_report is not None
        assert chol.failure_report.ok
        assert abs(chol.L @ chol.L.T - chol.symbolic.A).max() < 1e-8
        b = np.ones(A.shape[0])
        assert np.max(np.abs(A @ chol.solve(b) - b)) < 1e-8

    def test_fault_plan_accepts_json_string(self):
        from repro.matrices import grid2d_matrix
        from repro.solver import SparseCholesky

        plan_json = FaultPlan.scenario("duplicate", rate=0.2).to_json()
        chol = SparseCholesky(
            grid2d_matrix(12).A, block_size=8, backend="mp", nprocs=2,
            fault_plan=plan_json,
        )
        assert chol.fault_plan == FaultPlan.from_json(plan_json)

    def test_no_fault_plan_means_no_report(self):
        from repro.matrices import grid2d_matrix
        from repro.solver import SparseCholesky

        chol = SparseCholesky(
            grid2d_matrix(12).A, block_size=8, backend="mp", nprocs=2
        ).factor()
        assert chol.failure_report is None
        assert chol.runtime_metrics.recovery_events_total == 0


class TestChaosCLI:
    def test_chaos_sweep_passes(self, capsys):
        from repro.cli import main

        rc = main([
            "chaos", "GRID150", "--scale", "small", "-p", "2",
            "--faults", "none,drop,crash", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos sweep" in out
        assert "3/3 scenarios ok" in out
        assert "[ok]" in out and "FAILED" not in out

    def test_chaos_json_report(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path = tmp_path / "chaos.json"
        rc = main([
            "chaos", "GRID150", "--scale", "small", "-p", "2",
            "--faults", "none,duplicate", "--seed", "1",
            "--json", str(path),
        ])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"P2:none", "P2:duplicate"}
        assert payload["P2:none"]["report"]["outcome"] == "clean"
        assert payload["P2:none"]["report"]["recovery_events"] == 0
        assert all(r["ok"] for r in payload.values())

    def test_chaos_rejects_unknown_fault(self):
        from repro.cli import main

        with pytest.raises(KeyError, match="gremlins"):
            main([
                "chaos", "GRID150", "--scale", "small",
                "--faults", "gremlins",
            ])
