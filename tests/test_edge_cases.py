"""Edge cases and failure-injection tests across the stack."""

import numpy as np
import pytest
from scipy import sparse

from repro.blocks import BlockPartition, BlockStructure, WorkModel
from repro.fanout import TaskGraph, simulate_fanout
from repro.machine.params import PARAGON
from repro.matrices import dense_matrix, grid2d_matrix
from repro.matrices.problem import ProblemMatrix
from repro.ordering import Ordering, order_problem
from repro.symbolic import symbolic_factor


class TestTinyProblems:
    def test_one_by_one_matrix(self):
        A = sparse.csc_matrix(np.array([[4.0]]))
        sf = symbolic_factor(A, None)
        assert sf.factor_nnz == 1
        assert sf.nsupernodes == 1
        wm = WorkModel(BlockStructure(BlockPartition(sf, 48)))
        tg = TaskGraph(wm)
        assert tg.ntasks == 1  # a single BFAC
        r = simulate_fanout(tg, np.zeros(1, dtype=int), 1)
        assert r.t_parallel > 0

    def test_two_by_two_dense(self):
        A = sparse.csc_matrix(np.array([[4.0, 1.0], [1.0, 4.0]]))
        sf = symbolic_factor(A, None)
        bs = BlockStructure(BlockPartition(sf, 1))
        wm = WorkModel(bs)
        tg = TaskGraph(wm)
        tg.validate()
        # panels: 2; tasks: 2 BFAC + 1 BDIV + 1 BMOD
        assert tg.ntasks == 4

    def test_diagonal_matrix_pipeline(self):
        A = sparse.diags([1.0, 2.0, 3.0, 4.0]).tocsc()
        sf = symbolic_factor(A, None)
        wm = WorkModel(BlockStructure(BlockPartition(sf, 2)))
        tg = TaskGraph(wm)
        r = simulate_fanout(tg, np.zeros(tg.nblocks, dtype=int), 1)
        assert r.comm_messages == 0

    def test_more_processors_than_blocks(self, grid12_pipeline):
        """P far beyond the block count must still complete."""
        tg = grid12_pipeline[5]
        owners = (tg.block_J % 3).astype(np.int64)  # only 3 procs used
        r = simulate_fanout(tg, owners, 1000)
        assert r.efficiency < 0.01


class TestValidation:
    def test_problem_matrix_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            ProblemMatrix("X", sparse.random(3, 4, density=0.5).tocsc())

    def test_problem_matrix_rejects_dense_array(self):
        with pytest.raises(TypeError):
            ProblemMatrix("X", np.eye(3))

    def test_symbolic_on_indefinite_pattern_ok(self):
        """Symbolic analysis is values-blind: an indefinite matrix with a
        symmetric pattern analyzes fine (numerics would fail later)."""
        A = sparse.csc_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]) + np.eye(2) * -1)
        sf = symbolic_factor(A, None)
        assert sf.factor_nnz >= 2

    def test_ordering_empty(self):
        o = Ordering(np.empty(0, dtype=np.int64))
        assert o.n == 0


class TestRandomOwnershipRobustness:
    def test_arbitrary_non_cp_ownership_completes(self, grid12_pipeline):
        """The simulator must not assume CP structure: random owners."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        rng = np.random.default_rng(0)
        owners = rng.integers(0, 7, size=tg.nblocks)
        r = simulate_fanout(tg, owners, 7, record_schedule=True)
        from repro.numeric import BlockCholesky

        L = BlockCholesky(bs, sf.A).run_schedule(tg, r.schedule).to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-9

    def test_static_volume_matches_for_random_owners(self, grid12_pipeline):
        from repro.analysis import communication_volume
        from repro.fanout import simulate_fanout as sim

        tg = grid12_pipeline[5]
        rng = np.random.default_rng(1)
        owners = rng.integers(0, 5, size=tg.nblocks)
        static = communication_volume(tg, owners)
        dynamic = sim(tg, owners, 5)
        assert static.messages == dynamic.comm_messages
        assert static.bytes == dynamic.comm_bytes


class TestWorkModelEdges:
    def test_block_size_larger_than_matrix(self):
        p = grid2d_matrix(4)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        part = BlockPartition(sf, 10_000)
        # every supernode is one panel
        assert part.npanels == sf.nsupernodes

    def test_dense_one_panel(self):
        p = dense_matrix(10)
        sf = symbolic_factor(p.A, None)
        wm = WorkModel(BlockStructure(BlockPartition(sf, 100)))
        assert wm.total_ops == 1  # single BFAC, nothing else
        tg = TaskGraph(wm)
        r = simulate_fanout(tg, np.zeros(1, dtype=int), 4)
        assert r.efficiency <= 0.25 + 1e-9  # serial on one of four procs
