"""Focused tests for behaviors not covered elsewhere."""

import numpy as np
import pytest

from repro.experiments.figure1 import run as figure1_run
from repro.experiments.runner import ExperimentResult
from repro.fanout import TaskGraph
from repro.machine import DiscreteEventSimulator, SimProcessor


class TestEventSimExtras:
    def test_schedule_after_relative(self):
        sim = DiscreteEventSimulator()
        seen = []
        sim.schedule_at(2.0, lambda: sim.schedule_after(3.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [5.0]

    def test_pending_counter(self):
        sim = DiscreteEventSimulator()
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0


class TestProcessorCounters:
    def test_traffic_counters_start_zero(self):
        p = SimProcessor(3)
        assert p.bytes_sent == 0 and p.messages_sent == 0
        assert p.rank == 3


class TestTaskGraphFailureInjection:
    def test_validate_detects_corrupt_nmod(self, grid12_pipeline):
        wm, tg = grid12_pipeline[4], grid12_pipeline[5]
        broken = TaskGraph(wm)
        broken.nmod = broken.nmod.copy()
        broken.nmod[0] += 1
        with pytest.raises(AssertionError):
            broken.validate()

    def test_validate_detects_missing_bfac(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        broken = TaskGraph(wm)
        broken.bfac_task = broken.bfac_task.copy()
        diag = np.flatnonzero(broken.block_I == broken.block_J)
        broken.bfac_task[diag[0]] = -1
        with pytest.raises(AssertionError):
            broken.validate()


class TestWorkModelLookups:
    def test_block_nmod_lookup(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        t = wm.dest_I.shape[0] // 2
        I, J = int(wm.dest_I[t]), int(wm.dest_J[t])
        assert wm.block_nmod(I, J) == int(wm.nmod[t])

    def test_block_index_missing_raises(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        with pytest.raises(KeyError):
            # block (0, last) is structurally zero (lower triangular only)
            wm.block_index(0, wm.npanels - 1)


class TestDomainsSplitFactor:
    def test_higher_split_factor_smaller_domains(self, random_spd_pipeline):
        from repro.fanout import assign_domains

        wm = random_spd_pipeline[4]
        coarse = assign_domains(wm, 4, split_factor=1.0)
        fine = assign_domains(wm, 4, split_factor=8.0)
        # finer splitting pushes more panels into the root portion
        assert (fine.panel_owner < 0).sum() >= (coarse.panel_owner < 0).sum()

    def test_rejects_bad_p(self, random_spd_pipeline):
        from repro.fanout import assign_domains

        with pytest.raises(ValueError):
            assign_domains(random_spd_pipeline[4], 0)


class TestFigureChart:
    def test_figure1_embeds_ascii_chart(self):
        res = figure1_run("small", Ps=(16,))
        assert "efficiency" in res.notes
        assert "|" in res.notes  # bar chart bars present


class TestRunnerJsonTypes:
    def test_numpy_types_serialized(self):
        import json

        res = ExperimentResult(
            "X",
            ("a", "b"),
            [[np.int64(3), np.float64(1.5)]],
            data={"arr": np.arange(3)},
        )
        payload = json.loads(res.to_json())
        assert payload["rows"][0] == [3, 1.5]
