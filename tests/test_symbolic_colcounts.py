import numpy as np

from repro.matrices import cube3d_matrix, dense_matrix, grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.symbolic import column_counts, elimination_tree, factor_ops_from_counts
from repro.symbolic.colcounts import factor_nnz_from_counts


def dense_cc(A):
    L = np.linalg.cholesky(A.toarray())
    return (np.abs(L) > 1e-13).sum(axis=0)


class TestColumnCounts:
    def test_grid_matches_dense(self):
        p = grid2d_matrix(7)
        cc = column_counts(p.A, elimination_tree(p.A))
        assert np.array_equal(cc, dense_cc(p.A))

    def test_random_matches_dense(self):
        for seed in range(3):
            A = random_spd_sparse(45, density=0.08, seed=seed)
            cc = column_counts(A, elimination_tree(A))
            assert np.array_equal(cc, dense_cc(A))

    def test_cube_matches_dense(self):
        p = cube3d_matrix(4)
        cc = column_counts(p.A, elimination_tree(p.A))
        assert np.array_equal(cc, dense_cc(p.A))

    def test_dense_counts(self):
        p = dense_matrix(20)
        cc = column_counts(p.A, elimination_tree(p.A))
        assert cc.tolist() == list(range(20, 0, -1))


class TestOpsFormula:
    def test_dense1024_matches_paper(self):
        """The paper's Table 1 lists 358.4M ops for DENSE1024."""
        cc = np.arange(1024, 0, -1)
        ops = factor_ops_from_counts(cc)
        assert abs(ops / 1e6 - 358.4) < 0.1

    def test_dense2048_matches_paper(self):
        cc = np.arange(2048, 0, -1)
        assert abs(factor_ops_from_counts(cc) / 1e6 - 2865.4) < 1.0

    def test_diagonal_matrix(self):
        assert factor_ops_from_counts(np.ones(5, dtype=int)) == 5  # 5 sqrts

    def test_nnz(self):
        assert factor_nnz_from_counts(np.array([3, 2, 1])) == 6
